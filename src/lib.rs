//! Umbrella crate for the HoTTSQL reproduction workspace.
//!
//! This crate re-exports the individual subsystem crates so that examples
//! and integration tests can use a single dependency:
//!
//! - [`relalg`] — the executable K-relation substrate (values, schemas,
//!   tuples, cardinals, relations, operators, constraints, indexes).
//! - [`uninomial`] — the UniNomial algebra of Definition 3.1 and the
//!   equational/deductive provers.
//! - [`hottsql`] — the HoTTSQL language: AST, type checker, parser,
//!   desugaring, denotational semantics (Fig. 7), concrete evaluation.
//! - [`cq`] — conjunctive queries and the automated decision procedure.
//! - [`listsem`] — the list-semantics baseline of Sec. 2.
//! - [`optimizer`] — certified cost-based query optimization: saturate,
//!   extract the cheapest equivalent plan under table statistics, read
//!   it back to HoTTSQL, and ship a replayable proof certificate.
//! - [`dopcert`] — the DOPCERT prover: tactics, the 23-rule catalog of
//!   Fig. 8, the differential-testing harness, and the parallel batch
//!   proving engine (`dopcert::engine`) built on the hash-consed
//!   UniNomial core (`uninomial::syntax::intern`).

pub use cq;
pub use dopcert;
pub use hottsql;
pub use listsem;
pub use optimizer;
pub use relalg;
pub use uninomial;
