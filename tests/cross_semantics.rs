//! Cross-semantics agreement: the three independent readings of Fig. 7
//! must coincide on random well-typed queries and random instances.
//!
//! 1. the operational K-relation evaluator (`hottsql::eval`);
//! 2. the denotational semantics (`hottsql::denote`) evaluated
//!    symbolically over a finite domain (`uninomial::eval`);
//! 3. the list-semantics baseline (`listsem`), compared bag-wise.
//!
//! Any bug in the denotation rules, the evaluator, or the baseline shows
//! up as a disagreement on some seed.

use hottsql::arbitrary::QueryGen;
use hottsql::denote::denote_closed_query;
use hottsql::eval::{eval_query, Instance};
use relalg::generate::{GenConfig, Generator};
use relalg::{BaseType, Relation, Schema, Tuple, Value};
use uninomial::eval::{eval, Env, Interp};
use uninomial::syntax::VarGen;

fn tables() -> Vec<(String, Schema)> {
    vec![
        ("R".into(), Schema::flat([BaseType::Int, BaseType::Int])),
        (
            "S".into(),
            Schema::node(Schema::leaf(BaseType::Bool), Schema::leaf(BaseType::Int)),
        ),
        ("T".into(), Schema::leaf(BaseType::Int)),
    ]
}

/// Builds an interpretation whose finite domains cover the sample
/// domains plus every value in the instance tables (so that every sum in
/// the denotation is exact).
fn interp_of(instance: &Instance) -> Interp {
    let mut interp = Interp::new();
    for (name, rel) in &instance.tables {
        interp.rels.insert(name.clone(), rel.clone());
        for (t, _) in rel.iter() {
            for v in t.leaves() {
                if let Some(ty) = v.base_type() {
                    let dom = interp.domains.entry(ty).or_default();
                    if !dom.contains(v) {
                        dom.push(v.clone());
                    }
                }
            }
        }
    }
    interp
}

fn random_instance(seed: u64) -> Instance {
    let mut gen = Generator::with_config(
        seed,
        GenConfig {
            max_support: 4,
            max_multiplicity: 2,
            int_range: (-2, 2),
            max_schema_width: 2,
        },
    );
    let mut inst = Instance::new();
    for (name, schema) in tables() {
        inst = inst.with_table(name, gen.relation(&schema));
    }
    inst
}

/// Product of all `Σ` binder domain sizes — an upper bound on the work
/// one denotational evaluation performs. Used to skip pathologically
/// wide seeds (the semantics is exact regardless; the test must stay
/// fast).
fn eval_cost(e: &uninomial::UExpr, interp: &Interp) -> f64 {
    use uninomial::UExpr as E;
    match e {
        E::Zero | E::One | E::Eq(_, _) | E::Rel(_, _) | E::Pred(_, _) => 1.0,
        E::Add(a, b) | E::Mul(a, b) => eval_cost(a, interp) + eval_cost(b, interp),
        E::Not(x) | E::Squash(x) => eval_cost(x, interp),
        E::Sum(v, body) => interp.enumerate(&v.schema).len() as f64 * eval_cost(body, interp),
    }
}

#[test]
fn operational_equals_denotational_equals_lists() {
    let mut checked_tuples = 0usize;
    let mut denotation_checked_seeds = 0usize;
    for seed in 0..120u64 {
        let mut qg = QueryGen::new(seed, tables());
        let (query, sigma) = qg.query();
        let env = qg.env().clone();
        let instance = random_instance(seed ^ 0xABCD);

        // 1. Operational evaluation.
        let operational = eval_query(&query, &env, &instance, &Schema::Empty, &Tuple::Unit)
            .unwrap_or_else(|e| panic!("seed {seed}: {query} failed operationally: {e}"));
        assert_eq!(operational.schema(), &sigma, "seed {seed}: {query}");

        // 2. List-semantics baseline must agree bag-wise.
        let rows = listsem::eval_query_list(&query, &env, &instance, &Schema::Empty, &Tuple::Unit)
            .unwrap_or_else(|e| panic!("seed {seed}: {query} failed in listsem: {e}"));
        let as_rel = Relation::from_tuples(sigma.clone(), rows)
            .unwrap_or_else(|e| panic!("seed {seed}: nonconforming listsem row: {e}"));
        assert!(
            as_rel.bag_eq(&operational),
            "seed {seed}: listsem disagrees on {query}\n  lists: {as_rel:?}\n  krel:  {operational:?}"
        );

        // 3. Denotational semantics, evaluated at every tuple of the
        //    (covering) finite domain — bounded to keep the test fast.
        let mut vgen = VarGen::new();
        let (tvar, expr) = denote_closed_query(&query, &env, &mut vgen)
            .unwrap_or_else(|e| panic!("seed {seed}: {query} failed to denote: {e}"));
        let interp = interp_of(&instance);
        let domain = interp.enumerate(&sigma);
        if domain.len() > 700 || eval_cost(&expr, &interp) * domain.len() as f64 > 2e6 {
            continue; // pathologically wide seed; covered by narrower ones
        }
        denotation_checked_seeds += 1;
        for tu in &domain {
            let mut venv = Env::new();
            venv.insert(tvar.id, tu.clone());
            let denoted = eval(&expr, &interp, &venv)
                .unwrap_or_else(|e| panic!("seed {seed}: denotation eval failed: {e}"));
            assert_eq!(
                denoted,
                operational.multiplicity(tu),
                "seed {seed}: {query} multiplicity of {tu} differs\n  denotation: {expr}"
            );
            checked_tuples += 1;
        }
        // Every operational output tuple must be inside the enumerated
        // domain (otherwise the check above silently skipped it).
        let dom: std::collections::BTreeSet<&Tuple> = domain.iter().collect();
        for (t, _) in operational.iter() {
            assert!(
                dom.contains(t),
                "seed {seed}: output tuple {t} escaped the finite domain"
            );
        }
    }
    assert!(checked_tuples > 1_000, "exercised {checked_tuples} points");
    assert!(
        denotation_checked_seeds > 50,
        "only {denotation_checked_seeds} seeds were narrow enough"
    );
}

#[test]
fn normalization_preserves_denotation_on_queries() {
    // Stronger than the unit tests: normalize the *actual denotations* of
    // random queries and re-evaluate.
    for seed in 200..260u64 {
        let mut qg = QueryGen::new(seed, tables());
        let (query, sigma) = qg.query();
        let env = qg.env().clone();
        let instance = random_instance(seed);
        let interp = interp_of(&instance);
        let mut vgen = VarGen::new();
        let (tvar, expr) = denote_closed_query(&query, &env, &mut vgen).expect("denotes");
        let mut trace = uninomial::normalize::Trace::new();
        let nf = uninomial::normalize::normalize(&expr, &mut vgen, &mut trace);
        for tu in interp.enumerate(&sigma).into_iter().take(40) {
            let mut venv = Env::new();
            venv.insert(tvar.id, tu.clone());
            let before = eval(&expr, &interp, &venv).expect("pre-normalization eval");
            let after = uninomial::eval::eval_spnf(&nf, &interp, &venv).expect("nf eval");
            assert_eq!(
                before, after,
                "seed {seed}: normalization changed {query} at {tu}\n  nf: {nf}"
            );
        }
    }
}

#[test]
fn except_union_distinct_identities_hold_concretely() {
    // A few structural identities checked across many instances — these
    // are the concrete shadows of proved rules.
    for seed in 0..40u64 {
        let instance = random_instance(seed);
        let env = QueryGen::new(0, tables()).env().clone();
        let r = hottsql::ast::Query::table("R");
        let cases = [
            (
                hottsql::ast::Query::distinct(hottsql::ast::Query::distinct(r.clone())),
                hottsql::ast::Query::distinct(r.clone()),
            ),
            (
                hottsql::ast::Query::except(r.clone(), r.clone()),
                hottsql::ast::Query::where_(r.clone(), hottsql::ast::Predicate::False),
            ),
            (
                hottsql::ast::Query::union_all(r.clone(), r.clone()),
                hottsql::ast::Query::union_all(r.clone(), r.clone()),
            ),
        ];
        for (a, b) in cases {
            let ra = eval_query(&a, &env, &instance, &Schema::Empty, &Tuple::Unit).unwrap();
            let rb = eval_query(&b, &env, &instance, &Schema::Empty, &Tuple::Unit).unwrap();
            assert!(ra.bag_eq(&rb), "seed {seed}: {a} vs {b}");
        }
    }
}

#[test]
fn string_and_bool_values_survive_roundtrips() {
    // Values of every base type flow through evaluation unchanged.
    let env = hottsql::env::QueryEnv::new().with_table(
        "S",
        Schema::node(Schema::leaf(BaseType::Bool), Schema::leaf(BaseType::Str)),
    );
    let rel = Relation::from_tuples(
        Schema::node(Schema::leaf(BaseType::Bool), Schema::leaf(BaseType::Str)),
        [
            Tuple::pair(Tuple::bool(true), Tuple::leaf(Value::str("a"))),
            Tuple::pair(Tuple::bool(false), Tuple::leaf(Value::str(""))),
        ],
    )
    .unwrap();
    let inst = Instance::new().with_table("S", rel.clone());
    let out = eval_query(
        &hottsql::ast::Query::table("S"),
        &env,
        &inst,
        &Schema::Empty,
        &Tuple::Unit,
    )
    .unwrap();
    assert!(out.bag_eq(&rel));
}
