//! End-to-end narrative test: the Sec. 2 running example through every
//! layer of the system — parse, type, evaluate, denote, prove, decide.

use hottsql::ast::{Expr, Predicate, Proj, Query};
use hottsql::denote::{denote_closed_query, denote_query};
use hottsql::env::QueryEnv;
use hottsql::eval::{eval_query, Instance};
use hottsql::parse::parse_query;
use relalg::{BaseType, Card, Relation, Schema, Tuple};
use uninomial::syntax::{Term, VarGen};

fn sec2_env() -> QueryEnv {
    QueryEnv::new().with_table("R", Schema::flat([BaseType::Int, BaseType::Int]))
}

fn sec2_instance() -> Instance {
    let r = Relation::from_tuples(
        Schema::flat([BaseType::Int, BaseType::Int]),
        [
            Tuple::flat([1.into(), 40.into()]),
            Tuple::flat([2.into(), 40.into()]),
            Tuple::flat([2.into(), 50.into()]),
        ],
    )
    .unwrap();
    Instance::new().with_table("R", r)
}

#[test]
fn sec2_q1_q2_q3_pipeline() {
    let env = sec2_env();
    let inst = sec2_instance();

    // Q1: SELECT a FROM R — bag {1, 2, 2}.
    let q1 = parse_query("SELECT Right.Left FROM R").unwrap();
    assert_eq!(
        hottsql::ty::infer_query(&q1, &env, &Schema::Empty).unwrap(),
        Schema::leaf(BaseType::Int)
    );
    let r1 = eval_query(&q1, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
    assert_eq!(r1.multiplicity(&Tuple::int(2)), Card::Fin(2));

    // Q2: SELECT DISTINCT a FROM R — set {1, 2}.
    let q2 = parse_query("DISTINCT SELECT Right.Left FROM R").unwrap();
    let r2 = eval_query(&q2, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
    assert_eq!(r2.total_multiplicity(), Card::Fin(2));

    // Q3: the redundant self-join.
    let q3 = parse_query(
        "DISTINCT SELECT Right.Left.Left FROM R, R \
         WHERE Right.Left.Left = Right.Right.Left",
    )
    .unwrap();
    let r3 = eval_query(&q3, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
    assert!(r2.bag_eq(&r3), "Q2 ≡ Q3 on the Sec. 2 instance");

    // Prove Q2 ≡ Q3 symbolically from their denotations.
    let mut gen = VarGen::new();
    let (t, e2) = denote_closed_query(&q2, &env, &mut gen).unwrap();
    let e3 = denote_query(
        &q3,
        &env,
        &Schema::Empty,
        &Term::Unit,
        &Term::var(&t),
        &mut gen,
    )
    .unwrap();
    let proof = uninomial::prove_eq(&e2, &e3, &mut gen).expect("Q2 ≡ Q3 proves");
    assert!(proof.steps() >= 1);

    // And decide it with the CQ procedure.
    let c2 = cq::translate::from_query(&q2, &env).expect("Q2 is a CQ");
    let c3 = cq::translate::from_query(&q3, &env).expect("Q3 is a CQ");
    assert!(cq::containment::equivalent_set(&c2, &c3));
    // But they are NOT bag-equivalent without DISTINCT.
    assert!(!cq::bag::bag_equivalent(&c2, &c3));
}

#[test]
fn group_by_pipeline_with_constraints() {
    // Employees grouped by department; the department id is a key of the
    // groups (checked via both the operational and the paper's semantic
    // key definitions).
    let schema = Schema::flat([BaseType::Int, BaseType::Int]);
    let env = QueryEnv::new().with_table("Emp", schema.clone());
    let emp = Relation::from_tuples(
        schema,
        [
            Tuple::flat([1.into(), 100.into()]),
            Tuple::flat([1.into(), 50.into()]),
            Tuple::flat([2.into(), 70.into()]),
        ],
    )
    .unwrap();
    let inst = Instance::new().with_table("Emp", emp);
    let grouped =
        hottsql::desugar::group_by_agg(Query::table("Emp"), Proj::Left, "SUM", Proj::Right);
    let out = eval_query(&grouped, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
    assert_eq!(
        out.multiplicity(&Tuple::pair(Tuple::int(1), Tuple::int(150))),
        Card::ONE
    );
    assert_eq!(
        out.multiplicity(&Tuple::pair(Tuple::int(2), Tuple::int(70))),
        Card::ONE
    );
    // The group key is a key of the result.
    let key = |t: &Tuple| t.fst().unwrap().clone();
    assert!(relalg::constraints::is_key(&out, key));
    assert!(relalg::constraints::is_key_semantic(&out, key));
    // And key → sum is a functional dependency, twice over.
    assert!(relalg::constraints::functional_dependency(&out, key, |t| t
        .snd()
        .unwrap()
        .clone()));
}

#[test]
fn where_filter_on_aggregate_subquery() {
    // Departments whose total salary exceeds a threshold — correlated
    // aggregate in a predicate.
    let schema = Schema::flat([BaseType::Int, BaseType::Int]);
    let env = QueryEnv::new()
        .with_table("Emp", schema.clone())
        .with_table("Dept", Schema::leaf(BaseType::Int));
    let emp = Relation::from_tuples(
        schema,
        [
            Tuple::flat([1.into(), 100.into()]),
            Tuple::flat([1.into(), 50.into()]),
            Tuple::flat([2.into(), 70.into()]),
        ],
    )
    .unwrap();
    let dept =
        Relation::from_tuples(Schema::leaf(BaseType::Int), [Tuple::int(1), Tuple::int(2)]).unwrap();
    let inst = Instance::new()
        .with_table("Emp", emp)
        .with_table("Dept", dept);
    // SELECT * FROM Dept WHERE SUM(SELECT sal FROM Emp WHERE did = dept) = 150
    // Inner select context: node(node(empty, int), σEmp).
    let salaries = Query::select(
        Proj::path([Proj::Right, Proj::Right]),
        Query::where_(
            Query::table("Emp"),
            Predicate::eq(
                Expr::p2e(Proj::path([Proj::Right, Proj::Left])),
                Expr::p2e(Proj::path([Proj::Left, Proj::Right])),
            ),
        ),
    );
    let q = Query::where_(
        Query::table("Dept"),
        Predicate::eq(Expr::agg("SUM", salaries), Expr::int(150)),
    );
    let out = eval_query(&q, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
    assert_eq!(out.multiplicity(&Tuple::int(1)), Card::ONE);
    assert_eq!(out.multiplicity(&Tuple::int(2)), Card::ZERO);
}

#[test]
fn index_machinery_end_to_end() {
    // Build a physical index over a keyed relation and check that the
    // index-as-relation of Sec. 4.2 answers scans exactly like the
    // symbolic index rules promise.
    let schema = Schema::flat([BaseType::Int, BaseType::Int]);
    let r = Relation::from_tuples(
        schema,
        [
            Tuple::flat([0.into(), 5.into()]),
            Tuple::flat([1.into(), 7.into()]),
            Tuple::flat([2.into(), 5.into()]),
        ],
    )
    .unwrap();
    let fst = |t: &Tuple| t.fst().unwrap().clone();
    let snd = |t: &Tuple| t.snd().unwrap().clone();
    let idx = relalg::index::Index::build(
        &r,
        Schema::leaf(BaseType::Int),
        Schema::leaf(BaseType::Int),
        fst,
        snd,
    )
    .expect("first column is a key");
    let via_index = idx.scan_via_index(&r, &relalg::Value::Int(5), fst);
    let full = relalg::ops::select(&r, |t| Card::from_bool(t.snd().unwrap() == &Tuple::int(5)));
    assert!(via_index.bag_eq(&full));
    assert_eq!(via_index.support_size(), 2);
}

#[test]
fn outer_join_and_nulls_integration() {
    let s_schema = Schema::flat([BaseType::Int, BaseType::Int]);
    let env = hottsql::desugar::declare_null_fns(
        QueryEnv::new()
            .with_table("R", Schema::leaf(BaseType::Int))
            .with_table("S", s_schema.clone()),
    );
    let r = Relation::from_tuples(
        Schema::leaf(BaseType::Int),
        [Tuple::int(1), Tuple::int(2), Tuple::int(3)],
    )
    .unwrap();
    let s = Relation::from_tuples(
        s_schema.clone(),
        [
            Tuple::flat([1.into(), 10.into()]),
            Tuple::flat([3.into(), 30.into()]),
        ],
    )
    .unwrap();
    let inst =
        hottsql::desugar::install_null_fns(Instance::new().with_table("R", r).with_table("S", s));
    let theta = Predicate::eq(
        Expr::p2e(Proj::path([Proj::Right, Proj::Left])),
        Expr::p2e(Proj::path([Proj::Right, Proj::Right, Proj::Left])),
    );
    let loj =
        hottsql::desugar::left_outer_join(Query::table("R"), Query::table("S"), theta, &s_schema);
    let out = eval_query(&loj, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
    assert_eq!(out.support_size(), 3, "{out:?}");
    // The unmatched row (2) is NULL-padded.
    let padded: Vec<&Tuple> = out
        .support()
        .into_iter()
        .filter(|t| t.contains_null())
        .collect();
    assert_eq!(padded.len(), 1);
    assert_eq!(padded[0].fst().unwrap(), &Tuple::int(2));
}

#[test]
fn parser_typing_denotation_round_trip_for_paper_queries() {
    // The example queries of Sec. 3.2 (q1–q5 shapes) all parse, type,
    // and denote.
    let sr = Schema::flat([BaseType::Int, BaseType::Int]);
    let ss = Schema::flat([BaseType::Int, BaseType::Int]);
    let env = QueryEnv::new()
        .with_table("R", sr.clone())
        .with_table("S", ss.clone())
        .with_proj(
            "p",
            Schema::node(Schema::Empty, Schema::node(sr.clone(), ss.clone())),
            Schema::leaf(BaseType::Int),
        )
        .with_fn("add", BaseType::Int);
    let queries = [
        "SELECT Right.Left FROM R, S",                           // q1: R.*
        "SELECT Right.Right FROM R, S",                          // q2: S.*
        "SELECT Right.Right.Left FROM R, S",                     // q3: S.p
        "SELECT (Right.Left.Left, Right.Right.Right) FROM R, S", // q4
        "SELECT E2P(add(Right.Left, Right.Right)) FROM R",       // q5: p1 + p2
    ];
    for text in queries {
        let q = parse_query(text).unwrap_or_else(|e| panic!("{text}: {e}"));
        hottsql::ty::infer_query(&q, &env, &Schema::Empty)
            .unwrap_or_else(|e| panic!("{text}: {e}"));
        let mut gen = VarGen::new();
        denote_closed_query(&q, &env, &mut gen).unwrap_or_else(|e| panic!("{text}: {e}"));
    }
}
