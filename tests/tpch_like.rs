//! A TPC-H-flavored workload (the paper cites TPC-H in Sec. 5.1.2: 16 of
//! 22 queries group, 21 aggregate). Concrete wide schemas, realistic
//! query shapes, and a concrete-schema instance of the aggregation
//! rewrite proved by the same pipeline as the generic rule.

use hottsql::ast::{Expr, Predicate, Proj, Query};
use hottsql::denote::{denote_closed_query, denote_query};
use hottsql::desugar::group_by_agg;
use hottsql::env::QueryEnv;
use hottsql::eval::{eval_query, Instance};
use relalg::{BaseType, Card, Relation, Schema, Tuple};
use uninomial::syntax::{Term, VarGen};

/// lineitem(orderkey, quantity, price) — flat right-leaning tree.
fn lineitem_schema() -> Schema {
    Schema::flat([BaseType::Int, BaseType::Int, BaseType::Int])
}

fn env() -> QueryEnv {
    QueryEnv::new()
        .with_table("lineitem", lineitem_schema())
        .with_table("orders", Schema::flat([BaseType::Int, BaseType::Int]))
}

fn instance() -> Instance {
    let lineitem = Relation::from_tuples(
        lineitem_schema(),
        [
            Tuple::flat([1.into(), 5.into(), 100.into()]),
            Tuple::flat([1.into(), 3.into(), 60.into()]),
            Tuple::flat([2.into(), 7.into(), 700.into()]),
            Tuple::flat([3.into(), 1.into(), 10.into()]),
        ],
    )
    .unwrap();
    let orders = Relation::from_tuples(
        Schema::flat([BaseType::Int, BaseType::Int]),
        [
            Tuple::flat([1.into(), 10.into()]),
            Tuple::flat([2.into(), 20.into()]),
            Tuple::flat([3.into(), 10.into()]),
        ],
    )
    .unwrap();
    Instance::new()
        .with_table("lineitem", lineitem)
        .with_table("orders", orders)
}

/// Q1-flavored: total quantity per order key.
#[test]
fn quantity_grouped_by_orderkey() {
    let q = group_by_agg(
        Query::table("lineitem"),
        Proj::Left,
        "SUM",
        Proj::path([Proj::Right, Proj::Left]),
    );
    let out = eval_query(&q, &env(), &instance(), &Schema::Empty, &Tuple::Unit).unwrap();
    assert_eq!(
        out.multiplicity(&Tuple::pair(Tuple::int(1), Tuple::int(8))),
        Card::ONE
    );
    assert_eq!(
        out.multiplicity(&Tuple::pair(Tuple::int(2), Tuple::int(7))),
        Card::ONE
    );
    assert_eq!(out.support_size(), 3);
}

/// The Sec. 5.1.2 rewrite at a *concrete* wide schema: filtering the
/// grouped result on its key equals grouping the filtered table. The
/// generic rule is proved in the catalog; this instance exercises the
/// prover on real pair-splitting (three-column schema).
#[test]
fn aggregation_pushdown_proves_at_concrete_schema() {
    let key = Proj::Left;
    let qty = Proj::path([Proj::Right, Proj::Left]);
    let filter_const = Expr::int(1);
    let lhs = Query::where_(
        group_by_agg(Query::table("lineitem"), key.clone(), "SUM", qty.clone()),
        Predicate::eq(
            Expr::p2e(Proj::path([Proj::Right, Proj::Left])),
            filter_const.clone(),
        ),
    );
    let rhs = group_by_agg(
        Query::where_(
            Query::table("lineitem"),
            Predicate::eq(
                Expr::p2e(Proj::path([Proj::Right, Proj::Left])),
                filter_const,
            ),
        ),
        key,
        "SUM",
        qty,
    );
    let env = env();
    // Concrete agreement first.
    let out_l = eval_query(&lhs, &env, &instance(), &Schema::Empty, &Tuple::Unit).unwrap();
    let out_r = eval_query(&rhs, &env, &instance(), &Schema::Empty, &Tuple::Unit).unwrap();
    assert!(out_l.bag_eq(&out_r));
    assert_eq!(
        out_l.multiplicity(&Tuple::pair(Tuple::int(1), Tuple::int(8))),
        Card::ONE
    );
    // Then the symbolic proof at this concrete schema.
    let mut gen = VarGen::new();
    let (t, el) = denote_closed_query(&lhs, &env, &mut gen).unwrap();
    let er = denote_query(
        &rhs,
        &env,
        &Schema::Empty,
        &Term::Unit,
        &Term::var(&t),
        &mut gen,
    )
    .unwrap();
    let proof = uninomial::prove_eq(&el, &er, &mut gen)
        .expect("concrete-schema aggregation pushdown proves");
    assert!(proof.steps() >= 1);
}

/// Join + group: revenue per customer through orders ⋈ lineitem.
#[test]
fn join_then_group() {
    let env = env();
    // FROM orders, lineitem WHERE orders.okey = lineitem.okey.
    let joined = Query::where_(
        Query::product(Query::table("orders"), Query::table("lineitem")),
        Predicate::eq(
            Expr::p2e(Proj::path([Proj::Right, Proj::Left, Proj::Left])),
            Expr::p2e(Proj::path([Proj::Right, Proj::Right, Proj::Left])),
        ),
    );
    // Project (custkey, price).
    let pairs = Query::select(
        Proj::pair(
            Proj::path([Proj::Right, Proj::Left, Proj::Right]),
            Proj::path([Proj::Right, Proj::Right, Proj::Right, Proj::Right]),
        ),
        joined,
    );
    let per_cust = group_by_agg(pairs, Proj::Left, "SUM", Proj::Right);
    let out = eval_query(&per_cust, &env, &instance(), &Schema::Empty, &Tuple::Unit).unwrap();
    // Customer 10 owns orders 1 and 3: 100 + 60 + 10 = 170.
    assert_eq!(
        out.multiplicity(&Tuple::pair(Tuple::int(10), Tuple::int(170))),
        Card::ONE
    );
    assert_eq!(
        out.multiplicity(&Tuple::pair(Tuple::int(20), Tuple::int(700))),
        Card::ONE
    );
}

/// The undecidability boundary (Fig. 9 bottom row): a pair of queries
/// whose equivalence needs reasoning outside the prover's fragment must
/// return "not proved" promptly instead of diverging.
#[test]
fn prover_fails_fast_outside_its_fragment() {
    let env = QueryEnv::new().with_table("R", Schema::leaf(BaseType::Int));
    // R EXCEPT (R EXCEPT R) ≡ R: true, but needs case reasoning on
    // emptiness of R that the conservative matcher does not attempt at
    // the bag level (¬¬R(t)×R(t) = R(t) requires absorption the prover
    // only applies to propositional factors).
    let lhs = Query::except(
        Query::table("R"),
        Query::except(Query::table("R"), Query::table("R")),
    );
    let rhs = Query::table("R");
    let mut gen = VarGen::new();
    let (t, el) = denote_closed_query(&lhs, &env, &mut gen).unwrap();
    let er = denote_query(
        &rhs,
        &env,
        &Schema::Empty,
        &Term::Unit,
        &Term::var(&t),
        &mut gen,
    )
    .unwrap();
    let started = std::time::Instant::now();
    let result = uninomial::prove_eq(&el, &er, &mut gen);
    assert!(started.elapsed().as_secs() < 5, "must fail fast");
    // Either outcome is sound; if it proves, the normalizer learned the
    // identity — also fine. What matters is termination.
    let _ = result;
}
