//! Heavier differential testing of the full rule catalog than the unit
//! tests run: every sound rule on many random schema instantiations and
//! instances; every unsound rule refuted with a concrete counterexample.

use dopcert::difftest::{differential_test, DiffOutcome};

#[test]
fn all_sound_rules_survive_many_random_instances() {
    for rule in dopcert::catalog::sound_rules() {
        let outcome = differential_test(&rule, 60, 0xBEEF_CAFE);
        match outcome {
            DiffOutcome::Agreed { trials } => assert_eq!(trials, 60),
            DiffOutcome::Refuted(cex) => panic!("{} refuted: {cex}", rule.name),
            DiffOutcome::Error(e) => panic!("{} errored: {e}", rule.name),
        }
    }
}

#[test]
fn all_unsound_rules_have_counterexamples() {
    for rule in dopcert::catalog::unsound_rules() {
        let outcome = differential_test(&rule, 300, 0x0BAD_F00D);
        match outcome {
            DiffOutcome::Refuted(cex) => {
                // The counterexample must carry enough data to reproduce.
                let shown = cex.to_string();
                assert!(shown.contains("seed"), "{shown}");
                assert!(shown.contains("lhs"), "{shown}");
            }
            other => panic!("{} not refuted: {other:?}", rule.name),
        }
    }
}

#[test]
fn proof_and_testing_verdicts_agree() {
    // The prover accepts exactly the sound rules; differential testing
    // refutes exactly the unsound ones. No rule may land in the
    // ambiguous quadrants (proved-but-refuted would be a soundness bug;
    // unproved-and-unrefuted is acceptable only for sound rules, and all
    // our sound rules do prove).
    for rule in dopcert::catalog::all_rules() {
        let report = dopcert::api::prove_rule(&rule);
        let outcome = differential_test(&rule, 40, 0x7E57);
        match (rule.expected_sound, report.proved, outcome.agreed()) {
            (true, true, true) => {}
            (false, false, false) => {}
            (sound, proved, agreed) => panic!(
                "{}: expected_sound={sound} proved={proved} difftest-agreed={agreed}",
                rule.name
            ),
        }
    }
}

#[test]
fn counterexamples_are_reproducible() {
    // Re-running the same seed reproduces the refutation.
    let rules = dopcert::catalog::unsound_rules();
    let rule = &rules[0];
    let a = differential_test(rule, 300, 42);
    let b = differential_test(rule, 300, 42);
    match (a, b) {
        (DiffOutcome::Refuted(x), DiffOutcome::Refuted(y)) => {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.instance, y.instance);
        }
        other => panic!("expected two identical refutations, got {other:?}"),
    }
}
