//! The conjunctive-query decision procedure and the Fig. 10 mappings.
//!
//! Reproduces the Sec. 5.2 example: two equivalent conjunctive queries
//! decided automatically, with the homomorphism witnesses (the arrows
//! drawn in Fig. 10) printed in both directions. Also shows containment,
//! bag (in)equivalence, and minimization.
//!
//! Run with: `cargo run --example conjunctive_queries`

use cq::containment::{containment_witness, equivalent_set_witness};
use hottsql::env::QueryEnv;
use hottsql::parse::parse_query;
use relalg::{BaseType, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // SELECT DISTINCT x.c1 FROM R1 x, R2 y WHERE x.c2 = y.c3
    //   ≡ SELECT DISTINCT x.c1 FROM R1 x, R1 y, R2 z
    //     WHERE x.c1 = y.c1 AND x.c2 = z.c3
    let env = QueryEnv::new()
        .with_table("R1", Schema::flat([BaseType::Int, BaseType::Int]))
        .with_table("R2", Schema::leaf(BaseType::Int));
    let q1 = parse_query(
        "DISTINCT SELECT Right.Left.Left FROM R1, R2 \
         WHERE Right.Left.Right = Right.Right",
    )?;
    let q2 = parse_query(
        "DISTINCT SELECT Right.Left.Left.Left FROM (R1, R1), R2 \
         WHERE Right.Left.Left.Left = Right.Left.Right.Left \
         AND Right.Left.Left.Right = Right.Right",
    )?;
    println!("q1: {q1}");
    println!("q2: {q2}\n");

    let c1 = cq::translate::from_query(&q1, &env).expect("q1 is a CQ");
    let c2 = cq::translate::from_query(&q2, &env).expect("q2 is a CQ");
    println!("as conjunctive queries:");
    println!("  c1: {c1}");
    println!("  c2: {c2}\n");

    let (fwd, bwd) = equivalent_set_witness(&c1, &c2).expect("equivalent (Sec. 5.2)");
    println!("Fig. 10 mappings:");
    println!("  c1 ⊆ c2 via homomorphism c2 → c1:  {fwd}");
    println!("  c2 ⊆ c1 via homomorphism c1 → c2:  {bwd}\n");

    // Bag semantics distinguishes them (extra R1 atom = extra factor).
    println!(
        "bag-equivalent? {} (multiplicities differ without DISTINCT)",
        cq::bag::bag_equivalent(&c1, &c2)
    );

    // Minimization computes c2's core, which is c1 up to renaming.
    let core = cq::minimize::minimize(&c2);
    println!("core of c2: {core}");
    assert_eq!(core.size(), c1.size());

    // One-directional containment: a 2-path query vs an edge query.
    let edge = cq::generate::boolean_chain(1);
    let path2 = cq::generate::boolean_chain(2);
    println!("\ncontainment is directional:");
    match containment_witness(&path2, &edge) {
        Some(h) => println!("  path2 ⊆ edge via {h}"),
        None => println!("  path2 ⊈ edge"),
    }
    println!(
        "  edge ⊆ path2? {}",
        cq::containment::contained_in(&edge, &path2)
    );
    Ok(())
}
