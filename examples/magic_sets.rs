//! Magic-set rewrites (Sec. 5.1.3): the three semijoin generator rules,
//! proved and then demonstrated on the paper's employee/department
//! scenario.
//!
//! Run with: `cargo run --example magic_sets`

use dopcert::api::prove_rule;
use hottsql::ast::{Expr, Predicate, Proj, Query};
use hottsql::desugar::semijoin;
use hottsql::env::QueryEnv;
use hottsql::eval::{eval_query, Instance};
use relalg::{BaseType, Relation, Schema, Tuple};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Prove the three generator rules (and the other four laws).
    println!("=== Magic-set rules, proved ===");
    for rule in dopcert::catalog::rules_in(dopcert::rule::Category::MagicSet) {
        let report = prove_rule(&rule);
        assert!(report.proved, "{} failed", rule.name);
        println!(
            "  {:<28} {:>3} steps   {}",
            rule.name, report.steps, rule.description
        );
    }

    // 2. The Sec. 5.1.3 scenario: young employees in big departments
    //    earning above their department's average. We build the semijoin
    //    reduction concretely: only departments that have young employees
    //    need their average computed.
    //    Emp(did, sal), Dept(did, budget).
    let emp_schema = Schema::flat([BaseType::Int, BaseType::Int]);
    let dept_schema = Schema::flat([BaseType::Int, BaseType::Int]);
    let env = QueryEnv::new()
        .with_table("Emp", emp_schema.clone())
        .with_table("Dept", dept_schema.clone());
    let emp = Relation::from_tuples(
        emp_schema,
        [
            Tuple::flat([1.into(), 90.into()]),
            Tuple::flat([1.into(), 50.into()]),
            Tuple::flat([2.into(), 70.into()]),
            Tuple::flat([3.into(), 40.into()]),
        ],
    )?;
    let dept = Relation::from_tuples(
        dept_schema,
        [
            Tuple::flat([1.into(), 200_000.into()]),
            Tuple::flat([2.into(), 50_000.into()]),
        ],
    )?;
    let inst = Instance::new()
        .with_table("Emp", emp)
        .with_table("Dept", dept);

    // Dept ⋉ Emp on matching did: only departments with employees.
    // θ context: node(node(empty, σDept), σEmp).
    let theta = Predicate::eq(
        Expr::p2e(Proj::path([Proj::Left, Proj::Right, Proj::Left])),
        Expr::p2e(Proj::path([Proj::Right, Proj::Left])),
    );
    let filter = semijoin(Query::table("Dept"), Query::table("Emp"), theta.clone());
    let filtered = eval_query(&filter, &env, &inst, &Schema::Empty, &Tuple::Unit)?;
    println!("\nDept ⋉ Emp (departments with employees): {filtered:?}");
    assert_eq!(filtered.support_size(), 2);

    // Introduction of θ-semijoin: the join is unchanged by pre-filtering
    // the build side — evaluate both plans and compare. The join's
    // predicate lives in a different context shape than the semijoin's
    // (node(Γ, node σD σE) vs node(node(Γ, σD), σE)), so it is restated
    // with the appropriate paths.
    let join_theta = Predicate::eq(
        Expr::p2e(Proj::path([Proj::Right, Proj::Left, Proj::Left])),
        Expr::p2e(Proj::path([Proj::Right, Proj::Right, Proj::Left])),
    );
    let join = Query::where_(
        Query::product(Query::table("Dept"), Query::table("Emp")),
        join_theta.clone(),
    );
    let join_filtered = Query::where_(Query::product(filter, Query::table("Emp")), join_theta);
    let plain = eval_query(&join, &env, &inst, &Schema::Empty, &Tuple::Unit)?;
    let magic = eval_query(&join_filtered, &env, &inst, &Schema::Empty, &Tuple::Unit)?;
    assert!(plain.bag_eq(&magic));
    println!(
        "join and magic-set-reduced join agree: {} tuples",
        plain.support_size()
    );
    Ok(())
}
