//! Certified optimization over the TPC-H-flavored schemas of
//! `tests/tpch_like.rs`: statistics are *measured* from a concrete
//! instance (`TableStats::from_relation`), so equality selectivities
//! and `DISTINCT` discounts come from real distinct-value counts, and
//! each optimized plan is executed against the instance to show the
//! certificate is not just decorative.
//!
//! Run with: `cargo run --example optimize`

use hottsql::env::QueryEnv;
use hottsql::eval::{eval_query, Instance};
use hottsql::parse::parse_query;
use optimizer::{optimize, OptimizeOptions, PlanCtx};
use relalg::stats::{Statistics, TableStats};
use relalg::{BaseType, Relation, Schema, Tuple};

/// lineitem(orderkey, quantity, price) — as in `tests/tpch_like.rs`.
fn lineitem_schema() -> Schema {
    Schema::flat([BaseType::Int, BaseType::Int, BaseType::Int])
}

fn orders_schema() -> Schema {
    Schema::flat([BaseType::Int, BaseType::Int])
}

fn instance() -> Instance {
    let lineitem = Relation::from_tuples(
        lineitem_schema(),
        [
            Tuple::flat([1.into(), 5.into(), 100.into()]),
            Tuple::flat([1.into(), 3.into(), 60.into()]),
            Tuple::flat([2.into(), 7.into(), 700.into()]),
            Tuple::flat([3.into(), 1.into(), 10.into()]),
        ],
    )
    .unwrap();
    let orders = Relation::from_tuples(
        orders_schema(),
        [
            Tuple::flat([1.into(), 10.into()]),
            Tuple::flat([2.into(), 20.into()]),
            Tuple::flat([3.into(), 10.into()]),
        ],
    )
    .unwrap();
    Instance::new()
        .with_table("lineitem", lineitem)
        .with_table("orders", orders)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = QueryEnv::new()
        .with_table("lineitem", lineitem_schema())
        .with_table("orders", orders_schema());
    let inst = instance();

    // Statistics measured from the instance, then scaled: the real
    // tables are 1000× the sample.
    let mut stats = Statistics::new();
    for (name, rel) in &inst.tables {
        let mut t = TableStats::from_relation(rel);
        t.rows *= 1000.0;
        if let Some(d) = &mut t.distinct {
            for c in d {
                *c *= 1000.0;
            }
        }
        stats = stats.with_table(name.clone(), t);
    }
    println!(
        "measured statistics: lineitem {} rows, orders {} rows, eq selectivity {:.4}",
        stats.rows("lineitem"),
        stats.rows("orders"),
        stats.eq_selectivity()
    );

    // A redundant self-join on the order key (the Sec. 2 pattern at
    // TPC-H shape) and an already-minimal key join: the optimizer must
    // collapse the first and leave the second alone.
    let queries = [
        "DISTINCT SELECT Right.Left.Left FROM lineitem, lineitem \
         WHERE Right.Left.Left = Right.Right.Left",
        "DISTINCT SELECT Right.Right.Right FROM lineitem, orders \
         WHERE Right.Left.Left = Right.Right.Left",
    ];
    let opts = OptimizeOptions::default();
    for sql in queries {
        let q = parse_query(sql)?;
        let report = optimize(&q, &env, &stats, opts, PlanCtx::default())?;
        println!("\ninput plan:  {}", report.input);
        println!("chosen plan: {}", report.output);
        println!(
            "cost {:.0} -> {:.0} via {}, certificate: {} steps ({})",
            report.cost_before,
            report.cost_after,
            report.route,
            report.certificate.trace.len(),
            report.certificate.method,
        );
        assert!(report.cost_after <= report.cost_before);
        let a = eval_query(&report.input, &env, &inst, &Schema::Empty, &Tuple::Unit)?;
        let b = eval_query(&report.output, &env, &inst, &Schema::Empty, &Tuple::Unit)?;
        assert!(a.bag_eq(&b), "certified plans must agree on the instance");
        println!("plans agree on the instance ({} rows)", a.support_size());
    }
    Ok(())
}
