//! Quickstart: parse two SQL queries, denote them into UniNomial, and
//! prove them equivalent — the Fig. 1 rewrite from the paper.
//!
//! Run with: `cargo run --example quickstart`

use hottsql::denote::{denote_closed_query, denote_query};
use hottsql::env::QueryEnv;
use hottsql::parse::parse_query;
use relalg::{BaseType, Schema};
use uninomial::syntax::{Term, VarGen};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Fig. 1 rewrite rule:
    //   SELECT * FROM (R UNION ALL S) WHERE b
    //     ≡ (SELECT * FROM R WHERE b) UNION ALL (SELECT * FROM S WHERE b)
    let lhs = parse_query("SELECT Right FROM (R UNION ALL S) WHERE b")?;
    let rhs = parse_query("(SELECT Right FROM R WHERE b) UNION ALL (SELECT Right FROM S WHERE b)")?;

    // Declare the meta-variables: R and S range over relations of a
    // common schema σ; b ranges over predicates reading node(empty, σ).
    // (Proving with σ = one opaque leaf is the schema-generic proof.)
    let sigma = Schema::leaf(BaseType::Int);
    let env = QueryEnv::new()
        .with_table("R", sigma.clone())
        .with_table("S", sigma.clone())
        .with_pred("b", Schema::node(Schema::Empty, sigma));

    println!("lhs: {lhs}");
    println!("rhs: {rhs}\n");

    // Denote both sides (Fig. 7) over the same output tuple variable t.
    let mut gen = VarGen::new();
    let (t, el) = denote_closed_query(&lhs, &env, &mut gen)?;
    let er = denote_query(
        &rhs,
        &env,
        &Schema::Empty,
        &Term::Unit,
        &Term::var(&t),
        &mut gen,
    )?;
    println!("⟦lhs⟧ {t:?} = {el}");
    println!("⟦rhs⟧ {t:?} = {er}\n");

    // Prove the equivalence.
    let proof = uninomial::prove_eq(&el, &er, &mut gen)?;
    println!("{proof}");

    // Sanity: execute both sides on the Sec. 2 example instance.
    let instance = hottsql::eval::Instance::new()
        .with_table(
            "R",
            relalg::Relation::from_tuples(
                Schema::leaf(BaseType::Int),
                [relalg::Tuple::int(1), relalg::Tuple::int(2)],
            )?,
        )
        .with_table(
            "S",
            relalg::Relation::from_tuples(
                Schema::leaf(BaseType::Int),
                [relalg::Tuple::int(2), relalg::Tuple::int(3)],
            )?,
        )
        .with_pred("b", |gt: &relalg::Tuple| {
            gt.snd()
                .and_then(relalg::Tuple::value)
                .and_then(relalg::Value::as_int)
                .map(|n| n >= 2)
                == Some(true)
        });
    let out_l =
        hottsql::eval::eval_query(&lhs, &env, &instance, &Schema::Empty, &relalg::Tuple::Unit)?;
    let out_r =
        hottsql::eval::eval_query(&rhs, &env, &instance, &Schema::Empty, &relalg::Tuple::Unit)?;
    println!("lhs on instance: {out_l:?}");
    println!("rhs on instance: {out_r:?}");
    assert!(out_l.bag_eq(&out_r));
    println!("\ninstance results agree — the proved rule holds concretely.");
    Ok(())
}
