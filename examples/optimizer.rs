//! A miniature verified-rule-driven query optimizer — the paper's
//! motivating use case (Sec. 1): a plan enumerator that only applies
//! rewrites proved correct by DOPCERT, with a simple cost model, shown
//! end-to-end on a concrete query and instance.
//!
//! Run with: `cargo run --example optimizer`

use hottsql::ast::{Predicate, Query};
use hottsql::env::QueryEnv;
use hottsql::eval::{eval_query, Instance};
use relalg::generate::Generator;
use relalg::{Schema, Tuple};

/// Number of conjuncts a predicate evaluates per row.
fn conjuncts(b: &Predicate) -> f64 {
    match b {
        Predicate::And(x, y) => conjuncts(x) + conjuncts(y),
        _ => 1.0,
    }
}

/// Estimated output cardinality (each filter conjunct halves the input).
fn size(q: &Query, sizes: &dyn Fn(&str) -> f64) -> f64 {
    match q {
        Query::Table(n) => sizes(n),
        Query::Select(_, q) | Query::Distinct(q) => size(q, sizes),
        Query::Product(a, b) => size(a, sizes) * size(b, sizes),
        Query::Where(q, b) => size(q, sizes) * 0.5f64.powf(conjuncts(b)),
        Query::UnionAll(a, b) => size(a, sizes) + size(b, sizes),
        Query::Except(a, _) => size(a, sizes),
    }
}

/// A naive cost model: work per operator (predicate evaluations for
/// selections, pairwise combination for products).
fn cost(q: &Query, sizes: &dyn Fn(&str) -> f64) -> f64 {
    match q {
        Query::Table(_) => 0.0,
        Query::Select(_, q) | Query::Distinct(q) => cost(q, sizes) + size(q, sizes),
        Query::Product(a, b) => cost(a, sizes) + cost(b, sizes) + size(a, sizes) * size(b, sizes),
        Query::Where(q, b) => cost(q, sizes) + size(q, sizes) * conjuncts(b),
        Query::UnionAll(a, b) | Query::Except(a, b) => cost(a, sizes) + cost(b, sizes),
    }
}

/// One verified rewrite: pushing a conjunct filter into nested
/// selections (the proved `conj-slct-split` rule, applied left-to-right
/// wherever it matches).
fn apply_filter_split(q: &Query) -> Option<Query> {
    match q {
        Query::Where(inner, Predicate::And(b1, b2)) => Some(Query::where_(
            Query::where_((**inner).clone(), (**b1).clone()),
            (**b2).clone(),
        )),
        _ => None,
    }
}

/// Another verified rewrite: selection distributes over UNION ALL
/// (`union-slct-distr`, Fig. 1), enabling per-branch filtering.
fn apply_union_push(q: &Query) -> Option<Query> {
    match q {
        Query::Where(inner, b) => match &**inner {
            Query::UnionAll(l, r) => Some(Query::union_all(
                Query::where_((**l).clone(), b.clone()),
                Query::where_((**r).clone(), b.clone()),
            )),
            _ => None,
        },
        _ => None,
    }
}

/// Exhaustive plan enumeration by verified rewrites (tiny search space).
fn enumerate(q: &Query) -> Vec<Query> {
    let mut plans = vec![q.clone()];
    let mut frontier = vec![q.clone()];
    while let Some(p) = frontier.pop() {
        for rewrite in [apply_filter_split, apply_union_push] {
            if let Some(p2) = rewrite(&p) {
                if !plans.contains(&p2) {
                    plans.push(p2.clone());
                    frontier.push(p2);
                }
            }
        }
        // Also rewrite inside union branches.
        if let Query::UnionAll(a, b) = &p {
            for (ra, rb) in enumerate(a).into_iter().zip(enumerate(b)) {
                let p2 = Query::union_all(ra, rb);
                if !plans.contains(&p2) {
                    plans.push(p2);
                }
            }
        }
    }
    plans
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The rewrites this optimizer uses are proved sound first.
    for name in ["conj-slct-split", "union-slct-distr"] {
        let rules = dopcert::catalog::sound_rules();
        let rule = rules.iter().find(|r| r.name == name).expect("in catalog");
        let report = dopcert::prove::prove_rule(rule);
        assert!(report.proved);
        println!("verified rewrite: {name} ({} steps)", report.steps);
    }

    // Input query: SELECT * FROM (R UNION ALL S) WHERE b1 AND b2.
    let sigma = Schema::flat([relalg::BaseType::Int, relalg::BaseType::Int]);
    let pred_ctx = Schema::node(Schema::Empty, sigma.clone());
    let env = QueryEnv::new()
        .with_table("R", sigma.clone())
        .with_table("S", sigma.clone())
        .with_pred("b1", pred_ctx.clone())
        .with_pred("b2", pred_ctx);
    let q = Query::where_(
        Query::union_all(Query::table("R"), Query::table("S")),
        Predicate::and(Predicate::var("b1"), Predicate::var("b2")),
    );
    println!("\ninput plan: {q}");

    // Enumerate and cost plans.
    let sizes = |n: &str| if n == "R" { 1000.0 } else { 500.0 };
    let mut plans = enumerate(&q);
    plans.sort_by(|a, b| cost(a, &sizes).total_cmp(&cost(b, &sizes)));
    println!("\n{} equivalent plans found:", plans.len());
    for p in &plans {
        println!("  cost {:>8.0}  {p}", cost(p, &sizes));
    }
    let best = plans.first().expect("at least the input plan");
    println!("\nchosen plan: {best}");

    // Execute the input and the chosen plan on a random instance; the
    // results must be identical because every rewrite was verified.
    let mut g = Generator::new(11);
    let inst = Instance::new()
        .with_table("R", g.relation(&sigma))
        .with_table("S", g.relation(&sigma))
        .with_pred("b1", |t: &Tuple| {
            t.leaves().first().and_then(|v| v.as_int()).unwrap_or(0) % 2 == 0
        })
        .with_pred("b2", |t: &Tuple| {
            t.leaves().last().and_then(|v| v.as_int()).unwrap_or(0) >= 0
        });
    let out_in = eval_query(&q, &env, &inst, &Schema::Empty, &Tuple::Unit)?;
    let out_best = eval_query(best, &env, &inst, &Schema::Empty, &Tuple::Unit)?;
    assert!(out_in.bag_eq(&out_best));
    println!(
        "\ninput and optimized plans agree on a random instance ({} rows)",
        out_in.support_size()
    );
    Ok(())
}
