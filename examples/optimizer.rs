//! The paper's motivating use case (Sec. 1), now end-to-end: a query
//! optimizer that only ships plans it can *prove* correct. The old
//! version of this example enumerated plans with hand-rolled rewrite
//! closures and a local cost model; all of that now lives in
//! `crates/optimizer` — saturate the e-graph under the verified lemma
//! catalog, extract the cheapest equivalent plan under table
//! statistics, and attach a replayable proof certificate.
//!
//! Run with: `cargo run --example optimizer`

use hottsql::ast::{Predicate, Query};
use hottsql::env::QueryEnv;
use hottsql::eval::{eval_query, Instance};
use hottsql::parse::parse_query;
use optimizer::{optimize, OptimizeOptions, PlanCtx};
use relalg::generate::Generator;
use relalg::stats::Statistics;
use relalg::{Schema, Tuple};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The rewrites the optimizer draws on are proved sound first — the
    // whole point of DOPCERT's existence.
    for name in ["conj-slct-split", "union-slct-distr", "self-join-dedup"] {
        let rules = dopcert::catalog::sound_rules();
        let rule = rules.iter().find(|r| r.name == name).expect("in catalog");
        let report = dopcert::api::prove_rule(rule);
        assert!(report.proved);
        println!("verified rewrite: {name} ({} steps)", report.steps);
    }

    let sigma = Schema::flat([relalg::BaseType::Int, relalg::BaseType::Int]);
    let pred_ctx = Schema::node(Schema::Empty, sigma.clone());
    let env = QueryEnv::new()
        .with_table("R", sigma.clone())
        .with_table("S", sigma.clone())
        .with_pred("b1", pred_ctx.clone())
        .with_pred("b2", pred_ctx);
    let stats = Statistics::new()
        .with_rows("R", 1000.0)
        .with_rows("S", 500.0);
    let opts = OptimizeOptions::default();

    // Three inputs: the Sec. 1 filter-over-union (already minimal — the
    // optimizer must return it unchanged rather than a costlier
    // "rewritten" form), the Sec. 2 redundant self-join (the core is a
    // single scan), and a dead union branch (killed by the e-graph's
    // constant-equality collapse).
    let queries = vec![
        Query::where_(
            Query::union_all(Query::table("R"), Query::table("S")),
            Predicate::and(Predicate::var("b1"), Predicate::var("b2")),
        ),
        parse_query(
            "DISTINCT SELECT Right.Left.Left FROM R, R \
             WHERE Right.Left.Left = Right.Right.Left",
        )?,
        Query::union_all(
            Query::table("R"),
            Query::where_(Query::table("S"), Predicate::False),
        ),
    ];

    let mut g = Generator::new(11);
    let inst = Instance::new()
        .with_table("R", g.relation(&sigma))
        .with_table("S", g.relation(&sigma))
        .with_pred("b1", |t: &Tuple| {
            t.leaves().first().and_then(|v| v.as_int()).unwrap_or(0) % 2 == 0
        })
        .with_pred("b2", |t: &Tuple| {
            t.leaves().last().and_then(|v| v.as_int()).unwrap_or(0) >= 0
        });

    for q in &queries {
        let report = optimize(q, &env, &stats, opts, PlanCtx::default())?;
        println!("\ninput plan:  {}", report.input);
        println!("chosen plan: {}", report.output);
        println!(
            "cost {:.0} -> {:.0} via {}, certified by the {} prover in {} steps",
            report.cost_before,
            report.cost_after,
            report.route,
            report.certificate.method,
            report.certificate.trace.len(),
        );
        assert!(report.cost_after <= report.cost_before);
        assert!(report
            .certificate
            .replay(&report.input, &report.output, &env, opts.budget));

        // Execute both plans; the results must be identical because the
        // plan shipped with a proof.
        let out_in = eval_query(&report.input, &env, &inst, &Schema::Empty, &Tuple::Unit)?;
        let out_best = eval_query(&report.output, &env, &inst, &Schema::Empty, &Tuple::Unit)?;
        assert!(out_in.bag_eq(&out_best));
        println!(
            "input and optimized plans agree on a random instance ({} rows)",
            out_in.support_size()
        );
    }
    Ok(())
}
