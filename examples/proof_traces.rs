//! Proof traces: the Fig. 2 equivalence (redundant self-join under
//! DISTINCT, Q2 ≡ Q3) with its full lemma-by-lemma trace, plus the whole
//! Fig. 8 catalog summarized.
//!
//! Run with: `cargo run --example proof_traces`

use dopcert::api::prove_rule;
use dopcert::prove::prove_instance;

fn main() {
    // Fig. 2: Q2 ≡ Q3.
    let rules = dopcert::catalog::sound_rules();
    let self_join = rules
        .iter()
        .find(|r| r.name == "self-join-dedup")
        .expect("Fig. 2 rule in catalog");
    let inst = self_join.generic();
    println!("=== Fig. 2: {} ===", self_join.description);
    println!("lhs: {}", inst.lhs);
    println!("rhs: {}\n", inst.rhs);

    // Reproduce the full proof with its trace.
    let mut gen = uninomial::syntax::VarGen::new();
    let (t, el) =
        hottsql::denote::denote_closed_query(&inst.lhs, &inst.env, &mut gen).expect("lhs denotes");
    let er = hottsql::denote::denote_query(
        &inst.rhs,
        &inst.env,
        &relalg::Schema::Empty,
        &uninomial::syntax::Term::Unit,
        &uninomial::syntax::Term::var(&t),
        &mut gen,
    )
    .expect("rhs denotes");
    let proof = uninomial::prove_eq(&el, &er, &mut gen).expect("Fig. 2 proves");
    println!("{proof}");

    // The machinery behind prove_rule agrees.
    let (method, steps) = prove_instance(&inst).expect("rule proves");
    println!("prove_instance: {method:?} in {steps} steps\n");

    // Summarize every rule in the catalog with its proof method — via
    // the parallel batch engine (reports come back in catalog order and
    // agree verdict-for-verdict with sequential `prove_rule`).
    println!("=== Catalog summary ===");
    let engine = dopcert::engine::Engine::new();
    let start = std::time::Instant::now();
    for (rule, report) in rules.iter().zip(engine.prove_catalog(&rules)) {
        println!(
            "  {:<28} [{}] {} in {} steps",
            rule.name,
            rule.category.name(),
            report
                .method
                .map(|m| m.to_string())
                .unwrap_or_else(|| "FAILED".into()),
            report.steps,
        );
        assert!(report.proved);
        assert_eq!(report.proved, prove_rule(rule).proved);
    }
    println!(
        "proved {} rules on {} threads in {:.1} ms",
        rules.len(),
        engine.threads(),
        start.elapsed().as_secs_f64() * 1e3,
    );
}
