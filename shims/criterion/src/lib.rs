//! Offline, std-only shim of the `criterion` API surface this workspace
//! uses: [`Criterion`], [`BenchmarkId`], benchmark groups,
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! The build environment has no network access to crates.io, so the real
//! crate is replaced by this timing harness. Compared to real criterion
//! it does no statistical analysis: each benchmark is warmed up, then
//! sampled `sample_size` times for at least `measurement_time`, and the
//! mean/min per-iteration wall-clock times are printed.
//!
//! Command-line behavior needed by CI is preserved:
//!
//! - `--test` runs every benchmark body exactly once with no measurement
//!   (the "bench smoke" mode used by the CI workflow);
//! - `--bench` (which cargo passes to bench targets) is accepted and
//!   ignored;
//! - a positional `<filter>` substring restricts which benchmarks run.

#![warn(missing_docs)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Measurement configuration and the entry point benches receive.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let test_mode = args.iter().any(|a| a == "--test");
        let filter = args.iter().find(|a| !a.starts_with("--")).cloned();
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, f);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&self, full_id: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher {
                mode: Mode::TestOnce,
                samples: Vec::new(),
            };
            f(&mut b);
            println!("test {full_id} ... ok");
            return;
        }
        // Warm-up: run the body repeatedly without recording.
        let mut b = Bencher {
            mode: Mode::TimeFor(self.warm_up_time),
            samples: Vec::new(),
        };
        f(&mut b);
        // Measurement: `sample_size` samples spread over measurement_time.
        let per_sample = self.measurement_time / self.sample_size as u32;
        let mut b = Bencher {
            mode: Mode::Sample {
                per_sample: per_sample.max(Duration::from_micros(200)),
                samples: self.sample_size,
            },
            samples: Vec::new(),
        };
        f(&mut b);
        let mean = b.samples.iter().sum::<f64>() / b.samples.len().max(1) as f64;
        let min = b.samples.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "{full_id:<50} mean {:>12}  min {:>12}",
            fmt_ns(mean),
            fmt_ns(min)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run(&full, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run(&full, |b| f(b, input));
        self
    }

    /// Closes the group (printing is immediate, so this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

enum Mode {
    TestOnce,
    TimeFor(Duration),
    Sample {
        per_sample: Duration,
        samples: usize,
    },
}

impl fmt::Debug for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::TestOnce => f.write_str("TestOnce"),
            Mode::TimeFor(d) => write!(f, "TimeFor({d:?})"),
            Mode::Sample { samples, .. } => write!(f, "Sample({samples})"),
        }
    }
}

/// Passed to each benchmark body; call [`Bencher::iter`] with the
/// routine to measure.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures a routine (or runs it once in `--test` mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match &self.mode {
            Mode::TestOnce => {
                black_box(routine());
            }
            Mode::TimeFor(budget) => {
                let start = Instant::now();
                while start.elapsed() < *budget {
                    black_box(routine());
                }
            }
            Mode::Sample {
                per_sample,
                samples,
            } => {
                let (per_sample, samples) = (*per_sample, *samples);
                // Calibrate iterations per sample from one timed call.
                let t0 = Instant::now();
                black_box(routine());
                let one = t0.elapsed().max(Duration::from_nanos(20));
                let iters = (per_sample.as_nanos() / one.as_nanos()).clamp(1, 1 << 24) as u64;
                for _ in 0..samples {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
                }
            }
        }
    }
}

/// Declares a group of benchmark functions with an optional custom
/// [`Criterion`] config, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            mode: Mode::Sample {
                per_sample: Duration::from_micros(200),
                samples: 3,
            },
            samples: Vec::new(),
        };
        b.iter(|| black_box(3u64.pow(7)));
        assert_eq!(b.samples.len(), 3);
        assert!(b.samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("product", 100).to_string(), "product/100");
        assert_eq!(BenchmarkId::from_parameter(5).to_string(), "5");
    }
}
