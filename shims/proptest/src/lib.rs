//! Offline, std-only shim of the `proptest` API surface this workspace
//! uses: the [`proptest!`] macro with per-block [`ProptestConfig`],
//! `in`-bound strategies over integer ranges, [`Just`], [`prop_oneof!`]
//! with weights, `prop_map`, and the `prop_assert*` macros.
//!
//! The build environment has no network access to crates.io, so the real
//! crate is replaced by this stand-in. Cases are generated from a fixed
//! seed (overridable via `PROPTEST_SEED`), so runs are reproducible;
//! shrinking is not implemented — failures report the concrete inputs via
//! their `Debug`/`Display` rendering instead.

#![warn(missing_docs)]

/// Strategy combinators and generation.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen: Box::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V> {
        gen: Box<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> std::fmt::Debug for BoxedStrategy<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.gen)(rng)
        }
    }

    /// Weighted choice over strategies of a common value type.
    #[derive(Debug)]
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u32,
    }

    impl<V> Union<V> {
        /// Builds a union; weights must sum to a positive value.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs positive total weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.next_u64() % u64::from(self.total);
            for (w, s) in &self.arms {
                if pick < u64::from(*w) {
                    return s.generate(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weights covered the whole interval")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
}

/// Test-loop plumbing: configuration, RNG, and case errors.
pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (`cases` only).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// A failed test case (what `prop_assert*` produce).
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with a rendered message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic SplitMix64 generator driving case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn seed_from_u64(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Returns the next pseudo-random word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// The base seed for a property run: `PROPTEST_SEED` or a fixed
    /// default, so CI runs are reproducible.
    pub fn base_seed() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_CAFE_F00D_0001)
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Runs a block of property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let seed = $crate::test_runner::base_seed();
            for case in 0..config.cases {
                let mut proptest_rng = $crate::test_runner::TestRng::seed_from_u64(
                    seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut proptest_rng,
                    );
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!("proptest case {case} of {}: {e}", stringify!($name));
                }
            }
        }
    )*};
}

/// Weighted (or unweighted) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) with a rendered message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "`{:?}` != `{:?}`: {}", l, r, format!($($fmt)*)
                )),
            );
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0u64..50, y in -2i64..=2) {
            prop_assert!(x < 50);
            prop_assert!((-2..=2).contains(&y), "y = {}", y);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn oneof_and_map(v in prop_oneof![
            4 => (0u64..10).prop_map(|n| n as i64),
            1 => Just(-1i64),
        ]) {
            prop_assert!(v == -1 || (0..10).contains(&v));
        }
    }

    #[test]
    fn prop_assert_produces_case_error() {
        let failing = || -> Result<(), crate::test_runner::TestCaseError> {
            prop_assert!(1 > 2, "one is not greater than {}", 2);
            Ok(())
        };
        let err = failing().unwrap_err();
        assert!(err.to_string().contains("one is not greater than 2"));
    }
}
