//! Offline, std-only shim of the `rand` 0.8 API surface this workspace
//! uses: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! The build environment has no network access to crates.io, so the real
//! crate is replaced by this deterministic SplitMix64-based stand-in.
//! It is **not** a cryptographic RNG and the streams differ from the real
//! `StdRng`; every consumer in this workspace only needs seeded,
//! reproducible pseudo-randomness.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random word.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples a value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integer types [`Rng::gen_range`] can produce, mirroring
/// `rand::distributions::uniform::SampleUniform` so that type inference
/// flows from the expected output into unsuffixed range literals.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[start, end)` or `[start, end]`.
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                start: $t,
                end: $t,
                inclusive: bool,
            ) -> $t {
                let span = (end as i128 - start as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_range(rng, start, end, true)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a seed; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic SplitMix64 generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): full-period, passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-2..=2i64);
            assert!((-2..=2).contains(&x));
            let y: usize = rng.gen_range(0..7);
            assert!(y < 7);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((700..1300).contains(&heads), "suspicious bias: {heads}");
    }
}
