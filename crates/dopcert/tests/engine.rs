//! The acceptance gate for the batch engine: parallel catalog proving
//! must be observationally identical to the sequential loop, across the
//! full catalog (sound rules, extension rules, unsound rules, and the
//! conjunctive-query instances that take the decision-procedure path).

use dopcert::api::prove_rule;
use dopcert::engine::{Engine, EngineConfig};
use dopcert::{catalog, RuleReport};

fn key(r: &RuleReport) -> (String, bool, String, usize) {
    (
        r.name.to_owned(),
        r.proved,
        r.method.map(|m| m.to_string()).unwrap_or_default(),
        r.steps,
    )
}

#[test]
fn parallel_prove_catalog_equals_sequential_on_full_catalog() {
    let rules = catalog::all_rules();
    let sequential: Vec<_> = rules.iter().map(prove_rule).map(|r| key(&r)).collect();
    for threads in [2, 4, 8] {
        let engine = Engine::with_threads(threads);
        let parallel: Vec<_> = engine.prove_catalog(&rules).iter().map(key).collect();
        assert_eq!(
            parallel, sequential,
            "{threads}-thread engine diverged from the sequential path"
        );
    }
}

#[test]
fn shared_memo_preserves_verdict_identity() {
    // The striped cross-worker memo must be invisible in the results:
    // shared on, shared off (--no-shared-cache), and the sequential
    // prover all agree on every verdict, method, and step count.
    let rules = catalog::all_rules();
    let sequential: Vec<_> = rules.iter().map(prove_rule).map(|r| key(&r)).collect();
    for shared_cache in [true, false] {
        let config = EngineConfig {
            shared_cache,
            ..EngineConfig::with_threads(4)
        };
        let engine = Engine::with_config(config);
        let parallel: Vec<_> = engine.prove_catalog(&rules).iter().map(key).collect();
        assert_eq!(
            parallel, sequential,
            "shared_cache={shared_cache} diverged from the sequential path"
        );
    }
}

#[test]
fn parallel_prove_catalog_is_deterministic_across_runs() {
    let rules = catalog::sound_rules();
    let engine = Engine::with_threads(4);
    let first: Vec<_> = engine.prove_catalog(&rules).iter().map(key).collect();
    let second: Vec<_> = engine.prove_catalog(&rules).iter().map(key).collect();
    assert_eq!(first, second);
}

#[test]
fn parallel_check_catalog_accepts_sound_and_rejects_unsound() {
    let engine = Engine::new();
    let results = engine.check_catalog(&catalog::all_rules());
    let failures: Vec<&str> = results
        .iter()
        .filter(|(_, ok)| !ok)
        .map(|(name, _)| name.as_str())
        .collect();
    assert!(
        failures.is_empty(),
        "catalog check failed for: {failures:?}"
    );
    // Order must be catalog order.
    let names: Vec<&str> = results.iter().map(|(n, _)| n.as_str()).collect();
    let expected: Vec<&str> = catalog::all_rules().iter().map(|r| r.name).collect();
    assert_eq!(names, expected);
}

#[test]
fn engine_difftest_matches_direct_difftest_verdicts() {
    let rules = catalog::unsound_rules();
    let engine = Engine::with_threads(4);
    let outcomes = engine.difftest_catalog(&rules, 200, 0x5EED);
    for (rule, (name, outcome)) in rules.iter().zip(&outcomes) {
        assert_eq!(rule.name, name);
        assert!(
            matches!(outcome, dopcert::difftest::DiffOutcome::Refuted(_)),
            "unsound rule {name} not refuted by the engine path: {outcome:?}"
        );
    }
}
