//! Engine integration of the certified optimizer: the parallel batch
//! path must agree report-for-report with the sequential
//! `optimizer::optimize`, in input order, and uphold the
//! cost/certificate gates.

use dopcert::engine::Engine;
use hottsql::ast::Query;
use optimizer::{optimize, OptimizeOptions, PlanCtx};
use relalg::stats::Statistics;

const SCRIPT: &str = "\
table R(int, int);
table S(int, int);

verify DISTINCT SELECT Right.Left.Left FROM R, R
       WHERE Right.Left.Left = Right.Right.Left
    == DISTINCT SELECT Right.Left FROM R;

verify SELECT Right FROM S == S;
";

fn queries() -> (hottsql::env::QueryEnv, Vec<Query>) {
    let script = dopcert::script::parse_script(SCRIPT).unwrap();
    let mut queries = Vec::new();
    for goal in &script.goals {
        queries.push(goal.lhs.clone());
        queries.push(goal.rhs.clone());
    }
    (script.env, queries)
}

#[test]
fn batch_reports_match_sequential_and_keep_order() {
    let (env, queries) = queries();
    let stats = Statistics::new();
    let batch = Engine::with_threads(3).optimize_batch(&env, &stats, &queries);
    assert_eq!(batch.len(), queries.len());
    for (q, report) in queries.iter().zip(&batch) {
        let report = report.as_ref().expect("optimizes");
        assert_eq!(&report.input, q, "reports must stay in input order");
        let sequential = optimize(
            q,
            &env,
            &stats,
            OptimizeOptions::default(),
            PlanCtx::default(),
        )
        .expect("optimizes");
        assert_eq!(report.output, sequential.output, "{q}");
        assert_eq!(report.route, sequential.route, "{q}");
        assert_eq!(report.cost_before, sequential.cost_before, "{q}");
        assert_eq!(report.cost_after, sequential.cost_after, "{q}");
        assert_eq!(
            report.certificate.trace.steps(),
            sequential.certificate.trace.steps(),
            "{q}: certificates must be bit-identical across the cache"
        );
    }
}

#[test]
fn batch_upholds_the_cost_and_certificate_gates() {
    let (env, queries) = queries();
    let stats = Statistics::new();
    let opts = OptimizeOptions::default();
    let reports = Engine::new().optimize_batch(&env, &stats, &queries);
    let mut improved = 0;
    for report in reports {
        let r = report.expect("optimizes");
        assert!(r.cost_after <= r.cost_before, "{}: costlier plan", r.input);
        assert!(
            r.certificate.replay(&r.input, &r.output, &env, opts.budget),
            "{}: certificate does not replay",
            r.input
        );
        if r.improved {
            improved += 1;
        }
    }
    // The redundant self-join and the SELECT * must both improve.
    assert!(improved >= 2, "expected at least two improved plans");
}
