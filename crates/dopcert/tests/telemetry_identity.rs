//! The bit-identity gate for telemetry: turning collection on (metrics
//! and full tracing) must not change a single byte of any verdict,
//! report, or rendered response. Spans and counters observe the hot
//! paths; they must never steer them.
//!
//! This test binary owns its process (integration tests compile
//! separately), so it can flip the process-wide telemetry state freely
//! without racing other tests.

use dopcert::api::{execute, Request, RequestOptions, Workspace};
use dopcert::engine::Engine;
use dopcert::{catalog, RuleReport};
use std::sync::{Mutex, MutexGuard};

/// Tests in one binary run on parallel threads; the telemetry state is
/// process-wide, so each test holds this for its whole body.
fn exclusive() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

const SCRIPT: &str = "table R(int);\n\
    table S(int);\n\
    verify (R UNION ALL S) == (S UNION ALL R);\n\
    verify DISTINCT (R UNION ALL R) == DISTINCT R;\n\
    refute R == S;\n";

fn render_all(reqs: &[Request]) -> Vec<Vec<String>> {
    reqs.iter().map(|r| execute(r).render()).collect()
}

fn requests() -> Vec<Request> {
    vec![
        Request::Prove {
            script: SCRIPT.into(),
            opts: RequestOptions::default(),
        },
        Request::Optimize {
            script: SCRIPT.into(),
            opts: RequestOptions::default(),
        },
        Request::Catalog {
            discover: false,
            opts: RequestOptions::default(),
        },
    ]
}

fn rule_key(r: &RuleReport) -> (String, bool, String, usize) {
    (
        r.name.to_owned(),
        r.proved,
        r.method.map(|m| m.to_string()).unwrap_or_default(),
        r.steps,
    )
}

#[test]
fn responses_are_bit_identical_with_telemetry_on_and_off() {
    let _guard = exclusive();
    telemetry::disable();
    telemetry::reset();
    let off = render_all(&requests());

    telemetry::enable();
    let metrics_on = render_all(&requests());

    telemetry::enable_tracing();
    let tracing_on = render_all(&requests());

    assert_eq!(off, metrics_on, "metrics collection changed a response");
    assert_eq!(off, tracing_on, "tracing changed a response");

    // The instrumentation actually fired: the enabled runs recorded
    // phase spans and memo counters.
    let snap = telemetry::snapshot();
    assert!(snap.hist("egraph.run").is_some(), "no egraph.run span");
    assert!(
        snap.counter("memo.norm.hit") + snap.counter("memo.norm.miss") > 0,
        "no normalization memo traffic"
    );
    let events = telemetry::take_trace();
    assert!(!events.is_empty(), "tracing recorded no events");

    telemetry::disable();
    telemetry::reset();
}

#[test]
fn engine_reports_are_bit_identical_with_telemetry_on_and_off() {
    let _guard = exclusive();
    let rules = catalog::sound_rules();
    telemetry::disable();
    let off: Vec<_> = Engine::with_threads(4)
        .prove_catalog(&rules)
        .iter()
        .map(rule_key)
        .collect();
    telemetry::enable();
    let on: Vec<_> = Engine::with_threads(4)
        .prove_catalog(&rules)
        .iter()
        .map(rule_key)
        .collect();
    assert_eq!(off, on, "telemetry changed an engine verdict");
    telemetry::disable();
    telemetry::reset();
}

#[test]
fn workspace_sessions_are_bit_identical_with_telemetry_on_and_off() {
    let _guard = exclusive();
    let req = Request::Prove {
        script: SCRIPT.into(),
        opts: RequestOptions::default(),
    };
    telemetry::disable();
    let mut ws = Workspace::new(RequestOptions::default());
    // Second execution answers from the verdict memo — both the fresh
    // and the memoized path must be identity-preserving.
    let off = [ws.execute(&req).render(), ws.execute(&req).render()];
    telemetry::enable_tracing();
    let mut ws = Workspace::new(RequestOptions::default());
    let on = [ws.execute(&req).render(), ws.execute(&req).render()];
    assert_eq!(off, on);
    telemetry::disable();
    telemetry::reset();
}
