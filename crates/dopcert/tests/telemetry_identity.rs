//! The bit-identity gate for telemetry: turning collection on (metrics
//! and full tracing) must not change a single byte of any verdict,
//! report, or rendered response. Spans and counters observe the hot
//! paths; they must never steer them.
//!
//! This test binary owns its process (integration tests compile
//! separately), so it can flip the process-wide telemetry state freely
//! without racing other tests.

use dopcert::api::{execute, Request, RequestOptions, Response, Workspace};
use dopcert::engine::Engine;
use dopcert::wire::{decode_response, encode_response, Json};
use dopcert::{catalog, RuleReport};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// Tests in one binary run on parallel threads; the telemetry state is
/// process-wide, so each test holds this for its whole body.
fn exclusive() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

const SCRIPT: &str = "table R(int);\n\
    table S(int);\n\
    verify (R UNION ALL S) == (S UNION ALL R);\n\
    verify DISTINCT (R UNION ALL R) == DISTINCT R;\n\
    refute R == S;\n";

fn render_all(reqs: &[Request]) -> Vec<Vec<String>> {
    reqs.iter().map(|r| execute(r).render()).collect()
}

fn requests() -> Vec<Request> {
    vec![
        Request::Prove {
            script: SCRIPT.into(),
            opts: RequestOptions::default(),
        },
        Request::Optimize {
            script: SCRIPT.into(),
            opts: RequestOptions::default(),
        },
        Request::Catalog {
            discover: false,
            opts: RequestOptions::default(),
        },
    ]
}

fn rule_key(r: &RuleReport) -> (String, bool, String, usize) {
    (
        r.name.to_owned(),
        r.proved,
        r.method.map(|m| m.to_string()).unwrap_or_default(),
        r.steps,
    )
}

#[test]
fn responses_are_bit_identical_with_telemetry_on_and_off() {
    let _guard = exclusive();
    telemetry::disable();
    telemetry::reset();
    let off = render_all(&requests());

    telemetry::enable();
    let metrics_on = render_all(&requests());

    telemetry::enable_tracing();
    let tracing_on = render_all(&requests());

    assert_eq!(off, metrics_on, "metrics collection changed a response");
    assert_eq!(off, tracing_on, "tracing changed a response");

    // The instrumentation actually fired: the enabled runs recorded
    // phase spans and memo counters.
    let snap = telemetry::snapshot();
    assert!(snap.hist("egraph.run").is_some(), "no egraph.run span");
    assert!(
        snap.counter("memo.norm.hit") + snap.counter("memo.norm.miss") > 0,
        "no normalization memo traffic"
    );
    let events = telemetry::take_trace();
    assert!(!events.is_empty(), "tracing recorded no events");

    telemetry::disable();
    telemetry::reset();
}

#[test]
fn responses_are_bit_identical_with_profiling_on_and_off() {
    let _guard = exclusive();
    telemetry::disable();
    telemetry::reset();
    let off = render_all(&requests());

    telemetry::enable();
    telemetry::enable_profiling();
    let profiling_on = render_all(&requests());
    assert_eq!(off, profiling_on, "profiling changed a response");

    // Attribution actually fired: the catalog request saturates, so
    // per-rule rows exist.
    let profile = telemetry::profile_snapshot();
    assert!(!profile.is_empty(), "profiling recorded no attribution");

    telemetry::disable();
    telemetry::reset();
}

/// The headline acceptance check of the attribution table: every
/// nodes-added / union / oracle-call counted into a per-rule row (plus
/// the `congruence` rebuild row) telescopes exactly to the flat
/// aggregate counters recorded over the same runs. No double counting,
/// nothing dropped.
#[test]
fn per_rule_attribution_sums_to_the_aggregate_counters() {
    let _guard = exclusive();
    telemetry::disable();
    telemetry::reset();
    telemetry::enable();
    telemetry::enable_profiling();

    // The full catalog with saturation fallback — the same run shape
    // `dopcert prove --profile` prints the table for.
    let resp = execute(&Request::Catalog {
        discover: false,
        opts: RequestOptions::default(),
    });
    assert!(resp.ok(), "catalog must pass");

    let profile = telemetry::profile_snapshot();
    let snap = telemetry::snapshot();
    assert!(!profile.is_empty(), "catalog saturation left no rows");
    assert_eq!(
        profile.total("nodes_added"),
        snap.counter("egraph.nodes_added"),
        "per-rule nodes-added must telescope to the aggregate"
    );
    assert_eq!(
        profile.total("unions"),
        snap.counter("egraph.unions"),
        "per-rule unions must telescope to the aggregate"
    );
    assert_eq!(
        profile.total("oracle_calls"),
        snap.counter("egraph.oracle_calls"),
        "per-rule oracle calls must telescope to the aggregate"
    );

    telemetry::disable();
    telemetry::reset();
}

#[test]
fn engine_reports_are_bit_identical_with_telemetry_on_and_off() {
    let _guard = exclusive();
    let rules = catalog::sound_rules();
    telemetry::disable();
    let off: Vec<_> = Engine::with_threads(4)
        .prove_catalog(&rules)
        .iter()
        .map(rule_key)
        .collect();
    telemetry::enable();
    let on: Vec<_> = Engine::with_threads(4)
        .prove_catalog(&rules)
        .iter()
        .map(rule_key)
        .collect();
    assert_eq!(off, on, "telemetry changed an engine verdict");
    telemetry::disable();
    telemetry::reset();
}

#[test]
fn workspace_sessions_are_bit_identical_with_telemetry_on_and_off() {
    let _guard = exclusive();
    let req = Request::Prove {
        script: SCRIPT.into(),
        opts: RequestOptions::default(),
    };
    telemetry::disable();
    let mut ws = Workspace::new(RequestOptions::default());
    // Second execution answers from the verdict memo — both the fresh
    // and the memoized path must be identity-preserving.
    let off = [ws.execute(&req).render(), ws.execute(&req).render()];
    telemetry::enable_tracing();
    let mut ws = Workspace::new(RequestOptions::default());
    let on = [ws.execute(&req).render(), ws.execute(&req).render()];
    assert_eq!(off, on);
    telemetry::disable();
    telemetry::reset();
}

/// A deterministic pseudo-random profile: a handful of labels, counter
/// bumps, and timing observations derived from `seed`.
fn arbitrary_profile(seed: u64) -> telemetry::Profile {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let labels = ["Distrib", "SumAdd", "PropExt", "congruence", "session"];
    let counters = ["matches", "unions", "nodes_added", "oracle_calls"];
    let mut p = telemetry::Profile::new();
    for _ in 0..=(next() % 4) {
        let label = labels[(next() % labels.len() as u64) as usize];
        for _ in 0..(next() % 4) {
            let metric = counters[(next() % counters.len() as u64) as usize];
            p.incr(label, metric, next() % 1000);
        }
        for _ in 0..(next() % 3) {
            p.observe(label, "apply_ns", next() % 1_000_000);
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn profile_merge_never_loses_an_observation(
        a_seed in 0u64..1_000_000,
        b_seed in 0u64..1_000_000,
    ) {
        let a = arbitrary_profile(a_seed);
        let b = arbitrary_profile(b_seed);
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(
            merged.observations(),
            a.observations() + b.observations(),
            "merge dropped or invented observations"
        );
        for metric in ["matches", "unions", "nodes_added", "oracle_calls"] {
            prop_assert_eq!(
                merged.total(metric),
                a.total(metric) + b.total(metric),
                "merge changed the {} total", metric
            );
        }
    }

    #[test]
    fn profiles_round_trip_through_the_wire(seed in 0u64..1_000_000) {
        // Labels, counters, and histogram shapes all survive the
        // `profile` request's JSON encoding losslessly.
        let profile = arbitrary_profile(seed);
        let line = encode_response(&Json::Null, &Response::Profile(profile.clone()));
        let reply = decode_response(&line).unwrap();
        prop_assert_eq!(reply.kind.as_str(), "profile");
        prop_assert_eq!(reply.profile, Some(profile));
    }
}
