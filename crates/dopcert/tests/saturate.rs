//! End-to-end acceptance of the saturation tactic on the Fig. 8
//! catalog: every rule the normalization-based tactics prove must also
//! be proved by equality saturation *alone* (no bespoke tactic), within
//! the default budget, with a trace referencing only `Lemma` axioms.

use dopcert::api::{prove_rule, Prover};
use dopcert::catalog;
use dopcert::prove::{ProveOptions, SaturateMode, VerifyMethod};
use dopcert::rule::Category;

fn saturate_only() -> ProveOptions {
    ProveOptions {
        saturate: SaturateMode::Only,
        session: false, // the old cache-only path: no verdict memo
        ..ProveOptions::default()
    }
}

#[test]
fn every_tactic_proved_rule_is_proved_by_saturation_alone() {
    let mut prover = Prover::new(saturate_only());
    for rule in catalog::sound_rules() {
        if rule.category == Category::ConjunctiveQuery {
            continue; // decided by the CQ procedure, not a tactic
        }
        let tactics = prove_rule(&rule);
        if !tactics.proved {
            continue; // nothing to mirror
        }
        let sat = prover.prove_rule(&rule);
        assert!(
            sat.proved,
            "{}: tactics prove it but saturation does not: {:?}",
            rule.name, sat.failure
        );
        assert_eq!(
            sat.method,
            Some(VerifyMethod::Saturation),
            "{}: expected the saturation method",
            rule.name
        );
        assert!(sat.steps >= 1, "{}: empty trace", rule.name);
    }
}

#[test]
fn saturation_fallback_is_reported_distinctly() {
    // In fallback mode a tactic-provable rule stays a tactic proof…
    let rules = catalog::sound_rules();
    let rule = rules
        .iter()
        .find(|r| r.name == "union-slct-distr")
        .expect("catalog rule");
    let report = prove_rule(rule);
    assert!(matches!(report.method, Some(VerifyMethod::Tactic(_))));
    // …while saturate-only reports the distinct method.
    let report = Prover::new(saturate_only()).prove_rule(rule);
    assert_eq!(report.method, Some(VerifyMethod::Saturation));
    assert!(report.attempted.iter().any(|a| a.contains("saturation")));
}

#[test]
fn failure_diagnostics_list_attempts_and_budget() {
    // An unsound rule: every method fails; the report must say what was
    // tried and how saturation ended.
    let rules = catalog::unsound_rules();
    let rule = rules
        .iter()
        .find(|r| r.category != Category::ConjunctiveQuery && prove_rule(r).failure.is_some())
        .expect("an unsound non-CQ rule");
    let report = prove_rule(rule);
    assert!(!report.proved);
    let failure = report.failure.expect("failure diagnostics");
    assert!(failure.contains("tried ["), "{failure}");
    assert!(
        failure.contains("saturation"),
        "attempted methods must include saturation: {failure}"
    );
    assert!(
        failure.contains("saturated") || failure.contains("budget"),
        "saturation end state must be reported: {failure}"
    );
}
