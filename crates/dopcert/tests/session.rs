//! Determinism of persistent sessions: session-mode verdicts, report
//! order, and proof traces must be **bit-identical** to fresh-solver
//! mode, on both the Fig. 8 catalog and seeded generated CQ corpora —
//! and every certificate a session-mode optimization ships must still
//! replay. `--no-session` is the differential baseline throughout.

use dopcert::api::Prover;
use dopcert::catalog;
use dopcert::engine::{Engine, EngineConfig};
use dopcert::prove::{ProveOptions, SaturateMode, VerifyMethod};
use dopcert::rule::RuleInstance;
use dopcert::session::ProveSession;
use egraph::Budget;
use hottsql::ast::Query;
use hottsql::env::QueryEnv;
use proptest::prelude::*;
use uninomial::normalize::NormCache;

fn engine(session: bool, saturate: SaturateMode) -> Engine {
    Engine::with_config(EngineConfig {
        prove: ProveOptions {
            saturate,
            session,
            ..ProveOptions::default()
        },
        ..EngineConfig::default()
    })
}

/// A small seeded corpus of equivalence goals with repetition (the
/// traffic shape sessions amortize), rendered as queries.
fn corpus(seed: u64, goals: usize, pool: usize) -> (QueryEnv, Vec<(Query, Query)>) {
    use relalg::{BaseType, Schema};
    let binary = Schema::flat([BaseType::Int, BaseType::Int]);
    let env = QueryEnv::new()
        .with_table("R", binary.clone())
        .with_table("S", binary.clone())
        .with_table("T", binary);
    let mut base = Vec::new();
    for (a, b) in cq::generate::equivalent_pairs(seed, pool) {
        if let (Some(qa), Some(qb)) = (
            cq::translate::to_query(&a, &env),
            cq::translate::to_query(&b, &env),
        ) {
            base.push((qa, qb));
        }
    }
    let mut out = Vec::with_capacity(goals);
    let mut state = seed | 1;
    for _ in 0..goals {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.push(base[(state >> 33) as usize % base.len()].clone());
    }
    (env, out)
}

#[test]
fn catalog_session_reports_are_identical_to_fresh_mode() {
    for saturate in [SaturateMode::Fallback, SaturateMode::Only] {
        let rules = catalog::sound_rules();
        let with = engine(true, saturate).prove_catalog(&rules);
        let without = engine(false, saturate).prove_catalog(&rules);
        assert_eq!(with.len(), without.len(), "report order and length");
        for (a, b) in with.iter().zip(&without) {
            assert_eq!(a.name, b.name, "report order");
            assert_eq!(a.proved, b.proved, "{}", a.name);
            assert_eq!(a.method, b.method, "{}", a.name);
            assert_eq!(a.steps, b.steps, "{}", a.name);
            assert_eq!(a.attempted, b.attempted, "{}", a.name);
            assert_eq!(a.failure, b.failure, "{}", a.name);
        }
    }
}

#[test]
fn repeated_rule_through_one_session_replays_the_same_report() {
    // The same rule posed twice through one session: the second answer
    // comes from the memo and must be identical (wall clock aside).
    let rules = catalog::sound_rules();
    let opts = ProveOptions {
        saturate: SaturateMode::Only,
        ..ProveOptions::default()
    };
    let rule = rules
        .iter()
        .find(|r| r.name == "union-slct-distr")
        .expect("catalog rule");
    let mut prover = Prover::new(opts);
    let first = prover.prove_rule(rule);
    let second = prover.prove_rule(rule);
    assert!(first.proved);
    assert_eq!(first.method, second.method);
    assert_eq!(first.steps, second.steps);
    assert_eq!(prover.memo_hits(), 1, "second answer from the memo");
    // And the memoized answer equals a sessionless derivation.
    let fresh = Prover::new(ProveOptions {
        session: false,
        ..opts
    })
    .prove_rule(rule);
    assert_eq!(fresh.method, second.method);
    assert_eq!(fresh.steps, second.steps);
}

#[test]
fn corpus_session_verdicts_and_order_match_fresh_mode() {
    let (env, pairs) = corpus(0xC0FFEE, 60, 16);
    let with = engine(true, SaturateMode::Fallback).prove_pairs(&env, &pairs);
    let without = engine(false, SaturateMode::Fallback).prove_pairs(&env, &pairs);
    assert_eq!(with, without, "verdicts, methods, steps, and order");
    assert!(with.iter().all(|r| r.proved), "corpus goals all prove");
    assert!(with.iter().all(|r| matches!(
        r.method,
        Some(VerifyMethod::Tactic(_) | VerifyMethod::Saturation)
    )));
}

#[test]
fn optimize_batch_session_reports_are_identical_and_certificates_replay() {
    use relalg::stats::Statistics;
    let (env, pairs) = corpus(0x0971CA, 24, 12);
    let queries: Vec<Query> = pairs.into_iter().map(|(a, _)| a).collect();
    let stats = Statistics::new().with_rows("R", 1e5).with_rows("S", 2e4);
    let with = engine(true, SaturateMode::Fallback).optimize_batch(&env, &stats, &queries);
    let without = engine(false, SaturateMode::Fallback).optimize_batch(&env, &stats, &queries);
    assert_eq!(with.len(), without.len());
    for ((q, a), b) in queries.iter().zip(&with).zip(&without) {
        let (a, b) = (
            a.as_ref().expect("corpus optimizes"),
            b.as_ref().expect("corpus optimizes"),
        );
        assert_eq!(a.output, b.output, "{q}");
        assert_eq!(a.cost_before, b.cost_before, "{q}");
        assert_eq!(a.cost_after, b.cost_after, "{q}");
        assert_eq!(a.route, b.route, "{q}");
        assert_eq!(a.improved, b.improved, "{q}");
        assert_eq!(a.certificate.method, b.certificate.method, "{q}");
        assert_eq!(
            a.certificate.trace.steps(),
            b.certificate.trace.steps(),
            "{q}: certificate traces must be bit-identical"
        );
        assert_eq!(a.sat_outcome, b.sat_outcome, "{q}");
        assert_eq!(a.sat_stats, b.sat_stats, "{q}");
        assert!(
            a.certificate
                .replay(&a.input, &a.output, &env, Budget::default()),
            "{q}: session-extracted certificate must replay"
        );
    }
}

#[test]
fn plan_session_rebind_under_new_statistics_invalidates_the_memo() {
    use optimizer::{optimize, OptimizeOptions, PlanCtx, PlanSession};
    use relalg::stats::Statistics;
    let (env, pairs) = corpus(0x57A1E, 1, 4);
    let q = pairs[0].0.clone();
    let opts = OptimizeOptions::default();
    let mut cache = NormCache::new();
    let mut session = PlanSession::new(opts.budget);
    let small = Statistics::new().with_default_rows(10.0);
    let large = Statistics::new().with_default_rows(1e6);
    let a = optimize(
        &q,
        &env,
        &small,
        opts,
        PlanCtx::session(&mut cache, &mut session),
    )
    .unwrap();
    let b = optimize(
        &q,
        &env,
        &large,
        opts,
        PlanCtx::session(&mut cache, &mut session),
    )
    .unwrap();
    assert!(
        b.cost_before > a.cost_before,
        "a session reused under new statistics must not replay stale costs \
         ({} vs {})",
        b.cost_before,
        a.cost_before
    );
    // And rebinding back must still be self-consistent.
    let c = optimize(
        &q,
        &env,
        &small,
        opts,
        PlanCtx::session(&mut cache, &mut session),
    )
    .unwrap();
    assert_eq!(a.cost_before, c.cost_before);
    assert_eq!(a.output, c.output);
}

#[test]
fn session_discovery_on_a_repetitive_corpus_is_deterministic() {
    // Saturation goals auto-seed the session's shared graph; a corpus
    // with repeated queries must produce (deterministic) discoveries —
    // at minimum the structural ones between repeated goals' sides.
    let (env, pairs) = corpus(0xD15C0, 12, 4);
    let opts = ProveOptions {
        saturate: SaturateMode::Only,
        ..ProveOptions::default()
    };
    let run = |pairs: &[(Query, Query)]| {
        let mut cache = NormCache::new();
        let mut session = ProveSession::new(opts);
        for (l, r) in pairs {
            let inst = RuleInstance::plain(env.clone(), l.clone(), r.clone());
            let _ = dopcert::prove::verify_instance_session(
                &inst,
                Some(&mut cache),
                Some(&mut session),
                opts,
            );
        }
        session.sat.discovered()
    };
    let a = run(&pairs);
    let b = run(&pairs);
    assert_eq!(a, b, "discovery must be deterministic");
    assert!(
        !a.is_empty(),
        "repeated goals must surface cross-goal equalities"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // For any corpus seed, session-mode batch proving is report-
    // identical to fresh mode.
    #[test]
    fn prop_session_reports_match_fresh_for_any_seed(seed in 0u64..1_000_000) {
        let (env, pairs) = corpus(seed, 20, 8);
        let with = engine(true, SaturateMode::Fallback).prove_pairs(&env, &pairs);
        let without = engine(false, SaturateMode::Fallback).prove_pairs(&env, &pairs);
        prop_assert_eq!(with, without);
    }
}
