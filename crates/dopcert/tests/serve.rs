//! End-to-end acceptance of `dopcert serve`: concurrent clients over
//! real TCP, answers bit-identical to a fresh `--no-session` run of
//! the same request, per-request error handling, per-tenant budget
//! admission, and a nonzero memo hit-rate on repetition-heavy traffic.

use dopcert::api::{execute, Request, RequestOptions};
use dopcert::serve::{request_once, ServeConfig, Server};
use dopcert::wire::{decode_response, encode_request, Json};
use egraph::session::BatchBudget;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// A repetition-heavy script stream: the same few goals posed over and
/// over — the traffic shape a resident daemon amortizes.
fn scripts() -> Vec<String> {
    let goals = [
        "table R(int);\nverify (R UNION ALL R) == (R UNION ALL R);",
        "table R(int, int);\nverify DISTINCT SELECT Right.Left FROM R \
         == DISTINCT SELECT Right.Left.Left FROM R, R \
         WHERE Right.Left.Left = Right.Right.Left;",
        "table S(int);\nrefute S == (S UNION ALL S);",
    ];
    (0..4)
        .flat_map(|_| goals.iter().map(|g| (*g).to_owned()))
        .collect()
}

/// The single-shot CLI baseline: fresh state, `--no-session`.
fn baseline(script: &str) -> Vec<String> {
    execute(&Request::Prove {
        script: script.to_owned(),
        opts: RequestOptions {
            session: false,
            ..RequestOptions::default()
        },
    })
    .render()
}

#[test]
fn concurrent_clients_get_answers_bit_identical_to_the_fresh_cli() {
    let server = Server::start(ServeConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();

    // Two clients, each with its own connection, interleaving the same
    // repetition-heavy stream — every answer must equal the fresh
    // `--no-session` baseline byte for byte, whichever worker answered
    // and however warm its memos were.
    let handles: Vec<_> = (0..2)
        .map(|client| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(&addr).expect("connect");
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                for (i, script) in scripts().iter().enumerate() {
                    let req = Request::Prove {
                        script: script.clone(),
                        opts: RequestOptions::default(),
                    };
                    let id = Json::Num((client * 100 + i) as f64);
                    let line = encode_request(&id, "default", &req);
                    writer.write_all(line.as_bytes()).expect("write");
                    writer.write_all(b"\n").expect("write");
                    writer.flush().expect("flush");
                    let mut reply = String::new();
                    reader.read_line(&mut reply).expect("read");
                    let reply = decode_response(reply.trim()).expect("decode");
                    assert_eq!(reply.id, id, "responses arrive in request order");
                    assert_eq!(
                        reply.lines,
                        baseline(script),
                        "daemon answers must be bit-identical to the fresh CLI"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client");
    }

    // 24 prove requests over 3 distinct scripts: almost all goals must
    // have been answered from the resident memos.
    let stats = server.stats();
    assert_eq!(stats.requests, 24);
    assert_eq!(stats.ok, 24);
    assert!(
        stats.memo_hits > 0,
        "repetition-heavy traffic must hit the memo: {stats:?}"
    );
    assert!(stats.goals >= 24);
    server.shutdown();
    server.wait();
}

#[test]
fn malformed_and_over_budget_requests_fail_without_poisoning_the_connection() {
    let config = ServeConfig {
        tenant_budget: BatchBudget {
            max_total_iters: 72,
            max_nodes: 60_000,
            per_goal_iters: 24,
        },
        ..ServeConfig::default()
    };
    let server = Server::start(config).expect("bind");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut roundtrip = |line: &str| {
        writer.write_all(line.as_bytes()).expect("write");
        writer.write_all(b"\n").expect("write");
        writer.flush().expect("flush");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        decode_response(reply.trim()).expect("decode")
    };

    // Malformed JSON, a bad cmd, and a zero budget: each answers with
    // a typed error on the same connection.
    let reply = roundtrip("{{{");
    assert!(!reply.ok);
    assert!(reply.error.expect("error").starts_with("bad request:"));
    let reply = roundtrip(r#"{"cmd":"levitate"}"#);
    assert!(!reply.ok);
    let reply = roundtrip(r#"{"cmd":"prove","script":"x","budget":{"iters":0}}"#);
    assert!(!reply.ok);
    assert!(reply.error.expect("error").contains("must be positive"));

    // An oversized request trips the per-goal cap; a tenant that spent
    // its allowance is exhausted; a fresh tenant still gets through.
    let script = "table R(int);\nverify R == R;".to_owned();
    let reply = roundtrip(
        r#"{"cmd":"prove","script":"table R(int);\nverify R == R;","budget":{"iters":999}}"#,
    );
    assert!(!reply.ok);
    assert!(reply.error.expect("error").contains("per-request cap"));
    for _ in 0..3 {
        let reply = roundtrip(&encode_request(
            &Json::Null,
            "hot",
            &Request::Prove {
                script: script.clone(),
                opts: RequestOptions::default(),
            },
        ));
        assert!(reply.ok, "{reply:?}");
    }
    let reply = roundtrip(&encode_request(
        &Json::Null,
        "hot",
        &Request::Prove {
            script: script.clone(),
            opts: RequestOptions::default(),
        },
    ));
    assert!(!reply.ok);
    assert!(reply.error.expect("error").contains("exhausted"));
    let reply = roundtrip(&encode_request(
        &Json::Null,
        "cold",
        &Request::Prove {
            script,
            opts: RequestOptions::default(),
        },
    ));
    assert!(reply.ok, "one tenant's exhaustion must not starve another");

    let stats = server.stats();
    assert_eq!(stats.budget_rejections, 2);
    assert_eq!(stats.errors, 3, "the three malformed lines");
    server.shutdown();
    server.wait();
}

#[test]
fn a_shutdown_request_stops_the_server() {
    let server = Server::start(ServeConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let reply =
        request_once(&addr, &Json::Num(9.0), "default", &Request::Shutdown).expect("request");
    assert!(reply.ok);
    assert_eq!(reply.kind, "shutdown");
    assert_eq!(reply.id, Json::Num(9.0));
    // wait() returns because the shutdown request stopped the listener
    // and drained the workers; a fresh connection must now fail.
    server.wait();
    assert!(TcpStream::connect(&addr).is_err(), "listener must be gone");
}

#[test]
fn non_default_option_requests_run_fresh_and_still_match_the_baseline() {
    let server = Server::start(ServeConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let mut opts = RequestOptions {
        session: false,
        ..RequestOptions::default()
    };
    opts.budget.set("iters", 12).unwrap();
    let req = Request::Prove {
        script: "table R(int);\nverify (R UNION ALL R) == (R UNION ALL R);".into(),
        opts,
    };
    let reply = request_once(&addr, &Json::Null, "default", &req).expect("request");
    assert!(reply.ok, "{reply:?}");
    assert_eq!(reply.lines, execute(&req).render());
    assert_eq!(server.stats().memo_hits, 0, "fresh path bypasses the memo");

    // An optimize request through the same daemon.
    let opt = Request::Optimize {
        script: "table R(int, int);\nrows R 1000000;\n\
                 verify DISTINCT SELECT Right.Left FROM R \
                 == DISTINCT SELECT Right.Left.Left FROM R, R \
                 WHERE Right.Left.Left = Right.Right.Left;"
            .into(),
        opts: RequestOptions::default(),
    };
    let reply = request_once(&addr, &Json::Null, "default", &opt).expect("request");
    assert!(reply.ok, "{reply:?}");
    assert_eq!(reply.lines, execute(&opt).render());
    server.shutdown();
    server.wait();
}
