//! `dopcert serve`: the resident proving/optimization daemon.
//!
//! The server accepts newline-delimited JSON requests ([`crate::wire`])
//! over plain TCP and shards them across a fixed pool of worker
//! threads, each owning one resident [`Workspace`] (prover session +
//! planner session). Requests are routed by a stable hash of their
//! script, so a repeated script always lands on the worker whose memos
//! already hold its verdicts — that is where the hit-rate reported by
//! `stats` comes from. By the session-identity guarantee, every answer
//! is byte-identical to a fresh single-shot CLI run of the same
//! request (`tests/serve.rs` asserts this against [`crate::execute`]).
//!
//! Admission control is per *tenant* (the request's `tenant` field,
//! default `"default"`): each prove/optimize/catalog/discover request
//! charges its effective per-goal iteration budget against the
//! server's [`BatchBudget`] before dispatch. A single oversized
//! request is rejected by the per-goal cap; a tenant that has spent
//! its cumulative allowance is rejected as exhausted, so one hot
//! client cannot starve the rest. With a [`RefillPolicy`] configured
//! (`--budget-refill`), spent iterations decay over wall-clock time,
//! so a steady client regains allowance instead of being locked out
//! for the daemon's lifetime.
//!
//! Observability is part of the protocol: every request's end-to-end
//! latency lands in a per-request-kind histogram, each worker's memo
//! hits are published *live* (mid-request, not only after a worker
//! finishes), and a `metrics` request answers with a Prometheus-style
//! text exposition combining these server-owned series with the
//! process-wide [`telemetry`] snapshot (phase spans, memo counters).
//!
//! Error handling is per request: a malformed line or rejected budget
//! answers with an error *response* on the same connection — the
//! connection stays open and subsequent lines are processed normally.
//! A `shutdown` request is acknowledged, then the listener and all
//! workers drain and exit; [`Server::wait`] joins them.

use crate::api::{KindLatency, Request, RequestOptions, Response, ServerStats, Workspace};
use crate::wire::{decode_request, encode_response, Json};
use egraph::session::{Admission, BatchBudget};
use egraph::solve::Budget;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telemetry::Histogram;

/// How often blocked connection reads wake up to poll the shutdown
/// flag. Short enough that `shutdown` feels immediate, long enough
/// that idle connections cost nothing measurable.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// Budget refill: a tenant's spent iterations decay at this rate, so
/// exhaustion is a rate limit rather than a lifetime ban.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RefillPolicy {
    /// Iterations credited back per second of wall-clock time.
    pub iters_per_sec: u64,
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address; port 0 picks a free port (the default —
    /// [`Server::local_addr`] reports what was bound).
    pub addr: String,
    /// Worker threads, each with one resident [`Workspace`].
    pub workers: usize,
    /// Options resident workspaces are built at; requests that resolve
    /// to different effective options run on fresh state instead.
    pub defaults: RequestOptions,
    /// Per-tenant admission budget.
    pub tenant_budget: BatchBudget,
    /// Budget refill policy; `None` (the default) keeps the original
    /// behavior where spent iterations never decay.
    pub refill: Option<RefillPolicy>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            defaults: RequestOptions::default(),
            tenant_budget: BatchBudget::default(),
            refill: None,
        }
    }
}

/// Rolling counters behind one lock (all cheap increments; the lock is
/// never held across proving work).
#[derive(Debug, Default)]
struct Counters {
    requests: usize,
    ok: usize,
    errors: usize,
    budget_rejections: usize,
    goals: usize,
    micros: u128,
}

/// One tenant's admission account.
#[derive(Debug)]
struct TenantEntry {
    /// Iterations charged so far (net of refill).
    spent: usize,
    /// Clock reading (ns since server start) up to which refill has
    /// been credited; the fractional remainder stays pending so slow
    /// drips are not rounded away.
    credited_ns: u64,
}

/// Per-tenant spent-iteration accounts with optional time-based decay.
/// The clock is injected (`now_ns`) so the refill arithmetic is unit
/// testable without sleeping.
#[derive(Debug)]
struct TenantLedger {
    policy: Option<RefillPolicy>,
    entries: HashMap<String, TenantEntry>,
}

impl TenantLedger {
    fn new(policy: Option<RefillPolicy>) -> TenantLedger {
        TenantLedger {
            policy,
            entries: HashMap::new(),
        }
    }

    /// Refills the tenant's account (if a policy is configured), then
    /// charges `iters` against it under `budget`'s admission rule.
    fn charge(
        &mut self,
        tenant: &str,
        iters: usize,
        now_ns: u64,
        budget: BatchBudget,
    ) -> Admission {
        let e = self
            .entries
            .entry(tenant.to_owned())
            .or_insert(TenantEntry {
                spent: 0,
                credited_ns: now_ns,
            });
        if let Some(policy) = self.policy {
            let elapsed = now_ns.saturating_sub(e.credited_ns);
            let refill = (elapsed as u128 * policy.iters_per_sec as u128 / 1_000_000_000) as usize;
            if refill >= e.spent {
                // Fully refilled; restart the drip from now.
                e.spent = 0;
                e.credited_ns = now_ns;
            } else if refill > 0 {
                e.spent -= refill;
                // Advance only by the time the granted refill accounts
                // for, keeping the fractional remainder pending.
                e.credited_ns +=
                    (refill as u128 * 1_000_000_000 / policy.iters_per_sec as u128) as u64;
            }
        }
        let admission = budget.admit(e.spent, iters);
        if admission == Admission::Admit {
            e.spent += iters;
        }
        admission
    }
}

/// One worker's live memo-hit counters. The resident sessions store
/// into these on *every* memo hit (see `publish_hits_to`), so `stats`
/// sees progress mid-request instead of only after a worker finishes.
#[derive(Debug)]
struct WorkerHits {
    prover: Arc<AtomicUsize>,
    planner: Arc<AtomicUsize>,
}

impl WorkerHits {
    fn total(&self) -> usize {
        self.prover.load(Ordering::Relaxed) + self.planner.load(Ordering::Relaxed)
    }
}

/// State shared by the listener, every connection, and every worker.
#[derive(Debug)]
struct Shared {
    config: ServeConfig,
    /// The bound listen address (port 0 resolved).
    addr: SocketAddr,
    /// The refill clock's epoch (ns-since-start feeds the ledger).
    started: Instant,
    shutdown: AtomicBool,
    counters: Mutex<Counters>,
    /// Per-tenant admission accounts.
    tenants: Mutex<TenantLedger>,
    /// Each worker's live memo-hit counters.
    memo_hits: Vec<WorkerHits>,
    /// End-to-end request latency (µs) per request kind, including
    /// queueing — the tail a client actually observes.
    latency: Mutex<BTreeMap<&'static str, Histogram>>,
    /// The daemon-wide mined catalog: published by whichever worker
    /// answers a `mine` request, adopted by every worker before an
    /// `optimize` request with `mined-rules` on — one catalog shared
    /// across all resident sessions.
    mined: std::sync::RwLock<Option<Arc<Vec<egraph::MinedRule>>>>,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        let by_worker: Vec<usize> = self.memo_hits.iter().map(WorkerHits::total).collect();
        let c = self.counters.lock().expect("counters lock");
        ServerStats {
            workers: self.config.workers,
            requests: c.requests,
            ok: c.ok,
            errors: c.errors,
            budget_rejections: c.budget_rejections,
            goals: c.goals,
            memo_hits: by_worker.iter().sum(),
            micros: c.micros,
            memo_hits_by_worker: by_worker,
            latency: self.latency_summaries(),
            trace_dropped: telemetry::snapshot().counter("trace.dropped"),
        }
    }

    /// Counts a finished response into the rolling counters.
    fn count_response(&self, resp: &Response, micros: u128) {
        let mut c = self.counters.lock().expect("counters lock");
        match resp {
            Response::Error(_) => c.errors += 1,
            Response::Goals(goals) => {
                c.ok += 1;
                c.goals += goals.len();
            }
            _ => c.ok += 1,
        }
        c.micros += micros;
    }

    /// Records one request's end-to-end latency under its kind.
    fn record_latency(&self, kind: &'static str, micros: u64) {
        let mut lat = self.latency.lock().expect("latency lock");
        lat.entry(kind).or_default().record(micros);
    }

    /// Per-kind latency summaries for the `stats` response.
    fn latency_summaries(&self) -> Vec<KindLatency> {
        let lat = self.latency.lock().expect("latency lock");
        lat.iter()
            .map(|(kind, h)| KindLatency {
                kind: (*kind).to_owned(),
                count: h.count(),
                p50_us: h.p50(),
                p90_us: h.p90(),
                p99_us: h.p99(),
            })
            .collect()
    }

    /// The Prometheus-style text exposition: server-owned counters and
    /// latency histograms merged with the process-wide [`telemetry`]
    /// snapshot (phase spans, memo hit/miss counters).
    fn metrics_text(&self) -> String {
        let mut bag = telemetry::snapshot();
        // Surface the drop counter even while it is zero, so dashboards
        // can alert on it existing-but-rising rather than appearing.
        bag.incr("trace.dropped", 0);
        {
            let c = self.counters.lock().expect("counters lock");
            bag.incr("serve.requests", c.requests as u64);
            bag.incr("serve.ok", c.ok as u64);
            bag.incr("serve.errors", c.errors as u64);
            bag.incr("serve.budget_rejections", c.budget_rejections as u64);
            bag.incr("serve.goals", c.goals as u64);
        }
        for (slot, hits) in self.memo_hits.iter().enumerate() {
            bag.incr(
                &format!("serve.memo_hits{{worker=\"{slot}\"}}"),
                hits.total() as u64,
            );
        }
        {
            let lat = self.latency.lock().expect("latency lock");
            for (kind, h) in lat.iter() {
                bag.merge_hist(&format!("request.latency_us{{kind=\"{kind}\"}}"), h);
            }
        }
        bag.render_prometheus()
    }
}

/// A unit of work handed to a worker: the request plus a reply slot.
struct Job {
    req: Request,
    reply: Sender<Response>,
}

/// A running `dopcert serve` daemon. Dropping the handle does *not*
/// stop the server — call [`Server::shutdown`] (or send a `shutdown`
/// request) and then [`Server::wait`].
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    senders: Vec<Sender<Job>>,
    listener_thread: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the address and starts the listener and worker threads.
    /// Enables process-wide telemetry metrics (if not already on) so
    /// the `metrics` exposition carries phase spans and memo counters,
    /// and per-rule attribution profiling so a `profile` request always
    /// has a table to answer with.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        if !telemetry::metrics_enabled() {
            telemetry::enable();
        }
        telemetry::enable_profiling();
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let refill = config.refill;
        let shared = Arc::new(Shared {
            config: ServeConfig { workers, ..config },
            addr,
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            counters: Mutex::new(Counters::default()),
            tenants: Mutex::new(TenantLedger::new(refill)),
            memo_hits: (0..workers)
                .map(|_| WorkerHits {
                    prover: Arc::new(AtomicUsize::new(0)),
                    planner: Arc::new(AtomicUsize::new(0)),
                })
                .collect(),
            latency: Mutex::new(BTreeMap::new()),
            mined: std::sync::RwLock::new(None),
        });

        let mut senders = Vec::with_capacity(workers);
        let mut worker_threads = Vec::with_capacity(workers);
        for slot in 0..workers {
            let (tx, rx) = channel::<Job>();
            senders.push(tx);
            let shared = Arc::clone(&shared);
            worker_threads.push(std::thread::spawn(move || {
                let mut workspace = Workspace::new(shared.config.defaults);
                // Live publishing: the resident sessions store into the
                // shared counters on every memo hit, so `stats` during a
                // long request reflects it mid-flight.
                workspace.publish_memo_hits(
                    Arc::clone(&shared.memo_hits[slot].prover),
                    Arc::clone(&shared.memo_hits[slot].planner),
                );
                while let Ok(job) = rx.recv() {
                    let start = Instant::now();
                    // The mined catalog is daemon-wide: adopt the latest
                    // published one before a mined-rules plan search …
                    if let Request::Optimize { opts, .. } = &job.req {
                        if opts.mined_rules {
                            let published =
                                shared.mined.read().expect("mined catalog lock").clone();
                            if let Some(rules) = published {
                                workspace.set_mined_catalog(rules);
                            }
                        }
                    }
                    let resp = workspace.execute(&job.req);
                    // … and publish the outcome of a mining run for the
                    // other workers' sessions.
                    if matches!(job.req, Request::Mine { .. }) {
                        *shared.mined.write().expect("mined catalog lock") =
                            Some(workspace.mined_catalog());
                    }
                    shared.count_response(&resp, start.elapsed().as_micros());
                    // A dropped receiver means the client hung up
                    // mid-request; the work is already counted.
                    let _ = job.reply.send(resp);
                }
            }));
        }

        let listener_shared = Arc::clone(&shared);
        let listener_senders = senders.clone();
        let listener_thread = std::thread::spawn(move || {
            let mut connections = Vec::new();
            for stream in listener.incoming() {
                if listener_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let shared = Arc::clone(&listener_shared);
                let senders = listener_senders.clone();
                connections.push(std::thread::spawn(move || {
                    serve_connection(stream, &shared, &senders);
                }));
            }
            connections
        });

        Ok(Server {
            addr,
            shared,
            senders,
            listener_thread: Some(listener_thread),
            worker_threads,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// The Prometheus-style text exposition the `metrics` request
    /// answers with.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics_text()
    }

    /// Initiates a graceful shutdown: no new connections are accepted,
    /// open connections drain their in-flight request and close.
    pub fn shutdown(&self) {
        request_shutdown(&self.shared, self.addr);
    }

    /// Blocks until the listener, every connection, and every worker
    /// have exited. Call after [`Server::shutdown`] or after a client
    /// sent a `shutdown` request.
    pub fn wait(mut self) {
        if let Some(listener) = self.listener_thread.take() {
            if let Ok(connections) = listener.join() {
                for conn in connections {
                    let _ = conn.join();
                }
            }
        }
        // Workers exit once every sender is gone (connections hold
        // clones only transiently, and they have all joined by now).
        self.senders.clear();
        for worker in self.worker_threads.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Flips the shutdown flag and wakes the blocking `accept` with one
/// throwaway connection so the listener notices.
fn request_shutdown(shared: &Shared, addr: SocketAddr) {
    shared.shutdown.store(true, Ordering::SeqCst);
    drop(TcpStream::connect(addr));
}

/// One connection's read loop: one request per line, one response line
/// per request, until EOF or shutdown.
fn serve_connection(stream: TcpStream, shared: &Shared, senders: &[Sender<Job>]) {
    // Reads wake up periodically to poll the shutdown flag; a timeout
    // mid-line keeps the partial line in `line` and resumes appending.
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF: the client hung up.
            Ok(_) => {
                if !line.trim().is_empty() {
                    let reply = answer_line(line.trim(), shared, senders);
                    if writer
                        .write_all(reply.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        return;
                    }
                }
                line.clear();
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return,
        }
    }
}

/// The latency-histogram label of a request.
fn kind_of(req: &Request) -> &'static str {
    match req {
        Request::Prove { .. } => "prove",
        Request::Optimize { .. } => "optimize",
        Request::Catalog { .. } => "catalog",
        Request::Discover { .. } => "discover",
        Request::Mine { .. } => "mine",
        Request::Stats => "stats",
        Request::Metrics => "metrics",
        Request::Profile => "profile",
        Request::Trace => "trace",
        Request::Shutdown => "shutdown",
    }
}

/// Answers one request line, recording its end-to-end latency
/// (decode through response, queueing included) under its kind.
fn answer_line(line: &str, shared: &Shared, senders: &[Sender<Job>]) -> String {
    let start = Instant::now();
    let (kind, reply) = handle_line(line, shared, senders);
    shared.record_latency(kind, start.elapsed().as_micros() as u64);
    reply
}

/// One request line's actual handling: decode, admit, dispatch, encode.
fn handle_line(line: &str, shared: &Shared, senders: &[Sender<Job>]) -> (&'static str, String) {
    shared.counters.lock().expect("counters lock").requests += 1;
    let (id, tenant, req) = match decode_request(line) {
        Ok(parts) => parts,
        Err(e) => {
            shared.counters.lock().expect("counters lock").errors += 1;
            return (
                "invalid",
                encode_response(&Json::Null, &Response::Error(format!("bad request: {e}"))),
            );
        }
    };
    let kind = kind_of(&req);

    // Control requests are answered inline — they must work even when
    // every worker is busy proving.
    match req {
        Request::Stats => {
            let resp = Response::Stats(shared.stats());
            shared.counters.lock().expect("counters lock").ok += 1;
            return (kind, encode_response(&id, &resp));
        }
        Request::Metrics => {
            let resp = Response::Metrics(shared.metrics_text());
            shared.counters.lock().expect("counters lock").ok += 1;
            return (kind, encode_response(&id, &resp));
        }
        Request::Profile => {
            // The process-wide profile is already merged across worker
            // flushes; snapshotting it here costs one lock, not a trip
            // through the (possibly busy) worker pool.
            let resp = Response::Profile(telemetry::profile_snapshot());
            shared.counters.lock().expect("counters lock").ok += 1;
            return (kind, encode_response(&id, &resp));
        }
        Request::Trace => {
            // Drain-and-render on demand: the daemon keeps running and
            // the buffer starts filling again from empty.
            let events = telemetry::take_trace();
            let resp = Response::Trace(telemetry::trace::render_chrome_trace(&events));
            shared.counters.lock().expect("counters lock").ok += 1;
            return (kind, encode_response(&id, &resp));
        }
        Request::Shutdown => {
            shared.counters.lock().expect("counters lock").ok += 1;
            // Acknowledge first, then stop the listener; the caller's
            // connection drains with everyone else's.
            let ack = {
                let mut map = std::collections::BTreeMap::new();
                map.insert("id".to_owned(), id);
                map.insert("ok".to_owned(), Json::Bool(true));
                map.insert("kind".to_owned(), Json::Str("shutdown".to_owned()));
                map.insert(
                    "lines".to_owned(),
                    Json::Arr(vec![Json::Str("shutting down".to_owned())]),
                );
                Json::Obj(map).render()
            };
            request_shutdown(shared, shared.addr);
            return (kind, ack);
        }
        _ => {}
    }

    if let Err(rejection) = admit(&tenant, &req, shared) {
        let mut c = shared.counters.lock().expect("counters lock");
        c.budget_rejections += 1;
        return (kind, encode_response(&id, &Response::Error(rejection)));
    }

    let (reply_tx, reply_rx) = channel();
    let worker = route(&req, senders.len());
    if senders[worker]
        .send(Job {
            req,
            reply: reply_tx,
        })
        .is_err()
    {
        shared.counters.lock().expect("counters lock").errors += 1;
        return (
            kind,
            encode_response(&id, &Response::Error("server is shutting down".into())),
        );
    }
    match reply_rx.recv() {
        Ok(resp) => (kind, encode_response(&id, &resp)),
        Err(_) => {
            shared.counters.lock().expect("counters lock").errors += 1;
            (
                kind,
                encode_response(&id, &Response::Error("server is shutting down".into())),
            )
        }
    }
}

/// Per-tenant admission control: charges the request's effective
/// per-goal iteration budget against the tenant's allowance (refilled
/// first, when a policy is configured).
fn admit(tenant: &str, req: &Request, shared: &Shared) -> Result<(), String> {
    let iters = match req {
        Request::Prove { opts, .. }
        | Request::Optimize { opts, .. }
        | Request::Catalog { opts, .. }
        | Request::Discover { opts } => {
            // The declared budget; scripts cannot raise it past the
            // admission check because a script directive only fills
            // knobs the request left unset, and unset knobs resolve to
            // the same default charged here.
            opts.budget.apply(Budget::default()).max_iters
        }
        // Mining runs its own internal discovery/certification budgets;
        // charge it like a default-budget request.
        Request::Mine { .. } => Budget::default().max_iters,
        Request::Stats
        | Request::Metrics
        | Request::Profile
        | Request::Trace
        | Request::Shutdown => return Ok(()),
    };
    let budget = shared.config.tenant_budget;
    let now_ns = shared.started.elapsed().as_nanos() as u64;
    let mut ledger = shared.tenants.lock().expect("tenants lock");
    match ledger.charge(tenant, iters, now_ns, budget) {
        Admission::Admit => Ok(()),
        Admission::PerGoalCap => Err(format!(
            "budget rejected: {iters} iterations exceeds the per-request cap of {}",
            budget.per_goal_iters
        )),
        Admission::Exhausted => Err(format!(
            "budget rejected: tenant {tenant:?} has exhausted its allowance of {} iterations",
            budget.max_total_iters
        )),
    }
}

/// Stable request routing: identical scripts hash to the same worker,
/// so repeats land on the workspace whose memos already hold them.
fn route(req: &Request, workers: usize) -> usize {
    let mut hasher = DefaultHasher::new();
    match req {
        Request::Prove { script, .. } => {
            "prove".hash(&mut hasher);
            script.hash(&mut hasher);
        }
        Request::Optimize { script, .. } => {
            "optimize".hash(&mut hasher);
            script.hash(&mut hasher);
        }
        Request::Catalog { .. } => "catalog".hash(&mut hasher),
        Request::Discover { .. } => "discover".hash(&mut hasher),
        Request::Mine { seed, .. } => {
            "mine".hash(&mut hasher);
            seed.hash(&mut hasher);
        }
        Request::Stats
        | Request::Metrics
        | Request::Profile
        | Request::Trace
        | Request::Shutdown => {}
    }
    (hasher.finish() % workers as u64) as usize
}

/// Blocking client helper: sends one request and reads one response
/// line — the `dopcert request` subcommand and the CI smoke test.
///
/// # Errors
///
/// Returns the connect/write/read error, or the malformed response
/// line described as [`ErrorKind::InvalidData`].
pub fn request_once(
    addr: &str,
    id: &Json,
    tenant: &str,
    req: &Request,
) -> std::io::Result<crate::wire::WireReply> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let line = crate::wire::encode_request(id, tenant, req);
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut reply = String::new();
    reader.read_line(&mut reply)?;
    crate::wire::decode_response(reply.trim())
        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::execute;

    fn local_config() -> ServeConfig {
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let req = Request::Prove {
            script: "table R(int);\nverify R == R;".into(),
            opts: RequestOptions::default(),
        };
        let w = route(&req, 4);
        assert_eq!(route(&req, 4), w, "same script, same worker");
        assert!(w < 4);
        assert_eq!(route(&Request::Stats, 1), 0);
    }

    #[test]
    fn server_answers_identically_to_fresh_execute() {
        let server = Server::start(local_config()).expect("bind");
        let addr = server.local_addr().to_string();
        let req = Request::Prove {
            script: "table R(int);\nverify (R UNION ALL R) == (R UNION ALL R);".into(),
            opts: RequestOptions::default(),
        };
        let reply = request_once(&addr, &Json::Num(1.0), "default", &req).expect("request");
        assert!(reply.ok, "{reply:?}");
        assert_eq!(reply.lines, execute(&req).render());
        server.shutdown();
        server.wait();
    }

    #[test]
    fn malformed_lines_get_error_responses_and_the_connection_survives() {
        let server = Server::start(local_config()).expect("bind");
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        writer.write_all(b"this is not json\n").expect("write");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        let reply = crate::wire::decode_response(line.trim()).expect("decode");
        assert!(!reply.ok);
        assert!(reply.error.expect("error").starts_with("bad request:"));
        // The connection is still usable.
        writer.write_all(b"{\"cmd\":\"stats\"}\n").expect("write");
        line.clear();
        reader.read_line(&mut line).expect("read");
        let reply = crate::wire::decode_response(line.trim()).expect("decode");
        assert!(reply.ok);
        let stats = reply.stats.expect("stats");
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.errors, 1);
        server.shutdown();
        server.wait();
    }

    #[test]
    fn admission_rejects_oversized_and_exhausted_tenants() {
        let mut config = local_config();
        config.tenant_budget = BatchBudget {
            max_total_iters: 48,
            max_nodes: 60_000,
            per_goal_iters: 24,
        };
        let server = Server::start(config).expect("bind");
        let addr = server.local_addr().to_string();
        let mut big = RequestOptions::default();
        big.budget.set("iters", 100).unwrap();
        let oversized = Request::Prove {
            script: "table R(int);\nverify R == R;".into(),
            opts: big,
        };
        let reply = request_once(&addr, &Json::Null, "default", &oversized).expect("request");
        assert!(!reply.ok);
        assert!(
            reply.error.expect("error").contains("per-request cap"),
            "oversized request hits the per-goal cap"
        );

        let small = Request::Prove {
            script: "table R(int);\nverify R == R;".into(),
            opts: RequestOptions::default(),
        };
        // Default budget is 24 iters; the third request exceeds 48.
        for _ in 0..2 {
            let reply = request_once(&addr, &Json::Null, "bob", &small).expect("request");
            assert!(reply.ok, "{reply:?}");
        }
        let reply = request_once(&addr, &Json::Null, "bob", &small).expect("request");
        assert!(!reply.ok);
        assert!(reply.error.expect("error").contains("exhausted"));
        // Another tenant's allowance is untouched.
        let reply = request_once(&addr, &Json::Null, "carol", &small).expect("request");
        assert!(reply.ok, "{reply:?}");
        assert_eq!(server.stats().budget_rejections, 2);
        server.shutdown();
        server.wait();
    }

    #[test]
    fn refill_recovers_an_exhausted_tenant_over_time() {
        let budget = BatchBudget {
            max_total_iters: 48,
            max_nodes: 60_000,
            per_goal_iters: 24,
        };
        let mut ledger = TenantLedger::new(Some(RefillPolicy { iters_per_sec: 24 }));
        // Two 24-iter requests exhaust the 48-iter allowance at t=0.
        assert_eq!(ledger.charge("bob", 24, 0, budget), Admission::Admit);
        assert_eq!(ledger.charge("bob", 24, 0, budget), Admission::Admit);
        assert_eq!(ledger.charge("bob", 24, 0, budget), Admission::Exhausted);
        // Half a second refills 12 iterations — not yet enough headroom
        // for a 24-iter request (36 + 24 > 48).
        assert_eq!(
            ledger.charge("bob", 24, 500_000_000, budget),
            Admission::Exhausted
        );
        // A full second from start has refilled 24 total: recovered.
        assert_eq!(
            ledger.charge("bob", 24, 1_000_000_000, budget),
            Admission::Admit
        );
        // The per-goal cap is not affected by refill.
        assert_eq!(
            ledger.charge("bob", 100, 2_000_000_000, budget),
            Admission::PerGoalCap
        );
    }

    #[test]
    fn refill_fractions_accumulate_and_no_policy_means_no_decay() {
        let budget = BatchBudget {
            max_total_iters: 10,
            max_nodes: 60_000,
            per_goal_iters: 10,
        };
        // 4 iters/sec: one 250ms step is exactly one iteration; an 80ms
        // step grants nothing but the remainder must not be lost.
        let mut ledger = TenantLedger::new(Some(RefillPolicy { iters_per_sec: 4 }));
        assert_eq!(ledger.charge("t", 10, 0, budget), Admission::Admit);
        assert_eq!(
            ledger.charge("t", 1, 80_000_000, budget),
            Admission::Exhausted
        );
        assert_eq!(
            ledger.charge("t", 1, 160_000_000, budget),
            Admission::Exhausted
        );
        // 250ms total: the three fractional steps add up to 1 iteration.
        assert_eq!(ledger.charge("t", 1, 250_000_000, budget), Admission::Admit);

        // Without a policy, exhaustion is permanent (pre-refill
        // behavior preserved — the default configuration).
        let mut fixed = TenantLedger::new(None);
        assert_eq!(fixed.charge("t", 10, 0, budget), Admission::Admit);
        assert_eq!(fixed.charge("t", 1, u64::MAX, budget), Admission::Exhausted);
    }

    #[test]
    fn profile_and_trace_requests_answer_inline() {
        let server = Server::start(local_config()).expect("bind");
        let addr = server.local_addr().to_string();
        let opts = RequestOptions {
            saturate: crate::prove::SaturateMode::Only,
            ..Default::default()
        };
        let prove = Request::Prove {
            script: "table R(int);\ntable S(int);\nverify (R UNION ALL S) == (S UNION ALL R);"
                .into(),
            opts,
        };
        let reply = request_once(&addr, &Json::Null, "default", &prove).expect("request");
        assert!(reply.ok, "{reply:?}");

        // The daemon enabled profiling at start, so the saturation run
        // left per-rule attribution rows behind.
        let reply =
            request_once(&addr, &Json::Null, "default", &Request::Profile).expect("profile");
        assert!(reply.ok, "{reply:?}");
        assert_eq!(reply.kind, "profile");
        let profile = reply.profile.expect("profile table");
        assert!(
            !profile.is_empty(),
            "a saturation run must leave attribution rows"
        );

        // `trace` drains on demand without stopping the daemon; with
        // tracing off the buffer is empty but the reply is well-formed.
        let reply = request_once(&addr, &Json::Null, "default", &Request::Trace).expect("trace");
        assert!(reply.ok, "{reply:?}");
        assert_eq!(reply.kind, "trace");
        assert!(reply.lines.concat().contains("traceEvents"), "{reply:?}");
        server.shutdown();
        server.wait();
    }

    #[test]
    fn mine_request_over_the_wire_publishes_the_daemon_catalog() {
        let server = Server::start(local_config()).expect("bind");
        let addr = server.local_addr().to_string();
        let mine_req = Request::Mine {
            seed: mine::MineConfig::default().seed,
            count: 3,
        };
        let reply = request_once(&addr, &Json::Null, "default", &mine_req).expect("request");
        assert!(reply.ok, "{reply:?}");
        assert!(
            reply.lines[0].starts_with("mined 3 rules"),
            "{:?}",
            reply.lines
        );
        assert_eq!(reply.lines, execute(&mine_req).render());
        // The mined catalog is now daemon-resident: a flagged optimize
        // adopts it and still ships a certified plan.
        let opt_req = Request::Optimize {
            script: "table R(int);\nverify (R UNION ALL R) == (R UNION ALL R);".into(),
            opts: RequestOptions {
                mined_rules: true,
                ..RequestOptions::default()
            },
        };
        let reply = request_once(&addr, &Json::Null, "default", &opt_req).expect("request");
        assert!(reply.ok, "{reply:?}");
        server.shutdown();
        server.wait();
    }

    #[test]
    fn metrics_exposition_reflects_served_traffic() {
        let server = Server::start(local_config()).expect("bind");
        let addr = server.local_addr().to_string();
        let prove = Request::Prove {
            script: "table R(int);\nverify R == R;".into(),
            opts: RequestOptions::default(),
        };
        for _ in 0..2 {
            let reply = request_once(&addr, &Json::Null, "default", &prove).expect("request");
            assert!(reply.ok, "{reply:?}");
        }
        let reply = request_once(&addr, &Json::Null, "default", &Request::Metrics)
            .expect("metrics request");
        assert!(reply.ok, "{reply:?}");
        assert_eq!(reply.kind, "metrics");
        let text = reply.lines.join("\n");
        // Server-owned counters match the actual request totals: two
        // proves plus the metrics request itself.
        assert!(text.contains("dopcert_serve_requests 3"), "{text}");
        assert!(text.contains("dopcert_serve_ok 2"), "{text}");
        // The per-kind latency histogram counted both proves.
        assert!(
            text.contains("dopcert_request_latency_us_count{kind=\"prove\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("dopcert_request_latency_us_bucket{kind=\"prove\",le=\"+Inf\"} 2"),
            "{text}"
        );
        // Quantile summary lines are present for the kind.
        assert!(
            text.contains("dopcert_request_latency_us{kind=\"prove\",quantile=\"0.5\"}"),
            "{text}"
        );
        // The whole exposition parses: every non-comment line is
        // `name[{labels}] value` with a numeric value.
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("metric line");
            assert!(!name.is_empty(), "{line}");
            value.parse::<f64>().unwrap_or_else(|_| panic!("{line}"));
        }

        // Live memo hits: the repeated script was a memo hit on its
        // worker, visible in `stats` per worker and in total.
        let stats = server.stats();
        assert!(stats.memo_hits >= 1, "{stats:?}");
        assert_eq!(
            stats.memo_hits,
            stats.memo_hits_by_worker.iter().sum::<usize>()
        );
        assert!(
            stats
                .latency
                .iter()
                .any(|l| l.kind == "prove" && l.count == 2),
            "{stats:?}"
        );
        server.shutdown();
        server.wait();
    }
}
