//! The serve wire protocol: newline-delimited JSON, std-only.
//!
//! One request per line, one response line per request, over a plain
//! TCP stream — `nc` is a full-featured client. The container bakes in
//! no third-party crates, so this module carries a deliberately small
//! JSON parser/printer (objects, arrays, strings with escapes, finite
//! numbers, booleans, null — no trailing commas, no comments) rather
//! than an external dependency.
//!
//! Request object:
//!
//! ```json
//! {"cmd": "prove", "id": 1, "tenant": "alice",
//!  "script": "table R(int); verify R == R;",
//!  "saturate": "fallback", "session": true,
//!  "budget": {"iters": 24, "nodes": 10000, "oracle-calls": 64},
//!  "jobs": 2, "shared-cache": true, "discover": false}
//! ```
//!
//! `cmd` is required: `check`, `prove`, `optimize`, `catalog`,
//! `discover`, `mine`, `stats`, `metrics`, `profile`, `trace`, or
//! `shutdown`. `script` is required for `check`/`prove`/`optimize`.
//! Everything else is optional; `id` is echoed back verbatim, `tenant`
//! names the budget-admission account (default `"default"`). `mine`
//! takes optional `seed` and `count` integers; `optimize` accepts
//! `"mined-rules": true` to search with the daemon's mined catalog.
//! Budget knobs are validated by the same [`BudgetSpec`] the CLI flags
//! and script directives go through.
//!
//! Response object:
//!
//! ```json
//! {"id": 1, "ok": true, "kind": "goals",
//!  "lines": ["[ok] verify: ...\n    proved by ..."]}
//! ```
//!
//! `lines` are exactly the stdout lines the single-shot CLI prints for
//! the same request ([`Response::render`]); error responses carry
//! `"kind": "error"` and an `"error"` string instead; `stats`
//! responses add a `"stats"` object with the raw counters; `profile`
//! responses add a `"profile"` object mapping each attribution label
//! to its raw counters and histograms (losslessly — clients rebuild
//! the exact [`telemetry::Profile`]).

use crate::api::{KindLatency, Request, RequestOptions, Response, ServerStats};
use crate::prove::SaturateMode;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep insertion order irrelevant —
/// a sorted map keeps rendering deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON value, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a position-annotated description of the first problem.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(input, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(input: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(input, bytes, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {pos}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(input, bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(input, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(input, bytes, pos).map(Json::Str),
        Some(b't') if input[*pos..].starts_with("true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if input[*pos..].starts_with("false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if input[*pos..].starts_with("null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while let Some(b) = bytes.get(*pos) {
                if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                    *pos += 1;
                } else {
                    break;
                }
            }
            if *pos == start {
                return Err(format!("unexpected character at byte {start}"));
            }
            let text = &input[start..*pos];
            let n: f64 = text
                .parse()
                .map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
            if !n.is_finite() {
                return Err(format!("non-finite number {text:?} at byte {start}"));
            }
            Ok(Json::Num(n))
        }
    }
}

fn parse_string(input: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    let mut chars = input[*pos..].char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'b')) => out.push('\u{8}'),
                Some((_, 'f')) => out.push('\u{c}'),
                Some((j, 'u')) => {
                    let hex = input
                        .get(*pos + j + 1..*pos + j + 5)
                        .ok_or("truncated \\u escape")?;
                    let code = u32::from_str_radix(hex, 16)
                        .map_err(|_| format!("invalid \\u escape {hex:?}"))?;
                    // Surrogate pairs are out of scope for this
                    // protocol (scripts are ASCII-leaning); lone
                    // surrogates map to the replacement character.
                    out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    for _ in 0..4 {
                        chars.next();
                    }
                }
                other => return Err(format!("invalid escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

/// A decoded response line, as a client sees it.
#[derive(Clone, Debug, PartialEq)]
pub struct WireReply {
    /// The request's `id`, echoed (null when absent).
    pub id: Json,
    /// Whether every goal/plan/rule in the response passed.
    pub ok: bool,
    /// The response kind (`goals`, `plans`, `catalog`, `discovered`,
    /// `stats`, `error`).
    pub kind: String,
    /// The rendered CLI lines.
    pub lines: Vec<String>,
    /// The error message, for `kind == "error"`.
    pub error: Option<String>,
    /// The raw counters, for `kind == "stats"`.
    pub stats: Option<ServerStats>,
    /// The rebuilt attribution table, for `kind == "profile"`.
    pub profile: Option<telemetry::Profile>,
}

/// Decodes one request line into its id, tenant, and typed request.
///
/// # Errors
///
/// Returns a description of the malformed line — the daemon wraps it
/// in an error *response* rather than dropping the connection.
pub fn decode_request(line: &str) -> Result<(Json, String, Request), String> {
    let value = parse_json(line)?;
    if !matches!(value, Json::Obj(_)) {
        return Err("request must be a JSON object".into());
    }
    let id = value.get("id").cloned().unwrap_or(Json::Null);
    let tenant = match value.get("tenant") {
        None => "default".to_owned(),
        Some(t) => t
            .as_str()
            .ok_or_else(|| "tenant must be a string".to_owned())?
            .to_owned(),
    };
    let cmd = value
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| "request needs a \"cmd\" string".to_owned())?;
    let opts = decode_options(&value)?;
    let script = || -> Result<String, String> {
        value
            .get("script")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("{cmd:?} needs a \"script\" string"))
    };
    let req = match cmd {
        // `check` is `prove` at the library-default options, exactly
        // like the CLI subcommand.
        "check" => Request::Prove {
            script: script()?,
            opts: RequestOptions::default(),
        },
        "prove" => Request::Prove {
            script: script()?,
            opts,
        },
        "optimize" => Request::Optimize {
            script: script()?,
            opts,
        },
        "catalog" => Request::Catalog {
            discover: value
                .get("discover")
                .map(|v| v.as_bool().ok_or("discover must be a boolean"))
                .transpose()?
                .unwrap_or(false),
            opts,
        },
        "discover" => Request::Discover { opts },
        "mine" => {
            let defaults = mine::MineConfig::default();
            Request::Mine {
                seed: value
                    .get("seed")
                    .map(|v| {
                        v.as_usize()
                            .map(|n| n as u64)
                            .ok_or("seed must be a non-negative integer")
                    })
                    .transpose()?
                    .unwrap_or(defaults.seed),
                count: value
                    .get("count")
                    .map(|v| {
                        v.as_usize()
                            .filter(|&n| n > 0)
                            .ok_or("count must be a positive integer")
                    })
                    .transpose()?
                    .unwrap_or(defaults.max_rules),
            }
        }
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "profile" => Request::Profile,
        "trace" => Request::Trace,
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown cmd {other:?}")),
    };
    Ok((id, tenant, req))
}

fn decode_options(value: &Json) -> Result<RequestOptions, String> {
    let mut opts = RequestOptions::default();
    if let Some(mode) = value.get("saturate") {
        opts.saturate = match mode.as_str() {
            Some("off") => SaturateMode::Off,
            Some("fallback") => SaturateMode::Fallback,
            Some("only") => SaturateMode::Only,
            _ => return Err("saturate must be \"off\", \"fallback\", or \"only\"".into()),
        };
    }
    if let Some(session) = value.get("session") {
        opts.session = session.as_bool().ok_or("session must be a boolean")?;
    }
    if let Some(jobs) = value.get("jobs") {
        opts.jobs = Some(
            jobs.as_usize()
                .ok_or("jobs must be a non-negative integer")?,
        );
    }
    if let Some(shared) = value.get("shared-cache") {
        opts.shared_cache = shared.as_bool().ok_or("shared-cache must be a boolean")?;
    }
    if let Some(mined) = value.get("mined-rules") {
        opts.mined_rules = mined.as_bool().ok_or("mined-rules must be a boolean")?;
    }
    if let Some(budget) = value.get("budget") {
        let Json::Obj(map) = budget else {
            return Err("budget must be an object".into());
        };
        for (knob, v) in map {
            let v = v
                .as_usize()
                .ok_or_else(|| format!("budget {knob} must be a non-negative integer"))?;
            // The same validation point as CLI flags and script
            // directives.
            opts.budget.set(knob, v)?;
        }
    }
    Ok(opts)
}

/// Encodes a typed request into one wire line (no trailing newline) —
/// the `dopcert request` client path.
pub fn encode_request(id: &Json, tenant: &str, req: &Request) -> String {
    let mut map = BTreeMap::new();
    if *id != Json::Null {
        map.insert("id".to_owned(), id.clone());
    }
    if tenant != "default" {
        map.insert("tenant".to_owned(), Json::Str(tenant.to_owned()));
    }
    let put_opts = |map: &mut BTreeMap<String, Json>, opts: &RequestOptions| {
        let defaults = RequestOptions::default();
        if opts.saturate != defaults.saturate {
            let mode = match opts.saturate {
                SaturateMode::Off => "off",
                SaturateMode::Fallback => "fallback",
                SaturateMode::Only => "only",
            };
            map.insert("saturate".to_owned(), Json::Str(mode.to_owned()));
        }
        if opts.session != defaults.session {
            map.insert("session".to_owned(), Json::Bool(opts.session));
        }
        if let Some(jobs) = opts.jobs {
            map.insert("jobs".to_owned(), Json::Num(jobs as f64));
        }
        if opts.shared_cache != defaults.shared_cache {
            map.insert("shared-cache".to_owned(), Json::Bool(opts.shared_cache));
        }
        if opts.mined_rules != defaults.mined_rules {
            map.insert("mined-rules".to_owned(), Json::Bool(opts.mined_rules));
        }
        if !opts.budget.is_empty() {
            let mut b = BTreeMap::new();
            for (knob, v) in [
                ("iters", opts.budget.iters),
                ("nodes", opts.budget.nodes),
                ("oracle-calls", opts.budget.oracle_calls),
            ] {
                if let Some(v) = v {
                    b.insert(knob.to_owned(), Json::Num(v as f64));
                }
            }
            map.insert("budget".to_owned(), Json::Obj(b));
        }
    };
    let cmd = match req {
        Request::Prove { script, opts } => {
            map.insert("script".to_owned(), Json::Str(script.clone()));
            put_opts(&mut map, opts);
            "prove"
        }
        Request::Optimize { script, opts } => {
            map.insert("script".to_owned(), Json::Str(script.clone()));
            put_opts(&mut map, opts);
            "optimize"
        }
        Request::Catalog { discover, opts } => {
            if *discover {
                map.insert("discover".to_owned(), Json::Bool(true));
            }
            put_opts(&mut map, opts);
            "catalog"
        }
        Request::Discover { opts } => {
            put_opts(&mut map, opts);
            "discover"
        }
        Request::Mine { seed, count } => {
            map.insert("seed".to_owned(), Json::Num(*seed as f64));
            map.insert("count".to_owned(), Json::Num(*count as f64));
            "mine"
        }
        Request::Stats => "stats",
        Request::Metrics => "metrics",
        Request::Profile => "profile",
        Request::Trace => "trace",
        Request::Shutdown => "shutdown",
    };
    map.insert("cmd".to_owned(), Json::Str(cmd.to_owned()));
    Json::Obj(map).render()
}

/// Encodes a response into one wire line (no trailing newline).
pub fn encode_response(id: &Json, resp: &Response) -> String {
    let kind = match resp {
        Response::Goals(_) => "goals",
        Response::Plans(_) => "plans",
        Response::Catalog { .. } => "catalog",
        Response::Discovered(_) => "discovered",
        Response::Mined(_) => "mined",
        Response::Stats(_) => "stats",
        Response::Metrics(_) => "metrics",
        Response::Profile(_) => "profile",
        Response::Trace(_) => "trace",
        Response::Error(_) => "error",
    };
    let mut map = BTreeMap::new();
    map.insert("id".to_owned(), id.clone());
    map.insert("ok".to_owned(), Json::Bool(resp.ok()));
    map.insert("kind".to_owned(), Json::Str(kind.to_owned()));
    match resp {
        Response::Error(e) => {
            map.insert("error".to_owned(), Json::Str(e.clone()));
        }
        other => {
            map.insert(
                "lines".to_owned(),
                Json::Arr(other.render().into_iter().map(Json::Str).collect()),
            );
        }
    }
    if let Response::Stats(s) = resp {
        let mut counters = BTreeMap::new();
        for (k, v) in [
            ("workers", s.workers),
            ("requests", s.requests),
            ("ok", s.ok),
            ("errors", s.errors),
            ("budget-rejections", s.budget_rejections),
            ("goals", s.goals),
            ("memo-hits", s.memo_hits),
        ] {
            counters.insert(k.to_owned(), Json::Num(v as f64));
        }
        counters.insert("micros".to_owned(), Json::Num(s.micros as f64));
        if s.trace_dropped > 0 {
            counters.insert(
                "trace-dropped".to_owned(),
                Json::Num(s.trace_dropped as f64),
            );
        }
        if !s.memo_hits_by_worker.is_empty() {
            counters.insert(
                "memo-hits-by-worker".to_owned(),
                Json::Arr(
                    s.memo_hits_by_worker
                        .iter()
                        .map(|&h| Json::Num(h as f64))
                        .collect(),
                ),
            );
        }
        if !s.latency.is_empty() {
            counters.insert(
                "latency".to_owned(),
                Json::Arr(
                    s.latency
                        .iter()
                        .map(|l| {
                            let mut entry = BTreeMap::new();
                            entry.insert("kind".to_owned(), Json::Str(l.kind.clone()));
                            for (k, v) in [
                                ("count", l.count),
                                ("p50-us", l.p50_us),
                                ("p90-us", l.p90_us),
                                ("p99-us", l.p99_us),
                            ] {
                                entry.insert(k.to_owned(), Json::Num(v as f64));
                            }
                            Json::Obj(entry)
                        })
                        .collect(),
                ),
            );
        }
        map.insert("stats".to_owned(), Json::Obj(counters));
    }
    if let Response::Profile(profile) = resp {
        map.insert("profile".to_owned(), encode_profile(profile));
    }
    Json::Obj(map).render()
}

/// Encodes an attribution table losslessly: each label maps to its raw
/// counters and histograms, buckets sparse (only nonzero, keyed by
/// bucket index). [`decode_profile`] rebuilds the exact table.
fn encode_profile(profile: &telemetry::Profile) -> Json {
    let mut rows = BTreeMap::new();
    for (label, metrics) in profile.rows() {
        let mut row = BTreeMap::new();
        let counters: BTreeMap<String, Json> = metrics
            .counters()
            .map(|(name, v)| (name.to_owned(), Json::Num(v as f64)))
            .collect();
        if !counters.is_empty() {
            row.insert("counters".to_owned(), Json::Obj(counters));
        }
        let hists: BTreeMap<String, Json> = metrics
            .hists()
            .map(|(name, h)| {
                let mut entry = BTreeMap::new();
                for (k, v) in [
                    ("count", h.count()),
                    ("sum", h.sum()),
                    ("min", h.min()),
                    ("max", h.max()),
                ] {
                    entry.insert(k.to_owned(), Json::Num(v as f64));
                }
                let buckets: BTreeMap<String, Json> = h
                    .buckets()
                    .iter()
                    .enumerate()
                    .filter(|&(_, &n)| n > 0)
                    .map(|(i, &n)| (i.to_string(), Json::Num(n as f64)))
                    .collect();
                entry.insert("buckets".to_owned(), Json::Obj(buckets));
                (name.to_owned(), Json::Obj(entry))
            })
            .collect();
        if !hists.is_empty() {
            row.insert("hists".to_owned(), Json::Obj(hists));
        }
        rows.insert(label.to_owned(), Json::Obj(row));
    }
    Json::Obj(rows)
}

/// Rebuilds a [`telemetry::Profile`] from its wire object. Tolerant of
/// absent sections (a row may carry only counters or only histograms);
/// malformed entries decode as zero rather than failing the reply.
fn decode_profile(value: &Json) -> telemetry::Profile {
    let mut profile = telemetry::Profile::new();
    let Json::Obj(rows) = value else {
        return profile;
    };
    let num = |v: &Json| match v {
        Json::Num(n) if *n >= 0.0 => *n as u64,
        _ => 0,
    };
    for (label, row) in rows {
        if let Some(Json::Obj(counters)) = row.get("counters") {
            for (name, v) in counters {
                profile.incr(label, name, num(v));
            }
        }
        if let Some(Json::Obj(hists)) = row.get("hists") {
            for (name, entry) in hists {
                let field = |k: &str| entry.get(k).map(&num).unwrap_or(0);
                let mut buckets = [0u64; telemetry::hist::BUCKETS];
                if let Some(Json::Obj(sparse)) = entry.get("buckets") {
                    for (idx, n) in sparse {
                        if let Ok(i) = idx.parse::<usize>() {
                            if i < buckets.len() {
                                buckets[i] = num(n);
                            }
                        }
                    }
                }
                let h = telemetry::Histogram::from_parts(
                    field("count"),
                    field("sum"),
                    field("min"),
                    field("max"),
                    buckets,
                );
                profile.merge_hist(label, name, &h);
            }
        }
    }
    profile
}

/// Decodes a response line — the client half of [`encode_response`].
///
/// # Errors
///
/// Returns a description of the malformed line.
pub fn decode_response(line: &str) -> Result<WireReply, String> {
    let value = parse_json(line)?;
    let ok = value
        .get("ok")
        .and_then(Json::as_bool)
        .ok_or("response needs an \"ok\" boolean")?;
    let kind = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("response needs a \"kind\" string")?
        .to_owned();
    let lines = match value.get("lines") {
        None => Vec::new(),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|l| l.as_str().map(str::to_owned).ok_or("lines must be strings"))
            .collect::<Result<_, _>>()?,
        Some(_) => return Err("lines must be an array".into()),
    };
    let error = value.get("error").and_then(Json::as_str).map(str::to_owned);
    let stats = value.get("stats").map(|s| {
        let count = |k: &str| s.get(k).and_then(Json::as_usize).unwrap_or(0);
        let memo_hits_by_worker = match s.get("memo-hits-by-worker") {
            Some(Json::Arr(items)) => items.iter().filter_map(Json::as_usize).collect(),
            _ => Vec::new(),
        };
        let latency = match s.get("latency") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|entry| {
                    let num = |k: &str| entry.get(k).and_then(Json::as_usize).unwrap_or(0) as u64;
                    KindLatency {
                        kind: entry
                            .get("kind")
                            .and_then(Json::as_str)
                            .unwrap_or("")
                            .to_owned(),
                        count: num("count"),
                        p50_us: num("p50-us"),
                        p90_us: num("p90-us"),
                        p99_us: num("p99-us"),
                    }
                })
                .collect(),
            _ => Vec::new(),
        };
        ServerStats {
            workers: count("workers"),
            requests: count("requests"),
            ok: count("ok"),
            errors: count("errors"),
            budget_rejections: count("budget-rejections"),
            goals: count("goals"),
            memo_hits: count("memo-hits"),
            micros: count("micros") as u128,
            memo_hits_by_worker,
            latency,
            trace_dropped: count("trace-dropped") as u64,
        }
    });
    let profile = value.get("profile").map(decode_profile);
    Ok(WireReply {
        id: value.get("id").cloned().unwrap_or(Json::Null),
        ok,
        kind,
        lines,
        error,
        stats,
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let cases = [
            r#"{"a":1,"b":[true,false,null],"c":"x\ny"}"#,
            r#"[]"#,
            r#"{}"#,
            r#"-3.5"#,
            r#""A\"quoted\"""#,
        ];
        for case in cases {
            let parsed = parse_json(case).unwrap_or_else(|e| panic!("{case}: {e}"));
            let rendered = parsed.render();
            assert_eq!(parse_json(&rendered).unwrap(), parsed, "{case}");
        }
        assert!(parse_json("{").is_err());
        assert!(parse_json("hello").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json(r#"{"a" 1}"#).is_err());
        assert!(parse_json("1e999").is_err(), "non-finite rejected");
    }

    #[test]
    fn requests_round_trip_through_the_wire() {
        let mut opts = RequestOptions::default();
        opts.budget.set("iters", 40).unwrap();
        opts.saturate = SaturateMode::Only;
        opts.session = false;
        opts.jobs = Some(2);
        let reqs = [
            Request::Prove {
                script: "table R(int);\nverify R == R;".into(),
                opts,
            },
            Request::Optimize {
                script: "table R(int);\nverify R == R;".into(),
                opts: RequestOptions::default(),
            },
            Request::Catalog {
                discover: true,
                opts: RequestOptions::default(),
            },
            Request::Discover {
                opts: RequestOptions::default(),
            },
            Request::Optimize {
                script: "table R(int);\nverify R == R;".into(),
                opts: RequestOptions {
                    mined_rules: true,
                    ..RequestOptions::default()
                },
            },
            Request::Mine { seed: 7, count: 4 },
            Request::Stats,
            Request::Metrics,
            Request::Profile,
            Request::Trace,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = encode_request(&Json::Num(7.0), "alice", &req);
            let (id, tenant, decoded) = decode_request(&line).unwrap();
            assert_eq!(id, Json::Num(7.0));
            assert_eq!(tenant, "alice");
            assert_eq!(decoded, req, "{line}");
        }
    }

    #[test]
    fn malformed_requests_are_described_not_crashed() {
        for bad in [
            "not json",
            "[1,2]",
            r#"{"cmd":"levitate"}"#,
            r#"{"cmd":"prove"}"#,
            r#"{"cmd":"prove","script":7}"#,
            r#"{"cmd":"prove","script":"x","budget":{"iters":0}}"#,
            r#"{"cmd":"prove","script":"x","budget":{"bogus":3}}"#,
            r#"{"cmd":"prove","script":"x","saturate":"sideways"}"#,
            r#"{"cmd":"prove","script":"x","jobs":-1}"#,
            r#"{"cmd":"mine","count":0}"#,
            r#"{"cmd":"mine","seed":-4}"#,
            r#"{"cmd":"optimize","script":"x","mined-rules":"yes"}"#,
        ] {
            assert!(decode_request(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn responses_round_trip_including_stats() {
        let resp = Response::Error("boom".into());
        let reply = decode_response(&encode_response(&Json::Null, &resp)).unwrap();
        assert!(!reply.ok);
        assert_eq!(reply.kind, "error");
        assert_eq!(reply.error.as_deref(), Some("boom"));

        let stats = ServerStats {
            workers: 2,
            requests: 5,
            ok: 4,
            errors: 1,
            budget_rejections: 0,
            goals: 9,
            memo_hits: 3,
            micros: 1000,
            memo_hits_by_worker: vec![1, 2],
            latency: vec![KindLatency {
                kind: "prove".into(),
                count: 4,
                p50_us: 10,
                p90_us: 20,
                p99_us: 30,
            }],
            trace_dropped: 7,
        };
        let reply = decode_response(&encode_response(
            &Json::Num(1.0),
            &Response::Stats(stats.clone()),
        ))
        .unwrap();
        assert_eq!(reply.stats, Some(stats.clone()));
        assert_eq!(reply.lines, Response::Stats(stats).render());
    }

    #[test]
    fn profile_responses_round_trip_losslessly() {
        let mut profile = telemetry::Profile::new();
        profile.incr("Distrib", "matches", 12);
        profile.incr("Distrib", "unions", 3);
        profile.incr("congruence", "unions", 5);
        profile.observe("Distrib", "apply_ns", 1_500);
        profile.observe("Distrib", "apply_ns", 40_000);
        profile.observe("session", "apply_ns", 9);
        let resp = Response::Profile(profile.clone());
        let reply = decode_response(&encode_response(&Json::Num(3.0), &resp)).unwrap();
        assert!(reply.ok);
        assert_eq!(reply.kind, "profile");
        assert_eq!(reply.profile, Some(profile.clone()));
        assert_eq!(reply.lines, Response::Profile(profile).render());
    }

    #[test]
    fn trace_responses_carry_the_rendered_buffer() {
        let text = "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}";
        let reply =
            decode_response(&encode_response(&Json::Null, &Response::Trace(text.into()))).unwrap();
        assert!(reply.ok);
        assert_eq!(reply.kind, "trace");
        assert_eq!(reply.lines, vec![text.to_owned()]);
    }

    #[test]
    fn metrics_responses_round_trip() {
        let text = "# TYPE dopcert_serve_requests counter\ndopcert_serve_requests 3\n";
        let resp = Response::Metrics(text.into());
        let reply = decode_response(&encode_response(&Json::Num(2.0), &resp)).unwrap();
        assert!(reply.ok);
        assert_eq!(reply.kind, "metrics");
        assert_eq!(reply.lines.join("\n"), text.trim_end_matches('\n'));
    }
}
