//! Differential testing of rewrite rules on random database instances.
//!
//! Soundness insurance orthogonal to the symbolic proofs: instantiate a
//! rule's schema parameters randomly, fill every table with a random
//! relation (respecting declared key constraints), give every
//! meta-variable a random — but deterministic and seeded — concrete
//! implementation, execute both sides with the K-relation evaluator, and
//! compare bag-for-bag. The list-semantics baseline is run as a second,
//! independently-implemented oracle on the left side.
//!
//! For a sound rule this must never fail; for the known-unsound rules of
//! [`crate::rules::wrong`] it must produce a counterexample.

use crate::rule::{InstanceConstraint, Rule, RuleInstance};
use hottsql::eval::{eval_query, Instance};
use relalg::generate::{GenConfig, Generator};
use relalg::{BaseType, Relation, Schema, Tuple, Value};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A found counterexample: the instance description and the two results.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Trial seed that produced the counterexample.
    pub seed: u64,
    /// Rendered description of the instance tables.
    pub instance: String,
    /// Rendered left result.
    pub lhs_result: String,
    /// Rendered right result.
    pub rhs_result: String,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "counterexample (seed {}):\n  tables: {}\n  lhs: {}\n  rhs: {}",
            self.seed, self.instance, self.lhs_result, self.rhs_result
        )
    }
}

/// Outcome of a differential-testing run.
#[derive(Clone, Debug)]
pub enum DiffOutcome {
    /// All trials agreed.
    Agreed {
        /// Number of trials executed.
        trials: usize,
    },
    /// A trial disagreed.
    Refuted(Box<Counterexample>),
    /// A trial failed to execute (reported, counts as a harness bug).
    Error(String),
}

impl DiffOutcome {
    /// Whether every trial agreed.
    pub fn agreed(&self) -> bool {
        matches!(self, DiffOutcome::Agreed { .. })
    }
}

/// Runs `trials` random instances of `rule` and compares both sides.
pub fn differential_test(rule: &Rule, trials: usize, base_seed: u64) -> DiffOutcome {
    for i in 0..trials {
        let seed = base_seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9);
        let inst_rule = rule.random(seed);
        match run_trial(&inst_rule, seed) {
            Ok(None) => {}
            Ok(Some(cex)) => return DiffOutcome::Refuted(Box::new(cex)),
            Err(e) => return DiffOutcome::Error(format!("trial {i} (seed {seed}): {e}")),
        }
    }
    DiffOutcome::Agreed { trials }
}

fn run_trial(inst_rule: &RuleInstance, seed: u64) -> Result<Option<Counterexample>, String> {
    let instance = build_instance(inst_rule, seed);
    let lhs = eval_query(
        &inst_rule.lhs,
        &inst_rule.env,
        &instance,
        &Schema::Empty,
        &Tuple::Unit,
    )
    .map_err(|e| format!("lhs: {e}"))?;
    let rhs = eval_query(
        &inst_rule.rhs,
        &inst_rule.env,
        &instance,
        &Schema::Empty,
        &Tuple::Unit,
    )
    .map_err(|e| format!("rhs: {e}"))?;
    // Second oracle: the list-semantics evaluation of the lhs must agree
    // with the K-relation evaluation bag-wise.
    let lhs_list = listsem::eval_query_list(
        &inst_rule.lhs,
        &inst_rule.env,
        &instance,
        &Schema::Empty,
        &Tuple::Unit,
    )
    .map_err(|e| format!("listsem lhs: {e}"))?;
    let lhs_as_rel = Relation::from_tuples(lhs.schema().clone(), lhs_list)
        .map_err(|e| format!("listsem conversion: {e}"))?;
    if !lhs_as_rel.bag_eq(&lhs) {
        return Err("list semantics disagrees with K-relation semantics".into());
    }
    if lhs.bag_eq(&rhs) {
        Ok(None)
    } else {
        let tables: Vec<String> = instance
            .tables
            .iter()
            .map(|(n, r)| format!("{n} = {r:?}"))
            .collect();
        Ok(Some(Counterexample {
            seed,
            instance: tables.join("; "),
            lhs_result: format!("{lhs:?}"),
            rhs_result: format!("{rhs:?}"),
        }))
    }
}

/// Deterministic hash of anything hashable, salted.
fn salted_hash<T: Hash>(value: &T, salt: u64) -> u64 {
    let mut h = DefaultHasher::new();
    salt.hash(&mut h);
    value.hash(&mut h);
    h.finish()
}

/// Produces a deterministic pseudo-random value of the given type from a
/// hash (small domains, matching the relation generator, so predicates
/// and joins actually fire).
fn value_from_hash(h: u64, ty: BaseType) -> Value {
    match ty {
        BaseType::Int => Value::Int((h % 4) as i64),
        BaseType::Bool => Value::Bool(h.is_multiple_of(2)),
        BaseType::Str => {
            let letters = ["a", "b", "c"];
            Value::str(letters[(h % 3) as usize])
        }
    }
}

/// Builds a deterministic tuple of `schema` from an input tuple hash.
fn tuple_from_hash(input: &Tuple, schema: &Schema, salt: u64) -> Tuple {
    match schema {
        Schema::Empty => Tuple::Unit,
        Schema::Leaf(t) => Tuple::Leaf(value_from_hash(salted_hash(input, salt), *t)),
        Schema::Node(l, r) => Tuple::pair(
            tuple_from_hash(input, l, salt.wrapping_mul(31).wrapping_add(1)),
            tuple_from_hash(input, r, salt.wrapping_mul(31).wrapping_add(2)),
        ),
    }
}

/// Builds a concrete [`Instance`] for a rule instantiation: random tables
/// (keyed where required) and deterministic hashed implementations for
/// every meta-variable.
pub fn build_instance(rule: &RuleInstance, seed: u64) -> Instance {
    let mut gen = Generator::with_config(
        seed,
        GenConfig {
            max_support: 5,
            max_multiplicity: 3,
            int_range: (0, 3),
            max_schema_width: 3,
        },
    );
    let mut instance = Instance::new();
    // Tables.
    for (name, schema) in rule.env.tables() {
        let keyed = rule.constraints.iter().any(|c| match c {
            InstanceConstraint::KeyedByFirst { table, .. } => table == name,
        });
        let rel = if keyed {
            gen.keyed_relation(schema)
        } else {
            gen.relation(schema)
        };
        instance = instance.with_table(name.clone(), rel);
    }
    // Key projections for keyed tables.
    for c in &rule.constraints {
        let InstanceConstraint::KeyedByFirst { key_proj, .. } = c;
        instance = instance.with_proj(key_proj.clone(), |t: &Tuple| {
            t.fst().cloned().expect("keyed tuples are pairs")
        });
    }
    // Remaining projection meta-variables: deterministic hash functions.
    for (name, (_, output)) in rule.env.projs() {
        if instance.projs.contains_key(name) {
            continue;
        }
        let salt = salted_hash(&name, seed);
        let out_schema = output.clone();
        instance = instance.with_proj(name.clone(), move |t: &Tuple| {
            tuple_from_hash(t, &out_schema, salt)
        });
    }
    // Predicate meta-variables.
    for (name, _) in rule.env.preds() {
        let salt = salted_hash(&name, seed ^ 0xBEEF);
        instance = instance.with_pred(name.clone(), move |t: &Tuple| {
            salted_hash(t, salt).is_multiple_of(2)
        });
    }
    // Expression meta-variables.
    for (name, (_, ty)) in rule.env.exprs() {
        let salt = salted_hash(&name, seed ^ 0xCAFE);
        let ty = *ty;
        instance = instance.with_expr(name.clone(), move |t: &Tuple| {
            value_from_hash(salted_hash(t, salt), ty)
        });
    }
    // Uninterpreted scalar functions (including nullary "constants").
    for (name, ty) in rule.env.fns() {
        let salt = salted_hash(&name, seed ^ 0xF00D);
        instance = instance.with_fn(name.clone(), move |vs: &[Value]| {
            value_from_hash(salted_hash(&vs, salt), ty)
        });
    }
    // Uninterpreted predicates.
    for (name, _) in rule.env.upreds() {
        let salt = salted_hash(&name, seed ^ 0xD1CE);
        instance = instance.with_upred(name.clone(), move |vs: &[Value]| {
            salted_hash(&vs, salt).is_multiple_of(2)
        });
    }
    instance
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    const TRIALS: usize = 24;

    #[test]
    fn sound_rules_pass_differential_testing() {
        for rule in catalog::sound_rules() {
            let outcome = differential_test(&rule, TRIALS, 0xDA7A);
            match &outcome {
                DiffOutcome::Agreed { .. } => {}
                DiffOutcome::Refuted(cex) => {
                    panic!("sound rule {} refuted: {cex}", rule.name)
                }
                DiffOutcome::Error(e) => panic!("rule {} errored: {e}", rule.name),
            }
        }
    }

    #[test]
    fn unsound_rules_are_refuted() {
        for rule in catalog::unsound_rules() {
            let outcome = differential_test(&rule, 200, 0x5EED);
            assert!(
                matches!(outcome, DiffOutcome::Refuted(_)),
                "unsound rule {} was not refuted: {outcome:?}",
                rule.name
            );
        }
    }

    #[test]
    fn instances_are_deterministic() {
        let rule = &catalog::sound_rules()[0];
        let a = build_instance(&rule.random(7), 7);
        let b = build_instance(&rule.random(7), 7);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
