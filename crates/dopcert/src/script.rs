//! The DOPCERT script language: a small declarative front end for
//! checking query pairs, in the spirit of the Cosette web tool the
//! paper's artifact shipped (<http://dopcert.cs.washington.edu>).
//!
//! A script declares tables and poses verification goals:
//!
//! ```text
//! -- comments run to end of line
//! table R(int, int);
//! table S(int);
//!
//! verify SELECT Right.Left FROM R
//!     == SELECT Right.Left FROM R;
//!
//! refute DISTINCT (R UNION ALL R) == R;   -- expect a counterexample
//! ```
//!
//! Each `verify` goal is checked with the full pipeline: conjunctive-
//! query decision procedure first, then denotation + tactics; on failure
//! a counterexample search runs. `refute` goals assert the pair is
//! *inequivalent* and must produce a counterexample.

use crate::prove::{decide_cq, verify_instance, ProveOptions, VerifyMethod};
use crate::rule::RuleInstance;
use hottsql::ast::Query;
use hottsql::env::QueryEnv;
use hottsql::error::HottsqlError;
use hottsql::parse::parse_query;
use relalg::{BaseType, Schema};
use std::fmt;

/// A parsed script.
#[derive(Clone, Debug, Default)]
pub struct Script {
    /// Declared tables.
    pub env: QueryEnv,
    /// Goals in declaration order.
    pub goals: Vec<Goal>,
}

/// One goal.
#[derive(Clone, Debug)]
pub struct Goal {
    /// `verify` (must be equivalent) or `refute` (must differ).
    pub expect_equivalent: bool,
    /// Left query.
    pub lhs: Query,
    /// Right query.
    pub rhs: Query,
}

/// Result of checking one goal.
#[derive(Clone, Debug)]
pub enum GoalOutcome {
    /// Proved equivalent.
    Proved {
        /// Which prover closed it.
        method: VerifyMethod,
        /// Proof-trace length.
        steps: usize,
    },
    /// Refuted with a counterexample.
    Refuted {
        /// Rendered counterexample.
        counterexample: String,
    },
    /// Neither proved nor refuted (equivalence is undecidable in
    /// general — Fig. 9 last row).
    Unknown {
        /// The prover's diagnostics.
        diagnostics: String,
    },
}

impl GoalOutcome {
    /// Whether the outcome satisfies the goal's expectation.
    pub fn satisfies(&self, expect_equivalent: bool) -> bool {
        match self {
            GoalOutcome::Proved { .. } => expect_equivalent,
            GoalOutcome::Refuted { .. } => !expect_equivalent,
            GoalOutcome::Unknown { .. } => false,
        }
    }
}

impl fmt::Display for GoalOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoalOutcome::Proved { method, steps } => {
                write!(f, "proved by {method} in {steps} steps")
            }
            GoalOutcome::Refuted { counterexample } => {
                write!(f, "refuted: {counterexample}")
            }
            GoalOutcome::Unknown { diagnostics } => write!(f, "unknown: {diagnostics}"),
        }
    }
}

/// Parses a script.
///
/// # Errors
///
/// Returns a [`HottsqlError::Parse`] describing the first problem.
pub fn parse_script(input: &str) -> Result<Script, HottsqlError> {
    let mut script = Script::default();
    // Strip comments.
    let cleaned: String = input
        .lines()
        .map(|l| l.split("--").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");
    for (i, stmt) in cleaned.split(';').enumerate() {
        let stmt = stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("table") {
            let (name, cols) = parse_table_decl(rest).map_err(|m| HottsqlError::Parse {
                message: format!("statement {}: {m}", i + 1),
                offset: 0,
            })?;
            script.env = script.env.with_table(name, Schema::flat(cols));
        } else if let Some(rest) = stmt
            .strip_prefix("verify")
            .map(|r| (true, r))
            .or_else(|| stmt.strip_prefix("refute").map(|r| (false, r)))
        {
            let (expect_equivalent, body) = rest;
            let Some((l, r)) = body.split_once("==") else {
                return Err(HottsqlError::Parse {
                    message: format!("statement {}: goal needs `==`", i + 1),
                    offset: 0,
                });
            };
            script.goals.push(Goal {
                expect_equivalent,
                lhs: parse_query(l.trim())?,
                rhs: parse_query(r.trim())?,
            });
        } else {
            return Err(HottsqlError::Parse {
                message: format!(
                    "statement {}: expected `table`, `verify`, or `refute`",
                    i + 1
                ),
                offset: 0,
            });
        }
    }
    Ok(script)
}

fn parse_table_decl(rest: &str) -> Result<(String, Vec<BaseType>), String> {
    let rest = rest.trim();
    let open = rest.find('(').ok_or("missing ( in table declaration")?;
    let close = rest.rfind(')').ok_or("missing ) in table declaration")?;
    let name = rest[..open].trim();
    if name.is_empty() {
        return Err("missing table name".into());
    }
    let mut cols = Vec::new();
    for c in rest[open + 1..close].split(',') {
        match c.trim() {
            "int" => cols.push(BaseType::Int),
            "bool" => cols.push(BaseType::Bool),
            "string" => cols.push(BaseType::Str),
            other => return Err(format!("unknown column type {other:?}")),
        }
    }
    if cols.is_empty() {
        return Err("table needs at least one column".into());
    }
    Ok((name.to_owned(), cols))
}

/// Checks one goal with the full pipeline (default options: tactics
/// with saturation fallback).
pub fn check_goal(env: &QueryEnv, goal: &Goal) -> GoalOutcome {
    let inst = RuleInstance::plain(env.clone(), goal.lhs.clone(), goal.rhs.clone());
    let decision = decide_cq(&inst);
    check_goal_inst(env, goal, inst, decision, ProveOptions::default())
}

/// Entry point of the batched path: the CQ decision was precomputed by
/// [`run_script`]'s batch pass (`Some` = decided, `None` = outside the
/// conjunctive fragment).
fn check_goal_with_decision(
    env: &QueryEnv,
    goal: &Goal,
    cq_decision: Option<bool>,
    opts: ProveOptions,
) -> GoalOutcome {
    let inst = RuleInstance::plain(env.clone(), goal.lhs.clone(), goal.rhs.clone());
    check_goal_inst(env, goal, inst, cq_decision, opts)
}

/// The shared tail: instance already built, CQ decision already known.
fn check_goal_inst(
    env: &QueryEnv,
    goal: &Goal,
    inst: RuleInstance,
    cq_decision: Option<bool>,
    opts: ProveOptions,
) -> GoalOutcome {
    // 1. Decision procedure for the conjunctive fragment.
    if let Some(decided) = cq_decision {
        if decided {
            return GoalOutcome::Proved {
                method: VerifyMethod::CqDecision,
                steps: 1,
            };
        }
        // CQ-decidable and NOT equivalent: hunt a witness instance.
        if let Some(cex) = hunt_counterexample(env, goal) {
            return GoalOutcome::Refuted {
                counterexample: cex,
            };
        }
        return GoalOutcome::Unknown {
            diagnostics: "decision procedure says inequivalent, \
                          but no small counterexample found"
                .into(),
        };
    }
    // 2. General prover (tactics and/or saturation per `opts`).
    match verify_instance(&inst, None, opts) {
        Ok((method, steps, _)) => GoalOutcome::Proved { method, steps },
        Err((diag, _)) => match hunt_counterexample(env, goal) {
            Some(cex) => GoalOutcome::Refuted {
                counterexample: cex,
            },
            None => GoalOutcome::Unknown { diagnostics: diag },
        },
    }
}

/// Random-instance counterexample search (script schemas are concrete,
/// so instances are built directly from the environment).
fn hunt_counterexample(env: &QueryEnv, goal: &Goal) -> Option<String> {
    let rule_inst = RuleInstance::plain(env.clone(), goal.lhs.clone(), goal.rhs.clone());
    for seed in 0..400u64 {
        let instance = crate::difftest::build_instance(&rule_inst, seed);
        let l = hottsql::eval::eval_query(
            &goal.lhs,
            env,
            &instance,
            &Schema::Empty,
            &relalg::Tuple::Unit,
        )
        .ok()?;
        let r = hottsql::eval::eval_query(
            &goal.rhs,
            env,
            &instance,
            &Schema::Empty,
            &relalg::Tuple::Unit,
        )
        .ok()?;
        if !l.bag_eq(&r) {
            let tables: Vec<String> = instance
                .tables
                .iter()
                .map(|(n, rel)| format!("{n} = {rel:?}"))
                .collect();
            return Some(format!(
                "on {} the sides give {l:?} vs {r:?}",
                tables.join(", ")
            ));
        }
    }
    None
}

/// Runs a whole script with default options ([`run_script_with`]).
pub fn run_script(script: &Script) -> Vec<GoalOutcome> {
    run_script_with(script, ProveOptions::default())
}

/// Runs a whole script; returns per-goal outcomes.
///
/// The conjunctive-query fragment is decided in one batch: every
/// CQ-translatable side across all goals is indexed once
/// ([`cq::containment::equivalent_set_batch`]), so a script with many
/// goals over the same tables pays the homomorphism-target indexing per
/// query, not per goal. Non-CQ goals go to the prover configured by
/// `opts` — the CLI's `prove --saturate` mode routes every such goal
/// through equality saturation alone.
pub fn run_script_with(script: &Script, opts: ProveOptions) -> Vec<GoalOutcome> {
    // Translate every goal side once; collect the CQ-decidable goals.
    let mut queries = Vec::new();
    let mut pair_of_goal: Vec<Option<(usize, usize)>> = Vec::new();
    for goal in &script.goals {
        let l = cq::translate::from_query(&goal.lhs, &script.env);
        let r = cq::translate::from_query(&goal.rhs, &script.env);
        pair_of_goal.push(match (l, r) {
            (Some(l), Some(r)) => {
                queries.push(l);
                queries.push(r);
                Some((queries.len() - 2, queries.len() - 1))
            }
            _ => None,
        });
    }
    let pairs: Vec<(usize, usize)> = pair_of_goal.iter().flatten().copied().collect();
    let mut decisions = cq::containment::equivalent_set_batch(&queries, &pairs).into_iter();
    script
        .goals
        .iter()
        .zip(&pair_of_goal)
        .map(|(goal, cq_pair)| {
            let decision = cq_pair.map(|_| decisions.next().expect("one decision per CQ goal"));
            check_goal_with_decision(&script.env, goal, decision, opts)
        })
        .collect()
}

/// Convenience: run all built-in catalog rules as if they were a script
/// (used by the CLI's `--catalog` mode). Delegates to the parallel
/// batch engine — the sequential loop this function used to be lives on
/// only as `Engine::with_threads(1)`.
pub fn run_catalog() -> Vec<(String, bool)> {
    crate::engine::Engine::new().check_catalog(&crate::catalog::all_rules())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = "\
-- the Sec. 2 example
table R(int, int);

verify DISTINCT SELECT Right.Left FROM R
    == DISTINCT SELECT Right.Left.Left FROM R, R
       WHERE Right.Left.Left = Right.Right.Left;

refute DISTINCT SELECT Right.Left FROM R
    == SELECT Right.Left FROM R;
";

    #[test]
    fn parses_tables_and_goals() {
        let s = parse_script(SCRIPT).unwrap();
        assert!(s.env.table("R").is_some());
        assert_eq!(s.goals.len(), 2);
        assert!(s.goals[0].expect_equivalent);
        assert!(!s.goals[1].expect_equivalent);
    }

    #[test]
    fn runs_the_sec2_script() {
        let s = parse_script(SCRIPT).unwrap();
        let outcomes = run_script(&s);
        assert!(
            matches!(outcomes[0], GoalOutcome::Proved { .. }),
            "{}",
            outcomes[0]
        );
        assert!(
            matches!(outcomes[1], GoalOutcome::Refuted { .. }),
            "{}",
            outcomes[1]
        );
        assert!(outcomes[0].satisfies(true));
        assert!(outcomes[1].satisfies(false));
    }

    #[test]
    fn general_prover_reached_for_non_cq_goals() {
        let s = parse_script("table R(int);\nverify (R UNION ALL R) == (R UNION ALL R);").unwrap();
        let outcomes = run_script(&s);
        match &outcomes[0] {
            GoalOutcome::Proved { method, .. } => {
                assert!(matches!(method, VerifyMethod::Tactic(_)));
            }
            other => panic!("expected tactic proof, got {other}"),
        }
    }

    #[test]
    fn unknown_for_unprovable_but_true_goals_is_honest() {
        // Two different tables: inequivalent; refuted by search.
        let s = parse_script("table R(int);\ntable S(int);\nrefute R == S;").unwrap();
        let outcomes = run_script(&s);
        assert!(outcomes[0].satisfies(false), "{}", outcomes[0]);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_script("tble R(int);").is_err());
        assert!(parse_script("table R();").is_err());
        assert!(parse_script("table R(int); verify R;").is_err());
        assert!(parse_script("table R(float);").is_err());
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let s = parse_script("-- nothing\n  \ntable R(int); -- trailing\n").unwrap();
        assert_eq!(s.goals.len(), 0);
        assert!(s.env.table("R").is_some());
    }
}
