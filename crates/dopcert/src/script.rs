//! The DOPCERT script language: a small declarative front end for
//! checking query pairs, in the spirit of the Cosette web tool the
//! paper's artifact shipped (<http://dopcert.cs.washington.edu>).
//!
//! A script declares tables, optional statistics, and poses
//! verification goals:
//!
//! ```text
//! -- comments run to end of line
//! table R(a int, b int);      -- column names are optional
//! table S(int);
//!
//! rows R 1e6;                 -- declared cardinality for `optimize`
//! distinct R.a 100;           -- per-column distinct-value estimate
//! distinct S.1 50;            -- …columns also addressable by position
//!
//! budget iters 40;            -- saturation-budget directives; knobs
//! budget nodes 20000;         --   are iters, nodes, oracle-calls.
//!                             --   Explicit CLI/request knobs override
//!                             --   the script's.
//!
//! verify SELECT Right.Left FROM R
//!     == SELECT Right.Left FROM R;
//!
//! refute DISTINCT (R UNION ALL R) == R;   -- expect a counterexample
//! ```
//!
//! Each `verify` goal is checked with the full pipeline: conjunctive-
//! query decision procedure first, then denotation + tactics; on failure
//! a counterexample search runs. `refute` goals assert the pair is
//! *inequivalent* and must produce a counterexample.

use crate::api::{BudgetSpec, Prover};
use crate::prove::{decide_cq, verify_instance_session, ProveOptions, VerifyMethod};
use crate::rule::RuleInstance;
use crate::session::ProveSession;
use hottsql::ast::Query;
use hottsql::env::QueryEnv;
use hottsql::error::HottsqlError;
use hottsql::parse::parse_query;
use relalg::stats::Statistics;
use relalg::{BaseType, Schema};
use std::collections::BTreeMap;
use std::fmt;
use uninomial::normalize::NormCache;

/// A parsed script.
#[derive(Clone, Debug, Default)]
pub struct Script {
    /// Declared tables.
    pub env: QueryEnv,
    /// Goals in declaration order.
    pub goals: Vec<Goal>,
    /// Declared statistics (`rows R 1e6;`, `distinct R.a 100;`) for the
    /// cost-based optimizer.
    pub stats: Statistics,
    /// Declared column names per table (empty when a table was declared
    /// with bare types).
    pub columns: BTreeMap<String, Vec<String>>,
    /// Saturation-budget directives (`budget iters 40;`), resolved
    /// against the defaults by the caller — explicit CLI flags and
    /// serve-request knobs take precedence over these.
    pub budget: BudgetSpec,
}

/// One goal.
#[derive(Clone, Debug)]
pub struct Goal {
    /// `verify` (must be equivalent) or `refute` (must differ).
    pub expect_equivalent: bool,
    /// Left query.
    pub lhs: Query,
    /// Right query.
    pub rhs: Query,
}

/// Result of checking one goal.
#[derive(Clone, Debug)]
pub enum GoalOutcome {
    /// Proved equivalent.
    Proved {
        /// Which prover closed it.
        method: VerifyMethod,
        /// Proof-trace length.
        steps: usize,
    },
    /// Refuted with a counterexample.
    Refuted {
        /// Rendered counterexample.
        counterexample: String,
    },
    /// Neither proved nor refuted (equivalence is undecidable in
    /// general — Fig. 9 last row).
    Unknown {
        /// The prover's diagnostics.
        diagnostics: String,
    },
}

impl GoalOutcome {
    /// Whether the outcome satisfies the goal's expectation.
    pub fn satisfies(&self, expect_equivalent: bool) -> bool {
        match self {
            GoalOutcome::Proved { .. } => expect_equivalent,
            GoalOutcome::Refuted { .. } => !expect_equivalent,
            GoalOutcome::Unknown { .. } => false,
        }
    }
}

impl fmt::Display for GoalOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoalOutcome::Proved { method, steps } => {
                write!(f, "proved by {method} in {steps} steps")
            }
            GoalOutcome::Refuted { counterexample } => {
                write!(f, "refuted: {counterexample}")
            }
            GoalOutcome::Unknown { diagnostics } => write!(f, "unknown: {diagnostics}"),
        }
    }
}

/// Parses a script.
///
/// # Errors
///
/// Returns a [`HottsqlError::Parse`] describing the first problem.
pub fn parse_script(input: &str) -> Result<Script, HottsqlError> {
    let mut script = Script::default();
    // Strip comments.
    let cleaned: String = input
        .lines()
        .map(|l| l.split("--").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");
    for (i, stmt) in cleaned.split(';').enumerate() {
        let stmt = stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        let err = |m: String| HottsqlError::Parse {
            message: format!("statement {}: {m}", i + 1),
            offset: 0,
        };
        if let Some(rest) = stmt.strip_prefix("table") {
            let (name, cols, col_names) = parse_table_decl(rest).map_err(&err)?;
            script.env = script.env.with_table(&name, Schema::flat(cols));
            if !col_names.is_empty() {
                script.columns.insert(name, col_names);
            }
        } else if let Some(rest) = stmt.strip_prefix("rows ") {
            let (name, value) = parse_rows_decl(rest).map_err(&err)?;
            if script.env.table(&name).is_none() {
                return Err(err(format!(
                    "rows declaration for undeclared table {name:?}"
                )));
            }
            script.stats = std::mem::take(&mut script.stats).with_rows(name, value);
        } else if let Some(rest) = stmt.strip_prefix("distinct ") {
            let (name, col, value) = parse_distinct_decl(rest, &script).map_err(&err)?;
            let width = script.env.table(&name).map(|s| s.width()).ok_or_else(|| {
                err(format!(
                    "distinct declaration for undeclared table {name:?}"
                ))
            })?;
            script.stats =
                std::mem::take(&mut script.stats).with_column_distinct(name, width, col, value);
        } else if let Some(rest) = stmt.strip_prefix("budget ") {
            let mut parts = rest.split_whitespace();
            let (Some(knob), Some(value), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(err("budget directive needs `budget <knob> <value>`".into()));
            };
            // BudgetSpec is the single parse/validate point for budget
            // knobs — scripts share it with CLI flags and serve
            // requests.
            script.budget.parse_set(knob, value).map_err(&err)?;
        } else if let Some(rest) = stmt
            .strip_prefix("verify")
            .map(|r| (true, r))
            .or_else(|| stmt.strip_prefix("refute").map(|r| (false, r)))
        {
            let (expect_equivalent, body) = rest;
            let Some((l, r)) = body.split_once("==") else {
                return Err(HottsqlError::Parse {
                    message: format!("statement {}: goal needs `==`", i + 1),
                    offset: 0,
                });
            };
            script.goals.push(Goal {
                expect_equivalent,
                lhs: parse_query(l.trim())?,
                rhs: parse_query(r.trim())?,
            });
        } else {
            return Err(err(
                "expected `table`, `rows`, `distinct`, `verify`, or `refute`".into(),
            ));
        }
    }
    Ok(script)
}

/// Parses `R(int, int)` or `R(a int, b int)` — column names optional,
/// but all-or-nothing per table.
fn parse_table_decl(rest: &str) -> Result<(String, Vec<BaseType>, Vec<String>), String> {
    let rest = rest.trim();
    let open = rest.find('(').ok_or("missing ( in table declaration")?;
    let close = rest.rfind(')').ok_or("missing ) in table declaration")?;
    let name = rest[..open].trim();
    if name.is_empty() {
        return Err("missing table name".into());
    }
    let mut cols = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for c in rest[open + 1..close].split(',') {
        let mut parts = c.split_whitespace();
        let (first, second) = (parts.next(), parts.next());
        if parts.next().is_some() {
            return Err(format!("malformed column declaration {:?}", c.trim()));
        }
        let (col_name, ty) = match (first, second) {
            (Some(ty), None) => (None, ty),
            (Some(name), Some(ty)) => (Some(name), ty),
            _ => return Err("empty column declaration".into()),
        };
        match ty {
            "int" => cols.push(BaseType::Int),
            "bool" => cols.push(BaseType::Bool),
            "string" => cols.push(BaseType::Str),
            other => return Err(format!("unknown column type {other:?}")),
        }
        if let Some(n) = col_name {
            names.push(n.to_owned());
        }
    }
    if cols.is_empty() {
        return Err("table needs at least one column".into());
    }
    if !names.is_empty() && names.len() != cols.len() {
        return Err("either all columns are named or none".into());
    }
    Ok((name.to_owned(), cols, names))
}

/// Parses `R 1e6` (a table name and a row-count estimate).
fn parse_rows_decl(rest: &str) -> Result<(String, f64), String> {
    let mut parts = rest.split_whitespace();
    let (Some(name), Some(value), None) = (parts.next(), parts.next(), parts.next()) else {
        return Err("rows declaration needs `rows <table> <count>`".into());
    };
    let value: f64 = value
        .parse()
        .map_err(|_| format!("invalid row count {value:?}"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!(
            "row count must be finite and non-negative, got {value}"
        ));
    }
    Ok((name.to_owned(), value))
}

/// Parses `R.a 100` (a column reference and a distinct-value estimate).
/// Columns are addressed by declared name (`table R(a int, …)`) or by
/// 1-based position (`R.1`).
fn parse_distinct_decl(rest: &str, script: &Script) -> Result<(String, usize, f64), String> {
    let mut parts = rest.split_whitespace();
    let (Some(colref), Some(value), None) = (parts.next(), parts.next(), parts.next()) else {
        return Err("distinct declaration needs `distinct <table>.<column> <count>`".into());
    };
    let (table, col) = colref
        .split_once('.')
        .ok_or_else(|| format!("column reference {colref:?} needs the form table.column"))?;
    let value: f64 = value
        .parse()
        .map_err(|_| format!("invalid distinct count {value:?}"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!(
            "distinct count must be finite and non-negative, got {value}"
        ));
    }
    let index = if let Ok(pos) = col.parse::<usize>() {
        if pos == 0 {
            return Err("column positions are 1-based".into());
        }
        pos - 1
    } else {
        let names = script
            .columns
            .get(table)
            .ok_or_else(|| format!("table {table:?} declares no column names"))?;
        names
            .iter()
            .position(|n| n == col)
            .ok_or_else(|| format!("table {table:?} has no column named {col:?}"))?
    };
    let width = script
        .env
        .table(table)
        .map(|s| s.width())
        .ok_or_else(|| format!("distinct declaration for undeclared table {table:?}"))?;
    if index >= width {
        return Err(format!(
            "column {} is out of range for {table:?} ({width} columns)",
            index + 1
        ));
    }
    Ok((table.to_owned(), index, value))
}

/// Checks one goal with the full pipeline (default options: tactics
/// with saturation fallback).
pub fn check_goal(env: &QueryEnv, goal: &Goal) -> GoalOutcome {
    let inst = RuleInstance::plain(env.clone(), goal.lhs.clone(), goal.rhs.clone());
    let decision = decide_cq(&inst);
    check_goal_inst(
        env,
        goal,
        inst,
        decision,
        None,
        None,
        ProveOptions::default(),
    )
}

/// The shared tail: instance already built, CQ decision already known,
/// the script's persistent cache and session (if any) threaded through.
fn check_goal_inst(
    env: &QueryEnv,
    goal: &Goal,
    inst: RuleInstance,
    cq_decision: Option<bool>,
    cache: Option<&mut NormCache>,
    session: Option<&mut ProveSession>,
    opts: ProveOptions,
) -> GoalOutcome {
    // 1. Decision procedure for the conjunctive fragment.
    if let Some(decided) = cq_decision {
        if decided {
            return GoalOutcome::Proved {
                method: VerifyMethod::CqDecision,
                steps: 1,
            };
        }
        // CQ-decidable and NOT equivalent: hunt a witness instance.
        if let Some(cex) = hunt_counterexample(env, goal) {
            return GoalOutcome::Refuted {
                counterexample: cex,
            };
        }
        return GoalOutcome::Unknown {
            diagnostics: "decision procedure says inequivalent, \
                          but no small counterexample found"
                .into(),
        };
    }
    // 2. General prover (tactics and/or saturation per `opts`).
    match verify_instance_session(&inst, cache, session, opts) {
        Ok((method, steps, _)) => GoalOutcome::Proved { method, steps },
        Err((diag, _)) => match hunt_counterexample(env, goal) {
            Some(cex) => GoalOutcome::Refuted {
                counterexample: cex,
            },
            None => GoalOutcome::Unknown { diagnostics: diag },
        },
    }
}

/// Random-instance counterexample search (script schemas are concrete,
/// so instances are built directly from the environment).
fn hunt_counterexample(env: &QueryEnv, goal: &Goal) -> Option<String> {
    let rule_inst = RuleInstance::plain(env.clone(), goal.lhs.clone(), goal.rhs.clone());
    for seed in 0..400u64 {
        let instance = crate::difftest::build_instance(&rule_inst, seed);
        let l = hottsql::eval::eval_query(
            &goal.lhs,
            env,
            &instance,
            &Schema::Empty,
            &relalg::Tuple::Unit,
        )
        .ok()?;
        let r = hottsql::eval::eval_query(
            &goal.rhs,
            env,
            &instance,
            &Schema::Empty,
            &relalg::Tuple::Unit,
        )
        .ok()?;
        if !l.bag_eq(&r) {
            let tables: Vec<String> = instance
                .tables
                .iter()
                .map(|(n, rel)| format!("{n} = {rel:?}"))
                .collect();
            return Some(format!(
                "on {} the sides give {l:?} vs {r:?}",
                tables.join(", ")
            ));
        }
    }
    None
}

/// Runs a whole script with default options ([`run_script_with`]).
pub fn run_script(script: &Script) -> Vec<GoalOutcome> {
    run_script_with(script, ProveOptions::default())
}

/// Runs a whole script; returns per-goal outcomes.
///
/// The conjunctive-query fragment is decided in one batch: every
/// CQ-translatable side across all goals is indexed once
/// ([`cq::containment::equivalent_set_batch`]), so a script with many
/// goals over the same tables pays the homomorphism-target indexing per
/// query, not per goal. Non-CQ goals go to the prover configured by
/// `opts` — the CLI's `prove --saturate` mode routes every such goal
/// through equality saturation alone.
pub fn run_script_with(script: &Script, opts: ProveOptions) -> Vec<GoalOutcome> {
    // One normalization cache and (unless disabled) one persistent
    // proving session serve every goal of the script — outcomes are
    // identical to checking each goal alone.
    run_script_in(script, &mut Prover::new(opts))
}

/// Runs a script's goals on an existing [`Prover`] — the resident path
/// the serve daemon's workers use, with the prover's cache and session
/// persisting across scripts. Outcomes are identical to
/// [`run_script_with`] on fresh state (the session-identity
/// guarantee).
pub fn run_script_in(script: &Script, prover: &mut Prover) -> Vec<GoalOutcome> {
    // Translate every goal side once; collect the CQ-decidable goals.
    let mut queries = Vec::new();
    let mut pair_of_goal: Vec<Option<(usize, usize)>> = Vec::new();
    for goal in &script.goals {
        let l = cq::translate::from_query(&goal.lhs, &script.env);
        let r = cq::translate::from_query(&goal.rhs, &script.env);
        pair_of_goal.push(match (l, r) {
            (Some(l), Some(r)) => {
                queries.push(l);
                queries.push(r);
                Some((queries.len() - 2, queries.len() - 1))
            }
            _ => None,
        });
    }
    let pairs: Vec<(usize, usize)> = pair_of_goal.iter().flatten().copied().collect();
    let mut decisions = cq::containment::equivalent_set_batch(&queries, &pairs).into_iter();
    let opts = prover.opts;
    script
        .goals
        .iter()
        .zip(&pair_of_goal)
        .map(|(goal, cq_pair)| {
            let decision = cq_pair.map(|_| decisions.next().expect("one decision per CQ goal"));
            let inst = RuleInstance::plain(script.env.clone(), goal.lhs.clone(), goal.rhs.clone());
            check_goal_inst(
                &script.env,
                goal,
                inst,
                decision,
                Some(&mut prover.cache),
                prover.session.as_mut(),
                opts,
            )
        })
        .collect()
}

/// Convenience: run all built-in catalog rules as if they were a script
/// (used by the CLI's `--catalog` mode). Delegates to the parallel
/// batch engine — the sequential loop this function used to be lives on
/// only as `Engine::with_threads(1)`.
pub fn run_catalog() -> Vec<(String, bool)> {
    crate::engine::Engine::new().check_catalog(&crate::catalog::all_rules())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = "\
-- the Sec. 2 example
table R(int, int);

verify DISTINCT SELECT Right.Left FROM R
    == DISTINCT SELECT Right.Left.Left FROM R, R
       WHERE Right.Left.Left = Right.Right.Left;

refute DISTINCT SELECT Right.Left FROM R
    == SELECT Right.Left FROM R;
";

    #[test]
    fn parses_tables_and_goals() {
        let s = parse_script(SCRIPT).unwrap();
        assert!(s.env.table("R").is_some());
        assert_eq!(s.goals.len(), 2);
        assert!(s.goals[0].expect_equivalent);
        assert!(!s.goals[1].expect_equivalent);
    }

    #[test]
    fn runs_the_sec2_script() {
        let s = parse_script(SCRIPT).unwrap();
        let outcomes = run_script(&s);
        assert!(
            matches!(outcomes[0], GoalOutcome::Proved { .. }),
            "{}",
            outcomes[0]
        );
        assert!(
            matches!(outcomes[1], GoalOutcome::Refuted { .. }),
            "{}",
            outcomes[1]
        );
        assert!(outcomes[0].satisfies(true));
        assert!(outcomes[1].satisfies(false));
    }

    #[test]
    fn general_prover_reached_for_non_cq_goals() {
        let s = parse_script("table R(int);\nverify (R UNION ALL R) == (R UNION ALL R);").unwrap();
        let outcomes = run_script(&s);
        match &outcomes[0] {
            GoalOutcome::Proved { method, .. } => {
                assert!(matches!(method, VerifyMethod::Tactic(_)));
            }
            other => panic!("expected tactic proof, got {other}"),
        }
    }

    #[test]
    fn unknown_for_unprovable_but_true_goals_is_honest() {
        // Two different tables: inequivalent; refuted by search.
        let s = parse_script("table R(int);\ntable S(int);\nrefute R == S;").unwrap();
        let outcomes = run_script(&s);
        assert!(outcomes[0].satisfies(false), "{}", outcomes[0]);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_script("tble R(int);").is_err());
        assert!(parse_script("table R();").is_err());
        assert!(parse_script("table R(int); verify R;").is_err());
        assert!(parse_script("table R(float);").is_err());
    }

    #[test]
    fn statistics_declarations_feed_the_catalog() {
        let s = parse_script(
            "table R(a int, b int);\n\
             table S(int);\n\
             rows R 1e6;\n\
             distinct R.a 100;\n\
             distinct S.1 50;\n",
        )
        .unwrap();
        assert_eq!(s.stats.rows("R"), 1e6);
        assert_eq!(s.stats.table("R").unwrap().distinct, Some(vec![100.0, 0.0]));
        assert_eq!(s.stats.table("S").unwrap().distinct, Some(vec![50.0]));
        assert_eq!(s.columns["R"], vec!["a", "b"]);
    }

    #[test]
    fn statistics_declaration_errors() {
        // Undeclared table.
        assert!(parse_script("rows R 10;").is_err());
        assert!(parse_script("table R(int);\ndistinct S.1 5;").is_err());
        // Unnamed columns cannot be addressed by name.
        assert!(parse_script("table R(int);\ndistinct R.a 5;").is_err());
        // Out-of-range / 0-based positions.
        assert!(parse_script("table R(int);\ndistinct R.2 5;").is_err());
        assert!(parse_script("table R(int);\ndistinct R.0 5;").is_err());
        // Malformed values.
        assert!(parse_script("table R(int);\nrows R many;").is_err());
        assert!(parse_script("table R(int);\nrows R -3;").is_err());
        // Partial column naming is rejected.
        assert!(parse_script("table R(a int, int);").is_err());
    }

    #[test]
    fn budget_directives_parse_through_the_shared_spec() {
        let s = parse_script(
            "table R(int);\n\
             budget iters 40;\n\
             budget nodes 20000;\n\
             budget oracle-calls 8;\n\
             verify R == R;",
        )
        .unwrap();
        assert_eq!(s.budget.iters, Some(40));
        assert_eq!(s.budget.nodes, Some(20000));
        assert_eq!(s.budget.oracle_calls, Some(8));
        // Same validation as CLI flags and serve requests.
        assert!(parse_script("budget iters 0;").is_err());
        assert!(parse_script("budget bogus 5;").is_err());
        assert!(parse_script("budget iters many;").is_err());
        assert!(parse_script("budget iters;").is_err());
        assert!(parse_script("budget iters 1 2;").is_err());
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let s = parse_script("-- nothing\n  \ntable R(int); -- trailing\n").unwrap();
        assert_eq!(s.goals.len(), 0);
        assert!(s.env.table("R").is_some());
    }
}
