//! DOPCERT: a system for proving SQL rewrite rules (Sec. 5).
//!
//! This crate assembles the full pipeline of the paper:
//!
//! 1. a rewrite rule is two HoTTSQL queries with shared meta-variables
//!    ([`rule`]);
//! 2. both sides are denoted into UniNomial (Fig. 7) and proved equal by
//!    the tactic library, or — for conjunctive-query rules — by the fully
//!    automated decision procedure ([`prove`], Sec. 5.2);
//! 3. every rule (sound or not) is additionally *differentially tested*:
//!    both sides are executed on hundreds of random database instances and
//!    compared bag-for-bag ([`difftest`]); unsound rules must be rejected
//!    by the prover *and* refuted by a concrete counterexample.
//!
//! The rule catalog ([`catalog`]) reproduces Fig. 8: 23 rules in six
//! categories (8 basic, 1 aggregation, 2 subquery, 7 magic set, 3 index,
//! 2 conjunctive query), plus known-unsound rules from the paper's
//! motivation (Sec. 1, Sec. 7) that the system must reject.
//!
//! # Example
//!
//! ```
//! let rules = dopcert::catalog::sound_rules();
//! assert_eq!(rules.len(), 23); // the Fig. 8 census
//! let fig1 = rules.iter().find(|r| r.name == "union-slct-distr").unwrap();
//! let report = dopcert::api::prove_rule(fig1);
//! assert!(report.proved);
//! ```
//!
//! Everything the system can do is reachable through one typed request
//! API ([`api`]): the CLI subcommands, the script runner, and the
//! resident `dopcert serve` daemon ([`serve`], line-delimited JSON over
//! TCP — [`wire`]) all build [`api::Request`] values and render
//! [`api::Response`]s through the same code, which is what makes the
//! daemon's answers byte-identical to the single-shot CLI's.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod api;
pub mod catalog;
pub mod difftest;
pub mod engine;
pub mod prove;
pub mod rule;
pub mod rules;
pub mod script;
pub mod serve;
pub mod session;
pub mod wire;

pub use api::{execute, BudgetSpec, Planner, Prover, Request, RequestOptions, Response, Workspace};
pub use engine::{Engine, EngineConfig};
pub use prove::RuleReport;
pub use rule::{Category, Rule, RuleInstance, SchemaSource};
