//! Rewrite-rule representation.
//!
//! A rewrite rule quantifies over relations, predicates, expressions,
//! attribute projections, *and schemas* (Sec. 3.3). Universally-
//! quantified schemas are modeled by making each rule a Rust function
//! from a [`SchemaSource`] to a concrete [`RuleInstance`]:
//!
//! - the **prover** instantiates every schema parameter with a single
//!   opaque leaf — the fully generic reading, in which a whole unknown
//!   tuple is one sum variable and no structure-specific reasoning is
//!   available (exactly the strength of the paper's schema-polymorphic
//!   proofs);
//! - the **differential tester** instantiates schema parameters with
//!   random concrete schemas and random relations over them.

use hottsql::ast::Query;
use hottsql::env::QueryEnv;
use relalg::generate::Generator;
use relalg::{BaseType, Schema};
use std::fmt;
use uninomial::axioms::RelAxiom;

/// The Fig. 8 rule categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Fundamental algebraic rewrites (Sec. 5.1.1).
    Basic,
    /// Aggregation / GROUP BY rewrites (Sec. 5.1.2).
    Aggregation,
    /// Subquery elimination rewrites.
    Subquery,
    /// Magic-set (semijoin) rewrites (Sec. 5.1.3).
    MagicSet,
    /// Index rewrites (Sec. 5.1.4).
    Index,
    /// Conjunctive-query rules decided automatically (Sec. 5.2).
    ConjunctiveQuery,
    /// Known-unsound rules that must be rejected (Sec. 1 / Sec. 7).
    Unsound,
    /// Additional sound rules beyond the paper's catalog (kept out of
    /// the Fig. 8 census).
    Extension,
}

impl Category {
    /// All sound categories in Fig. 8 order.
    pub const FIG8: [Category; 6] = [
        Category::Basic,
        Category::Aggregation,
        Category::Subquery,
        Category::MagicSet,
        Category::Index,
        Category::ConjunctiveQuery,
    ];

    /// Display name matching Fig. 8.
    pub fn name(self) -> &'static str {
        match self {
            Category::Basic => "Basic",
            Category::Aggregation => "Aggregation",
            Category::Subquery => "Subquery",
            Category::MagicSet => "Magic Set",
            Category::Index => "Index",
            Category::ConjunctiveQuery => "Conjunctive Query",
            Category::Unsound => "Unsound (rejected)",
            Category::Extension => "Extension",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Declares whether a table instance must satisfy a constraint during
/// differential testing, mirroring a [`RelAxiom`] used by the proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstanceConstraint {
    /// The table's schema is `node (leaf int) rest`, its first column is
    /// a key, and the named projection meta-variable extracts it.
    KeyedByFirst {
        /// Table name.
        table: String,
        /// The projection meta-variable bound to the key extractor.
        key_proj: String,
    },
}

/// A fully instantiated rewrite rule: environment, two queries, proof
/// axioms, and instance constraints.
#[derive(Clone, Debug)]
pub struct RuleInstance {
    /// Signature environment shared by both sides.
    pub env: QueryEnv,
    /// Left-hand side (the query being rewritten).
    pub lhs: Query,
    /// Right-hand side (the rewritten query).
    pub rhs: Query,
    /// Integrity-constraint axioms assumed by the proof (Sec. 4.2).
    pub axioms: Vec<RelAxiom>,
    /// Constraints random instances must satisfy.
    pub constraints: Vec<InstanceConstraint>,
}

impl RuleInstance {
    /// A rule with no axioms or constraints.
    pub fn plain(env: QueryEnv, lhs: Query, rhs: Query) -> RuleInstance {
        RuleInstance {
            env,
            lhs,
            rhs,
            axioms: Vec::new(),
            constraints: Vec::new(),
        }
    }
}

/// A source of schemas for a rule's universally-quantified schema
/// parameters. Each named parameter is resolved once and cached, so both
/// sides of a rule agree.
pub trait SchemaSource {
    /// The schema bound to parameter `name`.
    fn schema(&mut self, name: &str) -> Schema;

    /// A schema of the shape `node (leaf int) rest` used for keyed
    /// tables (the key is the first column).
    fn keyed_schema(&mut self, name: &str) -> Schema {
        Schema::node(Schema::leaf(BaseType::Int), self.schema(name))
    }
}

/// The generic instantiation: every schema parameter is one opaque leaf.
///
/// A proof under this instantiation treats the whole tuple as a single
/// sum variable, which is exactly the reasoning available for an unknown
/// schema — so the proof is schema-polymorphic.
#[derive(Debug, Default)]
pub struct Generic;

impl SchemaSource for Generic {
    fn schema(&mut self, _name: &str) -> Schema {
        Schema::leaf(BaseType::Int)
    }
}

/// Random concrete schemas (cached per name), for differential testing.
#[derive(Debug)]
pub struct RandomSchemas {
    gen: Generator,
    cache: std::collections::BTreeMap<String, Schema>,
}

impl RandomSchemas {
    /// Creates a random source with the given seed.
    pub fn new(seed: u64) -> RandomSchemas {
        RandomSchemas {
            gen: Generator::new(seed),
            cache: std::collections::BTreeMap::new(),
        }
    }
}

impl SchemaSource for RandomSchemas {
    fn schema(&mut self, name: &str) -> Schema {
        if let Some(s) = self.cache.get(name) {
            return s.clone();
        }
        let s = self.gen.schema();
        self.cache.insert(name.to_owned(), s.clone());
        s
    }
}

/// A named rewrite rule: a builder from schemas to instances.
pub struct Rule {
    /// Unique kebab-case name.
    pub name: &'static str,
    /// Fig. 8 category.
    pub category: Category,
    /// One-line description (the paper section it comes from).
    pub description: &'static str,
    /// Instantiates the rule for given schema parameters.
    pub build: fn(&mut dyn SchemaSource) -> RuleInstance,
    /// `true` for the 23 sound rules; `false` for the rejected ones.
    pub expected_sound: bool,
}

impl Rule {
    /// Builds the generic (prover) instantiation.
    pub fn generic(&self) -> RuleInstance {
        (self.build)(&mut Generic)
    }

    /// Builds a random instantiation for differential testing.
    pub fn random(&self, seed: u64) -> RuleInstance {
        (self.build)(&mut RandomSchemas::new(seed))
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rule")
            .field("name", &self.name)
            .field("category", &self.category)
            .field("expected_sound", &self.expected_sound)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hottsql::ast::Query;

    fn trivial(src: &mut dyn SchemaSource) -> RuleInstance {
        let sigma = src.schema("sigma");
        let env = QueryEnv::new().with_table("R", sigma);
        RuleInstance::plain(env, Query::table("R"), Query::table("R"))
    }

    const TRIVIAL: Rule = Rule {
        name: "trivial",
        category: Category::Basic,
        description: "R ≡ R",
        build: trivial,
        expected_sound: true,
    };

    #[test]
    fn generic_source_gives_leaves() {
        let inst = TRIVIAL.generic();
        assert_eq!(inst.env.table("R"), Some(&Schema::leaf(BaseType::Int)));
    }

    #[test]
    fn random_source_is_cached_and_seeded() {
        let mut s = RandomSchemas::new(3);
        let a = s.schema("x");
        let b = s.schema("x");
        assert_eq!(a, b, "same name, same schema");
        let mut s2 = RandomSchemas::new(3);
        assert_eq!(a, s2.schema("x"), "same seed, same schema");
    }

    #[test]
    fn keyed_schema_shape() {
        let mut g = Generic;
        let s = g.keyed_schema("r");
        assert_eq!(
            s,
            Schema::node(Schema::leaf(BaseType::Int), Schema::leaf(BaseType::Int))
        );
    }

    #[test]
    fn category_names() {
        assert_eq!(Category::MagicSet.to_string(), "Magic Set");
        assert_eq!(Category::FIG8.len(), 6);
    }
}
