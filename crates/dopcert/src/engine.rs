//! The batch proving engine: verify and differentially test whole rule
//! catalogs across CPU cores.
//!
//! The sequential pipeline (`for rule in rules { prove_rule(rule) }`)
//! leaves every core but one idle and re-normalizes the same denotation
//! fragments for every rule. This module fixes both:
//!
//! - **Parallelism** — rules are distributed over a scoped worker pool
//!   (`std::thread`; the environment has no third-party crates, so the
//!   work-stealing is a simple shared atomic cursor — ideal for this
//!   catalog-shaped workload of few, coarse, unevenly-sized tasks).
//! - **Sharing** — before the workers start, every catalog rule's
//!   denotation is interned into one [`Interner`], which is then frozen
//!   into a lock-free [`InternerSnapshot`]. Each worker clones the
//!   snapshot once into a private [`NormCache`] and keeps it for all the
//!   rules it proves, so structurally shared subterms normalize once per
//!   worker instead of once per occurrence. On top of the cache, each
//!   worker keeps ONE persistent state value for its whole shard (an
//!   [`api::Prover`](crate::api::Prover) for proving, an
//!   [`api::Planner`](crate::api::Planner) for optimizing — each owning
//!   its session unless `prove.session` is off): verdicts, plans, and
//!   certificates are memoized across the shard's goals, and every
//!   saturation goal seeds the session's shared multi-seed e-graph.
//!   Session answers are byte-identical to fresh-solver mode by
//!   construction.
//!
//! Determinism: every worker uses its own [`VarGen`] (created per rule
//! inside the prover, exactly as on the sequential path), and reports
//! are returned **in catalog order** regardless of which worker finished
//! when. `prove_catalog` is observationally identical to the sequential
//! loop — same verdicts, methods, and step counts (wall-clock fields
//! excepted) — which `tests/engine.rs` asserts for the full catalog.
//!
//! [`Interner`]: uninomial::Interner
//! [`VarGen`]: uninomial::VarGen

use crate::api::{Planner, Prover};
use crate::difftest::{differential_test, DiffOutcome};
use crate::prove::{denote_instance, ProveOptions, RuleReport, VerifyMethod};
use crate::rule::{Rule, RuleInstance};
use hottsql::ast::Query;
use hottsql::env::QueryEnv;
use optimizer::{OptimizeError, OptimizeReport};
use relalg::stats::Statistics;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use uninomial::normalize::{normalization_input, NormCache, SharedMemo};
use uninomial::syntax::intern::{Interner, InternerSnapshot};
use uninomial::syntax::VarGen;

/// Tuning for the batch engine.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads. Defaults to the machine's available parallelism.
    pub threads: NonZeroUsize,
    /// Whether to pre-intern every rule denotation into the shared
    /// snapshot before starting the workers (on by default; costs one
    /// sequential denotation pass, saves re-interning in every worker).
    pub warm_interner: bool,
    /// Verification options for every rule: by default the tactics run
    /// first and equality saturation is the fallback when they fail,
    /// reported as the distinct [`crate::prove::VerifyMethod::Saturation`].
    pub prove: ProveOptions,
    /// Whether workers share one striped memo table for the
    /// normalization of snapshot-interned subterms (on by default; the
    /// `--no-shared-cache` escape hatch turns it off).
    pub shared_cache: bool,
    /// Mined rewrite rules for every worker's plan search
    /// (`--mined-rules`). `None` (the default) keeps optimization
    /// bit-identical to a build without the mining subsystem.
    pub mined: Option<Arc<Vec<egraph::MinedRule>>>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            threads: std::thread::available_parallelism()
                .unwrap_or(NonZeroUsize::new(1).expect("1 is nonzero")),
            warm_interner: true,
            prove: ProveOptions::default(),
            shared_cache: true,
            mined: None,
        }
    }
}

impl EngineConfig {
    /// A config with an explicit worker count.
    pub fn with_threads(threads: usize) -> EngineConfig {
        EngineConfig {
            threads: NonZeroUsize::new(threads.max(1)).expect("clamped to >= 1"),
            ..EngineConfig::default()
        }
    }
}

/// The batch proving engine. Construction is cheap; the interner
/// snapshot is built lazily per batch from the rules it is given.
#[derive(Clone, Debug, Default)]
pub struct Engine {
    config: EngineConfig,
}

/// Outcome of one goal in a [`Engine::prove_pairs`] batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairReport {
    /// Whether the pair was proved equivalent.
    pub proved: bool,
    /// The successful method, if any.
    pub method: Option<VerifyMethod>,
    /// Proof-trace length (0 when unproved).
    pub steps: usize,
}

impl Engine {
    /// An engine with default configuration (all cores).
    pub fn new() -> Engine {
        Engine::default()
    }

    /// An engine with an explicit configuration.
    pub fn with_config(config: EngineConfig) -> Engine {
        Engine { config }
    }

    /// An engine with an explicit worker count.
    pub fn with_threads(threads: usize) -> Engine {
        Engine::with_config(EngineConfig::with_threads(threads))
    }

    /// An engine with explicit verification options (all cores).
    pub fn with_prove_options(prove: ProveOptions) -> Engine {
        Engine::with_config(EngineConfig {
            prove,
            ..EngineConfig::default()
        })
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.config.threads.get()
    }

    /// Builds the frozen interner snapshot shared by all workers: for
    /// every rule, the exact normalization-input trees
    /// ([`uninomial::normalize::normalization_input`] over the same
    /// `VarGen` stream the prover uses) — seeding the raw denotations
    /// instead would produce nodes the workers never match, because
    /// normalization refreshes every binder first. With a single worker
    /// the pass is skipped — there is nobody to share the snapshot
    /// with, and the lone worker interns on the fly anyway.
    fn seed_snapshot(&self, rules: &[Rule]) -> InternerSnapshot {
        let mut interner = Interner::new();
        if self.config.warm_interner && self.threads() > 1 {
            for rule in rules {
                if let Ok((el, er, mut gen)) = denote_instance(&rule.generic()) {
                    interner.intern(&normalization_input(&el, &mut gen));
                    interner.intern(&normalization_input(&er, &mut gen));
                }
            }
        }
        interner.snapshot()
    }

    /// Proves every rule of the catalog in parallel, returning reports
    /// in catalog order. Verdicts, methods, and step counts are
    /// identical to running [`crate::api::prove_rule`] sequentially.
    /// Each worker is one [`crate::api::Prover`] for its whole shard —
    /// snapshot-seeded cache plus (unless `prove.session` is off) the
    /// persistent session with memoized verdicts and the multi-seed
    /// discovery graph — with answers byte-identical to the
    /// sessionless path.
    pub fn prove_catalog(&self, rules: &[Rule]) -> Vec<RuleReport> {
        let snapshot = self.seed_snapshot(rules);
        let opts = self.config.prove;
        self.par_map(
            rules,
            &snapshot,
            |cache| Prover::with_cache(cache, opts),
            |rule, prover| prover.prove_rule(rule),
        )
    }

    /// Differentially tests every rule in parallel (`trials` random
    /// instances each), returning `(name, outcome)` in catalog order.
    pub fn difftest_catalog(
        &self,
        rules: &[Rule],
        trials: usize,
        base_seed: u64,
    ) -> Vec<(String, DiffOutcome)> {
        // Difftest evaluates concrete instances — the normalizer cache
        // is idle here, but the same pool machinery applies.
        let snapshot = Interner::new().snapshot();
        self.par_map(
            rules,
            &snapshot,
            |_cache| (),
            |rule, _state| {
                (
                    rule.name.to_owned(),
                    differential_test(rule, trials, base_seed),
                )
            },
        )
    }

    /// The full catalog check the CLI runs: each rule passes when the
    /// prover's verdict matches its expected soundness; an unsound rule
    /// the prover *wrongly accepts* can still pass via the fallback —
    /// differential testing refuting it with a concrete counterexample
    /// (the same acceptance condition as the old sequential
    /// `script::run_catalog` loop this replaces). Returns
    /// `(name, passed)` in catalog order.
    pub fn check_catalog(&self, rules: &[Rule]) -> Vec<(String, bool)> {
        let snapshot = self.seed_snapshot(rules);
        let opts = self.config.prove;
        self.par_map(
            rules,
            &snapshot,
            |cache| Prover::with_cache(cache, opts),
            |rule, prover| {
                let report = prover.prove_rule(rule);
                let ok = report.proved == rule.expected_sound
                    || (!rule.expected_sound
                        && matches!(differential_test(rule, 200, 0xC11), DiffOutcome::Refuted(_)));
                (rule.name.to_owned(), ok)
            },
        )
    }

    /// Warm snapshot for a query batch: every query's denotation is
    /// interned over the same fresh-`VarGen` stream the optimizer
    /// consumes, so workers hit the shared prefix on their first
    /// normalization.
    fn seed_query_snapshot(&self, env: &QueryEnv, queries: &[Query]) -> InternerSnapshot {
        let mut interner = Interner::new();
        if self.config.warm_interner && self.threads() > 1 {
            for q in queries {
                let mut gen = VarGen::new();
                if let Ok((_, e)) = hottsql::denote::denote_closed_query(q, env, &mut gen) {
                    interner.intern(&normalization_input(&e, &mut gen));
                }
            }
        }
        interner.snapshot()
    }

    /// Optimizes a batch of closed queries in parallel with the
    /// certified optimizer, returning reports in input order. Budget
    /// comes from the engine's prove options; the interner snapshot and
    /// (unless disabled) the striped [`SharedMemo`] are shared across
    /// workers exactly as in [`Engine::prove_catalog`]. Each worker is
    /// one [`crate::api::Planner`]; reports are identical to calling
    /// [`optimizer::optimize`] sequentially on fresh state.
    pub fn optimize_batch(
        &self,
        env: &QueryEnv,
        stats: &Statistics,
        queries: &[Query],
    ) -> Vec<Result<OptimizeReport, OptimizeError>> {
        let snapshot = self.seed_query_snapshot(env, queries);
        let opts = self.config.prove;
        let mined = self.config.mined.clone();
        self.par_map(
            queries,
            &snapshot,
            |cache| {
                let mut planner = Planner::with_cache(cache, opts);
                planner.set_mined_rules(mined.clone());
                planner
            },
            |q, planner| planner.optimize(q, env, stats),
        )
    }

    /// Warm snapshot for a pair batch: both sides of every goal are
    /// denoted over the same fresh-`VarGen` stream the verifier uses.
    fn seed_pair_snapshot(&self, env: &QueryEnv, pairs: &[(Query, Query)]) -> InternerSnapshot {
        let mut interner = Interner::new();
        if self.config.warm_interner && self.threads() > 1 {
            for (l, r) in pairs {
                let inst = RuleInstance::plain(env.clone(), l.clone(), r.clone());
                if let Ok((el, er, mut gen)) = denote_instance(&inst) {
                    interner.intern(&normalization_input(&el, &mut gen));
                    interner.intern(&normalization_input(&er, &mut gen));
                }
            }
        }
        interner.snapshot()
    }

    /// Batch-proves arbitrary query pairs in parallel — the traffic-
    /// scale entry point behind the `session_vs_fresh` BENCH series.
    /// Each worker keeps one [`ProveSession`] for its shard (unless
    /// `prove.session` is off); reports land in input order and are
    /// identical to verifying each pair alone.
    pub fn prove_pairs(&self, env: &QueryEnv, pairs: &[(Query, Query)]) -> Vec<PairReport> {
        let snapshot = self.seed_pair_snapshot(env, pairs);
        let opts = self.config.prove;
        self.par_map(
            pairs,
            &snapshot,
            |cache| Prover::with_cache(cache, opts),
            |(l, r), prover| {
                let inst = RuleInstance::plain(env.clone(), l.clone(), r.clone());
                match prover.verify_instance(&inst) {
                    Ok((method, steps, _)) => PairReport {
                        proved: true,
                        method: Some(method),
                        steps,
                    },
                    Err(_) => PairReport {
                        proved: false,
                        method: None,
                        steps: 0,
                    },
                }
            },
        )
    }

    /// Order-preserving parallel map over a work list: a shared atomic
    /// cursor hands out indices, each worker builds ONE state value
    /// from a [`NormCache`] seeded off the frozen snapshot (`mk_state`
    /// — an [`api::Prover`](crate::api::Prover), an
    /// [`api::Planner`](crate::api::Planner), or `()` for cache-free
    /// work), and results land in their input slots. Unless disabled,
    /// workers additionally share one `Mutex`-striped [`SharedMemo`]
    /// covering the snapshot-prefix ids, so a denotation fragment
    /// common to several items normalizes once per *batch* rather than
    /// once per worker — with results and traces bit-identical to the
    /// unshared path.
    fn par_map<T, S, R, F, M>(
        &self,
        items: &[T],
        snapshot: &InternerSnapshot,
        mk_state: M,
        f: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        M: Fn(NormCache) -> S + Sync,
        F: Fn(&T, &mut S) -> R + Sync,
    {
        let threads = self.threads().min(items.len().max(1));
        if threads <= 1 {
            // Degenerate pool: run inline (still through the worker
            // state, so single-threaded callers get the memoization
            // win).
            let mut state = mk_state(NormCache::from_interner((**snapshot).clone()));
            return items.iter().map(|r| f(r, &mut state)).collect();
        }
        let shared_memo = self
            .config
            .shared_cache
            .then(|| SharedMemo::for_snapshot(snapshot, 4 * threads));
        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let shared_memo = shared_memo.clone();
                let (cursor, slots, f, mk_state) = (&cursor, &slots, &f, &mk_state);
                scope.spawn(move || {
                    // Per-worker state: a private VarGen lives inside
                    // each prove call; the cache and session inside the
                    // state persist across the items this worker
                    // claims.
                    let cache = match shared_memo {
                        Some(shared) => {
                            NormCache::from_interner_shared((**snapshot).clone(), shared)
                        }
                        None => NormCache::from_interner((**snapshot).clone()),
                    };
                    let mut state = mk_state(cache);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        let result = f(item, &mut state);
                        slots.lock().expect("no poisoned workers")[i] = Some(result);
                    }
                });
            }
        });
        slots
            .into_inner()
            .expect("scope joined all workers")
            .into_iter()
            .map(|slot| slot.expect("every index was claimed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn single_threaded_engine_matches_sequential_prover() {
        let rules = catalog::sound_rules();
        let engine = Engine::with_threads(1);
        let parallel = engine.prove_catalog(&rules);
        assert_eq!(parallel.len(), rules.len());
        for (rule, report) in rules.iter().zip(&parallel) {
            let sequential = crate::api::prove_rule(rule);
            assert_eq!(report.name, sequential.name);
            assert_eq!(report.proved, sequential.proved, "{}", rule.name);
            assert_eq!(report.method, sequential.method, "{}", rule.name);
            assert_eq!(report.steps, sequential.steps, "{}", rule.name);
        }
    }

    #[test]
    fn thread_count_clamps_to_at_least_one() {
        let engine = Engine::with_threads(0);
        assert_eq!(engine.threads(), 1);
    }

    #[test]
    fn difftest_catalog_preserves_order() {
        let rules: Vec<Rule> = catalog::sound_rules().into_iter().take(4).collect();
        let engine = Engine::with_threads(4);
        let outcomes = engine.difftest_catalog(&rules, 8, 0xDA7A);
        assert_eq!(outcomes.len(), 4);
        for (rule, (name, outcome)) in rules.iter().zip(&outcomes) {
            assert_eq!(rule.name, name);
            assert!(outcome.agreed(), "{name}: {outcome:?}");
        }
    }
}
