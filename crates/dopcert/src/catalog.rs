//! The assembled rule catalog (Fig. 8 plus rejected rules).

use crate::rule::{Category, Rule};
use crate::rules;

/// Every rule in the catalog: the 23 sound rules of Fig. 8 followed by
/// the known-unsound rules.
pub fn all_rules() -> Vec<Rule> {
    let mut out = Vec::new();
    out.extend(rules::basic::rules());
    out.extend(rules::aggregation::rules());
    out.extend(rules::subquery::rules());
    out.extend(rules::magic::rules());
    out.extend(rules::index::rules());
    out.extend(rules::cq_rules::rules());
    out.extend(rules::extensions::rules());
    out.extend(rules::wrong::rules());
    out
}

/// Only the 23 sound rules of Fig. 8 (extensions excluded, so the
/// reproduction census matches the paper exactly).
pub fn sound_rules() -> Vec<Rule> {
    all_rules()
        .into_iter()
        .filter(|r| r.expected_sound && r.category != Category::Extension)
        .collect()
}

/// The extension rules beyond the paper's catalog.
pub fn extension_rules() -> Vec<Rule> {
    rules_in(Category::Extension)
}

/// Only the known-unsound rules.
pub fn unsound_rules() -> Vec<Rule> {
    all_rules()
        .into_iter()
        .filter(|r| !r.expected_sound)
        .collect()
}

/// Rules in one category.
pub fn rules_in(category: Category) -> Vec<Rule> {
    all_rules()
        .into_iter()
        .filter(|r| r.category == category)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_census() {
        // Fig. 8: Basic 8, Aggregation 1, Subquery 2, Magic Set 7,
        // Index 3, Conjunctive Query 2 — total 23.
        assert_eq!(rules_in(Category::Basic).len(), 8);
        assert_eq!(rules_in(Category::Aggregation).len(), 1);
        assert_eq!(rules_in(Category::Subquery).len(), 2);
        assert_eq!(rules_in(Category::MagicSet).len(), 7);
        assert_eq!(rules_in(Category::Index).len(), 3);
        assert_eq!(rules_in(Category::ConjunctiveQuery).len(), 2);
        assert_eq!(sound_rules().len(), 23);
    }

    #[test]
    fn names_are_unique() {
        let rules = all_rules();
        let mut names: Vec<&str> = rules.iter().map(|r| r.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn every_rule_builds_generically() {
        for rule in all_rules() {
            let inst = rule.generic();
            // Both sides must at least type-check generically (even the
            // unsound rules are well-typed — they are wrong, not ill-formed).
            let sl = hottsql::ty::infer_query(&inst.lhs, &inst.env, &relalg::Schema::Empty);
            let sr = hottsql::ty::infer_query(&inst.rhs, &inst.env, &relalg::Schema::Empty);
            assert!(sl.is_ok(), "{} lhs: {:?}", rule.name, sl);
            assert!(sr.is_ok(), "{} rhs: {:?}", rule.name, sr);
            assert_eq!(sl.unwrap(), sr.unwrap(), "{} schemas differ", rule.name);
        }
    }
}
