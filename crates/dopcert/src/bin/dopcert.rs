//! The DOPCERT command-line checker.
//!
//! ```sh
//! dopcert check file.dop        # run a verification script
//! dopcert prove file.dop        # prover-only (no counterexample search
//!                               #   shortcuts), same script syntax
//! dopcert prove --saturate -    # …every non-CQ goal by equality
//!                               #   saturation alone
//! dopcert optimize file.dop     # certified cost-based optimization of
//!                               #   every query in the script's goals
//! dopcert catalog               # verify the whole built-in rule catalog
//! dopcert catalog --jobs 4      # …on an explicit number of workers
//! dopcert catalog --saturate    # …with saturation instead of tactics
//! ```
//!
//! Shared flags:
//!
//! - `--saturate` — prove with equality saturation only (the smoke mode
//!   for the `egraph` crate); the default is tactics with saturation
//!   fallback;
//! - `--sat-iters N` / `--sat-nodes N` / `--sat-oracle-calls N` —
//!   saturation budget (iterations, e-nodes, oracle calls/iteration);
//! - `--jobs N` / `-j N` — worker threads (catalog mode);
//! - `--no-shared-cache` — per-worker normalization memo tables only
//!   (catalog mode; the default shares one striped table);
//! - `--no-session` — fresh solver state per goal instead of one
//!   persistent session per worker (the differential baseline; answers
//!   are identical either way);
//! - `--discover` — after `catalog` verification, saturate one
//!   multi-seed session over every rule's sides and list the
//!   equalities it proved between *different* rules' seeds.
//!
//! Script syntax (see `dopcert::script`):
//!
//! ```text
//! table R(int, int);
//! verify DISTINCT SELECT Right.Left FROM R
//!     == DISTINCT SELECT Right.Left.Left FROM R, R
//!        WHERE Right.Left.Left = Right.Right.Left;
//! ```

use dopcert::engine::{Engine, EngineConfig};
use dopcert::prove::{ProveOptions, SaturateMode};
use std::io::Read;
use std::process::ExitCode;

/// Flags shared by the subcommands, parsed from the trailing arguments.
#[derive(Debug, Default)]
struct Flags {
    jobs: Option<usize>,
    saturate: bool,
    sat_iters: Option<usize>,
    sat_nodes: Option<usize>,
    sat_oracle_calls: Option<usize>,
    no_shared_cache: bool,
    no_session: bool,
    discover: bool,
    /// First non-flag argument (the script path for check/prove).
    positional: Option<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::default();
    let mut it = args.iter();
    let parse_num = |flag: &str, v: Option<&String>| -> Result<usize, String> {
        let v = v.ok_or_else(|| format!("{flag} needs a number"))?;
        v.parse::<usize>()
            .map_err(|_| format!("invalid {flag} value {v:?}"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" | "-j" => flags.jobs = Some(parse_num(arg, it.next())?),
            "--saturate" => flags.saturate = true,
            "--sat-iters" => flags.sat_iters = Some(parse_num(arg, it.next())?),
            "--sat-nodes" => flags.sat_nodes = Some(parse_num(arg, it.next())?),
            "--sat-oracle-calls" => flags.sat_oracle_calls = Some(parse_num(arg, it.next())?),
            "--no-shared-cache" => flags.no_shared_cache = true,
            "--no-session" => flags.no_session = true,
            "--discover" => flags.discover = true,
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unknown flag {other:?}"));
            }
            other => {
                if flags.positional.replace(other.to_owned()).is_some() {
                    return Err("more than one input path".into());
                }
            }
        }
    }
    Ok(flags)
}

impl Flags {
    /// Rejects flags the subcommand would silently ignore.
    fn validate_for(&self, cmd: &str) -> Result<(), String> {
        let reject = |cond: bool, flag: &str| {
            if cond {
                Err(format!("{flag} is not accepted by `{cmd}`"))
            } else {
                Ok(())
            }
        };
        match cmd {
            "check" => {
                reject(self.jobs.is_some(), "--jobs")?;
                reject(self.no_shared_cache, "--no-shared-cache")?;
                reject(self.saturate, "--saturate (use `prove`)")?;
                reject(self.sat_iters.is_some(), "--sat-iters (use `prove`)")?;
                reject(self.sat_nodes.is_some(), "--sat-nodes (use `prove`)")?;
                reject(
                    self.sat_oracle_calls.is_some(),
                    "--sat-oracle-calls (use `prove`)",
                )?;
                reject(self.no_session, "--no-session (use `prove`)")?;
                reject(self.discover, "--discover (use `catalog`)")?;
            }
            "prove" => {
                reject(self.jobs.is_some(), "--jobs")?;
                reject(self.no_shared_cache, "--no-shared-cache")?;
                reject(self.discover, "--discover (use `catalog`)")?;
            }
            "optimize" => {
                // Optimization always saturates; the mode flag would be
                // silently ignored, so reject it (budget flags apply).
                reject(self.saturate, "--saturate (optimize always saturates)")?;
                reject(self.discover, "--discover (use `catalog`)")?;
            }
            "catalog" => {
                reject(self.positional.is_some(), "a script path")?;
            }
            _ => {}
        }
        Ok(())
    }

    fn prove_options(&self) -> ProveOptions {
        let mut opts = ProveOptions {
            saturate: if self.saturate {
                SaturateMode::Only
            } else {
                SaturateMode::Fallback
            },
            session: !self.no_session,
            ..ProveOptions::default()
        };
        if let Some(n) = self.sat_iters {
            opts.budget.max_iters = n;
        }
        if let Some(n) = self.sat_nodes {
            opts.budget.max_nodes = n;
        }
        if let Some(n) = self.sat_oracle_calls {
            opts.budget.oracle_calls_per_iter = n;
        }
        opts
    }

    fn engine(&self) -> Engine {
        let mut config = match self.jobs {
            Some(n) => EngineConfig::with_threads(n),
            None => EngineConfig::default(),
        };
        config.prove = self.prove_options();
        config.shared_cache = !self.no_shared_cache;
        Engine::with_config(config)
    }

    fn read_script(&self) -> Result<String, String> {
        match self.positional.as_deref() {
            Some("-") | None => {
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .map_err(|e| format!("cannot read stdin: {e}"))?;
                Ok(buf)
            }
            Some(path) => {
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
            }
        }
    }
}

fn run_script_mode(flags: &Flags, opts: ProveOptions) -> ExitCode {
    let source = match flags.read_script() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let script = match dopcert::script::parse_script(&source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcomes = dopcert::script::run_script_with(&script, opts);
    let mut ok = true;
    for (goal, outcome) in script.goals.iter().zip(&outcomes) {
        let expected = if goal.expect_equivalent {
            "verify"
        } else {
            "refute"
        };
        let satisfied = outcome.satisfies(goal.expect_equivalent);
        ok &= satisfied;
        println!(
            "[{}] {expected}: {}\n    {}",
            if satisfied { "ok" } else { "FAIL" },
            goal.lhs,
            outcome
        );
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `dopcert optimize`: run the certified optimizer over every query
/// appearing in the script's goals. Fails (exit code) if any plan is
/// costlier than its input or any certificate fails to replay — the CI
/// smoke gate.
fn run_optimize_mode(flags: &Flags) -> ExitCode {
    let source = match flags.read_script() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let script = match dopcert::script::parse_script(&source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Every distinct query across the goals, in first-seen order.
    let mut queries: Vec<hottsql::ast::Query> = Vec::new();
    for goal in &script.goals {
        for q in [&goal.lhs, &goal.rhs] {
            if !queries.contains(q) {
                queries.push(q.clone());
            }
        }
    }
    if queries.is_empty() {
        eprintln!("error: the script declares no goals to optimize");
        return ExitCode::FAILURE;
    }
    // Declared cardinalities (`rows R 1e6;`, `distinct R.a 100;`) drive
    // the cost model; undeclared tables get the library default.
    let stats = script.stats.clone();
    let engine = flags.engine();
    let budget = flags.prove_options().budget;
    let start = std::time::Instant::now();
    let reports = engine.optimize_batch(&script.env, &stats, &queries);
    let mut ok = true;
    for (q, report) in queries.iter().zip(&reports) {
        match report {
            Err(e) => {
                ok = false;
                println!("[FAIL] {q}\n    {e}");
            }
            Ok(r) => {
                let sound = r.cost_after <= r.cost_before
                    && r.certificate
                        .replay(&r.input, &r.output, &script.env, budget);
                ok &= sound;
                println!(
                    "[{}] cost {:.0} -> {:.0} via {} ({} in {} steps)\n    in:  {}\n    out: {}",
                    if sound { "ok" } else { "FAIL" },
                    r.cost_before,
                    r.cost_after,
                    r.route,
                    r.certificate.method,
                    r.certificate.trace.len(),
                    r.input,
                    r.output,
                );
            }
        }
    }
    println!(
        "{} queries optimized on {} threads in {:.1} ms",
        queries.len(),
        engine.threads(),
        start.elapsed().as_secs_f64() * 1e3,
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => ("", &[][..]),
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = flags.validate_for(cmd) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    match cmd {
        // `check` uses the library default: tactics first, saturation
        // as fallback (non-CQ goals only gain proofs from this; refute
        // goals pay at most the ms-scale saturation budget before the
        // counterexample hunt). `prove` exposes the saturation flags.
        "check" => run_script_mode(&flags, ProveOptions::default()),
        "prove" => run_script_mode(&flags, flags.prove_options()),
        "optimize" => run_optimize_mode(&flags),
        "catalog" => {
            let engine = flags.engine();
            let start = std::time::Instant::now();
            let results = engine.check_catalog(&dopcert::catalog::all_rules());
            let mut ok = true;
            for (name, passed) in &results {
                println!("[{}] {name}", if *passed { "ok" } else { "FAIL" });
                ok &= passed;
            }
            println!(
                "{} rules checked on {} threads in {:.1} ms{}",
                results.len(),
                engine.threads(),
                start.elapsed().as_secs_f64() * 1e3,
                if flags.saturate {
                    " (saturation only)"
                } else {
                    ""
                },
            );
            if flags.discover {
                // Cross-rule discovery: one multi-seed session over the
                // whole sound catalog — equalities between *different*
                // rules' sides, the first step beyond prove-given-pairs.
                let found = dopcert::session::discover_catalog(
                    &dopcert::catalog::sound_rules(),
                    flags.prove_options(),
                );
                println!("{} cross-rule equalities discovered:", found.len());
                for (a, b, structural) in &found {
                    println!(
                        "  {a} == {b}{}",
                        if *structural {
                            " (same normal form)"
                        } else {
                            ""
                        }
                    );
                }
            }
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!(
                "usage: dopcert check <file.dop | ->\n\
                 \x20      dopcert prove [--saturate] [--sat-iters N] [--sat-nodes N] [--sat-oracle-calls N] [--no-session] <file.dop | ->\n\
                 \x20      dopcert optimize [--jobs N] [--sat-iters N] [--sat-nodes N] [--sat-oracle-calls N] [--no-shared-cache] [--no-session] <file.dop | ->\n\
                 \x20      dopcert catalog [--jobs N] [--saturate] [--sat-iters N] [--sat-nodes N] [--sat-oracle-calls N] [--no-shared-cache] [--no-session] [--discover]"
            );
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Result<Flags, String> {
        parse_flags(&args.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_flags_and_positional() {
        let f = flags(&["--jobs", "4", "--sat-iters", "9", "x.dop"]).unwrap();
        assert_eq!(f.jobs, Some(4));
        assert_eq!(f.sat_iters, Some(9));
        assert_eq!(f.positional.as_deref(), Some("x.dop"));
        assert!(flags(&["--jobs"]).is_err());
        assert!(flags(&["--bogus"]).is_err());
        assert!(flags(&["a.dop", "b.dop"]).is_err());
    }

    #[test]
    fn check_rejects_every_flag_it_would_ignore() {
        for args in [
            &["--saturate"][..],
            &["--sat-iters", "5"][..],
            &["--sat-nodes", "100"][..],
            &["--sat-oracle-calls", "16"][..],
            &["--jobs", "2"][..],
            &["--no-shared-cache"][..],
            &["--no-session"][..],
            &["--discover"][..],
        ] {
            let f = flags(args).unwrap();
            let err = f.validate_for("check").unwrap_err();
            assert!(err.contains("not accepted"), "{args:?}: {err}");
        }
    }

    #[test]
    fn oracle_calls_flag_reaches_the_budget() {
        let f = flags(&["--sat-oracle-calls", "7"]).unwrap();
        f.validate_for("prove").unwrap();
        f.validate_for("optimize").unwrap();
        f.validate_for("catalog").unwrap();
        assert_eq!(f.prove_options().budget.oracle_calls_per_iter, 7);
        assert!(flags(&["--sat-oracle-calls"]).is_err(), "needs a number");
        assert!(flags(&["--sat-oracle-calls", "x"]).is_err());
    }

    #[test]
    fn no_session_flag_reaches_prove_options() {
        let f = flags(&["--no-session"]).unwrap();
        f.validate_for("prove").unwrap();
        f.validate_for("optimize").unwrap();
        f.validate_for("catalog").unwrap();
        assert!(!f.prove_options().session);
        assert!(flags(&[]).unwrap().prove_options().session, "on by default");
    }

    #[test]
    fn discover_is_catalog_only() {
        let f = flags(&["--discover"]).unwrap();
        f.validate_for("catalog").unwrap();
        for cmd in ["check", "prove", "optimize"] {
            let err = f.validate_for(cmd).unwrap_err();
            assert!(err.contains("--discover"), "{cmd}: {err}");
        }
    }

    #[test]
    fn prove_rejects_engine_flags_but_accepts_saturation_budget() {
        let f = flags(&["--saturate", "--sat-iters", "5", "--sat-nodes", "10"]).unwrap();
        f.validate_for("prove").unwrap();
        assert!(flags(&["--jobs", "2"])
            .unwrap()
            .validate_for("prove")
            .is_err());
        assert!(flags(&["--no-shared-cache"])
            .unwrap()
            .validate_for("prove")
            .is_err());
    }

    #[test]
    fn optimize_accepts_budget_and_jobs_but_rejects_saturate() {
        let f = flags(&[
            "--jobs",
            "2",
            "--sat-iters",
            "5",
            "--sat-nodes",
            "10",
            "--no-shared-cache",
            "x.dop",
        ])
        .unwrap();
        f.validate_for("optimize").unwrap();
        let err = flags(&["--saturate"])
            .unwrap()
            .validate_for("optimize")
            .unwrap_err();
        assert!(err.contains("--saturate"), "{err}");
    }

    #[test]
    fn catalog_rejects_a_script_path_and_budget_flags_reach_the_engine() {
        assert!(flags(&["x.dop"]).unwrap().validate_for("catalog").is_err());
        let f = flags(&["--sat-iters", "7", "--sat-nodes", "11"]).unwrap();
        f.validate_for("catalog").unwrap();
        let opts = f.prove_options();
        assert_eq!(opts.budget.max_iters, 7);
        assert_eq!(opts.budget.max_nodes, 11);
    }
}
