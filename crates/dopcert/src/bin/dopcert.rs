//! The DOPCERT command-line checker.
//!
//! ```sh
//! dopcert check file.dop        # run a verification script
//! dopcert prove file.dop        # prover-only (no counterexample search
//!                               #   shortcuts), same script syntax
//! dopcert prove --saturate -    # …every non-CQ goal by equality
//!                               #   saturation alone
//! dopcert catalog               # verify the whole built-in rule catalog
//! dopcert catalog --jobs 4      # …on an explicit number of workers
//! dopcert catalog --saturate    # …with saturation instead of tactics
//! ```
//!
//! Shared flags:
//!
//! - `--saturate` — prove with equality saturation only (the smoke mode
//!   for the `egraph` crate); the default is tactics with saturation
//!   fallback;
//! - `--sat-iters N` / `--sat-nodes N` — saturation budget;
//! - `--jobs N` / `-j N` — worker threads (catalog mode);
//! - `--no-shared-cache` — per-worker normalization memo tables only
//!   (catalog mode; the default shares one striped table).
//!
//! Script syntax (see `dopcert::script`):
//!
//! ```text
//! table R(int, int);
//! verify DISTINCT SELECT Right.Left FROM R
//!     == DISTINCT SELECT Right.Left.Left FROM R, R
//!        WHERE Right.Left.Left = Right.Right.Left;
//! ```

use dopcert::engine::{Engine, EngineConfig};
use dopcert::prove::{ProveOptions, SaturateMode};
use std::io::Read;
use std::process::ExitCode;

/// Flags shared by the subcommands, parsed from the trailing arguments.
#[derive(Debug, Default)]
struct Flags {
    jobs: Option<usize>,
    saturate: bool,
    sat_iters: Option<usize>,
    sat_nodes: Option<usize>,
    no_shared_cache: bool,
    /// First non-flag argument (the script path for check/prove).
    positional: Option<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::default();
    let mut it = args.iter();
    let parse_num = |flag: &str, v: Option<&String>| -> Result<usize, String> {
        let v = v.ok_or_else(|| format!("{flag} needs a number"))?;
        v.parse::<usize>()
            .map_err(|_| format!("invalid {flag} value {v:?}"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" | "-j" => flags.jobs = Some(parse_num(arg, it.next())?),
            "--saturate" => flags.saturate = true,
            "--sat-iters" => flags.sat_iters = Some(parse_num(arg, it.next())?),
            "--sat-nodes" => flags.sat_nodes = Some(parse_num(arg, it.next())?),
            "--no-shared-cache" => flags.no_shared_cache = true,
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unknown flag {other:?}"));
            }
            other => {
                if flags.positional.replace(other.to_owned()).is_some() {
                    return Err("more than one input path".into());
                }
            }
        }
    }
    Ok(flags)
}

impl Flags {
    /// Rejects flags the subcommand would silently ignore.
    fn validate_for(&self, cmd: &str) -> Result<(), String> {
        let reject = |cond: bool, flag: &str| {
            if cond {
                Err(format!("{flag} is not accepted by `{cmd}`"))
            } else {
                Ok(())
            }
        };
        match cmd {
            "check" => {
                reject(self.jobs.is_some(), "--jobs")?;
                reject(self.no_shared_cache, "--no-shared-cache")?;
                reject(self.saturate, "--saturate (use `prove`)")?;
                reject(self.sat_iters.is_some(), "--sat-iters (use `prove`)")?;
                reject(self.sat_nodes.is_some(), "--sat-nodes (use `prove`)")?;
            }
            "prove" => {
                reject(self.jobs.is_some(), "--jobs")?;
                reject(self.no_shared_cache, "--no-shared-cache")?;
            }
            "catalog" => {
                reject(self.positional.is_some(), "a script path")?;
            }
            _ => {}
        }
        Ok(())
    }

    fn prove_options(&self) -> ProveOptions {
        let mut opts = ProveOptions {
            saturate: if self.saturate {
                SaturateMode::Only
            } else {
                SaturateMode::Fallback
            },
            ..ProveOptions::default()
        };
        if let Some(n) = self.sat_iters {
            opts.budget.max_iters = n;
        }
        if let Some(n) = self.sat_nodes {
            opts.budget.max_nodes = n;
        }
        opts
    }

    fn engine(&self) -> Engine {
        let mut config = match self.jobs {
            Some(n) => EngineConfig::with_threads(n),
            None => EngineConfig::default(),
        };
        config.prove = self.prove_options();
        config.shared_cache = !self.no_shared_cache;
        Engine::with_config(config)
    }

    fn read_script(&self) -> Result<String, String> {
        match self.positional.as_deref() {
            Some("-") | None => {
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .map_err(|e| format!("cannot read stdin: {e}"))?;
                Ok(buf)
            }
            Some(path) => {
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
            }
        }
    }
}

fn run_script_mode(flags: &Flags, opts: ProveOptions) -> ExitCode {
    let source = match flags.read_script() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let script = match dopcert::script::parse_script(&source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcomes = dopcert::script::run_script_with(&script, opts);
    let mut ok = true;
    for (goal, outcome) in script.goals.iter().zip(&outcomes) {
        let expected = if goal.expect_equivalent {
            "verify"
        } else {
            "refute"
        };
        let satisfied = outcome.satisfies(goal.expect_equivalent);
        ok &= satisfied;
        println!(
            "[{}] {expected}: {}\n    {}",
            if satisfied { "ok" } else { "FAIL" },
            goal.lhs,
            outcome
        );
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => ("", &[][..]),
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = flags.validate_for(cmd) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    match cmd {
        // `check` uses the library default: tactics first, saturation
        // as fallback (non-CQ goals only gain proofs from this; refute
        // goals pay at most the ms-scale saturation budget before the
        // counterexample hunt). `prove` exposes the saturation flags.
        "check" => run_script_mode(&flags, ProveOptions::default()),
        "prove" => run_script_mode(&flags, flags.prove_options()),
        "catalog" => {
            let engine = flags.engine();
            let start = std::time::Instant::now();
            let results = engine.check_catalog(&dopcert::catalog::all_rules());
            let mut ok = true;
            for (name, passed) in &results {
                println!("[{}] {name}", if *passed { "ok" } else { "FAIL" });
                ok &= passed;
            }
            println!(
                "{} rules checked on {} threads in {:.1} ms{}",
                results.len(),
                engine.threads(),
                start.elapsed().as_secs_f64() * 1e3,
                if flags.saturate {
                    " (saturation only)"
                } else {
                    ""
                },
            );
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!(
                "usage: dopcert check <file.dop | ->\n\
                 \x20      dopcert prove [--saturate] [--sat-iters N] [--sat-nodes N] <file.dop | ->\n\
                 \x20      dopcert catalog [--jobs N] [--saturate] [--sat-iters N] [--sat-nodes N] [--no-shared-cache]"
            );
            ExitCode::FAILURE
        }
    }
}
