//! The DOPCERT command-line checker.
//!
//! ```sh
//! dopcert check file.dop       # run a verification script
//! dopcert catalog              # verify the whole built-in rule catalog
//! dopcert catalog --jobs 4     # …on an explicit number of worker threads
//! ```
//!
//! Script syntax (see `dopcert::script`):
//!
//! ```text
//! table R(int, int);
//! verify DISTINCT SELECT Right.Left FROM R
//!     == DISTINCT SELECT Right.Left.Left FROM R, R
//!        WHERE Right.Left.Left = Right.Right.Left;
//! ```

use std::io::Read;
use std::process::ExitCode;

/// Parses `--jobs N` / `-j N` out of the trailing arguments.
fn parse_jobs(args: &[String]) -> Result<Option<usize>, String> {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--jobs" || arg == "-j" {
            let n = it
                .next()
                .ok_or_else(|| format!("{arg} needs a thread count"))?;
            return n
                .parse::<usize>()
                .map(Some)
                .map_err(|_| format!("invalid thread count {n:?}"));
        }
    }
    Ok(None)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => {
            let source = match args.get(1).map(String::as_str) {
                Some("-") | None => {
                    let mut buf = String::new();
                    if std::io::stdin().read_to_string(&mut buf).is_err() {
                        eprintln!("error: cannot read stdin");
                        return ExitCode::FAILURE;
                    }
                    buf
                }
                Some(path) => match std::fs::read_to_string(path) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            let script = match dopcert::script::parse_script(&source) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("parse error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let outcomes = dopcert::script::run_script(&script);
            let mut ok = true;
            for (goal, outcome) in script.goals.iter().zip(&outcomes) {
                let expected = if goal.expect_equivalent {
                    "verify"
                } else {
                    "refute"
                };
                let satisfied = outcome.satisfies(goal.expect_equivalent);
                ok &= satisfied;
                println!(
                    "[{}] {expected}: {}\n    {}",
                    if satisfied { "ok" } else { "FAIL" },
                    goal.lhs,
                    outcome
                );
            }
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some("catalog") => {
            let engine = match parse_jobs(&args[1..]) {
                Ok(None) => dopcert::engine::Engine::new(),
                Ok(Some(n)) => dopcert::engine::Engine::with_threads(n),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let start = std::time::Instant::now();
            let results = engine.check_catalog(&dopcert::catalog::all_rules());
            let mut ok = true;
            for (name, passed) in &results {
                println!("[{}] {name}", if *passed { "ok" } else { "FAIL" });
                ok &= passed;
            }
            println!(
                "{} rules checked on {} threads in {:.1} ms",
                results.len(),
                engine.threads(),
                start.elapsed().as_secs_f64() * 1e3,
            );
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: dopcert check <file.dop | -> | dopcert catalog [--jobs N]");
            ExitCode::FAILURE
        }
    }
}
