//! The DOPCERT command-line checker.
//!
//! ```sh
//! dopcert check file.dop        # run a verification script
//! dopcert prove file.dop        # prover-only (no counterexample search
//!                               #   shortcuts), same script syntax
//! dopcert prove --saturate -    # …every non-CQ goal by equality
//!                               #   saturation alone
//! dopcert optimize file.dop     # certified cost-based optimization of
//!                               #   every query in the script's goals
//! dopcert catalog               # verify the whole built-in rule catalog
//! dopcert catalog --jobs 4      # …on an explicit number of workers
//! dopcert catalog --saturate    # …with saturation instead of tactics
//! dopcert mine                  # synthesize rewrite rules from the
//!                               #   discovery corpus, certify each one
//! dopcert mine --seed 7 --count 4       # …a different corpus shuffle
//! dopcert optimize --mined-rules q.dop  # plan with the mined catalog
//! dopcert serve --addr 127.0.0.1:7411   # resident daemon (JSON lines)
//! dopcert request --addr 127.0.0.1:7411 file.dop   # one request to it
//! ```
//!
//! Every subcommand builds one [`dopcert::api::Request`] and prints
//! [`dopcert::api::Response::render`] — the same code path the `serve`
//! daemon answers over the wire, which is why `dopcert request` output
//! is byte-identical to running the subcommand locally. Timing
//! summaries go to stderr so stdout is diffable.
//!
//! Shared flags:
//!
//! - `--saturate` — prove with equality saturation only (the smoke mode
//!   for the `egraph` crate); the default is tactics with saturation
//!   fallback;
//! - `--sat-iters N` / `--sat-nodes N` / `--sat-oracle-calls N` —
//!   saturation budget (iterations, e-nodes, oracle calls/iteration),
//!   validated by the same [`BudgetSpec`] as script `budget` directives
//!   and serve requests;
//! - `--jobs N` / `-j N` — worker threads (catalog/optimize/serve);
//! - `--no-shared-cache` — per-worker normalization memo tables only
//!   (catalog mode; the default shares one striped table);
//! - `--no-session` — fresh solver state per goal instead of one
//!   persistent session per worker (the differential baseline; answers
//!   are identical either way);
//! - `--discover` — after `catalog` verification, saturate one
//!   multi-seed session over every rule's sides and list the
//!   equalities it proved between *different* rules' seeds;
//! - `--addr HOST:PORT` — listen address (`serve`) or daemon address
//!   (`request`);
//! - `--cmd NAME` / `--tenant NAME` — the request kind (default
//!   `prove`) and budget account (`request` only);
//! - `--trace-out FILE` — dump phase spans as Chrome trace-event JSON
//!   on exit (`prove`/`optimize`/`serve`; load in Perfetto);
//! - `--profile` — after the response, print the per-rule saturation
//!   attribution table: matches, unions, e-nodes added, oracle calls,
//!   and apply time per rewrite rule (`prove`/`optimize`/`catalog`);
//! - `--explain` — after the plans, narrate each query's optimization:
//!   every candidate route measured with its cost, which one shipped,
//!   and the lemmas the winning certificate leans on (`optimize`);
//! - `--budget-refill N` — refill every tenant's spent iterations at
//!   `N` iterations/second (`serve`; the default never refills);
//! - `--mined-rules` — add the mined rewrite catalog to the plan
//!   search (`optimize`, or `serve` to make it the daemon default);
//!   off, plans are bit-identical to a build without mining;
//! - `--seed N` / `--count N` — mining corpus seed and the maximum
//!   number of rules to certify (`mine` only).
//!
//! Script syntax (see `dopcert::script`):
//!
//! ```text
//! table R(int, int);
//! budget iters 40;
//! verify DISTINCT SELECT Right.Left FROM R
//!     == DISTINCT SELECT Right.Left.Left FROM R, R
//!        WHERE Right.Left.Left = Right.Right.Left;
//! ```

use dopcert::api::{BudgetSpec, Request, RequestOptions, Response};
use dopcert::prove::SaturateMode;
use dopcert::serve::{request_once, RefillPolicy, ServeConfig, Server};
use dopcert::wire::Json;
use egraph::session::BatchBudget;
use std::io::Read;
use std::process::ExitCode;

/// Flags shared by the subcommands, parsed from the trailing arguments.
#[derive(Debug, Default)]
struct Flags {
    jobs: Option<usize>,
    saturate: bool,
    /// The three saturation knobs, through the shared validation point.
    budget: BudgetSpec,
    no_shared_cache: bool,
    no_session: bool,
    discover: bool,
    addr: Option<String>,
    cmd: Option<String>,
    tenant: Option<String>,
    /// Chrome-trace output path (`prove`/`optimize`/`serve`): enables
    /// phase tracing and dumps the events on exit.
    trace_out: Option<String>,
    /// Print the per-rule attribution table after the response
    /// (`prove`/`optimize`/`catalog`): enables profiling for the run.
    profile: bool,
    /// Narrate candidate routes and certificate lemmas per optimized
    /// query (`optimize` only).
    explain: bool,
    /// Budget refill rate in iterations per second (`serve` only).
    budget_refill: Option<u64>,
    /// Plan with the mined rewrite catalog (`optimize`/`serve`).
    mined_rules: bool,
    /// Mining corpus seed (`mine` only).
    seed: Option<u64>,
    /// Maximum number of mined rules to certify (`mine` only).
    count: Option<usize>,
    /// First non-flag argument (the script path for check/prove).
    positional: Option<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::default();
    let mut it = args.iter();
    let parse_num = |flag: &str, v: Option<&String>| -> Result<usize, String> {
        let v = v.ok_or_else(|| format!("{flag} needs a number"))?;
        v.parse::<usize>()
            .map_err(|_| format!("invalid {flag} value {v:?}"))
    };
    let parse_str = |flag: &str, v: Option<&String>| -> Result<String, String> {
        v.cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    let parse_knob = |flags: &mut Flags, knob: &str, v: Option<&String>| match v {
        Some(v) => flags.budget.parse_set(knob, v),
        None => Err(format!("--sat-{knob} needs a number")),
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" | "-j" => flags.jobs = Some(parse_num(arg, it.next())?),
            "--saturate" => flags.saturate = true,
            "--sat-iters" => parse_knob(&mut flags, "iters", it.next())?,
            "--sat-nodes" => parse_knob(&mut flags, "nodes", it.next())?,
            "--sat-oracle-calls" => parse_knob(&mut flags, "oracle-calls", it.next())?,
            "--no-shared-cache" => flags.no_shared_cache = true,
            "--no-session" => flags.no_session = true,
            "--discover" => flags.discover = true,
            "--addr" => flags.addr = Some(parse_str(arg, it.next())?),
            "--cmd" => flags.cmd = Some(parse_str(arg, it.next())?),
            "--tenant" => flags.tenant = Some(parse_str(arg, it.next())?),
            "--trace-out" => flags.trace_out = Some(parse_str(arg, it.next())?),
            "--profile" => flags.profile = true,
            "--explain" => flags.explain = true,
            "--budget-refill" => {
                let n = parse_num(arg, it.next())?;
                if n == 0 {
                    return Err("--budget-refill must be positive".into());
                }
                flags.budget_refill = Some(n as u64);
            }
            "--mined-rules" => flags.mined_rules = true,
            "--seed" => flags.seed = Some(parse_num(arg, it.next())? as u64),
            "--count" => {
                let n = parse_num(arg, it.next())?;
                if n == 0 {
                    return Err("--count must be positive".into());
                }
                flags.count = Some(n);
            }
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unknown flag {other:?}"));
            }
            other => {
                if flags.positional.replace(other.to_owned()).is_some() {
                    return Err("more than one input path".into());
                }
            }
        }
    }
    Ok(flags)
}

impl Flags {
    /// Rejects flags the subcommand would silently ignore.
    fn validate_for(&self, cmd: &str) -> Result<(), String> {
        let reject = |cond: bool, flag: &str| {
            if cond {
                Err(format!("{flag} is not accepted by `{cmd}`"))
            } else {
                Ok(())
            }
        };
        if !matches!(cmd, "serve" | "request") {
            reject(self.addr.is_some(), "--addr (use `serve` or `request`)")?;
            reject(self.cmd.is_some(), "--cmd (use `request`)")?;
            reject(self.tenant.is_some(), "--tenant (use `request`)")?;
        }
        if !matches!(cmd, "prove" | "optimize" | "serve") {
            reject(
                self.trace_out.is_some(),
                "--trace-out (use `prove`, `optimize`, or `serve`)",
            )?;
        }
        if cmd != "serve" {
            reject(
                self.budget_refill.is_some(),
                "--budget-refill (use `serve`)",
            )?;
        }
        if !matches!(cmd, "prove" | "optimize" | "catalog") {
            reject(
                self.profile,
                "--profile (use `prove`, `optimize`, or `catalog`)",
            )?;
        }
        if cmd != "optimize" {
            reject(self.explain, "--explain (use `optimize`)")?;
        }
        if !matches!(cmd, "optimize" | "serve" | "request") {
            reject(
                self.mined_rules,
                "--mined-rules (use `optimize`, `serve`, or `request`)",
            )?;
        }
        if !matches!(cmd, "mine" | "request") {
            reject(self.seed.is_some(), "--seed (use `mine`)")?;
            reject(self.count.is_some(), "--count (use `mine`)")?;
        }
        match cmd {
            "check" => {
                reject(self.jobs.is_some(), "--jobs")?;
                reject(self.no_shared_cache, "--no-shared-cache")?;
                reject(self.saturate, "--saturate (use `prove`)")?;
                reject(self.budget.iters.is_some(), "--sat-iters (use `prove`)")?;
                reject(self.budget.nodes.is_some(), "--sat-nodes (use `prove`)")?;
                reject(
                    self.budget.oracle_calls.is_some(),
                    "--sat-oracle-calls (use `prove`)",
                )?;
                reject(self.no_session, "--no-session (use `prove`)")?;
                reject(self.discover, "--discover (use `catalog`)")?;
            }
            "prove" => {
                reject(self.jobs.is_some(), "--jobs")?;
                reject(self.no_shared_cache, "--no-shared-cache")?;
                reject(self.discover, "--discover (use `catalog`)")?;
            }
            "optimize" => {
                // Optimization always saturates; the mode flag would be
                // silently ignored, so reject it (budget flags apply).
                reject(self.saturate, "--saturate (optimize always saturates)")?;
                reject(self.discover, "--discover (use `catalog`)")?;
            }
            "catalog" => {
                reject(self.positional.is_some(), "a script path")?;
            }
            "mine" => {
                // Mining runs under its own internal budgets; every
                // engine/budget flag would be silently ignored.
                reject(self.positional.is_some(), "a script path")?;
                reject(self.jobs.is_some(), "--jobs")?;
                reject(self.saturate, "--saturate")?;
                reject(self.budget.iters.is_some(), "--sat-iters")?;
                reject(self.budget.nodes.is_some(), "--sat-nodes")?;
                reject(self.budget.oracle_calls.is_some(), "--sat-oracle-calls")?;
                reject(self.no_shared_cache, "--no-shared-cache")?;
                reject(self.no_session, "--no-session")?;
                reject(self.discover, "--discover (use `catalog`)")?;
            }
            "serve" => {
                reject(self.positional.is_some(), "a script path")?;
                reject(self.discover, "--discover (use `catalog`)")?;
                reject(self.cmd.is_some(), "--cmd (use `request`)")?;
                reject(self.tenant.is_some(), "--tenant (use `request`)")?;
            }
            "request" => {
                reject(self.addr.is_none(), "(missing) --addr")?;
            }
            _ => {}
        }
        Ok(())
    }

    /// The request options these flags describe — [`RequestOptions`] is
    /// the typed form every front end shares.
    fn request_options(&self) -> RequestOptions {
        RequestOptions {
            saturate: if self.saturate {
                SaturateMode::Only
            } else {
                SaturateMode::Fallback
            },
            budget: self.budget,
            session: !self.no_session,
            jobs: self.jobs,
            shared_cache: !self.no_shared_cache,
            mined_rules: self.mined_rules,
        }
    }

    fn read_script(&self) -> Result<String, String> {
        match self.positional.as_deref() {
            Some("-") | None => {
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .map_err(|e| format!("cannot read stdin: {e}"))?;
                Ok(buf)
            }
            Some(path) => {
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
            }
        }
    }

    /// Builds the typed request for a subcommand (or `--cmd` name).
    fn build_request(&self, cmd: &str) -> Result<Request, String> {
        Ok(match cmd {
            // `check` runs at the library defaults: tactics first,
            // saturation as fallback (non-CQ goals only gain proofs
            // from this; refute goals pay at most the ms-scale
            // saturation budget before the counterexample hunt).
            "check" => Request::Prove {
                script: self.read_script()?,
                opts: RequestOptions::default(),
            },
            "prove" => Request::Prove {
                script: self.read_script()?,
                opts: self.request_options(),
            },
            "optimize" => Request::Optimize {
                script: self.read_script()?,
                opts: self.request_options(),
            },
            "catalog" => Request::Catalog {
                discover: self.discover,
                opts: self.request_options(),
            },
            "discover" => Request::Discover {
                opts: self.request_options(),
            },
            "mine" => {
                let defaults = mine::MineConfig::default();
                Request::Mine {
                    seed: self.seed.unwrap_or(defaults.seed),
                    count: self.count.unwrap_or(defaults.max_rules),
                }
            }
            "stats" => Request::Stats,
            "metrics" => Request::Metrics,
            "profile" => Request::Profile,
            "trace" => Request::Trace,
            "shutdown" => Request::Shutdown,
            other => return Err(format!("unknown request cmd {other:?}")),
        })
    }
}

/// Turns phase tracing on when `--trace-out` was given.
fn start_tracing(flags: &Flags) {
    if flags.trace_out.is_some() {
        telemetry::enable_tracing();
    }
}

/// Dumps the buffered trace events as Chrome trace-event JSON (load in
/// Perfetto / `chrome://tracing`) when `--trace-out` was given.
fn finish_tracing(flags: &Flags) {
    if let Some(path) = &flags.trace_out {
        match telemetry::write_chrome_trace(std::path::Path::new(path)) {
            Ok(()) => eprintln!("trace written to {path}"),
            Err(e) => eprintln!("error: cannot write trace to {path}: {e}"),
        }
    }
}

/// Prints a response the way the subcommands always have: rendered
/// lines to stdout, error responses to stderr, exit code from `ok()`.
fn print_response(resp: &Response) -> ExitCode {
    match resp {
        Response::Error(_) => {
            for line in resp.render() {
                eprintln!("{line}");
            }
            ExitCode::FAILURE
        }
        other => {
            for line in other.render() {
                println!("{line}");
            }
            if other.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

/// `dopcert serve`: bind, announce, and block until a client sends a
/// `shutdown` request.
fn run_serve(flags: &Flags) -> ExitCode {
    let defaults = flags.request_options();
    let config = ServeConfig {
        addr: flags
            .addr
            .clone()
            .unwrap_or_else(|| ServeConfig::default().addr),
        workers: flags.jobs.unwrap_or(ServeConfig::default().workers),
        // Each tenant may spend what a generous batch would; scaled
        // from the same per-goal budget requests are charged at.
        tenant_budget: BatchBudget::scaled_from(
            defaults.prove_options(BudgetSpec::default()).budget,
        ),
        refill: flags
            .budget_refill
            .map(|iters_per_sec| RefillPolicy { iters_per_sec }),
        defaults,
    };
    start_tracing(flags);
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.local_addr());
    // The announce line must reach pipes before we block.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.wait();
    // Workers have exited (their buffered spans flushed on thread
    // drop), so the dump is complete.
    finish_tracing(flags);
    ExitCode::SUCCESS
}

/// `dopcert request`: one request to a running daemon, printed exactly
/// as the local subcommand would print it.
fn run_request(flags: &Flags) -> ExitCode {
    let addr = flags.addr.as_deref().expect("validated");
    let cmd = flags.cmd.as_deref().unwrap_or("prove");
    let req = match flags.build_request(cmd) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tenant = flags.tenant.as_deref().unwrap_or("default");
    let reply = match request_once(addr, &Json::Null, tenant, &req) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(e) = &reply.error {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    for line in &reply.lines {
        println!("{line}");
    }
    if reply.ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => ("", &[][..]),
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = flags.validate_for(cmd) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    match cmd {
        "check" | "prove" | "optimize" | "catalog" | "mine" => {
            let req = match flags.build_request(cmd) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            start_tracing(&flags);
            if flags.profile {
                // OR-composes with tracing/metrics; without the flag the
                // attribution paths stay strict no-ops.
                telemetry::enable_profiling();
            }
            let start = std::time::Instant::now();
            let resp = dopcert::api::execute(&req);
            let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
            finish_tracing(&flags);
            let code = print_response(&resp);
            if flags.explain {
                for line in resp.render_explain() {
                    println!("{line}");
                }
            }
            if flags.profile {
                for line in telemetry::profile_snapshot().render_table() {
                    println!("{line}");
                }
            }
            // Timing is diagnostics, not output: stderr keeps stdout
            // byte-comparable with serve responses.
            match (&resp, cmd) {
                (Response::Plans(plans), _) => eprintln!(
                    "{} queries optimized on {} threads in {elapsed_ms:.1} ms",
                    plans.len(),
                    flags
                        .request_options()
                        .engine(BudgetSpec::default())
                        .threads(),
                ),
                (Response::Catalog { rules, .. }, _) => eprintln!(
                    "{} rules checked on {} threads in {elapsed_ms:.1} ms{}",
                    rules.len(),
                    flags
                        .request_options()
                        .engine(BudgetSpec::default())
                        .threads(),
                    if flags.saturate {
                        " (saturation only)"
                    } else {
                        ""
                    },
                ),
                (Response::Mined(m), _) => eprintln!(
                    "{} rules certified from {} candidates in {elapsed_ms:.1} ms",
                    m.rules.len(),
                    m.candidates,
                ),
                _ => {}
            }
            code
        }
        "serve" => run_serve(&flags),
        "request" => run_request(&flags),
        _ => {
            eprintln!(
                "usage: dopcert check <file.dop | ->\n\
                 \x20      dopcert prove [--saturate] [--sat-iters N] [--sat-nodes N] [--sat-oracle-calls N] [--no-session] [--trace-out FILE] [--profile] <file.dop | ->\n\
                 \x20      dopcert optimize [--jobs N] [--sat-iters N] [--sat-nodes N] [--sat-oracle-calls N] [--no-shared-cache] [--no-session] [--mined-rules] [--trace-out FILE] [--profile] [--explain] <file.dop | ->\n\
                 \x20      dopcert catalog [--jobs N] [--saturate] [--sat-iters N] [--sat-nodes N] [--sat-oracle-calls N] [--no-shared-cache] [--no-session] [--discover] [--profile]\n\
                 \x20      dopcert mine [--seed N] [--count N]\n\
                 \x20      dopcert serve [--addr HOST:PORT] [--jobs N] [--saturate] [--sat-iters N] [--sat-nodes N] [--sat-oracle-calls N] [--no-session] [--mined-rules] [--budget-refill N] [--trace-out FILE]\n\
                 \x20      dopcert request --addr HOST:PORT [--cmd check|prove|optimize|catalog|discover|mine|stats|metrics|profile|trace|shutdown] [--tenant NAME] [flags] [file.dop | -]"
            );
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Result<Flags, String> {
        parse_flags(&args.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_flags_and_positional() {
        let f = flags(&["--jobs", "4", "--sat-iters", "9", "x.dop"]).unwrap();
        assert_eq!(f.jobs, Some(4));
        assert_eq!(f.budget.iters, Some(9));
        assert_eq!(f.positional.as_deref(), Some("x.dop"));
        assert!(flags(&["--jobs"]).is_err());
        assert!(flags(&["--bogus"]).is_err());
        assert!(flags(&["a.dop", "b.dop"]).is_err());
    }

    #[test]
    fn budget_flags_share_the_api_validation() {
        // Zero and garbage are rejected at parse time, by BudgetSpec —
        // the same code path scripts and serve requests go through.
        assert!(flags(&["--sat-iters", "0"]).is_err());
        assert!(flags(&["--sat-nodes", "many"]).is_err());
        assert!(flags(&["--sat-oracle-calls"]).is_err(), "needs a number");
        let f = flags(&["--sat-oracle-calls", "7"]).unwrap();
        assert_eq!(f.budget.oracle_calls, Some(7));
    }

    #[test]
    fn check_rejects_every_flag_it_would_ignore() {
        for args in [
            &["--saturate"][..],
            &["--sat-iters", "5"][..],
            &["--sat-nodes", "100"][..],
            &["--sat-oracle-calls", "16"][..],
            &["--jobs", "2"][..],
            &["--no-shared-cache"][..],
            &["--no-session"][..],
            &["--discover"][..],
            &["--addr", "h:1"][..],
            &["--tenant", "t"][..],
            &["--trace-out", "t.json"][..],
            &["--budget-refill", "10"][..],
            &["--profile"][..],
            &["--explain"][..],
            &["--mined-rules"][..],
            &["--seed", "7"][..],
            &["--count", "3"][..],
        ] {
            let f = flags(args).unwrap();
            let err = f.validate_for("check").unwrap_err();
            assert!(err.contains("not accepted"), "{args:?}: {err}");
        }
    }

    #[test]
    fn profile_is_prove_optimize_catalog_only() {
        let f = flags(&["--profile"]).unwrap();
        assert!(f.profile);
        f.validate_for("prove").unwrap();
        f.validate_for("optimize").unwrap();
        f.validate_for("catalog").unwrap();
        for cmd in ["check", "serve", "request"] {
            let err = f.validate_for(cmd).unwrap_err();
            assert!(err.contains("--profile"), "{cmd}: {err}");
        }
    }

    #[test]
    fn explain_is_optimize_only() {
        let f = flags(&["--explain"]).unwrap();
        assert!(f.explain);
        f.validate_for("optimize").unwrap();
        for cmd in ["check", "prove", "catalog", "serve", "request"] {
            let err = f.validate_for(cmd).unwrap_err();
            assert!(err.contains("--explain"), "{cmd}: {err}");
        }
    }

    #[test]
    fn profile_and_trace_requests_build() {
        let f = flags(&["--addr", "h:1", "--cmd", "profile"]).unwrap();
        f.validate_for("request").unwrap();
        assert!(matches!(f.build_request("profile"), Ok(Request::Profile)));
        assert!(matches!(f.build_request("trace"), Ok(Request::Trace)));
    }

    #[test]
    fn oracle_calls_flag_reaches_the_budget() {
        let f = flags(&["--sat-oracle-calls", "7"]).unwrap();
        f.validate_for("prove").unwrap();
        f.validate_for("optimize").unwrap();
        f.validate_for("catalog").unwrap();
        let opts = f.request_options().prove_options(BudgetSpec::default());
        assert_eq!(opts.budget.oracle_calls_per_iter, 7);
    }

    #[test]
    fn no_session_flag_reaches_prove_options() {
        let f = flags(&["--no-session"]).unwrap();
        f.validate_for("prove").unwrap();
        f.validate_for("optimize").unwrap();
        f.validate_for("catalog").unwrap();
        assert!(!f.request_options().session);
        assert!(
            flags(&[]).unwrap().request_options().session,
            "on by default"
        );
    }

    #[test]
    fn discover_is_catalog_only() {
        let f = flags(&["--discover"]).unwrap();
        f.validate_for("catalog").unwrap();
        for cmd in ["check", "prove", "optimize", "serve"] {
            let err = f.validate_for(cmd).unwrap_err();
            assert!(err.contains("--discover"), "{cmd}: {err}");
        }
    }

    #[test]
    fn prove_rejects_engine_flags_but_accepts_saturation_budget() {
        let f = flags(&["--saturate", "--sat-iters", "5", "--sat-nodes", "10"]).unwrap();
        f.validate_for("prove").unwrap();
        assert!(flags(&["--jobs", "2"])
            .unwrap()
            .validate_for("prove")
            .is_err());
        assert!(flags(&["--no-shared-cache"])
            .unwrap()
            .validate_for("prove")
            .is_err());
    }

    #[test]
    fn optimize_accepts_budget_and_jobs_but_rejects_saturate() {
        let f = flags(&[
            "--jobs",
            "2",
            "--sat-iters",
            "5",
            "--sat-nodes",
            "10",
            "--no-shared-cache",
            "x.dop",
        ])
        .unwrap();
        f.validate_for("optimize").unwrap();
        let err = flags(&["--saturate"])
            .unwrap()
            .validate_for("optimize")
            .unwrap_err();
        assert!(err.contains("--saturate"), "{err}");
    }

    #[test]
    fn catalog_rejects_a_script_path_and_budget_flags_reach_the_engine() {
        assert!(flags(&["x.dop"]).unwrap().validate_for("catalog").is_err());
        let f = flags(&["--sat-iters", "7", "--sat-nodes", "11"]).unwrap();
        f.validate_for("catalog").unwrap();
        let opts = f.request_options().prove_options(BudgetSpec::default());
        assert_eq!(opts.budget.max_iters, 7);
        assert_eq!(opts.budget.max_nodes, 11);
    }

    #[test]
    fn serve_and_request_own_the_network_flags() {
        let f = flags(&["--addr", "127.0.0.1:7411", "--jobs", "2"]).unwrap();
        f.validate_for("serve").unwrap();
        let err = flags(&[]).unwrap().validate_for("request").unwrap_err();
        assert!(err.contains("--addr"), "request requires an address: {err}");
        let f = flags(&["--addr", "h:1", "--cmd", "stats", "--tenant", "alice"]).unwrap();
        f.validate_for("request").unwrap();
        assert!(matches!(f.build_request("stats"), Ok(Request::Stats)));
        assert!(f.build_request("levitate").is_err());
        let err = f.validate_for("serve").unwrap_err();
        assert!(err.contains("--cmd"), "{err}");
    }

    #[test]
    fn trace_out_is_prove_optimize_serve_only() {
        let f = flags(&["--trace-out", "trace.json"]).unwrap();
        assert_eq!(f.trace_out.as_deref(), Some("trace.json"));
        f.validate_for("prove").unwrap();
        f.validate_for("optimize").unwrap();
        f.validate_for("serve").unwrap();
        for cmd in ["check", "catalog", "request"] {
            let err = f.validate_for(cmd).unwrap_err();
            assert!(err.contains("--trace-out"), "{cmd}: {err}");
        }
        assert!(flags(&["--trace-out"]).is_err(), "needs a path");
    }

    #[test]
    fn budget_refill_is_serve_only_and_positive() {
        let f = flags(&["--budget-refill", "48"]).unwrap();
        assert_eq!(f.budget_refill, Some(48));
        f.validate_for("serve").unwrap();
        for cmd in ["check", "prove", "optimize", "catalog", "request"] {
            let err = f.validate_for(cmd).unwrap_err();
            assert!(err.contains("--budget-refill"), "{cmd}: {err}");
        }
        assert!(flags(&["--budget-refill", "0"]).is_err(), "zero rejected");
        assert!(flags(&["--budget-refill", "x"]).is_err());
        assert!(flags(&["--budget-refill"]).is_err());
    }

    #[test]
    fn mined_rules_is_optimize_serve_request_only() {
        let f = flags(&["--mined-rules"]).unwrap();
        assert!(f.mined_rules);
        f.validate_for("optimize").unwrap();
        f.validate_for("serve").unwrap();
        assert!(f.request_options().mined_rules);
        assert!(
            !flags(&[]).unwrap().request_options().mined_rules,
            "off by default"
        );
        for cmd in ["check", "prove", "catalog", "mine"] {
            let err = f.validate_for(cmd).unwrap_err();
            assert!(err.contains("--mined-rules"), "{cmd}: {err}");
        }
    }

    #[test]
    fn mine_owns_seed_and_count_and_rejects_engine_flags() {
        let f = flags(&["--seed", "7", "--count", "4"]).unwrap();
        f.validate_for("mine").unwrap();
        match f.build_request("mine") {
            Ok(Request::Mine { seed, count }) => {
                assert_eq!(seed, 7);
                assert_eq!(count, 4);
            }
            other => panic!("expected Mine request, got {other:?}"),
        }
        // Defaults come from the mining config itself.
        let defaults = mine::MineConfig::default();
        match flags(&[]).unwrap().build_request("mine") {
            Ok(Request::Mine { seed, count }) => {
                assert_eq!(seed, defaults.seed);
                assert_eq!(count, defaults.max_rules);
            }
            other => panic!("expected Mine request, got {other:?}"),
        }
        assert!(flags(&["--count", "0"]).is_err(), "zero rejected");
        for args in [
            &["--jobs", "2"][..],
            &["--saturate"][..],
            &["--sat-iters", "5"][..],
            &["--no-session"][..],
            &["x.dop"][..],
        ] {
            let err = flags(args).unwrap().validate_for("mine").unwrap_err();
            assert!(err.contains("not accepted"), "{args:?}: {err}");
        }
        for cmd in ["check", "prove", "optimize", "catalog", "serve"] {
            let err = f.validate_for(cmd).unwrap_err();
            assert!(err.contains("--seed"), "{cmd}: {err}");
        }
    }

    #[test]
    fn metrics_request_builds() {
        let f = flags(&["--addr", "h:1", "--cmd", "metrics"]).unwrap();
        f.validate_for("request").unwrap();
        assert!(matches!(f.build_request("metrics"), Ok(Request::Metrics)));
    }
}
