//! Known-unsound rewrite rules that the system must *reject*.
//!
//! The paper's motivation (Sec. 1) is that plausible-looking rewrites
//! ship in production optimizers and silently corrupt results
//! (PostgreSQL bug #5673, MySQL bug #70038). Each rule here is a
//! documented mistake: the prover must fail on it, and the differential
//! tester must produce a concrete counterexample instance.

use crate::rule::{Category, Rule, RuleInstance, SchemaSource};
use hottsql::ast::{Expr, Predicate, Proj, Query};
use hottsql::env::QueryEnv;
use relalg::{BaseType, Schema};

/// All rejected rules.
pub fn rules() -> Vec<Rule> {
    vec![
        Rule {
            name: "wrong-distinct-union",
            category: Category::Unsound,
            description: "DISTINCT(R ∪ S) ≠ DISTINCT R ∪ DISTINCT S under bags",
            build: wrong_distinct_union,
            expected_sound: false,
        },
        Rule {
            name: "wrong-except-restore",
            category: Category::Unsound,
            description: "(R EXCEPT S) ∪ S ≠ R",
            build: wrong_except_restore,
            expected_sound: false,
        },
        Rule {
            name: "wrong-three-valued-em",
            category: Category::Unsound,
            description: "Sec. 7: excluded middle fails under three-valued logic",
            build: wrong_three_valued_em,
            expected_sound: false,
        },
        Rule {
            name: "wrong-project-distinct-swap",
            category: Category::Unsound,
            description: "DISTINCT(SELECT a R) ≠ SELECT a (DISTINCT R) (MySQL #70038 family)",
            build: wrong_project_distinct_swap,
            expected_sound: false,
        },
        Rule {
            name: "wrong-join-union-typo",
            category: Category::Unsound,
            description: "R × (S ∪ T) ≠ (R × S) ∪ (R × S) — a one-character typo",
            build: wrong_join_union_typo,
            expected_sound: false,
        },
    ]
}

fn wrong_distinct_union(src: &mut dyn SchemaSource) -> RuleInstance {
    let sigma = src.schema("sigma");
    let env = QueryEnv::new()
        .with_table("R", sigma.clone())
        .with_table("S", sigma);
    RuleInstance::plain(
        env,
        Query::distinct(Query::union_all(Query::table("R"), Query::table("S"))),
        Query::union_all(
            Query::distinct(Query::table("R")),
            Query::distinct(Query::table("S")),
        ),
    )
}

fn wrong_except_restore(src: &mut dyn SchemaSource) -> RuleInstance {
    let sigma = src.schema("sigma");
    let env = QueryEnv::new()
        .with_table("R", sigma.clone())
        .with_table("S", sigma);
    RuleInstance::plain(
        env,
        Query::union_all(
            Query::except(Query::table("R"), Query::table("S")),
            Query::table("S"),
        ),
        Query::table("R"),
    )
}

/// `SELECT * FROM R WHERE istrue(eq3(a, l)) OR istrue(not3(eq3(a, l)))`
/// vs `SELECT * FROM R`: with `eq3`/`not3`/`istrue` modeling SQL's
/// three-valued comparison (Sec. 7), a NULL-ish value makes both branches
/// non-true and the row is dropped from the left side only.
fn wrong_three_valued_em(src: &mut dyn SchemaSource) -> RuleInstance {
    let sigma = src.schema("sigma");
    let env = QueryEnv::new()
        .with_table("R", sigma.clone())
        .with_proj("a", sigma, Schema::leaf(BaseType::Int))
        .with_fn("eq3", BaseType::Int)
        .with_fn("not3", BaseType::Int)
        .with_fn("l", BaseType::Int)
        .with_upred("istrue", 1);
    let a = || Expr::p2e(Proj::path([Proj::Right, Proj::var("a")]));
    let eq3 = Expr::func("eq3", vec![a(), Expr::func("l", vec![])]);
    let lhs = Query::where_(
        Query::table("R"),
        Predicate::or(
            Predicate::uninterp("istrue", vec![eq3.clone()]),
            Predicate::uninterp("istrue", vec![Expr::func("not3", vec![eq3])]),
        ),
    );
    RuleInstance::plain(env, lhs, Query::table("R"))
}

fn wrong_project_distinct_swap(src: &mut dyn SchemaSource) -> RuleInstance {
    let sigma = src.schema("sigma");
    let env = QueryEnv::new().with_table("R", sigma.clone()).with_proj(
        "a",
        sigma,
        Schema::leaf(BaseType::Int),
    );
    let a = Proj::path([Proj::Right, Proj::var("a")]);
    RuleInstance::plain(
        env,
        Query::distinct(Query::select(a.clone(), Query::table("R"))),
        Query::select(a, Query::distinct(Query::table("R"))),
    )
}

fn wrong_join_union_typo(src: &mut dyn SchemaSource) -> RuleInstance {
    let (sr, ss) = (src.schema("sigma_r"), src.schema("sigma_s"));
    let env = QueryEnv::new()
        .with_table("R", sr)
        .with_table("S", ss.clone())
        .with_table("T", ss);
    RuleInstance::plain(
        env,
        Query::product(
            Query::table("R"),
            Query::union_all(Query::table("S"), Query::table("T")),
        ),
        Query::union_all(
            Query::product(Query::table("R"), Query::table("S")),
            Query::product(Query::table("R"), Query::table("S")),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::prove_rule;

    #[test]
    fn wrong_rules_are_rejected_by_the_prover() {
        for rule in rules() {
            let report = prove_rule(&rule);
            assert!(!report.proved, "{} must NOT prove, but did", rule.name);
        }
    }

    #[test]
    fn there_are_five() {
        assert_eq!(rules().len(), 5);
    }
}
