//! Conjunctive-query rules decided automatically (Sec. 5.2): 2 rules.
//!
//! Both are stated with concrete schemas (the decision procedure works on
//! the collapsed column structure) and verified by the Chandra–Merlin
//! procedure — the "1 line (automatic)" row of Fig. 8.

use crate::rule::{Category, Rule, RuleInstance, SchemaSource};
use hottsql::env::QueryEnv;
use hottsql::parse::parse_query;
use relalg::{BaseType, Schema};

/// Both conjunctive-query rules.
pub fn rules() -> Vec<Rule> {
    vec![
        Rule {
            name: "cq-fig10",
            category: Category::ConjunctiveQuery,
            description: "Sec. 5.2: the Fig. 10 equivalence, decided automatically",
            build: cq_fig10,
            expected_sound: true,
        },
        Rule {
            name: "cq-self-join",
            category: Category::ConjunctiveQuery,
            description: "Q2 ≡ Q3 (Sec. 2) as a conjunctive-query decision",
            build: cq_self_join,
            expected_sound: true,
        },
    ]
}

fn two_int() -> Schema {
    Schema::flat([BaseType::Int, BaseType::Int])
}

/// The Sec. 5.2 example over R1(c1, c2) and R2(c3).
fn cq_fig10(_src: &mut dyn SchemaSource) -> RuleInstance {
    let env = QueryEnv::new()
        .with_table("R1", two_int())
        .with_table("R2", Schema::leaf(BaseType::Int));
    let lhs = parse_query(
        "DISTINCT SELECT Right.Left.Left FROM R1, R2 \
         WHERE Right.Left.Right = Right.Right",
    )
    .expect("lhs parses");
    let rhs = parse_query(
        "DISTINCT SELECT Right.Left.Left.Left FROM (R1, R1), R2 \
         WHERE Right.Left.Left.Left = Right.Left.Right.Left \
         AND Right.Left.Left.Right = Right.Right",
    )
    .expect("rhs parses");
    RuleInstance::plain(env, lhs, rhs)
}

/// Q2 ≡ Q3 with a concrete two-column schema.
fn cq_self_join(_src: &mut dyn SchemaSource) -> RuleInstance {
    let env = QueryEnv::new().with_table("R", two_int());
    let lhs = parse_query("DISTINCT SELECT Right.Left FROM R").expect("lhs parses");
    let rhs = parse_query(
        "DISTINCT SELECT Right.Left.Left FROM R, R \
         WHERE Right.Left.Left = Right.Right.Left",
    )
    .expect("rhs parses");
    RuleInstance::plain(env, lhs, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::prove_rule;
    use crate::prove::decide_cq;

    #[test]
    fn cq_rules_decided_automatically() {
        for rule in rules() {
            let report = prove_rule(&rule);
            assert!(report.proved, "{} failed: {:?}", rule.name, report.failure);
            assert_eq!(report.steps, 1, "decision procedure is one step");
        }
    }

    #[test]
    fn instances_are_in_the_fragment() {
        for rule in rules() {
            let inst = rule.generic();
            assert_eq!(decide_cq(&inst), Some(true), "{}", rule.name);
        }
    }

    #[test]
    fn there_are_two() {
        assert_eq!(rules().len(), 2);
    }
}
