//! Basic rewrite rules (Sec. 5.1.1 and Fig. 1/Fig. 2): 8 rules.

use crate::rule::{Category, Rule, RuleInstance, SchemaSource};
use hottsql::ast::{Expr, Predicate, Proj, Query};
use hottsql::env::QueryEnv;
use relalg::{BaseType, Schema};

/// All eight basic rules.
pub fn rules() -> Vec<Rule> {
    vec![
        Rule {
            name: "union-slct-distr",
            category: Category::Basic,
            description: "Fig. 1: selection distributes over UNION ALL",
            build: union_slct_distr,
            expected_sound: true,
        },
        Rule {
            name: "conj-slct-split",
            category: Category::Basic,
            description: "Sec. 5.1.1: WHERE p1 AND p2 splits into nested selections",
            build: conj_slct_split,
            expected_sound: true,
        },
        Rule {
            name: "join-commute",
            category: Category::Basic,
            description: "Sec. 5.1.1: commutativity of joins",
            build: join_commute,
            expected_sound: true,
        },
        Rule {
            name: "join-assoc",
            category: Category::Basic,
            description: "associativity of joins",
            build: join_assoc,
            expected_sound: true,
        },
        Rule {
            name: "self-join-dedup",
            category: Category::Basic,
            description: "Fig. 2: redundant self-join under DISTINCT (Q2 ≡ Q3)",
            build: self_join_dedup,
            expected_sound: true,
        },
        Rule {
            name: "union-all-commute",
            category: Category::Basic,
            description: "commutativity of UNION ALL",
            build: union_all_commute,
            expected_sound: true,
        },
        Rule {
            name: "distinct-idempotent",
            category: Category::Basic,
            description: "DISTINCT DISTINCT q ≡ DISTINCT q",
            build: distinct_idempotent,
            expected_sound: true,
        },
        Rule {
            name: "where-false-empty",
            category: Category::Basic,
            description: "R WHERE FALSE ≡ R EXCEPT R",
            build: where_false_empty,
            expected_sound: true,
        },
    ]
}

fn union_slct_distr(src: &mut dyn SchemaSource) -> RuleInstance {
    let sigma = src.schema("sigma");
    let env = QueryEnv::new()
        .with_table("R", sigma.clone())
        .with_table("S", sigma.clone())
        .with_pred("b", Schema::node(Schema::Empty, sigma));
    let lhs = Query::where_(
        Query::union_all(Query::table("R"), Query::table("S")),
        Predicate::var("b"),
    );
    let rhs = Query::union_all(
        Query::where_(Query::table("R"), Predicate::var("b")),
        Query::where_(Query::table("S"), Predicate::var("b")),
    );
    RuleInstance::plain(env, lhs, rhs)
}

fn conj_slct_split(src: &mut dyn SchemaSource) -> RuleInstance {
    let sigma = src.schema("sigma");
    let pred_ctx = Schema::node(Schema::Empty, sigma.clone());
    let env = QueryEnv::new()
        .with_table("R", sigma)
        .with_pred("b1", pred_ctx.clone())
        .with_pred("b2", pred_ctx);
    let lhs = Query::where_(
        Query::table("R"),
        Predicate::and(Predicate::var("b1"), Predicate::var("b2")),
    );
    let rhs = Query::where_(
        Query::where_(Query::table("R"), Predicate::var("b1")),
        Predicate::var("b2"),
    );
    RuleInstance::plain(env, lhs, rhs)
}

fn join_commute(src: &mut dyn SchemaSource) -> RuleInstance {
    let (sr, ss) = (src.schema("sigma_r"), src.schema("sigma_s"));
    let env = QueryEnv::new().with_table("R", sr).with_table("S", ss);
    let lhs = Query::product(Query::table("R"), Query::table("S"));
    // SELECT (Right.Right, Right.Left) FROM S, R — flip the pair back.
    let rhs = Query::select(
        Proj::pair(
            Proj::path([Proj::Right, Proj::Right]),
            Proj::path([Proj::Right, Proj::Left]),
        ),
        Query::product(Query::table("S"), Query::table("R")),
    );
    RuleInstance::plain(env, lhs, rhs)
}

fn join_assoc(src: &mut dyn SchemaSource) -> RuleInstance {
    let (sr, ss, st) = (
        src.schema("sigma_r"),
        src.schema("sigma_s"),
        src.schema("sigma_t"),
    );
    let env = QueryEnv::new()
        .with_table("R", sr)
        .with_table("S", ss)
        .with_table("T", st);
    let lhs = Query::product(
        Query::product(Query::table("R"), Query::table("S")),
        Query::table("T"),
    );
    // SELECT ((R, S), T) FROM R, (S, T).
    let rhs = Query::select(
        Proj::pair(
            Proj::pair(
                Proj::path([Proj::Right, Proj::Left]),
                Proj::path([Proj::Right, Proj::Right, Proj::Left]),
            ),
            Proj::path([Proj::Right, Proj::Right, Proj::Right]),
        ),
        Query::product(
            Query::table("R"),
            Query::product(Query::table("S"), Query::table("T")),
        ),
    );
    RuleInstance::plain(env, lhs, rhs)
}

fn self_join_dedup(src: &mut dyn SchemaSource) -> RuleInstance {
    let sigma = src.schema("sigma");
    let env = QueryEnv::new().with_table("R", sigma.clone()).with_proj(
        "a",
        sigma,
        Schema::leaf(BaseType::Int),
    );
    // Q2: DISTINCT SELECT a FROM R.
    let lhs = Query::distinct(Query::select(
        Proj::path([Proj::Right, Proj::var("a")]),
        Query::table("R"),
    ));
    // Q3: DISTINCT SELECT x.a FROM R x, R y WHERE x.a = y.a.
    let x_a = Proj::path([Proj::Right, Proj::Left, Proj::var("a")]);
    let y_a = Proj::path([Proj::Right, Proj::Right, Proj::var("a")]);
    let rhs = Query::distinct(Query::select(
        x_a.clone(),
        Query::where_(
            Query::product(Query::table("R"), Query::table("R")),
            Predicate::eq(Expr::p2e(x_a), Expr::p2e(y_a)),
        ),
    ));
    RuleInstance::plain(env, lhs, rhs)
}

fn union_all_commute(src: &mut dyn SchemaSource) -> RuleInstance {
    let sigma = src.schema("sigma");
    let env = QueryEnv::new()
        .with_table("R", sigma.clone())
        .with_table("S", sigma);
    RuleInstance::plain(
        env,
        Query::union_all(Query::table("R"), Query::table("S")),
        Query::union_all(Query::table("S"), Query::table("R")),
    )
}

fn distinct_idempotent(src: &mut dyn SchemaSource) -> RuleInstance {
    let sigma = src.schema("sigma");
    let env = QueryEnv::new().with_table("R", sigma);
    RuleInstance::plain(
        env,
        Query::distinct(Query::distinct(Query::table("R"))),
        Query::distinct(Query::table("R")),
    )
}

fn where_false_empty(src: &mut dyn SchemaSource) -> RuleInstance {
    let sigma = src.schema("sigma");
    let env = QueryEnv::new().with_table("R", sigma);
    RuleInstance::plain(
        env,
        Query::where_(Query::table("R"), Predicate::False),
        Query::except(Query::table("R"), Query::table("R")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::prove_rule;

    #[test]
    fn all_basic_rules_prove() {
        for rule in rules() {
            let report = prove_rule(&rule);
            assert!(report.proved, "{} failed: {:?}", rule.name, report.failure);
        }
    }

    #[test]
    fn there_are_eight() {
        assert_eq!(rules().len(), 8);
    }
}
