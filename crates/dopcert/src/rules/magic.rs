//! Magic-set (semijoin) rewrite rules (Sec. 5.1.3): 7 rules.
//!
//! Magic-set rewrites are composed from semijoin-algebra identities; the
//! paper proves the three generators (introduction of θ-semijoin, pushing
//! θ-semijoin through join, pushing θ-semijoin through aggregation) and
//! additional structural laws. `A SEMIJOIN B ON θ` abbreviates
//! `SELECT * FROM A WHERE EXISTS (SELECT * FROM B WHERE θ)`.

use crate::rule::{Category, Rule, RuleInstance, SchemaSource};
use hottsql::ast::{Expr, Predicate, Proj, Query};
use hottsql::desugar::{group_by_agg, semijoin};
use hottsql::env::QueryEnv;
use relalg::{BaseType, Schema};

/// All seven magic-set rules.
pub fn rules() -> Vec<Rule> {
    vec![
        Rule {
            name: "semijoin-intro",
            category: Category::MagicSet,
            description: "Sec. 5.1.3: introduction of θ-semijoin",
            build: semijoin_intro,
            expected_sound: true,
        },
        Rule {
            name: "semijoin-push-join",
            category: Category::MagicSet,
            description: "Sec. 5.1.3: pushing θ-semijoin through join",
            build: semijoin_push_join,
            expected_sound: true,
        },
        Rule {
            name: "semijoin-push-agg",
            category: Category::MagicSet,
            description: "Sec. 5.1.3: pushing θ-semijoin through aggregation",
            build: semijoin_push_agg,
            expected_sound: true,
        },
        Rule {
            name: "semijoin-idempotent",
            category: Category::MagicSet,
            description: "(A ⋉θ B) ⋉θ B ≡ A ⋉θ B",
            build: semijoin_idempotent,
            expected_sound: true,
        },
        Rule {
            name: "semijoin-filter-commute",
            category: Category::MagicSet,
            description: "(A WHERE p) ⋉θ B ≡ (A ⋉θ B) WHERE p",
            build: semijoin_filter_commute,
            expected_sound: true,
        },
        Rule {
            name: "semijoin-union-distr",
            category: Category::MagicSet,
            description: "(A ∪ B) ⋉θ C ≡ (A ⋉θ C) ∪ (B ⋉θ C)",
            build: semijoin_union_distr,
            expected_sound: true,
        },
        Rule {
            name: "semijoin-distinct-commute",
            category: Category::MagicSet,
            description: "DISTINCT(A) ⋉θ B ≡ DISTINCT(A ⋉θ B)",
            build: semijoin_distinct_commute,
            expected_sound: true,
        },
    ]
}

/// Context projection from `node (node Γ σ₂) σ₁` (the semijoin θ
/// context) to `node Γ (node σ₂ σ₁)` (the join θ context) — the explicit
/// CASTPRED the paper advertises (Sec. 3.3).
fn semijoin_to_join_cast() -> Proj {
    Proj::pair(
        Proj::path([Proj::Left, Proj::Left]),
        Proj::pair(Proj::path([Proj::Left, Proj::Right]), Proj::Right),
    )
}

/// `SELECT * FROM R2, R1 WHERE θ ≡ SELECT * FROM (R2 ⋉θ R1), R1 WHERE θ`.
fn semijoin_intro(src: &mut dyn SchemaSource) -> RuleInstance {
    let (s1, s2) = (src.schema("sigma1"), src.schema("sigma2"));
    // θ over the join context: node(empty, node σ2 σ1).
    let theta_ctx = Schema::node(Schema::Empty, Schema::node(s2.clone(), s1.clone()));
    let env = QueryEnv::new()
        .with_table("R1", s1)
        .with_table("R2", s2)
        .with_pred("theta", theta_ctx);
    let lhs = Query::where_(
        Query::product(Query::table("R2"), Query::table("R1")),
        Predicate::var("theta"),
    );
    let semi = semijoin(
        Query::table("R2"),
        Query::table("R1"),
        Predicate::cast(semijoin_to_join_cast(), Predicate::var("theta")),
    );
    let rhs = Query::where_(
        Query::product(semi, Query::table("R1")),
        Predicate::var("theta"),
    );
    RuleInstance::plain(env, lhs, rhs)
}

/// `(R1 ⋈θ1 R2) ⋉θ2 R3 ≡ (R1 ⋈θ1 R2′) ⋉θ2 R3`
/// where `R2′ = R2 ⋉(θ1 ∧ θ2) (R1 ⋈ R3)`.
fn semijoin_push_join(src: &mut dyn SchemaSource) -> RuleInstance {
    let (s1, s2, s3) = (
        src.schema("sigma1"),
        src.schema("sigma2"),
        src.schema("sigma3"),
    );
    let join12 = Schema::node(s1.clone(), s2.clone());
    // θ1 over node(empty, node σ1 σ2); θ2 over node(node(empty, node σ1 σ2), σ3).
    let theta1_ctx = Schema::node(Schema::Empty, join12.clone());
    let theta2_ctx = Schema::node(theta1_ctx.clone(), s3.clone());
    let env = QueryEnv::new()
        .with_table("R1", s1)
        .with_table("R2", s2)
        .with_table("R3", s3)
        .with_pred("theta1", theta1_ctx)
        .with_pred("theta2", theta2_ctx);
    let join = |r2: Query| {
        Query::where_(
            Query::product(Query::table("R1"), r2),
            Predicate::var("theta1"),
        )
    };
    let lhs = semijoin(
        join(Query::table("R2")),
        Query::table("R3"),
        Predicate::var("theta2"),
    );
    // R2′ = R2 ⋉ (R1 ⋈ R3) on θ1 ∧ θ2, with both predicates re-targeted
    // from the context node(node(empty, σ2), node σ1 σ3).
    //   θ1 wants node(empty, node σ1 σ2):
    let p1 = Proj::pair(
        Proj::path([Proj::Left, Proj::Left]),
        Proj::pair(
            Proj::path([Proj::Right, Proj::Left]),
            Proj::path([Proj::Left, Proj::Right]),
        ),
    );
    //   θ2 wants node(node(empty, node σ1 σ2), σ3):
    let p2 = Proj::pair(
        Proj::pair(
            Proj::path([Proj::Left, Proj::Left]),
            Proj::pair(
                Proj::path([Proj::Right, Proj::Left]),
                Proj::path([Proj::Left, Proj::Right]),
            ),
        ),
        Proj::path([Proj::Right, Proj::Right]),
    );
    let r2_prime = semijoin(
        Query::table("R2"),
        Query::product(Query::table("R1"), Query::table("R3")),
        Predicate::and(
            Predicate::cast(p1, Predicate::var("theta1")),
            Predicate::cast(p2, Predicate::var("theta2")),
        ),
    );
    let rhs = semijoin(join(r2_prime), Query::table("R3"), Predicate::var("theta2"));
    RuleInstance::plain(env, lhs, rhs)
}

/// `(GROUP BY c1 COUNT) (R1) ⋉(c1=c2) R2
///  ≡ (GROUP BY c1 COUNT) (R1 ⋉(c1=c2) R2)` (Sec. 5.1.3, third rule).
fn semijoin_push_agg(src: &mut dyn SchemaSource) -> RuleInstance {
    let (s1, s2) = (src.schema("sigma1"), src.schema("sigma2"));
    let leaf = Schema::leaf(BaseType::Int);
    let env = QueryEnv::new()
        .with_table("R1", s1.clone())
        .with_table("R2", s2.clone())
        .with_proj("c1", s1.clone(), leaf.clone())
        .with_proj("c2", s2, leaf)
        // The aggregated attribute of R1 (COUNT's input column).
        .with_proj("a_any", s1, Schema::leaf(BaseType::Int));
    let grouped = |table: Query| group_by_agg(table, Proj::var("c1"), "COUNT", Proj::var("a_any"));
    // θ on the grouped side: context node(node(empty, node(key, int)), σ2):
    // compare the group key (Left.Right.Left) with c2 of R2 (Right.c2).
    let theta_grouped = Predicate::eq(
        Expr::p2e(Proj::path([Proj::Left, Proj::Right, Proj::Left])),
        Expr::p2e(Proj::path([Proj::Right, Proj::var("c2")])),
    );
    // θ on the raw side: context node(node(Γ, σ1), σ2): compare c1 of the
    // R1 tuple with c2 of R2.
    let theta_raw = Predicate::eq(
        Expr::p2e(Proj::path([Proj::Left, Proj::Right, Proj::var("c1")])),
        Expr::p2e(Proj::path([Proj::Right, Proj::var("c2")])),
    );
    let lhs = semijoin(
        grouped(Query::table("R1")),
        Query::table("R2"),
        theta_grouped,
    );
    let rhs = grouped(semijoin(Query::table("R1"), Query::table("R2"), theta_raw));
    RuleInstance::plain(env, lhs, rhs)
}

fn theta_env(src: &mut dyn SchemaSource) -> (QueryEnv, Schema, Schema) {
    let (sa, sb) = (src.schema("sigma_a"), src.schema("sigma_b"));
    let theta_ctx = Schema::node(Schema::node(Schema::Empty, sa.clone()), sb.clone());
    let env = QueryEnv::new()
        .with_table("A", sa.clone())
        .with_table("B", sb.clone())
        .with_pred("theta", theta_ctx);
    (env, sa, sb)
}

/// `(A ⋉θ B) ⋉θ B ≡ A ⋉θ B`.
fn semijoin_idempotent(src: &mut dyn SchemaSource) -> RuleInstance {
    let (env, _, _) = theta_env(src);
    let once = semijoin(
        Query::table("A"),
        Query::table("B"),
        Predicate::var("theta"),
    );
    let twice = semijoin(once.clone(), Query::table("B"), Predicate::var("theta"));
    RuleInstance::plain(env, twice, once)
}

/// `(A WHERE p) ⋉θ B ≡ (A ⋉θ B) WHERE p`.
fn semijoin_filter_commute(src: &mut dyn SchemaSource) -> RuleInstance {
    let (env, sa, _) = theta_env(src);
    let env = env.with_pred("p", Schema::node(Schema::Empty, sa));
    let lhs = semijoin(
        Query::where_(Query::table("A"), Predicate::var("p")),
        Query::table("B"),
        Predicate::var("theta"),
    );
    let rhs = Query::where_(
        semijoin(
            Query::table("A"),
            Query::table("B"),
            Predicate::var("theta"),
        ),
        Predicate::var("p"),
    );
    RuleInstance::plain(env, lhs, rhs)
}

/// `(A ∪ A′) ⋉θ B ≡ (A ⋉θ B) ∪ (A′ ⋉θ B)`.
fn semijoin_union_distr(src: &mut dyn SchemaSource) -> RuleInstance {
    let (env, sa, _) = theta_env(src);
    let env = env.with_table("A2", sa);
    let lhs = semijoin(
        Query::union_all(Query::table("A"), Query::table("A2")),
        Query::table("B"),
        Predicate::var("theta"),
    );
    let rhs = Query::union_all(
        semijoin(
            Query::table("A"),
            Query::table("B"),
            Predicate::var("theta"),
        ),
        semijoin(
            Query::table("A2"),
            Query::table("B"),
            Predicate::var("theta"),
        ),
    );
    RuleInstance::plain(env, lhs, rhs)
}

/// `DISTINCT(A) ⋉θ B ≡ DISTINCT(A ⋉θ B)`.
fn semijoin_distinct_commute(src: &mut dyn SchemaSource) -> RuleInstance {
    let (env, _, _) = theta_env(src);
    let lhs = semijoin(
        Query::distinct(Query::table("A")),
        Query::table("B"),
        Predicate::var("theta"),
    );
    let rhs = Query::distinct(semijoin(
        Query::table("A"),
        Query::table("B"),
        Predicate::var("theta"),
    ));
    RuleInstance::plain(env, lhs, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::prove_rule;

    #[test]
    fn magic_set_rules_prove() {
        for rule in rules() {
            let report = prove_rule(&rule);
            assert!(report.proved, "{} failed: {:?}", rule.name, report.failure);
        }
    }

    #[test]
    fn there_are_seven() {
        assert_eq!(rules().len(), 7);
    }
}
