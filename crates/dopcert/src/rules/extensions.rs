//! Extension rules beyond the paper's 23 (Sec. 8 closes by inviting
//! more): additional optimizer identities the prover closes with the
//! same tactic library. Kept outside the Fig. 8 census so the
//! reproduction numbers stay faithful.

use crate::rule::{Category, Rule, RuleInstance, SchemaSource};
use hottsql::ast::{Predicate, Proj, Query};
use hottsql::env::QueryEnv;
use relalg::{BaseType, Schema};

/// All extension rules.
pub fn rules() -> Vec<Rule> {
    vec![
        Rule {
            name: "ext-where-true",
            category: Category::Extension,
            description: "R WHERE TRUE ≡ R",
            build: where_true,
            expected_sound: true,
        },
        Rule {
            name: "ext-union-assoc",
            category: Category::Extension,
            description: "associativity of UNION ALL",
            build: union_assoc,
            expected_sound: true,
        },
        Rule {
            name: "ext-except-union-distr",
            category: Category::Extension,
            description: "(A ∪ B) EXCEPT C ≡ (A EXCEPT C) ∪ (B EXCEPT C)",
            build: except_union_distr,
            expected_sound: true,
        },
        Rule {
            name: "ext-distinct-product",
            category: Category::Extension,
            description: "DISTINCT(A × B) ≡ DISTINCT(A) × DISTINCT(B)",
            build: distinct_product,
            expected_sound: true,
        },
        Rule {
            name: "ext-proj-union-distr",
            category: Category::Extension,
            description: "SELECT p (A ∪ B) ≡ (SELECT p A) ∪ (SELECT p B)",
            build: proj_union_distr,
            expected_sound: true,
        },
        Rule {
            name: "ext-except-empty-subtrahend",
            category: Category::Extension,
            description: "R EXCEPT (S WHERE FALSE) ≡ R",
            build: except_empty_subtrahend,
            expected_sound: true,
        },
        Rule {
            name: "ext-proj-fusion",
            category: Category::Extension,
            description: "SELECT p2 (SELECT p1 q) ≡ SELECT (composed) q",
            build: proj_fusion,
            expected_sound: true,
        },
        Rule {
            name: "ext-distinct-union-absorb",
            category: Category::Extension,
            description: "DISTINCT(R ∪ R) ≡ DISTINCT R",
            build: distinct_union_absorb,
            expected_sound: true,
        },
    ]
}

fn where_true(src: &mut dyn SchemaSource) -> RuleInstance {
    let sigma = src.schema("sigma");
    let env = QueryEnv::new().with_table("R", sigma);
    RuleInstance::plain(
        env,
        Query::where_(Query::table("R"), Predicate::True),
        Query::table("R"),
    )
}

fn union_assoc(src: &mut dyn SchemaSource) -> RuleInstance {
    let sigma = src.schema("sigma");
    let env = QueryEnv::new()
        .with_table("A", sigma.clone())
        .with_table("B", sigma.clone())
        .with_table("C", sigma);
    RuleInstance::plain(
        env,
        Query::union_all(
            Query::union_all(Query::table("A"), Query::table("B")),
            Query::table("C"),
        ),
        Query::union_all(
            Query::table("A"),
            Query::union_all(Query::table("B"), Query::table("C")),
        ),
    )
}

fn except_union_distr(src: &mut dyn SchemaSource) -> RuleInstance {
    let sigma = src.schema("sigma");
    let env = QueryEnv::new()
        .with_table("A", sigma.clone())
        .with_table("B", sigma.clone())
        .with_table("C", sigma);
    RuleInstance::plain(
        env,
        Query::except(
            Query::union_all(Query::table("A"), Query::table("B")),
            Query::table("C"),
        ),
        Query::union_all(
            Query::except(Query::table("A"), Query::table("C")),
            Query::except(Query::table("B"), Query::table("C")),
        ),
    )
}

fn distinct_product(src: &mut dyn SchemaSource) -> RuleInstance {
    let (sa, sb) = (src.schema("sigma_a"), src.schema("sigma_b"));
    let env = QueryEnv::new().with_table("A", sa).with_table("B", sb);
    RuleInstance::plain(
        env,
        Query::distinct(Query::product(Query::table("A"), Query::table("B"))),
        Query::product(
            Query::distinct(Query::table("A")),
            Query::distinct(Query::table("B")),
        ),
    )
}

fn proj_union_distr(src: &mut dyn SchemaSource) -> RuleInstance {
    let sigma = src.schema("sigma");
    let leaf = Schema::leaf(BaseType::Int);
    let env = QueryEnv::new()
        .with_table("A", sigma.clone())
        .with_table("B", sigma.clone())
        .with_proj("p", sigma, leaf);
    let proj = Proj::path([Proj::Right, Proj::var("p")]);
    RuleInstance::plain(
        env,
        Query::select(
            proj.clone(),
            Query::union_all(Query::table("A"), Query::table("B")),
        ),
        Query::union_all(
            Query::select(proj.clone(), Query::table("A")),
            Query::select(proj, Query::table("B")),
        ),
    )
}

fn except_empty_subtrahend(src: &mut dyn SchemaSource) -> RuleInstance {
    let sigma = src.schema("sigma");
    let env = QueryEnv::new()
        .with_table("R", sigma.clone())
        .with_table("S", sigma);
    RuleInstance::plain(
        env,
        Query::except(
            Query::table("R"),
            Query::where_(Query::table("S"), Predicate::False),
        ),
        Query::table("R"),
    )
}

fn proj_fusion(src: &mut dyn SchemaSource) -> RuleInstance {
    // p1 : σR ⇒ leaf (applied through Right), then p2 over the result
    // is another attribute extraction; the fused form composes paths.
    let sigma = src.schema("sigma");
    let leaf = Schema::leaf(BaseType::Int);
    let env = QueryEnv::new()
        .with_table("R", sigma.clone())
        .with_proj(
            "p1",
            sigma.clone(),
            Schema::node(leaf.clone(), leaf.clone()),
        )
        .with_proj("p2", Schema::node(leaf.clone(), leaf.clone()), leaf);
    // lhs: SELECT p2(Right) FROM (SELECT p1(Right) FROM R)
    let lhs = Query::select(
        Proj::path([Proj::Right, Proj::var("p2")]),
        Query::select(
            Proj::path([Proj::Right, Proj::var("p1")]),
            Query::table("R"),
        ),
    );
    // rhs: SELECT p2(p1(Right)) FROM R
    let rhs = Query::select(
        Proj::path([Proj::Right, Proj::var("p1"), Proj::var("p2")]),
        Query::table("R"),
    );
    RuleInstance::plain(env, lhs, rhs)
}

fn distinct_union_absorb(src: &mut dyn SchemaSource) -> RuleInstance {
    let sigma = src.schema("sigma");
    let env = QueryEnv::new().with_table("R", sigma);
    RuleInstance::plain(
        env,
        Query::distinct(Query::union_all(Query::table("R"), Query::table("R"))),
        Query::distinct(Query::table("R")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::prove_rule;
    use crate::difftest::{differential_test, DiffOutcome};

    #[test]
    fn extension_rules_prove() {
        for rule in rules() {
            let report = prove_rule(&rule);
            assert!(report.proved, "{} failed: {:?}", rule.name, report.failure);
        }
    }

    #[test]
    fn extension_rules_pass_difftest() {
        for rule in rules() {
            let outcome = differential_test(&rule, 24, 0xE47);
            assert!(
                matches!(outcome, DiffOutcome::Agreed { .. }),
                "{}: {outcome:?}",
                rule.name
            );
        }
    }

    #[test]
    fn there_are_eight() {
        assert_eq!(rules().len(), 8);
    }
}
