//! Index rewrite rules (Sec. 5.1.4): 3 rules.
//!
//! An index on attribute `a` of relation `R` with key `k` is the logical
//! relation `I := SELECT k, a FROM R` (Sec. 4.2, after Tsatalos et al.).
//! The rules inline `I`'s definition; the first and third are only valid
//! under the key constraint, which enters the proof as a
//! [`RelAxiom::Key`] axiom and the instance generator as a
//! [`InstanceConstraint::KeyedByFirst`] constraint.

use crate::rule::{Category, InstanceConstraint, Rule, RuleInstance, SchemaSource};
use hottsql::ast::{Expr, Predicate, Proj, Query};
use hottsql::env::QueryEnv;
use relalg::{BaseType, Schema};
use uninomial::axioms::RelAxiom;

/// All three index rules.
pub fn rules() -> Vec<Rule> {
    vec![
        Rule {
            name: "index-scan-to-lookup",
            category: Category::Index,
            description: "Sec. 5.1.4: full scan with filter becomes index lookup + join",
            build: index_scan_to_lookup,
            expected_sound: true,
        },
        Rule {
            name: "index-only-scan",
            category: Category::Index,
            description: "a (k, a)-projection with filter is answered by the index alone",
            build: index_only_scan,
            expected_sound: true,
        },
        Rule {
            name: "key-self-join",
            category: Category::Index,
            description: "Sec. 4.2: self-join on a key is the identity",
            build: key_self_join,
            expected_sound: true,
        },
    ]
}

fn keyed_env(src: &mut dyn SchemaSource) -> (QueryEnv, Schema) {
    let sigma = src.keyed_schema("sigma_r");
    let leaf = Schema::leaf(BaseType::Int);
    let env = QueryEnv::new()
        .with_table("R", sigma.clone())
        .with_proj("k", sigma.clone(), leaf.clone())
        .with_proj("a", sigma.clone(), leaf)
        .with_fn("l", BaseType::Int);
    (env, sigma)
}

fn key_axiom() -> Vec<RelAxiom> {
    vec![RelAxiom::Key {
        rel: "R".into(),
        key_fn: "k".into(),
    }]
}

fn key_constraint() -> Vec<InstanceConstraint> {
    vec![InstanceConstraint::KeyedByFirst {
        table: "R".into(),
        key_proj: "k".into(),
    }]
}

/// The index as a query: `I = SELECT (k, a) FROM R`.
fn index_query() -> Query {
    Query::select(
        Proj::pair(
            Proj::path([Proj::Right, Proj::var("k")]),
            Proj::path([Proj::Right, Proj::var("a")]),
        ),
        Query::table("R"),
    )
}

/// `SELECT * FROM R WHERE a = l`
/// ≡ `SELECT R.* FROM I, R WHERE I.a = l AND I.k = R.k`.
fn index_scan_to_lookup(src: &mut dyn SchemaSource) -> RuleInstance {
    let (env, _) = keyed_env(src);
    let l = Expr::func("l", vec![]);
    let lhs = Query::where_(
        Query::table("R"),
        Predicate::eq(
            Expr::p2e(Proj::path([Proj::Right, Proj::var("a")])),
            l.clone(),
        ),
    );
    // Context of the join predicate: node(empty, node σI σR) with
    // σI = node(leaf, leaf).
    let rhs = Query::select(
        Proj::path([Proj::Right, Proj::Right]),
        Query::where_(
            Query::product(index_query(), Query::table("R")),
            Predicate::and(
                Predicate::eq(
                    Expr::p2e(Proj::path([Proj::Right, Proj::Left, Proj::Right])),
                    l,
                ),
                Predicate::eq(
                    Expr::p2e(Proj::path([Proj::Right, Proj::Left, Proj::Left])),
                    Expr::p2e(Proj::path([Proj::Right, Proj::Right, Proj::var("k")])),
                ),
            ),
        ),
    );
    RuleInstance {
        env,
        lhs,
        rhs,
        axioms: key_axiom(),
        constraints: key_constraint(),
    }
}

/// `SELECT (k, a) FROM R WHERE a = l ≡ SELECT * FROM I WHERE I.a = l`.
/// (No key constraint needed: the index is exactly the projection.)
fn index_only_scan(src: &mut dyn SchemaSource) -> RuleInstance {
    let (env, _) = keyed_env(src);
    let l = Expr::func("l", vec![]);
    let lhs = Query::select(
        Proj::pair(
            Proj::path([Proj::Right, Proj::var("k")]),
            Proj::path([Proj::Right, Proj::var("a")]),
        ),
        Query::where_(
            Query::table("R"),
            Predicate::eq(
                Expr::p2e(Proj::path([Proj::Right, Proj::var("a")])),
                l.clone(),
            ),
        ),
    );
    let rhs = Query::where_(
        index_query(),
        Predicate::eq(Expr::p2e(Proj::path([Proj::Right, Proj::Right])), l),
    );
    RuleInstance {
        env,
        lhs,
        rhs,
        axioms: Vec::new(),
        constraints: Vec::new(),
    }
}

/// `SELECT Left FROM R, R WHERE k(x) = k(y) ≡ SELECT * FROM R`
/// — the semantic key definition of Sec. 4.2, usable as a rewrite.
fn key_self_join(src: &mut dyn SchemaSource) -> RuleInstance {
    let (env, _) = keyed_env(src);
    let lhs = Query::select(
        Proj::path([Proj::Right, Proj::Left]),
        Query::where_(
            Query::product(Query::table("R"), Query::table("R")),
            Predicate::eq(
                Expr::p2e(Proj::path([Proj::Right, Proj::Left, Proj::var("k")])),
                Expr::p2e(Proj::path([Proj::Right, Proj::Right, Proj::var("k")])),
            ),
        ),
    );
    let rhs = Query::table("R");
    RuleInstance {
        env,
        lhs,
        rhs,
        axioms: key_axiom(),
        constraints: key_constraint(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::prove_rule;

    #[test]
    fn index_rules_prove() {
        for rule in rules() {
            let report = prove_rule(&rule);
            assert!(report.proved, "{} failed: {:?}", rule.name, report.failure);
        }
    }

    #[test]
    fn key_rules_carry_axiom_and_constraint() {
        let rs = rules();
        let scan = rs
            .iter()
            .find(|r| r.name == "index-scan-to-lookup")
            .unwrap();
        let inst = scan.generic();
        assert_eq!(inst.axioms.len(), 1);
        assert_eq!(inst.constraints.len(), 1);
    }

    #[test]
    fn there_are_three() {
        assert_eq!(rules().len(), 3);
    }
}
