//! The aggregation / GROUP BY rule (Sec. 5.1.2): 1 rule.

use crate::rule::{Category, Rule, RuleInstance, SchemaSource};
use hottsql::ast::{Expr, Predicate, Proj, Query};
use hottsql::desugar::group_by_agg;
use hottsql::env::QueryEnv;
use relalg::{BaseType, Schema};

/// The single aggregation rule of Fig. 8.
pub fn rules() -> Vec<Rule> {
    vec![Rule {
        name: "groupby-filter-pushdown",
        category: Category::Aggregation,
        description: "Sec. 5.1.2: filtering a GROUP BY on its key pushes below the grouping",
        build: groupby_filter_pushdown,
        expected_sound: true,
    }]
}

/// ```text
/// SELECT * FROM (SELECT k, SUM(b) FROM R GROUP BY k) WHERE k = l
///   ≡ SELECT k, SUM(b) FROM R WHERE k = l GROUP BY k
/// ```
fn groupby_filter_pushdown(src: &mut dyn SchemaSource) -> RuleInstance {
    let sigma = src.schema("sigma_r");
    let leaf = Schema::leaf(BaseType::Int);
    let env = QueryEnv::new()
        .with_table("R", sigma.clone())
        .with_proj("k", sigma.clone(), leaf.clone())
        .with_proj("b", sigma, leaf)
        .with_fn("l", BaseType::Int);
    let l = || Expr::func("l", vec![]);
    // lhs: filter the grouped result on its key column (the grouped
    // schema is node(leaf_k, leaf_sum); key column = Right.Left in the
    // WHERE context node(empty, node(leaf, leaf))).
    let grouped = group_by_agg(Query::table("R"), Proj::var("k"), "SUM", Proj::var("b"));
    let lhs = Query::where_(
        grouped,
        Predicate::eq(Expr::p2e(Proj::path([Proj::Right, Proj::Left])), l()),
    );
    // rhs: group the filtered table. The filter's context is
    // node(Γ*, σR) for whatever Γ* the desugaring supplies, so the path
    // Right.k is context-polymorphic.
    let filtered = Query::where_(
        Query::table("R"),
        Predicate::eq(Expr::p2e(Proj::path([Proj::Right, Proj::var("k")])), l()),
    );
    let rhs = group_by_agg(filtered, Proj::var("k"), "SUM", Proj::var("b"));
    RuleInstance::plain(env, lhs, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::prove_rule;

    #[test]
    fn aggregation_rule_proves() {
        for rule in rules() {
            let report = prove_rule(&rule);
            assert!(report.proved, "{} failed: {:?}", rule.name, report.failure);
        }
    }

    #[test]
    fn there_is_one() {
        assert_eq!(rules().len(), 1);
    }
}
