//! The rewrite-rule catalog, organized by Fig. 8 category.

pub mod aggregation;
pub mod basic;
pub mod cq_rules;
pub mod extensions;
pub mod index;
pub mod magic;
pub mod subquery;
pub mod wrong;
