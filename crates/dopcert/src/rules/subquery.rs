//! Subquery elimination rules: 2 rules.
//!
//! Correlated-subquery unnesting is the optimization family behind the
//! classic nested-query bugs the paper cites ([17] in Sec. 1); both rules
//! here are staples of real optimizers.

use crate::rule::{Category, Rule, RuleInstance, SchemaSource};
use hottsql::ast::{Expr, Predicate, Proj, Query};
use hottsql::env::QueryEnv;
use relalg::{BaseType, Schema};

/// Both subquery rules.
pub fn rules() -> Vec<Rule> {
    vec![
        Rule {
            name: "exists-unnest-join",
            category: Category::Subquery,
            description: "correlated EXISTS becomes a join with a deduplicated key column",
            build: exists_unnest_join,
            expected_sound: true,
        },
        Rule {
            name: "exists-union-or",
            category: Category::Subquery,
            description: "EXISTS over UNION ALL splits into a disjunction of EXISTS",
            build: exists_union_or,
            expected_sound: true,
        },
    ]
}

/// `SELECT * FROM R WHERE EXISTS (SELECT * FROM S WHERE kS(S) = kR(R))`
/// ≡ `SELECT R.* FROM R, (DISTINCT SELECT kS FROM S) WHERE kR(R) = v`.
fn exists_unnest_join(src: &mut dyn SchemaSource) -> RuleInstance {
    let (sr, ss) = (src.schema("sigma_r"), src.schema("sigma_s"));
    let leaf = Schema::leaf(BaseType::Int);
    let env = QueryEnv::new()
        .with_table("R", sr.clone())
        .with_table("S", ss.clone())
        .with_proj("kr", sr, leaf.clone())
        .with_proj("ks", ss, leaf);
    // lhs: R WHERE EXISTS (S WHERE ks(S-tuple) = kr(outer R-tuple)).
    // Inner WHERE context: node(node(empty, σR), σS).
    let inner = Query::where_(
        Query::table("S"),
        Predicate::eq(
            Expr::p2e(Proj::path([Proj::Right, Proj::var("ks")])),
            Expr::p2e(Proj::path([Proj::Left, Proj::Right, Proj::var("kr")])),
        ),
    );
    let lhs = Query::where_(Query::table("R"), Predicate::exists(inner));
    // rhs: SELECT Right.Left FROM R, (DISTINCT SELECT Right.ks FROM S)
    //      WHERE kr(Right.Left) = Right.Right.
    let keys = Query::distinct(Query::select(
        Proj::path([Proj::Right, Proj::var("ks")]),
        Query::table("S"),
    ));
    let rhs = Query::select(
        Proj::path([Proj::Right, Proj::Left]),
        Query::where_(
            Query::product(Query::table("R"), keys),
            Predicate::eq(
                Expr::p2e(Proj::path([Proj::Right, Proj::Left, Proj::var("kr")])),
                Expr::p2e(Proj::path([Proj::Right, Proj::Right])),
            ),
        ),
    );
    RuleInstance::plain(env, lhs, rhs)
}

/// `R WHERE EXISTS (S UNION ALL T)` ≡ `R WHERE EXISTS S OR EXISTS T`.
fn exists_union_or(src: &mut dyn SchemaSource) -> RuleInstance {
    let (sr, ss) = (src.schema("sigma_r"), src.schema("sigma_s"));
    let env = QueryEnv::new()
        .with_table("R", sr)
        .with_table("S", ss.clone())
        .with_table("T", ss);
    let lhs = Query::where_(
        Query::table("R"),
        Predicate::exists(Query::union_all(Query::table("S"), Query::table("T"))),
    );
    let rhs = Query::where_(
        Query::table("R"),
        Predicate::or(
            Predicate::exists(Query::table("S")),
            Predicate::exists(Query::table("T")),
        ),
    );
    RuleInstance::plain(env, lhs, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::prove_rule;

    #[test]
    fn subquery_rules_prove() {
        for rule in rules() {
            let report = prove_rule(&rule);
            assert!(report.proved, "{} failed: {:?}", rule.name, report.failure);
        }
    }

    #[test]
    fn there_are_two() {
        assert_eq!(rules().len(), 2);
    }
}
