//! Per-worker proving sessions: the verification-pipeline face of
//! [`egraph::Session`].
//!
//! The batch engine keeps ONE [`ProveSession`] per worker for its whole
//! shard. It layers a two-level *verdict memo* over the e-graph session.
//! The outer level keys on the surface query pair + table environment
//! and answers before the pipeline runs at all; the inner level keys on
//! the raw denotations (which are deterministic per query pair — every
//! instance denotes over a fresh `VarGen`) and catches distinct query
//! texts with equal denotations. The recorded answer is the full
//! [`verify_instance`](crate::prove::verify_instance) result — method,
//! step count, attempted list, or failure diagnostics. Because the
//! underlying pipeline is deterministic, a memo hit is byte-identical to
//! recomputation; repeated goals across a batch (the common case in
//! production query traffic) skip denotation, type inference,
//! normalization, tactics, and saturation entirely.
//!
//! The embedded [`egraph::Session`] additionally collects every
//! saturation goal's sides as seeds of one shared multi-seed graph,
//! which powers the cross-rule discovery report
//! ([`discover_catalog`], `dopcert catalog --discover`).

use crate::prove::{denote_instance, ProveOptions, VerifyMethod};
use crate::rule::{Rule, RuleInstance};
use egraph::session::Session;
use hottsql::ast::Query;
use relalg::Schema;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use uninomial::normalize::{NormCache, Trace};
use uninomial::syntax::intern::{Interner, UExprId};
use uninomial::UExpr;

/// The memoized outcome of one verification goal — exactly the shape
/// [`verify_instance`](crate::prove::verify_instance) returns.
pub type Verdict = Result<(VerifyMethod, usize, Vec<String>), (String, Vec<String>)>;

/// Key of the query-level memo: the surface query pair plus the table
/// environment it types under. Everything the pipeline computes for an
/// axiom-free goal — denotation, typing, tactics, saturation — is a
/// deterministic function of this triple.
type QueryKey = (Query, Query, Vec<(String, Schema)>);

fn query_key(inst: &RuleInstance) -> QueryKey {
    (
        inst.lhs.clone(),
        inst.rhs.clone(),
        inst.env
            .tables()
            .map(|(name, schema)| (name.clone(), schema.clone()))
            .collect(),
    )
}

/// A persistent per-worker proving session: a two-level verdict memo
/// (surface query pairs, then raw denotations) plus the shared
/// saturation session.
///
/// The query-level memo is the hot-path layer: a repeated goal is
/// answered before any denotation or type inference runs. The
/// denotation-level memo stays underneath it to catch distinct query
/// texts that denote to the same trees.
#[derive(Debug)]
pub struct ProveSession {
    /// The underlying multi-seed saturation session.
    pub sat: Session,
    /// The options verdicts were computed under. A verdict depends on
    /// the saturation mode and budget, not just the goal, so lookups
    /// under different options bypass the memo.
    opts: ProveOptions,
    interner: Interner,
    verdicts: HashMap<(UExprId, UExprId), Verdict>,
    query_verdicts: HashMap<QueryKey, Verdict>,
    hits: usize,
    publish: Option<Arc<AtomicUsize>>,
}

impl ProveSession {
    /// A session bound to one set of verification options (and sized by
    /// its saturation budget).
    pub fn new(opts: ProveOptions) -> ProveSession {
        ProveSession {
            sat: Session::new(opts.budget),
            opts,
            interner: Interner::new(),
            verdicts: HashMap::new(),
            query_verdicts: HashMap::new(),
            hits: 0,
            publish: None,
        }
    }

    /// Number of goals answered from the verdict memo.
    pub fn verdict_hits(&self) -> usize {
        self.hits
    }

    /// Mirrors the live hit count into `sink` on every subsequent memo
    /// hit (and once now), so an observer sees progress mid-batch
    /// instead of only after the session's current request completes.
    pub fn publish_hits_to(&mut self, sink: Arc<AtomicUsize>) {
        sink.store(self.hits, Ordering::Relaxed);
        self.publish = Some(sink);
    }

    /// Looks up the recorded verdict for a goal with these denotations,
    /// verified under `opts`. Only axiom-free goals are memoized
    /// (declared integrity axioms are not part of the key), and only
    /// under the options this session is bound to — a different mode or
    /// budget bypasses the memo rather than replaying a stale verdict.
    pub fn lookup(&mut self, el: &UExpr, er: &UExpr, opts: ProveOptions) -> Option<Verdict> {
        if opts != self.opts {
            return None;
        }
        let key = (self.interner.intern(el), self.interner.intern(er));
        let hit = self.verdicts.get(&key).cloned();
        if hit.is_some() {
            self.hits += 1;
            if let Some(sink) = &self.publish {
                sink.store(self.hits, Ordering::Relaxed);
            }
            telemetry::count("memo.verdict.hit", 1);
        } else {
            telemetry::count("memo.verdict.miss", 1);
        }
        hit
    }

    /// Records a goal's verdict computed under `opts` (ignored when the
    /// options differ from the session's).
    pub fn record(&mut self, el: &UExpr, er: &UExpr, opts: ProveOptions, verdict: Verdict) {
        if opts != self.opts {
            return;
        }
        let key = (self.interner.intern(el), self.interner.intern(er));
        self.verdicts.insert(key, verdict);
    }

    /// Looks up the recorded verdict for a whole instance *before any
    /// denotation or typing runs* — the fast path for repeated query
    /// traffic. Same admission rules as the denotation layer: axiom-free
    /// goals only (declared integrity axioms are not part of the key),
    /// and only under the options this session is bound to. Misses are
    /// not counted here; the goal falls through to the denotation-level
    /// [`ProveSession::lookup`], which counts it once.
    pub fn lookup_query(&mut self, inst: &RuleInstance, opts: ProveOptions) -> Option<Verdict> {
        if opts != self.opts || !inst.axioms.is_empty() {
            return None;
        }
        let hit = self.query_verdicts.get(&query_key(inst)).cloned();
        if hit.is_some() {
            self.hits += 1;
            if let Some(sink) = &self.publish {
                sink.store(self.hits, Ordering::Relaxed);
            }
            telemetry::count("memo.verdict.hit", 1);
        }
        hit
    }

    /// Records an instance's verdict in the query-level memo (ignored
    /// for axiomatized goals or when the options differ).
    pub fn record_query(&mut self, inst: &RuleInstance, opts: ProveOptions, verdict: Verdict) {
        if opts != self.opts || !inst.axioms.is_empty() {
            return;
        }
        self.query_verdicts.insert(query_key(inst), verdict);
    }
}

/// Cross-rule discovery over the catalog: seed every rule's normalized
/// sides into ONE multi-seed session, saturate under the batch budget,
/// and report equalities the session proved between *different* rules'
/// seeds — the first step from "prove given pairs" toward "search for
/// equal pairs". The report is deterministic (sorted by tag) and purely
/// additive: per-rule verdicts are untouched. The boolean marks pairs
/// whose sides already normalize to one expression (equal before any
/// saturation) as opposed to equalities the rewrites proved.
pub fn discover_catalog(rules: &[Rule], opts: ProveOptions) -> Vec<(String, String, bool)> {
    let mut session = Session::new(opts.budget);
    let mut cache = NormCache::new();
    for rule in rules {
        let Ok((el, er, mut gen)) = denote_instance(&rule.generic()) else {
            continue;
        };
        let mut scratch = Trace::new();
        let nl =
            uninomial::normalize::normalize_with_cache(&el, &mut gen, &mut scratch, &mut cache);
        let nr =
            uninomial::normalize::normalize_with_cache(&er, &mut gen, &mut scratch, &mut cache);
        session.add_root(format!("{}.lhs", rule.name), &nl.reify());
        session.add_root(format!("{}.rhs", rule.name), &nr.reify());
        // Incremental resume: saturation continues from the current
        // graph after each rule's seeds, charging that rule's share of
        // the batch budget ( `discovered` drains whatever remains).
        session.resume();
    }
    let rule_of = |tag: &str| tag.rsplit_once('.').map(|(r, _)| r.to_owned());
    session
        .discovered()
        .into_iter()
        .filter(|(a, b, _)| rule_of(a) != rule_of(b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::prove::SaturateMode;

    #[test]
    fn verdict_memo_round_trips_and_is_option_bound() {
        let opts = ProveOptions::default();
        let mut s = ProveSession::new(opts);
        let el = UExpr::rel("R", uninomial::syntax::Term::Unit);
        let er = UExpr::rel("S", uninomial::syntax::Term::Unit);
        assert!(s.lookup(&el, &er, opts).is_none());
        s.record(&el, &er, opts, Ok((VerifyMethod::CqDecision, 1, vec![])));
        let hit = s.lookup(&el, &er, opts).expect("recorded");
        assert_eq!(hit.unwrap().1, 1);
        assert_eq!(s.verdict_hits(), 1);
        // A different mode or budget must bypass the memo: the recorded
        // verdict is only valid for the options it was computed under.
        let other = ProveOptions {
            saturate: SaturateMode::Only,
            ..opts
        };
        assert!(s.lookup(&el, &er, other).is_none());
        let mut tighter = opts;
        tighter.budget.max_iters = 1;
        assert!(s.lookup(&el, &er, tighter).is_none());
    }

    #[test]
    fn query_level_memo_round_trips_and_is_option_and_axiom_bound() {
        use crate::catalog;
        let opts = ProveOptions::default();
        let mut s = ProveSession::new(opts);
        let inst = catalog::sound_rules()[0].generic();
        assert!(inst.axioms.is_empty(), "test needs an axiom-free rule");
        assert!(s.lookup_query(&inst, opts).is_none());
        s.record_query(&inst, opts, Ok((VerifyMethod::Saturation, 7, vec![])));
        let hit = s.lookup_query(&inst, opts).expect("recorded");
        assert_eq!(hit.unwrap().1, 7);
        assert_eq!(s.verdict_hits(), 1);
        // Different options bypass.
        let other = ProveOptions {
            saturate: SaturateMode::Only,
            ..opts
        };
        assert!(s.lookup_query(&inst, other).is_none());
        // Axiomatized goals are never admitted.
        let axiomatized = catalog::sound_rules()
            .into_iter()
            .map(|r| r.generic())
            .find(|i| !i.axioms.is_empty());
        if let Some(inst) = axiomatized {
            s.record_query(&inst, opts, Ok((VerifyMethod::Saturation, 1, vec![])));
            assert!(s.lookup_query(&inst, opts).is_none());
        }
    }

    #[test]
    fn discovery_runs_on_a_catalog_slice_and_is_deterministic() {
        let rules: Vec<Rule> = catalog::sound_rules().into_iter().take(6).collect();
        let opts = ProveOptions {
            saturate: SaturateMode::Only,
            ..ProveOptions::default()
        };
        let a = discover_catalog(&rules, opts);
        let b = discover_catalog(&rules, opts);
        assert_eq!(a, b, "discovery report must be deterministic");
        for (x, y, _) in &a {
            let rule = |t: &str| t.rsplit_once('.').unwrap().0.to_owned();
            assert_ne!(rule(x), rule(y), "only cross-rule equalities reported");
        }
    }
}
