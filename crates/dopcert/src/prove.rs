//! Proving rewrite rules: denotation plus tactic dispatch.
//!
//! For a conjunctive-query rule, the automated decision procedure
//! (Sec. 5.2) decides equivalence outright — "1 line of Coq" in Fig. 8,
//! zero manual steps here. Every other rule is denoted via Fig. 7 and
//! handed to the UniNomial provers with any declared axioms.

use crate::rule::{Category, Rule, RuleInstance};
use crate::session::ProveSession;
use egraph::solve::Budget;
use egraph::{prove_eq_saturate, prove_eq_saturate_cached, prove_eq_saturate_session};
use hottsql::denote::{denote_closed_query, denote_query};
use relalg::Schema;
use std::time::Instant;
use uninomial::normalize::NormCache;
use uninomial::prove::{prove_eq_cached, prove_eq_with_axioms, Method};
use uninomial::syntax::{Term, UExpr, VarGen};

/// How a rule was verified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyMethod {
    /// The conjunctive-query decision procedure (fully automatic).
    CqDecision,
    /// A UniNomial normalization-based tactic.
    Tactic(Method),
    /// Equality-saturation proof search (the `egraph` crate).
    Saturation,
}

impl std::fmt::Display for VerifyMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyMethod::CqDecision => write!(f, "decision procedure"),
            VerifyMethod::Tactic(m) => write!(f, "{m} tactic"),
            VerifyMethod::Saturation => write!(f, "saturation search"),
        }
    }
}

/// When the saturation tactic runs relative to the normalization-based
/// tactics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SaturateMode {
    /// Never saturate (the pre-saturation pipeline).
    Off,
    /// Try the tactics first; fall back to saturation when they fail.
    #[default]
    Fallback,
    /// Saturation only (the `--saturate` smoke mode): every non-CQ rule
    /// must fall to the generic search, no bespoke tactic involved.
    Only,
}

/// Verification options: saturation scheduling, budget, and whether
/// batch callers keep a persistent per-worker session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProveOptions {
    /// When to run the saturation tactic.
    pub saturate: SaturateMode,
    /// Saturation budget (iterations / e-nodes / oracle calls).
    pub budget: Budget,
    /// Whether batch callers (engine workers, scripts) keep one
    /// persistent [`ProveSession`](crate::session::ProveSession) across
    /// their goals (on by default; `--no-session` is the escape hatch
    /// and the differential baseline). Verdicts and traces are identical
    /// either way — the session only memoizes and discovers.
    pub session: bool,
}

impl Default for ProveOptions {
    fn default() -> ProveOptions {
        ProveOptions {
            saturate: SaturateMode::default(),
            budget: Budget::default(),
            session: true,
        }
    }
}

/// The result of attempting to verify one rule.
#[derive(Clone, Debug)]
pub struct RuleReport {
    /// Rule name.
    pub name: &'static str,
    /// Fig. 8 category.
    pub category: Category,
    /// Whether verification succeeded.
    pub proved: bool,
    /// The successful method, if any.
    pub method: Option<VerifyMethod>,
    /// Proof-trace length (the Fig. 8 "LOC" analog; 1 for the decision
    /// procedure, matching the paper's "1 (automatic)").
    pub steps: usize,
    /// Wall-clock verification time in microseconds.
    pub micros: u128,
    /// Every method attempted, in order (also populated on success).
    pub attempted: Vec<String>,
    /// Failure diagnostics when not proved: the attempted-method list,
    /// saturation budget status if saturation ran, and normal forms.
    pub failure: Option<String>,
}

/// Verifies a rule with the appropriate procedure (default options:
/// tactics with saturation fallback).
#[deprecated(note = "use `dopcert::api::prove_rule` (or an `api::Prover` for batches)")]
pub fn prove_rule(rule: &Rule) -> RuleReport {
    prove_rule_on(rule, None, None, ProveOptions::default())
}

/// [`api::prove_rule`](crate::api::prove_rule) with memoized
/// normalization through a reusable [`NormCache`].
#[deprecated(note = "use an `api::Prover` (it owns the cache)")]
pub fn prove_rule_cached(rule: &Rule, cache: &mut NormCache) -> RuleReport {
    prove_rule_on(rule, Some(cache), None, ProveOptions::default())
}

/// [`prove_rule_cached`] with explicit verification options.
#[deprecated(note = "use an `api::Prover` built with the options")]
#[allow(deprecated)]
pub fn prove_rule_with(rule: &Rule, cache: &mut NormCache, opts: ProveOptions) -> RuleReport {
    prove_rule_on(rule, Some(cache), None, opts)
}

/// [`prove_rule_with`] through a persistent per-worker
/// [`ProveSession`].
#[deprecated(note = "use an `api::Prover` (it owns the session)")]
#[allow(deprecated)]
pub fn prove_rule_session(
    rule: &Rule,
    cache: &mut NormCache,
    session: Option<&mut ProveSession>,
    opts: ProveOptions,
) -> RuleReport {
    prove_rule_on(rule, Some(cache), session, opts)
}

/// The one rule-verification pipeline all entry points share; which
/// state it runs on is the caller's choice ([`crate::api::Prover`]
/// makes it once, at construction). Verdict, method, and step count
/// are identical whatever state is supplied (property-tested); only
/// `micros` (wall clock) differs. Repeated goals are answered from the
/// session memo and every saturation goal feeds the session's
/// multi-seed discovery graph.
pub(crate) fn prove_rule_on(
    rule: &Rule,
    cache: Option<&mut NormCache>,
    session: Option<&mut ProveSession>,
    opts: ProveOptions,
) -> RuleReport {
    let start = Instant::now();
    let inst = rule.generic();
    // Conjunctive-query rules go to the decision procedure.
    if rule.category == Category::ConjunctiveQuery {
        let ok = decide_cq(&inst);
        return RuleReport {
            name: rule.name,
            category: rule.category,
            proved: ok == Some(true),
            method: ok.map(|_| VerifyMethod::CqDecision),
            steps: 1,
            micros: start.elapsed().as_micros(),
            attempted: vec!["decision procedure".into()],
            failure: match ok {
                Some(true) => None,
                Some(false) => Some("decision procedure: not equivalent".into()),
                None => Some("not in the conjunctive-query fragment".into()),
            },
        };
    }
    match verify_instance_session(&inst, cache, session, opts) {
        Ok((method, steps, attempted)) => RuleReport {
            name: rule.name,
            category: rule.category,
            proved: true,
            method: Some(method),
            steps,
            micros: start.elapsed().as_micros(),
            attempted,
            failure: None,
        },
        Err((msg, attempted)) => RuleReport {
            name: rule.name,
            category: rule.category,
            proved: false,
            method: None,
            steps: 0,
            micros: start.elapsed().as_micros(),
            failure: Some(format!("tried [{}]; {msg}", attempted.join(", "))),
            attempted,
        },
    }
}

/// Runs the CQ decision procedure on an instance. `None` when either
/// side is outside the fragment.
pub fn decide_cq(inst: &RuleInstance) -> Option<bool> {
    let l = cq::translate::from_query(&inst.lhs, &inst.env)?;
    let r = cq::translate::from_query(&inst.rhs, &inst.env)?;
    Some(cq::containment::equivalent_set(&l, &r))
}

/// Denotes both sides (same output tuple variable) and runs the tactic
/// pipeline; returns the method and trace length.
///
/// # Errors
///
/// Returns a diagnostic string (typing error or differing normal forms).
pub fn prove_instance(inst: &RuleInstance) -> Result<(Method, usize), String> {
    prove_instance_impl(inst, None)
}

/// Denotes both sides of an instance without proving anything — used by
/// the batch engine to pre-seed the shared interner snapshot with every
/// catalog denotation before the workers start.
///
/// Returns the [`VarGen`] alongside the denotations: its state matches
/// what [`prove_instance`] holds when it reaches normalization (same
/// fresh-variable stream, consumed in the same order), which lets the
/// engine's warm pass reproduce the exact trees the workers intern.
///
/// # Errors
///
/// Returns the denotation diagnostic when either side fails Fig. 7.
pub fn denote_instance(inst: &RuleInstance) -> Result<(UExpr, UExpr, VarGen), String> {
    let mut gen = VarGen::new();
    let (t, el) =
        denote_closed_query(&inst.lhs, &inst.env, &mut gen).map_err(|e| format!("lhs: {e}"))?;
    let er = denote_query(
        &inst.rhs,
        &inst.env,
        &Schema::Empty,
        &Term::Unit,
        &Term::var(&t),
        &mut gen,
    )
    .map_err(|e| format!("rhs: {e}"))?;
    Ok((el, er, gen))
}

fn prove_instance_impl(
    inst: &RuleInstance,
    cache: Option<&mut NormCache>,
) -> Result<(Method, usize), String> {
    let opts = ProveOptions {
        saturate: SaturateMode::Off,
        ..ProveOptions::default()
    };
    match verify_instance(inst, cache, opts) {
        Ok((VerifyMethod::Tactic(m), steps, _)) => Ok((m, steps)),
        Ok((other, _, _)) => Err(format!("unexpected method {other}")),
        Err((msg, _)) => Err(msg),
    }
}

/// Denotes an instance and runs the configured verification pipeline.
/// On success returns the method, step count, and every method
/// attempted; on failure the diagnostic and the attempted list.
#[allow(clippy::type_complexity)] // (method, steps, attempts) / (diag, attempts)
pub fn verify_instance(
    inst: &RuleInstance,
    cache: Option<&mut NormCache>,
    opts: ProveOptions,
) -> Result<(VerifyMethod, usize, Vec<String>), (String, Vec<String>)> {
    verify_instance_session(inst, cache, None, opts)
}

/// [`verify_instance`] through a persistent per-worker
/// [`ProveSession`]. Axiom-free goals are answered from the session's
/// verdict memo when already seen (byte-identical by determinism of the
/// pipeline); misses run the ordinary pipeline — with the saturation
/// step routed through the session's goal memo and multi-seed graph —
/// and are recorded.
#[allow(clippy::type_complexity)] // same result shape as verify_instance
pub fn verify_instance_session(
    inst: &RuleInstance,
    cache: Option<&mut NormCache>,
    mut session: Option<&mut ProveSession>,
    opts: ProveOptions,
) -> Result<(VerifyMethod, usize, Vec<String>), (String, Vec<String>)> {
    let bail = |msg: String| (msg, Vec::new());
    // Query-level verdict memo: for axiom-free goals the whole pipeline
    // — denotation, typing, tactics, saturation — is a deterministic
    // function of (env, lhs, rhs), so a repeated query pair is answered
    // here, before the denote/infer work the denotation-keyed layer
    // below still pays.
    if let Some(session) = session.as_deref_mut() {
        if let Some(verdict) = session.lookup_query(inst, opts) {
            return verdict;
        }
    }
    let mut gen = VarGen::new();
    let (t, el) = denote_closed_query(&inst.lhs, &inst.env, &mut gen)
        .map_err(|e| bail(format!("lhs: {e}")))?;
    let er = denote_query(
        &inst.rhs,
        &inst.env,
        &Schema::Empty,
        &Term::Unit,
        &Term::var(&t),
        &mut gen,
    )
    .map_err(|e| bail(format!("rhs: {e}")))?;
    // Schemas of both sides must agree for the rule to be well-formed.
    let sl = hottsql::ty::infer_query(&inst.lhs, &inst.env, &Schema::Empty)
        .map_err(|e| bail(e.to_string()))?;
    let sr = hottsql::ty::infer_query(&inst.rhs, &inst.env, &Schema::Empty)
        .map_err(|e| bail(e.to_string()))?;
    if sl != sr {
        return Err(bail(format!("schema mismatch: {sl} vs {sr}")));
    }
    // Verdict memo: raw denotations are deterministic per query pair
    // (fresh `VarGen` each instance), so they key the whole pipeline.
    // Declared axioms are not part of the key — such goals bypass.
    let memoizable = inst.axioms.is_empty();
    if memoizable {
        if let Some(session) = session.as_deref_mut() {
            if let Some(verdict) = session.lookup(&el, &er, opts) {
                return verdict;
            }
        }
    }
    let verdict = verify_denoted(&el, &er, inst, &mut gen, cache, &mut session, opts);
    if memoizable {
        if let Some(session) = session {
            session.record(&el, &er, opts, verdict.clone());
            session.record_query(inst, opts, verdict.clone());
        }
    }
    verdict
}

/// The tactic/saturation pipeline over already-denoted sides.
#[allow(clippy::type_complexity)] // same result shape as verify_instance
fn verify_denoted(
    el: &UExpr,
    er: &UExpr,
    inst: &RuleInstance,
    gen: &mut VarGen,
    mut cache: Option<&mut NormCache>,
    session: &mut Option<&mut ProveSession>,
    opts: ProveOptions,
) -> Result<(VerifyMethod, usize, Vec<String>), (String, Vec<String>)> {
    let mut attempted: Vec<String> = Vec::new();
    let mut tactic_diag: Option<String> = None;
    if opts.saturate != SaturateMode::Only {
        attempted.extend(["syntactic", "equational", "deductive"].map(String::from));
        let outcome = match cache.as_deref_mut() {
            Some(cache) => prove_eq_cached(el, er, &inst.axioms, gen, cache),
            None => prove_eq_with_axioms(el, er, &inst.axioms, gen),
        };
        match outcome {
            Ok(proof) => {
                return Ok((
                    VerifyMethod::Tactic(proof.method()),
                    proof.steps(),
                    attempted,
                ))
            }
            Err(e) => tactic_diag = Some(e.to_string()),
        }
    }
    if opts.saturate != SaturateMode::Off {
        attempted.push(format!(
            "saturation (≤{} iters, ≤{} nodes)",
            opts.budget.max_iters, opts.budget.max_nodes
        ));
        let outcome = match (cache, session.as_deref_mut()) {
            (Some(cache), Some(session)) => {
                prove_eq_saturate_session(el, er, &inst.axioms, gen, cache, &mut session.sat)
            }
            (Some(cache), None) => {
                prove_eq_saturate_cached(el, er, &inst.axioms, gen, cache, opts.budget)
            }
            (None, _) => prove_eq_saturate(el, er, &inst.axioms, gen, opts.budget),
        };
        match outcome {
            Ok(proof) => return Ok((VerifyMethod::Saturation, proof.steps(), attempted)),
            Err(sat) => {
                let mut msg = sat.to_string();
                if let Some(diag) = tactic_diag {
                    msg = format!("{diag}; saturation: {msg}");
                }
                return Err((msg, attempted));
            }
        }
    }
    Err((
        tactic_diag.unwrap_or_else(|| "no verification method enabled".into()),
        attempted,
    ))
}

/// A Fig. 8 table row: per-category counts and average proof steps.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig8Row {
    /// Category name.
    pub category: Category,
    /// Number of rules proved.
    pub proved: usize,
    /// Number of rules attempted.
    pub total: usize,
    /// Average trace steps over proved rules.
    pub avg_steps: f64,
    /// Average proof time in microseconds over proved rules.
    pub avg_micros: f64,
}

/// Computes the Fig. 8 table from a set of reports.
pub fn fig8_table(reports: &[RuleReport]) -> Vec<Fig8Row> {
    Category::FIG8
        .iter()
        .map(|&category| {
            let rows: Vec<&RuleReport> =
                reports.iter().filter(|r| r.category == category).collect();
            let proved: Vec<&&RuleReport> = rows.iter().filter(|r| r.proved).collect();
            let avg = |f: &dyn Fn(&RuleReport) -> f64| -> f64 {
                if proved.is_empty() {
                    0.0
                } else {
                    proved.iter().map(|r| f(r)).sum::<f64>() / proved.len() as f64
                }
            };
            Fig8Row {
                category,
                proved: proved.len(),
                total: rows.len(),
                avg_steps: avg(&|r| r.steps as f64),
                avg_micros: avg(&|r| r.micros as f64),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{RuleInstance, SchemaSource};
    use hottsql::ast::{Predicate, Query};
    use hottsql::env::QueryEnv;

    fn fig1(src: &mut dyn SchemaSource) -> RuleInstance {
        let sigma = src.schema("sigma");
        let pred_ctx = Schema::node(Schema::Empty, sigma.clone());
        let env = QueryEnv::new()
            .with_table("R", sigma.clone())
            .with_table("S", sigma)
            .with_pred("b", pred_ctx);
        let lhs = Query::where_(
            Query::union_all(Query::table("R"), Query::table("S")),
            Predicate::var("b"),
        );
        let rhs = Query::union_all(
            Query::where_(Query::table("R"), Predicate::var("b")),
            Query::where_(Query::table("S"), Predicate::var("b")),
        );
        RuleInstance::plain(env, lhs, rhs)
    }

    #[test]
    fn fig1_proves() {
        let rule = Rule {
            name: "fig1",
            category: Category::Basic,
            description: "Fig. 1",
            build: fig1,
            expected_sound: true,
        };
        let report = crate::api::prove_rule(&rule);
        assert!(report.proved, "{:?}", report.failure);
        assert!(report.steps >= 1);
    }

    #[test]
    fn schema_mismatch_is_reported() {
        fn bad(src: &mut dyn SchemaSource) -> RuleInstance {
            let sigma = src.schema("s");
            let env = QueryEnv::new()
                .with_table("R", sigma.clone())
                .with_table("S", Schema::node(sigma.clone(), sigma));
            RuleInstance::plain(env, Query::table("R"), Query::table("S"))
        }
        let rule = Rule {
            name: "bad",
            category: Category::Basic,
            description: "ill-formed",
            build: bad,
            expected_sound: false,
        };
        let report = crate::api::prove_rule(&rule);
        assert!(!report.proved);
        assert!(report.failure.unwrap().contains("schema mismatch"));
    }

    #[test]
    fn fig8_aggregation_of_empty_is_zeroes() {
        let rows = fig8_table(&[]);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.total == 0));
    }
}
