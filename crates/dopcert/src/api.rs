//! The unified request API: one typed entry point for everything the
//! system can be asked to do.
//!
//! Before this module, each capability had its own free-function family
//! (`prove_rule`/`_cached`/`_with`/`_session`,
//! `optimize_query`/`_cached`/`_session`) and each front end — the CLI
//! subcommands, the `.dop` script runner, the batch engine — wired the
//! caches and sessions together by hand. No wire protocol can sanely
//! expose seven entry points, so the families collapse here:
//!
//! - [`Prover`] / [`Planner`] own the per-worker state (normalization
//!   cache plus optional persistent session) and expose *one* method
//!   each. The old free functions survive as deprecated shims.
//! - [`Request`] / [`Response`] are the typed request values every
//!   front end routes through: the CLI builds a `Request` from its
//!   flags, the script runner from a parsed [`Script`], and the
//!   `dopcert serve` daemon decodes one from each wire line.
//! - [`execute`] answers a request on fresh state — the single-shot
//!   CLI path. [`Workspace::execute`] answers it on resident state —
//!   the daemon's per-worker path — with responses byte-identical to
//!   [`execute`] by the session-identity guarantee.
//! - [`BudgetSpec`] is the one place the three saturation-budget knobs
//!   are parsed and validated; CLI flags, script `budget` directives,
//!   and serve requests all funnel through it.
//!
//! [`Response::render`] produces exactly the lines the CLI prints, so
//! "daemon answers bit-identical to the single-shot CLI" is a property
//! of shared code, not of two renderers kept manually in sync.

use crate::prove::{ProveOptions, RuleReport, SaturateMode, VerifyMethod};
use crate::rule::{Rule, RuleInstance};
use crate::script::{parse_script, GoalOutcome, Script};
use crate::session::ProveSession;
use egraph::solve::Budget;
use hottsql::ast::Query;
use hottsql::env::QueryEnv;
use optimizer::{OptimizeError, OptimizeOptions, OptimizeReport, PlanCtx, PlanSession};
use relalg::stats::Statistics;
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;
use uninomial::normalize::NormCache;

/// Partial saturation budget: the three knobs, each optionally
/// overridden. This is THE parse/validate point for budgets — CLI
/// flags (`--sat-iters` …), script directives (`budget iters 40;`),
/// and serve requests (`"budget":{"iters":40}`) all build one of
/// these, and [`BudgetSpec::apply`] resolves it against a base.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BudgetSpec {
    /// Override for [`Budget::max_iters`].
    pub iters: Option<usize>,
    /// Override for [`Budget::max_nodes`].
    pub nodes: Option<usize>,
    /// Override for [`Budget::oracle_calls_per_iter`].
    pub oracle_calls: Option<usize>,
}

impl BudgetSpec {
    /// The knob names, as spelled in scripts and wire requests.
    pub const KNOBS: [&'static str; 3] = ["iters", "nodes", "oracle-calls"];

    /// Sets one knob by name, rejecting unknown knobs and zero values
    /// (a zero budget can never prove anything and always signals a
    /// caller mistake).
    ///
    /// # Errors
    ///
    /// Returns a description of the bad knob or value.
    pub fn set(&mut self, knob: &str, value: usize) -> Result<(), String> {
        if value == 0 {
            return Err(format!("budget {knob} must be positive"));
        }
        match knob {
            "iters" => self.iters = Some(value),
            "nodes" => self.nodes = Some(value),
            "oracle-calls" => self.oracle_calls = Some(value),
            other => {
                return Err(format!(
                    "unknown budget knob {other:?} (expected iters, nodes, or oracle-calls)"
                ))
            }
        }
        Ok(())
    }

    /// [`BudgetSpec::set`] from an unparsed value string.
    ///
    /// # Errors
    ///
    /// Returns a description of the bad knob or value.
    pub fn parse_set(&mut self, knob: &str, value: &str) -> Result<(), String> {
        let value = value
            .parse::<usize>()
            .map_err(|_| format!("invalid budget {knob} value {value:?}"))?;
        self.set(knob, value)
    }

    /// Whether any knob is set.
    pub fn is_empty(&self) -> bool {
        *self == BudgetSpec::default()
    }

    /// This spec with unset knobs filled from `fallback` — the
    /// precedence combinator (explicit request knobs over script
    /// directives over defaults).
    pub fn or(self, fallback: BudgetSpec) -> BudgetSpec {
        BudgetSpec {
            iters: self.iters.or(fallback.iters),
            nodes: self.nodes.or(fallback.nodes),
            oracle_calls: self.oracle_calls.or(fallback.oracle_calls),
        }
    }

    /// Resolves the spec against a base budget.
    pub fn apply(self, base: Budget) -> Budget {
        Budget {
            max_iters: self.iters.unwrap_or(base.max_iters),
            max_nodes: self.nodes.unwrap_or(base.max_nodes),
            oracle_calls_per_iter: self.oracle_calls.unwrap_or(base.oracle_calls_per_iter),
        }
    }
}

/// Options carried by a [`Request`]: how to verify, on how much state.
/// The budget is a *partial* [`BudgetSpec`] so that unset knobs fall
/// through to the script's `budget` directives and then the defaults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestOptions {
    /// When the saturation tactic runs.
    pub saturate: SaturateMode,
    /// Explicit budget overrides (highest precedence).
    pub budget: BudgetSpec,
    /// Whether to keep a persistent session (`--no-session` off).
    pub session: bool,
    /// Worker threads for batch subcommands (`None` = all cores).
    pub jobs: Option<usize>,
    /// Whether batch workers share one striped normalization memo.
    pub shared_cache: bool,
    /// Whether the certified optimizer's plan search may use mined
    /// rewrite rules (`--mined-rules`). Off by default: with the flag
    /// off, every prove/optimize output is bit-identical to a build
    /// without the mining subsystem. Mined rules only widen the search
    /// space — shipped plans are still certified by the trusted stack.
    pub mined_rules: bool,
}

impl Default for RequestOptions {
    fn default() -> RequestOptions {
        RequestOptions {
            saturate: SaturateMode::default(),
            budget: BudgetSpec::default(),
            session: true,
            jobs: None,
            shared_cache: true,
            mined_rules: false,
        }
    }
}

impl RequestOptions {
    /// Resolves to concrete [`ProveOptions`], merging budgets by
    /// precedence: explicit request knobs over the script's `budget`
    /// directives over [`Budget::default`].
    pub fn prove_options(&self, script_budget: BudgetSpec) -> ProveOptions {
        ProveOptions {
            saturate: self.saturate,
            budget: self.budget.or(script_budget).apply(Budget::default()),
            session: self.session,
        }
    }

    /// The batch engine these options describe.
    pub fn engine(&self, script_budget: BudgetSpec) -> crate::engine::Engine {
        let mut config = match self.jobs {
            Some(n) => crate::engine::EngineConfig::with_threads(n),
            None => crate::engine::EngineConfig::default(),
        };
        config.prove = self.prove_options(script_budget);
        config.shared_cache = self.shared_cache;
        config.mined = self.mined_rules.then(default_mined_catalog);
        crate::engine::Engine::with_config(config)
    }
}

/// A typed request — everything the system can be asked to do, in one
/// value the CLI, the script runner, and the serve daemon all build.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run a verification script (`dopcert check` / `dopcert prove`).
    Prove {
        /// The `.dop` script source.
        script: String,
        /// Verification options.
        opts: RequestOptions,
    },
    /// Certified cost-based optimization of every query in a script's
    /// goals (`dopcert optimize`).
    Optimize {
        /// The `.dop` script source.
        script: String,
        /// Verification options (the budget drives the plan search).
        opts: RequestOptions,
    },
    /// Check the built-in rule catalog (`dopcert catalog`).
    Catalog {
        /// Also run cross-rule discovery (`--discover`).
        discover: bool,
        /// Verification options.
        opts: RequestOptions,
    },
    /// Cross-rule discovery alone over the sound catalog.
    Discover {
        /// Verification options (the budget bounds the shared graph).
        opts: RequestOptions,
    },
    /// Run the rule-mining loop (`dopcert mine`): generate a CQ corpus,
    /// discover equalities, anti-unify them into candidate schemas,
    /// screen by random interpretation, and certify survivors with the
    /// trusted prover stack. On the daemon, accepted rules become the
    /// resident mined catalog that `optimize` requests with
    /// `mined-rules` on search with.
    Mine {
        /// Corpus seed (the whole run is a pure function of it).
        seed: u64,
        /// Cap on accepted rules.
        count: usize,
    },
    /// Server counters (`dopcert serve` only).
    Stats,
    /// Prometheus-style metrics exposition (`dopcert serve` only):
    /// per-request-kind latency histograms, memo hit/miss counters, and
    /// the saturation phase breakdown.
    Metrics,
    /// Per-rule saturation attribution table (`dopcert serve` only):
    /// the daemon's merged [`telemetry::Profile`] across all workers.
    Profile,
    /// Flush the Chrome-trace buffer (`dopcert serve` only): drains the
    /// accumulated events and returns them rendered, without stopping
    /// the daemon.
    Trace,
    /// Graceful daemon shutdown (`dopcert serve` only).
    Shutdown,
}

/// One goal's result, rendered for the wire but keeping the verdict
/// machine-readable.
#[derive(Clone, Debug, PartialEq)]
pub struct GoalReport {
    /// Whether the goal was `verify` (else `refute`).
    pub expect_equivalent: bool,
    /// Whether the outcome satisfied the expectation.
    pub satisfied: bool,
    /// The goal's left query, rendered.
    pub lhs: String,
    /// The outcome line ([`GoalOutcome`]'s display form).
    pub outcome: String,
}

/// One query's optimization result (or failure).
#[derive(Clone, Debug, PartialEq)]
pub struct PlanReport {
    /// Whether the plan is certified sound (cost did not regress and
    /// the certificate replays). `false` for errored queries.
    pub sound: bool,
    /// Estimated work of the input plan.
    pub cost_before: f64,
    /// Estimated work of the chosen plan.
    pub cost_after: f64,
    /// Which route produced the plan, rendered.
    pub route: String,
    /// The certifying prover, rendered.
    pub method: String,
    /// Certificate-trace length.
    pub steps: usize,
    /// The input query, rendered.
    pub input: String,
    /// The chosen plan, rendered.
    pub output: String,
    /// The optimizer error, when the query failed to optimize (the
    /// other fields are then zero/empty except `input`).
    pub error: Option<String>,
    /// Every candidate plan the optimizer measured (cheapest first,
    /// input included), with the shipped one flagged — the route
    /// narrative behind `dopcert optimize --explain`. Always populated
    /// on success; [`Response::render`] ignores it, so plain output is
    /// unchanged.
    pub candidates: Vec<optimizer::CandidateInfo>,
    /// Distinct lemma names appearing in the winning certificate's
    /// trace, in first-appearance order. Empty for structural
    /// (zero-step) certificates and errored queries.
    pub lemmas: Vec<String>,
}

/// One catalog rule's check result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleCheck {
    /// Rule name.
    pub name: String,
    /// Whether the verdict matched the rule's expected soundness.
    pub passed: bool,
}

/// One mined rule, as reported by a `mine` request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinedRuleReport {
    /// Deterministic rule name (`m000`, `m001`, …).
    pub name: String,
    /// Rendered left side of the schema (holes spelled `?hN`).
    pub lhs: String,
    /// Rendered right side.
    pub rhs: String,
    /// Metavariable holes (0 = ground rule).
    pub holes: usize,
    /// The certifying engine (`tactics`, `tactics/syntactic`, or
    /// `saturate`).
    pub method: String,
    /// Certificate length in lemma steps.
    pub steps: usize,
    /// Whether re-proving reproduced the certificate byte for byte.
    pub replays: bool,
}

/// The outcome of a `mine` request: funnel counters plus the accepted
/// rules in mining order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MineSummary {
    /// Closed corpus expressions seeded into the discovery session.
    pub corpus: usize,
    /// Equal pairs the saturated session discovered.
    pub discovered: usize,
    /// Wellformed candidate schemas after dedup.
    pub candidates: usize,
    /// Candidates refuted by the screening oracle.
    pub screened_out: usize,
    /// Screened candidates the prover stack could not certify.
    pub uncertified: usize,
    /// Accepted rules with their certificates' vitals.
    pub rules: Vec<MinedRuleReport>,
}

/// One discovered cross-rule equality.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Discovery {
    /// First seed tag.
    pub lhs: String,
    /// Second seed tag.
    pub rhs: String,
    /// Whether the sides already normalize to one expression.
    pub structural: bool,
}

/// Latency summary of one request kind, derived from the daemon's
/// log₂-bucketed histogram for that kind.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KindLatency {
    /// Request kind (`prove`, `optimize`, `catalog`, …).
    pub kind: String,
    /// Requests of this kind that completed.
    pub count: u64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
}

/// Counters a `dopcert serve` daemon reports for a `stats` request.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Worker threads (each owning one resident [`Workspace`]).
    pub workers: usize,
    /// Requests received (including rejected and malformed ones).
    pub requests: usize,
    /// Requests answered with `ok: true`.
    pub ok: usize,
    /// Requests answered with an error response.
    pub errors: usize,
    /// Requests rejected by per-tenant budget admission control.
    pub budget_rejections: usize,
    /// Script goals checked across all prove requests.
    pub goals: usize,
    /// Memo hits across all resident sessions (verdict + plan memos).
    /// Published live, per goal — a long-running request shows progress
    /// here before it finishes.
    pub memo_hits: usize,
    /// Busy time across workers, microseconds.
    pub micros: u128,
    /// Memo hits per worker slot (sums to `memo_hits`; empty when the
    /// daemon predates the breakdown or has no workers).
    pub memo_hits_by_worker: Vec<usize>,
    /// Per-request-kind latency summaries, sorted by kind.
    pub latency: Vec<KindLatency>,
    /// Chrome-trace events dropped at the ring-buffer cap since start.
    /// Zero in healthy daemons; rendered only when nonzero.
    pub trace_dropped: u64,
}

/// A typed response. [`Response::render`] yields exactly the lines the
/// single-shot CLI prints for the same request.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Per-goal outcomes of a prove/check request.
    Goals(Vec<GoalReport>),
    /// Per-query reports of an optimize request.
    Plans(Vec<PlanReport>),
    /// Catalog check results, with discovery when requested.
    Catalog {
        /// Per-rule pass/fail in catalog order.
        rules: Vec<RuleCheck>,
        /// Cross-rule discoveries (`--discover` only).
        discovered: Option<Vec<Discovery>>,
    },
    /// Cross-rule discoveries alone.
    Discovered(Vec<Discovery>),
    /// A mining run's funnel and accepted rules.
    Mined(MineSummary),
    /// Server counters.
    Stats(ServerStats),
    /// Prometheus-style text exposition (one newline-terminated block).
    Metrics(String),
    /// The daemon's merged per-rule attribution table.
    Profile(telemetry::Profile),
    /// The drained Chrome-trace buffer, rendered as trace JSON.
    Trace(String),
    /// The request failed before producing a report (parse error,
    /// budget rejection, malformed wire line, …).
    Error(String),
}

impl Response {
    /// Whether every goal/plan/rule in the response passed.
    pub fn ok(&self) -> bool {
        match self {
            Response::Goals(goals) => goals.iter().all(|g| g.satisfied),
            Response::Plans(plans) => plans.iter().all(|p| p.sound),
            Response::Catalog { rules, .. } => rules.iter().all(|r| r.passed),
            Response::Mined(m) => !m.rules.is_empty() && m.rules.iter().all(|r| r.replays),
            Response::Discovered(_)
            | Response::Stats(_)
            | Response::Metrics(_)
            | Response::Profile(_)
            | Response::Trace(_) => true,
            Response::Error(_) => false,
        }
    }

    /// The exact stdout lines the CLI prints for this response — one
    /// string per `println!`, embedded newlines included. Shared by
    /// the CLI and the serve daemon, which is what makes their outputs
    /// diffable byte for byte.
    pub fn render(&self) -> Vec<String> {
        let tag = |ok: bool| if ok { "ok" } else { "FAIL" };
        match self {
            Response::Goals(goals) => goals
                .iter()
                .map(|g| {
                    format!(
                        "[{}] {}: {}\n    {}",
                        tag(g.satisfied),
                        if g.expect_equivalent {
                            "verify"
                        } else {
                            "refute"
                        },
                        g.lhs,
                        g.outcome
                    )
                })
                .collect(),
            Response::Plans(plans) => plans
                .iter()
                .map(|p| match &p.error {
                    Some(e) => format!("[FAIL] {}\n    {e}", p.input),
                    None => format!(
                        "[{}] cost {:.0} -> {:.0} via {} ({} in {} steps)\n    in:  {}\n    out: {}",
                        tag(p.sound),
                        p.cost_before,
                        p.cost_after,
                        p.route,
                        p.method,
                        p.steps,
                        p.input,
                        p.output,
                    ),
                })
                .collect(),
            Response::Catalog { rules, discovered } => {
                let mut lines: Vec<String> = rules
                    .iter()
                    .map(|r| format!("[{}] {}", tag(r.passed), r.name))
                    .collect();
                if let Some(found) = discovered {
                    lines.extend(render_discoveries(found));
                }
                lines
            }
            Response::Discovered(found) => render_discoveries(found),
            Response::Mined(m) => {
                let mut lines = vec![format!(
                    "mined {} rules (corpus {}, discovered {}, candidates {}, \
                     screened out {}, uncertified {})",
                    m.rules.len(), m.corpus, m.discovered, m.candidates,
                    m.screened_out, m.uncertified,
                )];
                for r in &m.rules {
                    let holes = match r.holes {
                        0 => "ground".to_owned(),
                        1 => "1 hole".to_owned(),
                        n => format!("{n} holes"),
                    };
                    lines.push(format!(
                        "[{}] {}{}: {} == {}\n    certified by {} in {} steps ({holes}); \
                         certificate {}",
                        tag(r.replays),
                        egraph::MINED_LABEL_PREFIX,
                        r.name,
                        r.lhs,
                        r.rhs,
                        r.method,
                        r.steps,
                        if r.replays { "replays" } else { "DOES NOT replay" },
                    ));
                }
                lines
            }
            Response::Stats(s) => {
                let hit_rate = if s.goals == 0 {
                    0.0
                } else {
                    100.0 * s.memo_hits as f64 / s.goals as f64
                };
                let mut lines = vec![
                    format!("workers: {}", s.workers),
                    format!(
                        "requests: {} ({} ok, {} error, {} budget-rejected)",
                        s.requests, s.ok, s.errors, s.budget_rejections
                    ),
                    format!("goals: {}", s.goals),
                    format!("memo hits: {} ({hit_rate:.1}% of goals)", s.memo_hits),
                    format!("busy: {:.1} ms", s.micros as f64 / 1e3),
                ];
                if !s.memo_hits_by_worker.is_empty() {
                    let per_worker: Vec<String> = s
                        .memo_hits_by_worker
                        .iter()
                        .enumerate()
                        .map(|(i, h)| format!("w{i}={h}"))
                        .collect();
                    lines.push(format!("memo hits by worker: {}", per_worker.join(" ")));
                }
                for l in &s.latency {
                    lines.push(format!(
                        "latency[{}]: p50={}us p90={}us p99={}us (n={})",
                        l.kind, l.p50_us, l.p90_us, l.p99_us, l.count
                    ));
                }
                if s.trace_dropped > 0 {
                    lines.push(format!("trace events dropped: {}", s.trace_dropped));
                }
                lines
            }
            Response::Metrics(text) => text.lines().map(str::to_owned).collect(),
            Response::Profile(profile) => profile.render_table(),
            Response::Trace(text) => text.lines().map(str::to_owned).collect(),
            Response::Error(e) => vec![format!("error: {e}")],
        }
    }

    /// The `dopcert optimize --explain` narrative: per query, every
    /// candidate route the optimizer measured with its estimated cost
    /// (the shipped one flagged) and the lemmas the winning certificate
    /// leans on. Empty for non-plan responses and errored queries. The
    /// data rides inside the memoized [`OptimizeReport`], so session
    /// and fresh answers narrate identically.
    pub fn render_explain(&self) -> Vec<String> {
        let Response::Plans(plans) = self else {
            return Vec::new();
        };
        let mut lines = Vec::new();
        for p in plans {
            if p.error.is_some() {
                continue;
            }
            lines.push(format!("explain {}:", p.input));
            for c in &p.candidates {
                lines.push(format!(
                    "  candidate cost {:>8.0}  {}{}",
                    c.cost,
                    c.route,
                    if c.chosen { "  <- shipped" } else { "" }
                ));
            }
            if p.lemmas.is_empty() {
                lines.push("  certificate lemmas: none (structural)".into());
            } else {
                lines.push(format!("  certificate lemmas: {}", p.lemmas.join(", ")));
            }
        }
        lines
    }
}

fn render_discoveries(found: &[Discovery]) -> Vec<String> {
    let mut lines = vec![format!("{} cross-rule equalities discovered:", found.len())];
    lines.extend(found.iter().map(|d| {
        format!(
            "  {} == {}{}",
            d.lhs,
            d.rhs,
            if d.structural {
                " (same normal form)"
            } else {
                ""
            }
        )
    }));
    lines
}

/// Per-worker proving state: one normalization cache plus (per
/// options) one persistent [`ProveSession`]. The collapsed form of the
/// old `prove_rule{,_cached,_with,_session}` family — which state a
/// call runs on is decided once, at construction.
#[derive(Debug)]
pub struct Prover {
    pub(crate) cache: NormCache,
    pub(crate) session: Option<ProveSession>,
    pub(crate) opts: ProveOptions,
}

impl Prover {
    /// A prover on fresh state (session iff `opts.session`).
    pub fn new(opts: ProveOptions) -> Prover {
        Prover::with_cache(NormCache::new(), opts)
    }

    /// A prover over a pre-seeded cache — the batch engine hands each
    /// worker a cache cloned from the shared interner snapshot.
    pub fn with_cache(cache: NormCache, opts: ProveOptions) -> Prover {
        Prover {
            cache,
            session: opts.session.then(|| ProveSession::new(opts)),
            opts,
        }
    }

    /// The options this prover verifies under.
    pub fn options(&self) -> ProveOptions {
        self.opts
    }

    /// Routes the session's live memo-hit count into `sink` (stored on
    /// every subsequent hit): the serve daemon polls the sink so a
    /// long-running request shows memo progress before it finishes.
    pub fn publish_hits_to(&mut self, sink: Arc<AtomicUsize>) {
        match self.session.as_mut() {
            Some(session) => session.publish_hits_to(sink),
            None => sink.store(0, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Verifies a rule. Verdict, method, and step count are identical
    /// whatever state the prover holds (fresh, cached, or session —
    /// the PR 4 identity guarantee); only wall-clock differs.
    pub fn prove_rule(&mut self, rule: &Rule) -> RuleReport {
        let _span = telemetry::span("prove.rule");
        crate::prove::prove_rule_on(
            rule,
            Some(&mut self.cache),
            self.session.as_mut(),
            self.opts,
        )
    }

    /// Verifies one denoted instance (the engine's pair path).
    ///
    /// # Errors
    ///
    /// Returns the diagnostics and attempted-method list on failure.
    #[allow(clippy::type_complexity)] // the verify_instance result shape
    pub fn verify_instance(
        &mut self,
        inst: &RuleInstance,
    ) -> Result<(VerifyMethod, usize, Vec<String>), (String, Vec<String>)> {
        let _span = telemetry::span("prove.goal");
        crate::prove::verify_instance_session(
            inst,
            Some(&mut self.cache),
            self.session.as_mut(),
            self.opts,
        )
    }

    /// Runs a parsed script's goals on this prover's state.
    pub fn run_script(&mut self, script: &Script) -> Vec<GoalOutcome> {
        crate::script::run_script_in(script, self)
    }

    /// Goals answered from the session's verdict memo so far.
    pub fn memo_hits(&self) -> usize {
        self.session.as_ref().map_or(0, ProveSession::verdict_hits)
    }
}

/// One-shot rule verification on fresh state — the collapsed form of
/// the old `prove_rule` free function.
pub fn prove_rule(rule: &Rule) -> RuleReport {
    // No session: a one-shot call has nothing to memoize across.
    Prover::new(ProveOptions {
        session: false,
        ..ProveOptions::default()
    })
    .prove_rule(rule)
}

/// Per-worker planning state: one normalization cache plus (per
/// options) one persistent [`PlanSession`] — the collapsed form of the
/// old `optimize_query{,_cached,_session}` family.
#[derive(Debug)]
pub struct Planner {
    cache: NormCache,
    session: Option<PlanSession>,
    budget: Budget,
    mined: Option<Arc<Vec<egraph::MinedRule>>>,
}

impl Planner {
    /// A planner on fresh state (session iff `opts.session`).
    pub fn new(opts: ProveOptions) -> Planner {
        Planner::with_cache(NormCache::new(), opts)
    }

    /// A planner over a pre-seeded cache (see [`Prover::with_cache`]).
    pub fn with_cache(cache: NormCache, opts: ProveOptions) -> Planner {
        Planner {
            cache,
            session: opts.session.then(|| PlanSession::new(opts.budget)),
            budget: opts.budget,
            mined: None,
        }
    }

    /// The saturation budget plan searches run under.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Sets (or clears) the mined-rule catalog the plan search uses.
    /// `None` restores the default search, bit-identical to a planner
    /// that never saw mined rules; memo isolation across catalog
    /// changes is handled by the session's configuration fingerprint.
    pub fn set_mined_rules(&mut self, mined: Option<Arc<Vec<egraph::MinedRule>>>) {
        self.mined = mined;
    }

    /// Optimizes one query on this planner's state. Reports are
    /// identical whatever state the planner holds.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError`] when the query fails to type or
    /// denote.
    pub fn optimize(
        &mut self,
        q: &Query,
        env: &QueryEnv,
        stats: &Statistics,
    ) -> Result<OptimizeReport, OptimizeError> {
        optimizer::optimize(
            q,
            env,
            stats,
            OptimizeOptions {
                budget: self.budget,
            },
            PlanCtx {
                cache: Some(&mut self.cache),
                session: self.session.as_mut(),
                mined: self.mined.as_ref(),
            },
        )
    }

    /// Queries answered from the session's plan memo so far.
    pub fn memo_hits(&self) -> usize {
        self.session.as_ref().map_or(0, PlanSession::plan_hits)
    }

    /// Routes the session's live plan-memo hit count into `sink` (see
    /// [`Prover::publish_hits_to`]).
    pub fn publish_hits_to(&mut self, sink: Arc<AtomicUsize>) {
        match self.session.as_mut() {
            Some(session) => session.publish_hits_to(sink),
            None => sink.store(0, std::sync::atomic::Ordering::Relaxed),
        }
    }
}

/// Runs the mining loop and packages the result for the wire, returning
/// the compiled rules alongside so residents can adopt them as their
/// catalog.
fn run_mine(seed: u64, count: usize) -> (MineSummary, Arc<Vec<egraph::MinedRule>>) {
    let report = mine::mine(&mine::MineConfig {
        seed,
        max_rules: count.max(1),
        ..mine::MineConfig::default()
    });
    let summary = MineSummary {
        corpus: report.corpus_size,
        discovered: report.discovered,
        candidates: report.candidates,
        screened_out: report.screened_out,
        uncertified: report.uncertified,
        rules: report
            .accepted
            .iter()
            .map(|e| MinedRuleReport {
                name: e.name.clone(),
                lhs: e.lhs.clone(),
                rhs: e.rhs.clone(),
                holes: e.holes,
                method: e.method.clone(),
                steps: e.steps,
                replays: e.replays,
            })
            .collect(),
    };
    (summary, Arc::new(report.rules))
}

/// The catalog a single-shot `--mined-rules` run searches with: one
/// default-configuration mining run, cached for the life of the process
/// (mining is a pure function of its config, so the cache is
/// transparent).
pub(crate) fn default_mined_catalog() -> Arc<Vec<egraph::MinedRule>> {
    static CATALOG: std::sync::OnceLock<Arc<Vec<egraph::MinedRule>>> = std::sync::OnceLock::new();
    Arc::clone(CATALOG.get_or_init(|| {
        let cfg = mine::MineConfig::default();
        run_mine(cfg.seed, cfg.max_rules).1
    }))
}

/// Answers a request on fresh state — what one CLI invocation does.
/// `Stats`/`Shutdown` are daemon-only and answer with an error here.
pub fn execute(req: &Request) -> Response {
    match req {
        Request::Prove { script, opts } => {
            let script = match parse_script(script) {
                Ok(s) => s,
                Err(e) => return Response::Error(format!("parse error: {e}")),
            };
            let popts = opts.prove_options(script.budget);
            let mut prover = Prover::new(popts);
            goals_response(&script, prover.run_script(&script))
        }
        Request::Optimize { script, opts } => {
            let script = match parse_script(script) {
                Ok(s) => s,
                Err(e) => return Response::Error(format!("parse error: {e}")),
            };
            optimize_script(&script, opts, None)
        }
        Request::Catalog { discover, opts } => {
            let popts = opts.prove_options(BudgetSpec::default());
            let engine = opts.engine(BudgetSpec::default());
            let rules = engine
                .check_catalog(&crate::catalog::all_rules())
                .into_iter()
                .map(|(name, passed)| RuleCheck { name, passed })
                .collect();
            let discovered = discover.then(|| discoveries(popts));
            Response::Catalog { rules, discovered }
        }
        Request::Discover { opts } => {
            Response::Discovered(discoveries(opts.prove_options(BudgetSpec::default())))
        }
        Request::Mine { seed, count } => Response::Mined(run_mine(*seed, *count).0),
        Request::Stats
        | Request::Metrics
        | Request::Profile
        | Request::Trace
        | Request::Shutdown => Response::Error(
            "stats/metrics/profile/trace/shutdown requests are answered by `dopcert serve` only"
                .into(),
        ),
    }
}

/// Resident per-worker state for the serve daemon: one [`Prover`] and
/// one [`Planner`], built once at the server's default options and
/// kept across requests so repeated goals hit the memos.
///
/// Responses are byte-identical to [`execute`] on fresh state: session
/// memos replay recorded verdicts/plans of a deterministic pipeline,
/// and the shared multi-seed graph is a discovery side-channel only
/// (the PR 4 identity guarantee, asserted by `tests/serve.rs`).
/// Requests whose *effective options differ* from the server defaults
/// fall back to fresh [`execute`] — a session only answers under the
/// exact options it was built with, so routing, say, a tighter-budget
/// request through it would either bypass every memo or (worse) reuse
/// a graph saturated under the wrong budget.
#[derive(Debug)]
pub struct Workspace {
    prover: Prover,
    planner: Planner,
    defaults: RequestOptions,
    /// The resident mined catalog: set by `mine` requests (directly or
    /// via [`Workspace::set_mined_catalog`] when the daemon shares one
    /// catalog across workers), consulted by `optimize` requests with
    /// `mined-rules` on. `None` falls back to the process-wide default
    /// catalog on demand.
    mined: Option<Arc<Vec<egraph::MinedRule>>>,
}

impl Workspace {
    /// A workspace resident at these default options.
    pub fn new(defaults: RequestOptions) -> Workspace {
        let popts = defaults.prove_options(BudgetSpec::default());
        Workspace {
            prover: Prover::new(popts),
            planner: Planner::new(popts),
            defaults,
            mined: None,
        }
    }

    /// Installs a mined catalog (the daemon broadcasts the outcome of a
    /// `mine` request to every worker's workspace through this).
    pub fn set_mined_catalog(&mut self, rules: Arc<Vec<egraph::MinedRule>>) {
        self.mined = Some(rules);
    }

    /// The catalog `mined-rules` requests search with: the resident one
    /// when a mining run installed it, the process-wide default
    /// otherwise.
    pub fn mined_catalog(&self) -> Arc<Vec<egraph::MinedRule>> {
        self.mined.clone().unwrap_or_else(default_mined_catalog)
    }

    /// Total memo hits across the resident sessions.
    pub fn memo_hits(&self) -> usize {
        self.prover.memo_hits() + self.planner.memo_hits()
    }

    /// Routes both resident sessions' live memo-hit counts into per-kind
    /// sinks; the daemon sums them for the per-worker `stats` breakdown.
    pub fn publish_memo_hits(&mut self, prover: Arc<AtomicUsize>, planner: Arc<AtomicUsize>) {
        self.prover.publish_hits_to(prover);
        self.planner.publish_hits_to(planner);
    }

    /// Answers a request on the resident state where the effective
    /// options allow it, on fresh state otherwise (see type docs).
    pub fn execute(&mut self, req: &Request) -> Response {
        match req {
            Request::Prove { script, opts } => {
                let script = match parse_script(script) {
                    Ok(s) => s,
                    Err(e) => return Response::Error(format!("parse error: {e}")),
                };
                if opts.prove_options(script.budget) != self.prover.opts {
                    return execute(req);
                }
                goals_response(&script, self.prover.run_script(&script))
            }
            Request::Optimize { script, opts } => {
                let script = match parse_script(script) {
                    Ok(s) => s,
                    Err(e) => return Response::Error(format!("parse error: {e}")),
                };
                let popts = opts.prove_options(script.budget);
                if popts.budget != self.planner.budget || !popts.session {
                    return execute(req);
                }
                // The mined catalog is per-request: flag on searches with
                // the resident catalog, flag off restores the default
                // search (memo isolation via the session fingerprint).
                let mined = opts.mined_rules.then(|| self.mined_catalog());
                self.planner.set_mined_rules(mined);
                optimize_script(&script, opts, Some(&mut self.planner))
            }
            Request::Mine { seed, count } => {
                let (summary, rules) = run_mine(*seed, *count);
                self.mined = Some(rules);
                Response::Mined(summary)
            }
            // Catalog/discovery runs are engine-shaped (their own
            // worker pool and warm snapshot); resident state would buy
            // nothing, so they always run fresh.
            _ => execute(req),
        }
    }

    /// The default options resident requests are answered under.
    pub fn defaults(&self) -> RequestOptions {
        self.defaults
    }
}

/// Zips a script's goals with their outcomes into a response.
fn goals_response(script: &Script, outcomes: Vec<GoalOutcome>) -> Response {
    Response::Goals(
        script
            .goals
            .iter()
            .zip(outcomes)
            .map(|(goal, outcome)| GoalReport {
                expect_equivalent: goal.expect_equivalent,
                satisfied: outcome.satisfies(goal.expect_equivalent),
                lhs: goal.lhs.to_string(),
                outcome: outcome.to_string(),
            })
            .collect(),
    )
}

/// The optimize pipeline over a parsed script: every distinct goal
/// query in first-seen order, through the batch engine (fresh path) or
/// a resident [`Planner`] (serve path), each plan gated on its
/// certificate replaying.
fn optimize_script(
    script: &Script,
    opts: &RequestOptions,
    resident: Option<&mut Planner>,
) -> Response {
    let mut queries: Vec<Query> = Vec::new();
    for goal in &script.goals {
        for q in [&goal.lhs, &goal.rhs] {
            if !queries.contains(q) {
                queries.push(q.clone());
            }
        }
    }
    if queries.is_empty() {
        return Response::Error("the script declares no goals to optimize".into());
    }
    let budget = opts.prove_options(script.budget).budget;
    let reports: Vec<Result<OptimizeReport, OptimizeError>> = match resident {
        Some(planner) => queries
            .iter()
            .map(|q| planner.optimize(q, &script.env, &script.stats))
            .collect(),
        None => opts
            .engine(script.budget)
            .optimize_batch(&script.env, &script.stats, &queries),
    };
    Response::Plans(
        queries
            .iter()
            .zip(reports)
            .map(|(q, report)| match report {
                Err(e) => PlanReport {
                    sound: false,
                    cost_before: 0.0,
                    cost_after: 0.0,
                    route: String::new(),
                    method: String::new(),
                    steps: 0,
                    input: q.to_string(),
                    output: String::new(),
                    error: Some(e.to_string()),
                    candidates: Vec::new(),
                    lemmas: Vec::new(),
                },
                Ok(r) => PlanReport {
                    sound: r.cost_after <= r.cost_before
                        && r.certificate
                            .replay(&r.input, &r.output, &script.env, budget),
                    cost_before: r.cost_before,
                    cost_after: r.cost_after,
                    route: r.route.to_string(),
                    method: r.certificate.method.to_string(),
                    steps: r.certificate.trace.len(),
                    input: r.input.to_string(),
                    output: r.output.to_string(),
                    error: None,
                    lemmas: certificate_lemmas(&r.certificate),
                    candidates: r.candidates,
                },
            })
            .collect(),
    )
}

/// Distinct lemma names in a certificate's trace, first-appearance
/// order — the "which algebra did the proof lean on" half of the
/// explain narrative.
fn certificate_lemmas(cert: &optimizer::Certificate) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for (lemma, _) in cert.trace.steps() {
        let name = lemma.name();
        if !names.iter().any(|n| n == name) {
            names.push(name.to_owned());
        }
    }
    names
}

/// Cross-rule discovery over the sound catalog.
fn discoveries(popts: ProveOptions) -> Vec<Discovery> {
    crate::session::discover_catalog(&crate::catalog::sound_rules(), popts)
        .into_iter()
        .map(|(lhs, rhs, structural)| Discovery {
            lhs,
            rhs,
            structural,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_spec_is_the_single_validation_point() {
        let mut spec = BudgetSpec::default();
        assert!(spec.is_empty());
        spec.set("iters", 40).unwrap();
        spec.parse_set("oracle-calls", "7").unwrap();
        assert!(spec.set("iters", 0).is_err(), "zero budgets rejected");
        assert!(spec.set("bogus", 3).is_err(), "unknown knobs rejected");
        assert!(spec.parse_set("nodes", "many").is_err());
        let resolved = spec.apply(Budget::default());
        assert_eq!(resolved.max_iters, 40);
        assert_eq!(resolved.max_nodes, Budget::default().max_nodes);
        assert_eq!(resolved.oracle_calls_per_iter, 7);
    }

    #[test]
    fn budget_precedence_is_request_over_script_over_default() {
        let mut request = BudgetSpec::default();
        request.set("iters", 50).unwrap();
        let mut script = BudgetSpec::default();
        script.set("iters", 10).unwrap();
        script.set("nodes", 500).unwrap();
        let merged = request.or(script).apply(Budget::default());
        assert_eq!(merged.max_iters, 50, "request knob wins");
        assert_eq!(merged.max_nodes, 500, "script fills unset knobs");
        assert_eq!(
            merged.oracle_calls_per_iter,
            Budget::default().oracle_calls_per_iter,
            "defaults fill the rest"
        );
    }

    #[test]
    fn execute_prove_matches_the_script_runner() {
        let src = "table R(int);\nverify (R UNION ALL R) == (R UNION ALL R);";
        let resp = execute(&Request::Prove {
            script: src.into(),
            opts: RequestOptions::default(),
        });
        assert!(resp.ok());
        let lines = resp.render();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("[ok] verify: "), "{}", lines[0]);
        assert!(lines[0].contains("proved by"), "{}", lines[0]);
    }

    #[test]
    fn execute_reports_parse_errors_as_error_responses() {
        let resp = execute(&Request::Prove {
            script: "tble R(int);".into(),
            opts: RequestOptions::default(),
        });
        assert!(!resp.ok());
        assert!(matches!(&resp, Response::Error(e) if e.starts_with("parse error:")));
    }

    #[test]
    fn workspace_is_bit_identical_to_fresh_execute_and_hits_its_memo() {
        let src = "table R(int);\nverify (R UNION ALL R) == (R UNION ALL R);";
        let req = Request::Prove {
            script: src.into(),
            opts: RequestOptions::default(),
        };
        let fresh = execute(&req);
        let mut ws = Workspace::new(RequestOptions::default());
        let first = ws.execute(&req);
        let second = ws.execute(&req);
        assert_eq!(fresh.render(), first.render());
        assert_eq!(fresh.render(), second.render());
        assert!(ws.memo_hits() > 0, "repeat request must hit the memo");
    }

    #[test]
    fn workspace_falls_back_to_fresh_state_on_non_default_options() {
        let src = "table R(int);\nverify (R UNION ALL R) == (R UNION ALL R);";
        let mut tighter = RequestOptions::default();
        tighter.budget.set("iters", 3).unwrap();
        let req = Request::Prove {
            script: src.into(),
            opts: tighter,
        };
        let mut ws = Workspace::new(RequestOptions::default());
        let resp = ws.execute(&req);
        assert_eq!(resp.render(), execute(&req).render());
        ws.execute(&req);
        assert_eq!(ws.memo_hits(), 0, "non-default requests bypass the memo");
    }

    #[test]
    fn mine_request_certifies_replayable_rules() {
        let resp = execute(&Request::Mine {
            seed: mine::MineConfig::default().seed,
            count: 3,
        });
        assert!(resp.ok(), "{:?}", resp.render());
        let Response::Mined(summary) = &resp else {
            panic!("expected Mined, got {resp:?}");
        };
        assert_eq!(summary.rules.len(), 3);
        assert!(summary.rules.iter().all(|r| r.replays), "{summary:?}");
        let lines = resp.render();
        assert!(lines[0].starts_with("mined 3 rules ("), "{}", lines[0]);
        assert!(lines[1].starts_with("[ok] mined:m000: "), "{}", lines[1]);
        assert!(lines[2].contains("certified by"), "{}", lines[2]);
    }

    #[test]
    fn mined_rules_widen_the_search_and_off_restores_bit_identity() {
        let src = "table R(int);\nverify (R UNION ALL R) == (R UNION ALL R);";
        let on = RequestOptions {
            mined_rules: true,
            ..RequestOptions::default()
        };
        let req_on = Request::Optimize {
            script: src.into(),
            opts: on,
        };
        let req_off = Request::Optimize {
            script: src.into(),
            opts: RequestOptions::default(),
        };
        let fresh_off = execute(&req_off);
        assert!(fresh_off.ok(), "{:?}", fresh_off.render());
        let mut ws = Workspace::new(RequestOptions::default());
        let resp_on = ws.execute(&req_on);
        assert!(resp_on.ok(), "{:?}", resp_on.render());
        // Turning the flag back off restores the default search exactly.
        let resp_off = ws.execute(&req_off);
        assert_eq!(resp_off.render(), fresh_off.render());
        // The fresh (engine) path answers the flagged request the same
        // way the resident planner does.
        let fresh_on = execute(&req_on);
        assert!(fresh_on.ok(), "{:?}", fresh_on.render());
        assert_eq!(fresh_on.render(), resp_on.render());
    }

    #[test]
    fn stats_render_reports_the_hit_rate() {
        let stats = ServerStats {
            workers: 2,
            requests: 10,
            ok: 8,
            errors: 1,
            budget_rejections: 1,
            goals: 20,
            memo_hits: 5,
            micros: 1234,
            memo_hits_by_worker: vec![2, 3],
            latency: vec![KindLatency {
                kind: "prove".into(),
                count: 8,
                p50_us: 150,
                p90_us: 900,
                p99_us: 1100,
            }],
            trace_dropped: 0,
        };
        let lines = Response::Stats(stats.clone()).render();
        assert_eq!(lines[0], "workers: 2");
        assert_eq!(lines[1], "requests: 10 (8 ok, 1 error, 1 budget-rejected)");
        assert_eq!(lines[3], "memo hits: 5 (25.0% of goals)");
        assert!(lines.contains(&"memo hits by worker: w0=2 w1=3".to_owned()));
        assert!(lines.contains(&"latency[prove]: p50=150us p90=900us p99=1100us (n=8)".to_owned()));
        assert!(
            !lines.iter().any(|l| l.contains("trace events dropped")),
            "healthy daemons don't mention the drop counter"
        );
        let noisy = ServerStats {
            trace_dropped: 3,
            ..stats
        };
        let lines = Response::Stats(noisy).render();
        assert_eq!(lines.last().unwrap(), "trace events dropped: 3");
    }
}
