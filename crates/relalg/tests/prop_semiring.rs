//! Property-based tests: `Card` is a commutative semiring with the
//! squash/negation laws of Definition 3.1, and the relational operators
//! satisfy the algebraic identities the denotation relies on.

use proptest::prelude::*;
use relalg::generate::{GenConfig, Generator};
use relalg::{ops, Card, Relation, Schema, Tuple};

fn arb_card() -> impl Strategy<Value = Card> {
    prop_oneof![
        4 => (0u64..50).prop_map(Card::Fin),
        1 => Just(Card::Omega),
        1 => Just(Card::Fin(u64::MAX)),
    ]
}

proptest! {
    #[test]
    fn add_commutative(a in arb_card(), b in arb_card()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn add_associative(a in arb_card(), b in arb_card(), c in arb_card()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn mul_commutative(a in arb_card(), b in arb_card()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn mul_associative(a in arb_card(), b in arb_card(), c in arb_card()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn distributivity(a in arb_card(), b in arb_card(), c in arb_card()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn units_and_zero(a in arb_card()) {
        prop_assert_eq!(a + Card::ZERO, a);
        prop_assert_eq!(a * Card::ONE, a);
        prop_assert_eq!(a * Card::ZERO, Card::ZERO);
    }

    #[test]
    fn squash_is_truncation(a in arb_card()) {
        prop_assert_eq!(a.squash(), a.not().not());
        prop_assert_eq!(a.squash().squash(), a.squash());
        prop_assert_eq!((a * a).squash(), a.squash());
    }

    #[test]
    fn negation_involutions(a in arb_card()) {
        prop_assert_eq!(a.not().not().not(), a.not());
        prop_assert_eq!(a * a.not(), Card::ZERO);
    }
}

/// Random relation from a seed, over a fixed two-column schema.
fn rel(seed: u64) -> Relation {
    let mut g = Generator::with_config(
        seed,
        GenConfig {
            max_support: 6,
            max_multiplicity: 4,
            int_range: (0, 2),
            max_schema_width: 2,
        },
    );
    g.relation(&Schema::flat([
        relalg::BaseType::Int,
        relalg::BaseType::Int,
    ]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn union_all_commutes(s1 in 0u64..5000, s2 in 0u64..5000) {
        let (a, b) = (rel(s1), rel(s2));
        prop_assert!(ops::union_all(&a, &b).unwrap().bag_eq(&ops::union_all(&b, &a).unwrap()));
    }

    #[test]
    fn product_distributes_over_union(s1 in 0u64..5000, s2 in 0u64..5000, s3 in 0u64..5000) {
        let (a, b, c) = (rel(s1), rel(s2), rel(s3));
        let lhs = ops::product(&a, &ops::union_all(&b, &c).unwrap());
        let rhs = ops::union_all(&ops::product(&a, &b), &ops::product(&a, &c)).unwrap();
        prop_assert!(lhs.bag_eq(&rhs));
    }

    #[test]
    fn distinct_is_idempotent_and_monotone(s in 0u64..5000) {
        let a = rel(s);
        let d = ops::distinct(&a);
        prop_assert!(ops::distinct(&d).bag_eq(&d));
        prop_assert!(d.set_eq(&a));
        for (t, c) in d.iter() {
            prop_assert_eq!(c, Card::ONE);
            prop_assert!(!a.multiplicity(t).is_zero());
        }
    }

    #[test]
    fn except_self_is_empty(s in 0u64..5000) {
        let a = rel(s);
        prop_assert!(ops::except(&a, &a).unwrap().is_empty());
    }

    #[test]
    fn except_against_empty_is_identity(s in 0u64..5000) {
        let a = rel(s);
        let empty = Relation::empty(a.schema().clone());
        prop_assert!(ops::except(&a, &empty).unwrap().bag_eq(&a));
    }

    #[test]
    fn select_true_is_identity_select_false_empty(s in 0u64..5000) {
        let a = rel(s);
        prop_assert!(ops::select(&a, |_| Card::ONE).bag_eq(&a));
        prop_assert!(ops::select(&a, |_| Card::ZERO).is_empty());
    }

    #[test]
    fn projection_preserves_total_multiplicity(s in 0u64..5000) {
        let a = rel(s);
        let p = ops::project(&a, Schema::leaf(relalg::BaseType::Int), |t| {
            t.fst().unwrap().clone()
        })
        .unwrap();
        prop_assert_eq!(p.total_multiplicity(), a.total_multiplicity());
    }

    #[test]
    fn semijoin_via_ops_matches_filter(s1 in 0u64..2000, s2 in 0u64..2000) {
        // A ⋉ B on first column, built two ways.
        let (a, b) = (rel(s1), rel(s2));
        let keys: std::collections::BTreeSet<Tuple> =
            b.iter().map(|(t, _)| t.fst().unwrap().clone()).collect();
        let filtered = ops::select(&a, |t| {
            Card::from_bool(keys.contains(t.fst().unwrap()))
        });
        // Alternative: distinct-projected B joined and projected back.
        let b_keys = ops::distinct(
            &ops::project(&b, Schema::leaf(relalg::BaseType::Int), |t| {
                t.fst().unwrap().clone()
            })
            .unwrap(),
        );
        let joined = ops::product(&a, &b_keys);
        let matched = ops::select(&joined, |t| {
            let a_part = t.fst().unwrap();
            let key = t.snd().unwrap();
            Card::from_bool(a_part.fst().unwrap() == key)
        });
        let projected = ops::project(&matched, a.schema().clone(), |t| {
            t.fst().unwrap().clone()
        })
        .unwrap();
        prop_assert!(projected.bag_eq(&filtered));
    }
}
