//! Index-as-relation (Sec. 4.2, after Tsatalos et al. [49]).
//!
//! The paper treats an index not as a physical data structure but as a
//! *logical relation*: given a key projection `k` of `R` and an indexed
//! attribute projection `a`, the index is the query `SELECT k, a FROM R`.
//! This module materializes that definition and provides the lookup
//! operation a query optimizer would use when rewriting a full scan into
//! an index lookup plus join (the Sec. 5.1.4 rewrite).

use crate::card::Card;
use crate::ops;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// A logical index on a relation: the materialized `SELECT k, a FROM R`.
#[derive(Clone, Debug)]
pub struct Index {
    relation: Relation,
}

impl Index {
    /// Builds the index `SELECT k, a FROM R`.
    ///
    /// The paper requires `k` to be a key of `R`; this constructor checks
    /// that and returns `None` otherwise (an index over a non-key would
    /// not determine unique row "pointers").
    pub fn build(
        r: &Relation,
        key_schema: Schema,
        attr_schema: Schema,
        k: impl Fn(&Tuple) -> Tuple,
        a: impl Fn(&Tuple) -> Tuple,
    ) -> Option<Index> {
        if !crate::constraints::is_key(r, &k) {
            return None;
        }
        let out_schema = Schema::node(key_schema, attr_schema);
        let relation = ops::project(r, out_schema, |t| Tuple::pair(k(t), a(t))).ok()?;
        Some(Index { relation })
    }

    /// The index as a relation (`(key, attr)` pairs).
    pub fn as_relation(&self) -> &Relation {
        &self.relation
    }

    /// Index lookup: all key values whose indexed attribute equals `v`.
    /// This is the access path the Sec. 5.1.4 rewrite rule exploits.
    pub fn lookup(&self, v: &Value) -> Vec<Tuple> {
        let target = Tuple::Leaf(v.clone());
        self.relation
            .iter()
            .filter(|(t, _)| t.snd().map(|s| *s == target).unwrap_or(false))
            .map(|(t, _)| t.fst().expect("index tuples are pairs").clone())
            .collect()
    }

    /// Evaluates `SELECT * FROM R WHERE a = v` through the index:
    /// semi-join `R` with the looked-up keys. `k` must be the same key
    /// projection the index was built with.
    pub fn scan_via_index(&self, r: &Relation, v: &Value, k: impl Fn(&Tuple) -> Tuple) -> Relation {
        let keys: std::collections::BTreeSet<Tuple> = self.lookup(v).into_iter().collect();
        ops::select(r, |t| Card::from_bool(keys.contains(&k(t))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::BaseType;

    /// R(k:int, a:int) with k a key.
    fn indexed_relation() -> Relation {
        let s = Schema::node(Schema::leaf(BaseType::Int), Schema::leaf(BaseType::Int));
        Relation::from_tuples(
            s,
            [
                Tuple::pair(Tuple::int(1), Tuple::int(100)),
                Tuple::pair(Tuple::int(2), Tuple::int(200)),
                Tuple::pair(Tuple::int(3), Tuple::int(100)),
            ],
        )
        .unwrap()
    }

    fn fst(t: &Tuple) -> Tuple {
        t.fst().unwrap().clone()
    }
    fn snd(t: &Tuple) -> Tuple {
        t.snd().unwrap().clone()
    }

    #[test]
    fn build_requires_key() {
        let r = indexed_relation();
        assert!(Index::build(
            &r,
            Schema::leaf(BaseType::Int),
            Schema::leaf(BaseType::Int),
            fst,
            snd
        )
        .is_some());
        // The attribute column is not a key (100 appears twice).
        assert!(Index::build(
            &r,
            Schema::leaf(BaseType::Int),
            Schema::leaf(BaseType::Int),
            snd,
            fst
        )
        .is_none());
    }

    #[test]
    fn lookup_finds_all_matching_keys() {
        let r = indexed_relation();
        let idx = Index::build(
            &r,
            Schema::leaf(BaseType::Int),
            Schema::leaf(BaseType::Int),
            fst,
            snd,
        )
        .unwrap();
        let mut keys = idx.lookup(&Value::Int(100));
        keys.sort();
        assert_eq!(keys, vec![Tuple::int(1), Tuple::int(3)]);
        assert!(idx.lookup(&Value::Int(999)).is_empty());
    }

    #[test]
    fn index_scan_equals_full_scan() {
        // The Sec. 5.1.4 rewrite at the instance level:
        // SELECT * FROM R WHERE a = v  ≡  index lookup + semi-join.
        let r = indexed_relation();
        let idx = Index::build(
            &r,
            Schema::leaf(BaseType::Int),
            Schema::leaf(BaseType::Int),
            fst,
            snd,
        )
        .unwrap();
        for v in [100, 200, 999] {
            let v = Value::Int(v);
            let full = ops::select(&r, |t| {
                Card::from_bool(t.snd().unwrap() == &Tuple::Leaf(v.clone()))
            });
            let via = idx.scan_via_index(&r, &v, fst);
            assert!(full.bag_eq(&via), "mismatch for v={v}");
        }
    }

    #[test]
    fn index_relation_has_pair_schema() {
        let r = indexed_relation();
        let idx = Index::build(
            &r,
            Schema::leaf(BaseType::Int),
            Schema::leaf(BaseType::Int),
            fst,
            snd,
        )
        .unwrap();
        assert_eq!(
            idx.as_relation().schema(),
            &Schema::node(Schema::leaf(BaseType::Int), Schema::leaf(BaseType::Int))
        );
        assert_eq!(idx.as_relation().support_size(), 3);
    }
}
