//! Schemas as binary trees of base types (Fig. 3 of the paper).
//!
//! HoTTSQL deliberately models a schema as a *binary tree* rather than an
//! ordered list of attributes (Sec. 3.1, "Discussion"): tree-shaped schemas
//! make generic rewrite rules expressible, because a meta-variable
//! projection can navigate to any subtree, and two schemas concatenate with
//! a single `node` constructor.

use crate::value::BaseType;
use std::fmt;

/// A HoTTSQL schema: `σ ::= empty | leaf τ | node σ₁ σ₂` (Fig. 3).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Schema {
    /// The empty schema; its only tuple is the unit tuple.
    #[default]
    Empty,
    /// A single attribute of base type `τ`.
    Leaf(BaseType),
    /// The concatenation of two schemas.
    Node(Box<Schema>, Box<Schema>),
}

impl Schema {
    /// Constructs a leaf schema.
    ///
    /// ```
    /// use relalg::{BaseType, Schema};
    /// let s = Schema::leaf(BaseType::Int);
    /// assert_eq!(s.width(), 1);
    /// ```
    pub fn leaf(ty: BaseType) -> Schema {
        Schema::Leaf(ty)
    }

    /// Constructs the concatenation `node σ₁ σ₂`.
    pub fn node(left: Schema, right: Schema) -> Schema {
        Schema::Node(Box::new(left), Box::new(right))
    }

    /// Builds a right-leaning schema from a sequence of base types, the
    /// common case of a flat relation `R(a, b, c, …)`.
    ///
    /// An empty sequence yields [`Schema::Empty`].
    ///
    /// ```
    /// use relalg::{BaseType, Schema};
    /// let s = Schema::flat([BaseType::Int, BaseType::Bool]);
    /// assert_eq!(s, Schema::node(Schema::leaf(BaseType::Int), Schema::leaf(BaseType::Bool)));
    /// ```
    pub fn flat(types: impl IntoIterator<Item = BaseType>) -> Schema {
        let mut tys: Vec<BaseType> = types.into_iter().collect();
        match tys.len() {
            0 => Schema::Empty,
            1 => Schema::Leaf(tys.remove(0)),
            _ => {
                let first = tys.remove(0);
                Schema::node(Schema::Leaf(first), Schema::flat(tys))
            }
        }
    }

    /// Number of leaves (attributes) in the schema.
    ///
    /// ```
    /// use relalg::{BaseType, Schema};
    /// assert_eq!(Schema::Empty.width(), 0);
    /// assert_eq!(Schema::flat([BaseType::Int; 3]).width(), 3);
    /// ```
    pub fn width(&self) -> usize {
        match self {
            Schema::Empty => 0,
            Schema::Leaf(_) => 1,
            Schema::Node(l, r) => l.width() + r.width(),
        }
    }

    /// Depth of the schema tree (`Empty` and `Leaf` have depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Schema::Empty | Schema::Leaf(_) => 1,
            Schema::Node(l, r) => 1 + l.depth().max(r.depth()),
        }
    }

    /// The base types of the leaves, left to right.
    pub fn leaf_types(&self) -> Vec<BaseType> {
        let mut out = Vec::with_capacity(self.width());
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<BaseType>) {
        match self {
            Schema::Empty => {}
            Schema::Leaf(t) => out.push(*t),
            Schema::Node(l, r) => {
                l.collect_leaves(out);
                r.collect_leaves(out);
            }
        }
    }

    /// Returns the left/right children if this is a `Node`.
    pub fn children(&self) -> Option<(&Schema, &Schema)> {
        match self {
            Schema::Node(l, r) => Some((l, r)),
            _ => None,
        }
    }

    /// Returns `true` for the empty schema.
    pub fn is_empty(&self) -> bool {
        matches!(self, Schema::Empty)
    }

    /// Enumerates every tuple of this schema whose leaves are drawn from
    /// each base type's [`BaseType::sample_domain`]. Used by exhaustive
    /// tests of small active domains.
    ///
    /// # Panics
    ///
    /// Does not panic, but the result grows exponentially with
    /// [`Schema::width`]; keep widths small.
    pub fn enumerate_sample_tuples(&self) -> Vec<crate::Tuple> {
        use crate::Tuple;
        match self {
            Schema::Empty => vec![Tuple::Unit],
            Schema::Leaf(t) => t.sample_domain().into_iter().map(Tuple::Leaf).collect(),
            Schema::Node(l, r) => {
                let ls = l.enumerate_sample_tuples();
                let rs = r.enumerate_sample_tuples();
                let mut out = Vec::with_capacity(ls.len() * rs.len());
                for lt in &ls {
                    for rt in &rs {
                        out.push(Tuple::pair(lt.clone(), rt.clone()));
                    }
                }
                out
            }
        }
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Schema::Empty => write!(f, "empty"),
            Schema::Leaf(t) => write!(f, "{t}"),
            Schema::Node(l, r) => write!(f, "({l} × {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tuple;

    #[test]
    fn fig4_example_schema() {
        // σ = node (leaf string) (node (leaf int) (leaf bool))  — Fig. 4.
        let sigma = Schema::node(
            Schema::leaf(BaseType::Str),
            Schema::node(Schema::leaf(BaseType::Int), Schema::leaf(BaseType::Bool)),
        );
        assert_eq!(sigma.width(), 3);
        assert_eq!(sigma.depth(), 3);
        assert_eq!(
            sigma.leaf_types(),
            vec![BaseType::Str, BaseType::Int, BaseType::Bool]
        );
        assert_eq!(sigma.to_string(), "(string × (int × bool))");
    }

    #[test]
    fn flat_construction() {
        assert_eq!(Schema::flat([]), Schema::Empty);
        assert_eq!(Schema::flat([BaseType::Int]), Schema::Leaf(BaseType::Int));
        let three = Schema::flat([BaseType::Int, BaseType::Int, BaseType::Bool]);
        assert_eq!(three.width(), 3);
        assert_eq!(
            three,
            Schema::node(
                Schema::leaf(BaseType::Int),
                Schema::node(Schema::leaf(BaseType::Int), Schema::leaf(BaseType::Bool)),
            )
        );
    }

    #[test]
    fn children_accessor() {
        let s = Schema::node(Schema::Empty, Schema::leaf(BaseType::Int));
        let (l, r) = s.children().unwrap();
        assert!(l.is_empty());
        assert_eq!(*r, Schema::leaf(BaseType::Int));
        assert!(Schema::Empty.children().is_none());
    }

    #[test]
    fn enumerate_empty_schema() {
        assert_eq!(Schema::Empty.enumerate_sample_tuples(), vec![Tuple::Unit]);
    }

    #[test]
    fn enumerate_product_counts_multiply() {
        let s = Schema::node(Schema::leaf(BaseType::Bool), Schema::leaf(BaseType::Bool));
        let tuples = s.enumerate_sample_tuples();
        assert_eq!(tuples.len(), 4);
        for t in &tuples {
            assert!(t.conforms_to(&s));
        }
    }

    #[test]
    fn width_of_nested_empty() {
        let s = Schema::node(Schema::Empty, Schema::node(Schema::Empty, Schema::Empty));
        assert_eq!(s.width(), 0);
        assert_eq!(s.enumerate_sample_tuples().len(), 1);
    }
}
