//! Table statistics for cost-based optimization.
//!
//! A cost model needs to know how big the base relations are. This
//! module provides the minimal statistics layer the certified optimizer
//! consumes: per-table row counts plus optional per-column
//! distinct-value estimates, either declared by hand or measured from a
//! concrete [`Relation`].

use crate::card::Card;
use crate::relation::Relation;
use std::collections::{BTreeMap, BTreeSet};

/// Statistics for one table.
#[derive(Clone, Debug, PartialEq)]
pub struct TableStats {
    /// Estimated row count (total bag multiplicity).
    pub rows: f64,
    /// Estimated distinct values per column (left-to-right leaf order),
    /// when known.
    pub distinct: Option<Vec<f64>>,
}

impl TableStats {
    /// Statistics with a row count only.
    pub fn with_rows(rows: f64) -> TableStats {
        TableStats {
            rows: rows.max(0.0),
            distinct: None,
        }
    }

    /// Measures a concrete relation: total multiplicity as the row
    /// count, distinct leaf values per column. `ω` multiplicities are
    /// clamped to a large finite stand-in.
    pub fn from_relation(r: &Relation) -> TableStats {
        let rows = match r.total_multiplicity() {
            Card::Fin(n) => n as f64,
            Card::Omega => 1e18,
        };
        let width = r.schema().width();
        let mut columns: Vec<BTreeSet<String>> = vec![BTreeSet::new(); width];
        for (t, _) in r.iter() {
            for (i, v) in t.leaves().into_iter().enumerate() {
                if let Some(col) = columns.get_mut(i) {
                    col.insert(v.to_string());
                }
            }
        }
        TableStats {
            rows,
            distinct: Some(columns.into_iter().map(|c| c.len() as f64).collect()),
        }
    }
}

/// A statistics catalog: per-table [`TableStats`] plus a default row
/// count for undeclared tables (and relation meta-variables, which have
/// no instances to measure).
#[derive(Clone, Debug, PartialEq)]
pub struct Statistics {
    tables: BTreeMap<String, TableStats>,
    /// Row estimate for tables without declared statistics.
    pub default_rows: f64,
}

impl Default for Statistics {
    fn default() -> Statistics {
        Statistics {
            tables: BTreeMap::new(),
            default_rows: 1000.0,
        }
    }
}

impl Statistics {
    /// An empty catalog with the default row estimate (1000).
    pub fn new() -> Statistics {
        Statistics::default()
    }

    /// Sets the default row estimate for undeclared tables.
    pub fn with_default_rows(mut self, rows: f64) -> Statistics {
        self.default_rows = rows.max(0.0);
        self
    }

    /// Declares statistics for a table.
    pub fn with_table(mut self, name: impl Into<String>, stats: TableStats) -> Statistics {
        self.tables.insert(name.into(), stats);
        self
    }

    /// Declares a bare row count for a table, preserving any distinct
    /// estimates already declared for it.
    pub fn with_rows(mut self, name: impl Into<String>, rows: f64) -> Statistics {
        let name = name.into();
        match self.tables.get_mut(&name) {
            Some(t) => {
                t.rows = rows.max(0.0);
                self
            }
            None => self.with_table(name, TableStats::with_rows(rows)),
        }
    }

    /// Declares the distinct-value estimate of one column (0-based
    /// position) of a `width`-column table — the script front end's
    /// `distinct R.a 100;` statement. Columns without a declaration
    /// hold `0.0`, the "unknown" sentinel the selectivity estimators
    /// skip.
    pub fn with_column_distinct(
        mut self,
        name: impl Into<String>,
        width: usize,
        col: usize,
        value: f64,
    ) -> Statistics {
        let default_rows = self.default_rows;
        let entry = self
            .tables
            .entry(name.into())
            .or_insert_with(|| TableStats::with_rows(default_rows));
        let d = entry.distinct.get_or_insert_with(|| vec![0.0; width]);
        if d.len() < width {
            d.resize(width, 0.0);
        }
        if let Some(slot) = d.get_mut(col) {
            *slot = value.max(0.0);
        }
        self
    }

    /// The statistics declared for a table, if any.
    pub fn table(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(name)
    }

    /// Estimated rows of a table (the default for undeclared names).
    pub fn rows(&self, name: &str) -> f64 {
        self.tables
            .get(name)
            .map(|t| t.rows)
            .unwrap_or(self.default_rows)
    }

    /// Iterates over declared tables.
    pub fn tables(&self) -> impl Iterator<Item = (&String, &TableStats)> {
        self.tables.iter()
    }

    /// Estimated selectivity of one equality conjunct: `1 / d̄` where
    /// `d̄` is the average per-column distinct count over tables that
    /// declare one, clamped to `[1e-6, 1]`. Falls back to `0.1`
    /// (the textbook default) when no distinct estimates are declared.
    /// Columns holding the `0.0` "unknown" sentinel are skipped.
    pub fn eq_selectivity(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for t in self.tables.values() {
            if let Some(d) = &t.distinct {
                for &c in d {
                    if c <= 0.0 {
                        continue;
                    }
                    sum += c.max(1.0);
                    n += 1;
                }
            }
        }
        if n == 0 {
            return 0.1;
        }
        let avg = sum / n as f64;
        (1.0 / avg).clamp(1e-6, 1.0)
    }

    /// Estimated shrink factor of `DISTINCT` (squash): the average ratio
    /// of per-table distinct support to rows, clamped to `[0.05, 1]`.
    /// Falls back to `0.5` when nothing is declared.
    pub fn distinct_ratio(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for t in self.tables.values() {
            if let (Some(d), true) = (&t.distinct, t.rows > 0.0) {
                let support = d.iter().copied().fold(0.0f64, f64::max);
                if support <= 0.0 {
                    continue; // all columns unknown
                }
                sum += (support.max(1.0) / t.rows).clamp(0.0, 1.0);
                n += 1;
            }
        }
        if n == 0 {
            return 0.5;
        }
        (sum / n as f64).clamp(0.05, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple::Tuple;
    use crate::value::BaseType;

    #[test]
    fn declared_rows_and_default() {
        let s = Statistics::new()
            .with_rows("R", 200.0)
            .with_default_rows(50.0);
        assert_eq!(s.rows("R"), 200.0);
        assert_eq!(s.rows("S"), 50.0);
    }

    #[test]
    fn measured_relation_counts_rows_and_distincts() {
        let schema = Schema::flat([BaseType::Int, BaseType::Int]);
        let mut r = Relation::empty(schema);
        for (a, b) in [(1, 40), (2, 40), (2, 50)] {
            r.insert(Tuple::pair(Tuple::int(a), Tuple::int(b)));
        }
        let t = TableStats::from_relation(&r);
        assert_eq!(t.rows, 3.0);
        assert_eq!(t.distinct, Some(vec![2.0, 2.0]));
    }

    #[test]
    fn selectivity_derives_from_distincts() {
        let s = Statistics::new().with_table(
            "R",
            TableStats {
                rows: 100.0,
                distinct: Some(vec![4.0, 4.0]),
            },
        );
        assert!((s.eq_selectivity() - 0.25).abs() < 1e-9);
        // Distinct support 4 of 100 rows → heavy squash shrink.
        assert!((s.distinct_ratio() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn fallbacks_without_declarations() {
        let s = Statistics::new();
        assert_eq!(s.eq_selectivity(), 0.1);
        assert_eq!(s.distinct_ratio(), 0.5);
    }

    #[test]
    fn column_distinct_declarations_compose_with_rows() {
        // Declaration order must not matter.
        let a = Statistics::new()
            .with_rows("R", 1e6)
            .with_column_distinct("R", 2, 0, 100.0);
        let b = Statistics::new()
            .with_column_distinct("R", 2, 0, 100.0)
            .with_rows("R", 1e6);
        assert_eq!(a, b);
        assert_eq!(a.rows("R"), 1e6);
        assert_eq!(a.table("R").unwrap().distinct, Some(vec![100.0, 0.0]));
        // Unknown columns (the 0.0 sentinel) are skipped by the
        // estimators: only the declared column drives selectivity.
        assert!((a.eq_selectivity() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn all_unknown_columns_fall_back() {
        let s = Statistics::new().with_table(
            "R",
            TableStats {
                rows: 10.0,
                distinct: Some(vec![0.0, 0.0]),
            },
        );
        assert_eq!(s.eq_selectivity(), 0.1);
        assert_eq!(s.distinct_ratio(), 0.5);
    }
}
