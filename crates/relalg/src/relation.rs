//! Finitely-represented K-relations: maps from tuples to nonzero cardinals.

use crate::card::Card;
use crate::error::{RelalgError, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::collections::BTreeMap;
use std::fmt;

/// A K-relation with finite support representation.
///
/// The paper's relations are functions `Tuple σ → U`; executing a query
/// only ever produces relations whose *support* (set of tuples with
/// nonzero multiplicity) is finite, although individual multiplicities may
/// be the infinite cardinal [`Card::Omega`] (Sec. 2's generalization).
///
/// Invariants maintained by every method:
/// - no entry maps to [`Card::ZERO`];
/// - every tuple in the support conforms to [`Relation::schema`].
///
/// # Example
///
/// ```
/// use relalg::{BaseType, Card, Relation, Schema, Tuple};
/// let mut r = Relation::empty(Schema::leaf(BaseType::Int));
/// r.insert_with(Tuple::int(1), Card::Fin(2));
/// r.insert(Tuple::int(1));
/// assert_eq!(r.multiplicity(&Tuple::int(1)), Card::Fin(3));
/// assert_eq!(r.support_size(), 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    schema: Schema,
    entries: BTreeMap<Tuple, Card>,
}

impl Relation {
    /// The empty relation over `schema`.
    pub fn empty(schema: Schema) -> Relation {
        Relation {
            schema,
            entries: BTreeMap::new(),
        }
    }

    /// Builds a bag relation from a list of tuples (each occurrence adds
    /// multiplicity one).
    ///
    /// # Errors
    ///
    /// Returns [`RelalgError::SchemaMismatch`] if any tuple does not
    /// conform to `schema`.
    pub fn from_tuples(
        schema: Schema,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Relation> {
        let mut r = Relation::empty(schema);
        for t in tuples {
            r.try_insert_with(t, Card::ONE)?;
        }
        Ok(r)
    }

    /// The schema of this relation.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The multiplicity `⟦R⟧ t` of a tuple (zero if absent).
    pub fn multiplicity(&self, t: &Tuple) -> Card {
        self.entries.get(t).copied().unwrap_or(Card::ZERO)
    }

    /// Adds one occurrence of `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` does not conform to the schema; use
    /// [`Relation::try_insert_with`] for a fallible variant.
    pub fn insert(&mut self, t: Tuple) {
        self.insert_with(t, Card::ONE);
    }

    /// Adds `t` with multiplicity `c` (a no-op when `c` is zero).
    ///
    /// # Panics
    ///
    /// Panics if `t` does not conform to the schema.
    pub fn insert_with(&mut self, t: Tuple, c: Card) {
        self.try_insert_with(t, c)
            .expect("tuple must conform to relation schema");
    }

    /// Fallible insertion used by operators that cannot statically
    /// guarantee conformance.
    ///
    /// # Errors
    ///
    /// Returns [`RelalgError::SchemaMismatch`] on shape mismatch.
    pub fn try_insert_with(&mut self, t: Tuple, c: Card) -> Result<()> {
        if !t.conforms_to(&self.schema) {
            return Err(RelalgError::SchemaMismatch {
                expected: self.schema.clone(),
                tuple: t.to_string(),
            });
        }
        if c.is_zero() {
            return Ok(());
        }
        let entry = self.entries.entry(t).or_insert(Card::ZERO);
        *entry += c;
        Ok(())
    }

    /// Number of distinct tuples in the support.
    pub fn support_size(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the relation is empty (no tuple has nonzero
    /// multiplicity).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of all multiplicities (the bag's total size; `ω` if any tuple
    /// is infinite or the sum overflows).
    pub fn total_multiplicity(&self) -> Card {
        self.entries.values().copied().sum()
    }

    /// Iterates over `(tuple, multiplicity)` pairs in deterministic
    /// (tuple-ordered) order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, Card)> {
        self.entries.iter().map(|(t, c)| (t, *c))
    }

    /// The support as a vector of tuples (deterministic order).
    pub fn support(&self) -> Vec<&Tuple> {
        self.entries.keys().collect()
    }

    /// Expands the bag into an explicit list with duplicates, in
    /// deterministic order.
    ///
    /// # Errors
    ///
    /// Returns [`RelalgError::InfiniteCardinality`] if any multiplicity is
    /// `ω`.
    pub fn to_list(&self) -> Result<Vec<Tuple>> {
        let mut out = Vec::new();
        for (t, c) in self.iter() {
            match c {
                Card::Fin(n) => {
                    for _ in 0..n {
                        out.push(t.clone());
                    }
                }
                Card::Omega => {
                    return Err(RelalgError::InfiniteCardinality(format!(
                        "tuple {t} has multiplicity ω"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Two relations are *bag-equal* when they agree on every
    /// multiplicity. Because the representation is normalized (sorted map,
    /// no zero entries), this coincides with `==`, but also checks schemas.
    pub fn bag_eq(&self, other: &Relation) -> bool {
        self.schema == other.schema && self.entries == other.entries
    }

    /// Two relations are *set-equal* when their supports coincide
    /// (multiplicities squashed).
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.schema == other.schema
            && self.entries.len() == other.entries.len()
            && self.entries.keys().eq(other.entries.keys())
    }

    /// Applies `f` to every multiplicity, dropping entries that become
    /// zero. The workhorse behind `DISTINCT` and scaling.
    pub fn map_multiplicities(&self, f: impl Fn(Card) -> Card) -> Relation {
        let mut out = Relation::empty(self.schema.clone());
        for (t, c) in self.iter() {
            let c2 = f(c);
            if !c2.is_zero() {
                out.entries.insert(t.clone(), c2);
            }
        }
        out
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation[{}]{{", self.schema)?;
        for (i, (t, c)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}↦{c}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::BaseType;

    fn int_schema() -> Schema {
        Schema::leaf(BaseType::Int)
    }

    #[test]
    fn empty_relation() {
        let r = Relation::empty(int_schema());
        assert!(r.is_empty());
        assert_eq!(r.multiplicity(&Tuple::int(3)), Card::ZERO);
        assert_eq!(r.total_multiplicity(), Card::ZERO);
    }

    #[test]
    fn insert_accumulates() {
        let mut r = Relation::empty(int_schema());
        r.insert(Tuple::int(1));
        r.insert(Tuple::int(1));
        r.insert(Tuple::int(2));
        assert_eq!(r.multiplicity(&Tuple::int(1)), Card::Fin(2));
        assert_eq!(r.multiplicity(&Tuple::int(2)), Card::Fin(1));
        assert_eq!(r.support_size(), 2);
        assert_eq!(r.total_multiplicity(), Card::Fin(3));
    }

    #[test]
    fn zero_insert_is_noop() {
        let mut r = Relation::empty(int_schema());
        r.insert_with(Tuple::int(1), Card::ZERO);
        assert!(r.is_empty());
    }

    #[test]
    fn schema_mismatch_rejected() {
        let mut r = Relation::empty(int_schema());
        let err = r.try_insert_with(Tuple::bool(true), Card::ONE).unwrap_err();
        assert!(matches!(err, RelalgError::SchemaMismatch { .. }));
    }

    #[test]
    #[should_panic(expected = "conform")]
    fn insert_panics_on_mismatch() {
        let mut r = Relation::empty(int_schema());
        r.insert(Tuple::Unit);
    }

    #[test]
    fn omega_multiplicity_supported() {
        let mut r = Relation::empty(int_schema());
        r.insert_with(Tuple::int(5), Card::Omega);
        assert_eq!(r.multiplicity(&Tuple::int(5)), Card::Omega);
        assert_eq!(r.total_multiplicity(), Card::Omega);
        assert!(r.to_list().is_err());
    }

    #[test]
    fn to_list_expands_duplicates() {
        let r = Relation::from_tuples(int_schema(), [Tuple::int(2), Tuple::int(1), Tuple::int(2)])
            .unwrap();
        assert_eq!(
            r.to_list().unwrap(),
            vec![Tuple::int(1), Tuple::int(2), Tuple::int(2)]
        );
    }

    #[test]
    fn bag_vs_set_equality() {
        let a = Relation::from_tuples(int_schema(), [Tuple::int(1), Tuple::int(1)]).unwrap();
        let b = Relation::from_tuples(int_schema(), [Tuple::int(1)]).unwrap();
        assert!(!a.bag_eq(&b));
        assert!(a.set_eq(&b));
        assert!(a.bag_eq(&a.clone()));
    }

    #[test]
    fn map_multiplicities_distinct() {
        let a = Relation::from_tuples(int_schema(), [Tuple::int(1), Tuple::int(1)]).unwrap();
        let d = a.map_multiplicities(Card::squash);
        assert_eq!(d.multiplicity(&Tuple::int(1)), Card::ONE);
        let z = a.map_multiplicities(|_| Card::ZERO);
        assert!(z.is_empty());
    }

    #[test]
    fn debug_format_is_deterministic() {
        let r = Relation::from_tuples(int_schema(), [Tuple::int(2), Tuple::int(1)]).unwrap();
        assert_eq!(format!("{r:?}"), "Relation[int]{1↦1, 2↦1}");
    }
}
