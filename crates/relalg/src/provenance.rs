//! Provenance semirings: the general K-relations of Green et al. [23].
//!
//! The paper's semantics instantiates K-relations at cardinals; the
//! original framework interprets relations over *any* commutative
//! semiring `K` — booleans give set semantics, naturals give bags, and
//! the free semiring of *provenance polynomials* `ℕ[X]` records how each
//! output tuple was derived. This module implements the generic
//! framework and the polynomial instance, with the specialization
//! theorems (evaluating a polynomial at 1s recovers bag multiplicity)
//! as tests — tying the executable substrate back to its theory.

use crate::card::Card;
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::collections::BTreeMap;
use std::fmt;

/// A commutative semiring.
pub trait Semiring: Clone + PartialEq + fmt::Debug {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Addition.
    fn add(&self, other: &Self) -> Self;
    /// Multiplication.
    fn mul(&self, other: &Self) -> Self;
    /// Whether this is the additive identity (for support pruning).
    fn is_zero(&self) -> bool;
}

impl Semiring for bool {
    fn zero() -> bool {
        false
    }
    fn one() -> bool {
        true
    }
    fn add(&self, other: &bool) -> bool {
        *self || *other
    }
    fn mul(&self, other: &bool) -> bool {
        *self && *other
    }
    fn is_zero(&self) -> bool {
        !*self
    }
}

impl Semiring for Card {
    fn zero() -> Card {
        Card::ZERO
    }
    fn one() -> Card {
        Card::ONE
    }
    fn add(&self, other: &Card) -> Card {
        *self + *other
    }
    fn mul(&self, other: &Card) -> Card {
        *self * *other
    }
    fn is_zero(&self) -> bool {
        Card::is_zero(*self)
    }
}

/// A provenance polynomial in `ℕ[X]`: a map from monomials (multisets of
/// named source-tuple variables) to natural coefficients.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Polynomial {
    /// monomial (sorted variable-with-exponent list) → coefficient
    terms: BTreeMap<Vec<(String, u32)>, u64>,
}

impl Polynomial {
    /// The polynomial `x` for a named source tuple.
    pub fn var(name: impl Into<String>) -> Polynomial {
        let mut terms = BTreeMap::new();
        terms.insert(vec![(name.into(), 1)], 1);
        Polynomial { terms }
    }

    /// A constant polynomial.
    pub fn constant(n: u64) -> Polynomial {
        let mut terms = BTreeMap::new();
        if n > 0 {
            terms.insert(Vec::new(), n);
        }
        Polynomial { terms }
    }

    /// Evaluates the polynomial under an assignment of variables to
    /// cardinals (absent variables default to 1 — "the tuple is
    /// present once").
    pub fn evaluate(&self, assignment: &BTreeMap<String, Card>) -> Card {
        let mut total = Card::ZERO;
        for (monomial, coeff) in &self.terms {
            let mut product = Card::Fin(*coeff);
            for (v, exp) in monomial {
                let base = assignment.get(v).copied().unwrap_or(Card::ONE);
                for _ in 0..*exp {
                    product *= base;
                }
            }
            total += product;
        }
        total
    }

    /// The set of source variables mentioned — the *lineage* of the
    /// annotated tuple.
    pub fn lineage(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .terms
            .keys()
            .flat_map(|m| m.iter().map(|(v, _)| v.as_str()))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl Semiring for Polynomial {
    fn zero() -> Polynomial {
        Polynomial::default()
    }
    fn one() -> Polynomial {
        Polynomial::constant(1)
    }
    fn add(&self, other: &Polynomial) -> Polynomial {
        let mut terms = self.terms.clone();
        for (m, c) in &other.terms {
            *terms.entry(m.clone()).or_insert(0) += c;
        }
        terms.retain(|_, c| *c > 0);
        Polynomial { terms }
    }
    fn mul(&self, other: &Polynomial) -> Polynomial {
        let mut terms: BTreeMap<Vec<(String, u32)>, u64> = BTreeMap::new();
        for (m1, c1) in &self.terms {
            for (m2, c2) in &other.terms {
                let mut vars: BTreeMap<String, u32> = BTreeMap::new();
                for (v, e) in m1.iter().chain(m2) {
                    *vars.entry(v.clone()).or_insert(0) += e;
                }
                let monomial: Vec<(String, u32)> = vars.into_iter().collect();
                *terms.entry(monomial).or_insert(0) += c1 * c2;
            }
        }
        Polynomial { terms }
    }
    fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (monomial, coeff)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if *coeff != 1 || monomial.is_empty() {
                write!(f, "{coeff}")?;
            }
            for (j, (v, e)) in monomial.iter().enumerate() {
                if j > 0 || *coeff != 1 {
                    write!(f, "·")?;
                }
                write!(f, "{v}")?;
                if *e > 1 {
                    write!(f, "^{e}")?;
                }
            }
        }
        Ok(())
    }
}

/// A K-relation over an arbitrary commutative semiring.
#[derive(Clone, Debug, PartialEq)]
pub struct KRelation<K: Semiring> {
    schema: Schema,
    entries: BTreeMap<Tuple, K>,
}

impl<K: Semiring> KRelation<K> {
    /// The empty K-relation.
    pub fn empty(schema: Schema) -> KRelation<K> {
        KRelation {
            schema,
            entries: BTreeMap::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Adds annotation `k` to tuple `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` does not conform to the schema.
    pub fn insert(&mut self, t: Tuple, k: K) {
        assert!(t.conforms_to(&self.schema), "tuple must conform");
        if k.is_zero() {
            return;
        }
        let entry = self.entries.entry(t).or_insert_with(K::zero);
        *entry = entry.add(&k);
    }

    /// The annotation of a tuple (`zero` if absent).
    pub fn annotation(&self, t: &Tuple) -> K {
        self.entries.get(t).cloned().unwrap_or_else(K::zero)
    }

    /// Iterates over annotated tuples.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &K)> {
        self.entries.iter()
    }

    /// Union: annotations add.
    ///
    /// # Panics
    ///
    /// Panics when the schemas differ.
    pub fn union(&self, other: &KRelation<K>) -> KRelation<K> {
        assert_eq!(self.schema, other.schema, "schemas must match");
        let mut out = self.clone();
        for (t, k) in other.iter() {
            out.insert(t.clone(), k.clone());
        }
        out
    }

    /// Product: annotations multiply.
    pub fn product(&self, other: &KRelation<K>) -> KRelation<K> {
        let mut out = KRelation::empty(Schema::node(self.schema.clone(), other.schema.clone()));
        for (t1, k1) in self.iter() {
            for (t2, k2) in other.iter() {
                out.insert(Tuple::pair(t1.clone(), t2.clone()), k1.mul(k2));
            }
        }
        out
    }

    /// Selection: keeps tuples satisfying the predicate.
    pub fn select(&self, pred: impl Fn(&Tuple) -> bool) -> KRelation<K> {
        let mut out = KRelation::empty(self.schema.clone());
        for (t, k) in self.iter() {
            if pred(t) {
                out.insert(t.clone(), k.clone());
            }
        }
        out
    }

    /// Projection: annotations of merged tuples add.
    pub fn project(&self, out_schema: Schema, f: impl Fn(&Tuple) -> Tuple) -> KRelation<K> {
        let mut out = KRelation::empty(out_schema);
        for (t, k) in self.iter() {
            out.insert(f(t), k.clone());
        }
        out
    }

    /// Maps annotations through a semiring homomorphism — Green et al.'s
    /// fundamental theorem: homomorphisms commute with queries.
    pub fn map_annotations<K2: Semiring>(&self, h: impl Fn(&K) -> K2) -> KRelation<K2> {
        let mut out = KRelation::empty(self.schema.clone());
        for (t, k) in self.iter() {
            out.insert(t.clone(), h(k));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::BaseType;

    fn int() -> Schema {
        Schema::leaf(BaseType::Int)
    }

    /// Source relation annotated with provenance variables.
    fn annotated() -> KRelation<Polynomial> {
        let mut r = KRelation::empty(int());
        r.insert(Tuple::int(1), Polynomial::var("r1"));
        r.insert(Tuple::int(2), Polynomial::var("r2"));
        r.insert(Tuple::int(2), Polynomial::var("r3"));
        r
    }

    #[test]
    fn polynomial_semiring_laws() {
        let (x, y, z) = (
            Polynomial::var("x"),
            Polynomial::var("y"),
            Polynomial::var("z"),
        );
        assert_eq!(x.add(&y), y.add(&x));
        assert_eq!(x.mul(&y), y.mul(&x));
        assert_eq!(x.mul(&y.add(&z)), x.mul(&y).add(&x.mul(&z)));
        assert_eq!(x.add(&Polynomial::zero()), x);
        assert_eq!(x.mul(&Polynomial::one()), x);
        assert!(x.mul(&Polynomial::zero()).is_zero());
    }

    #[test]
    fn union_annotations_add() {
        let r = annotated();
        let u = r.union(&r);
        // 2 appears with r2 + r3 on each side.
        let ann = u.annotation(&Tuple::int(2));
        assert_eq!(ann.to_string(), "2·r2 + 2·r3");
    }

    #[test]
    fn join_records_derivations() {
        let r = annotated();
        let joined = r.product(&r).select(|t| t.fst() == t.snd());
        let ann = joined.annotation(&Tuple::pair(Tuple::int(2), Tuple::int(2)));
        // (r2 + r3)² expanded.
        assert_eq!(ann.to_string(), "2·r2·r3 + r2^2 + r3^2");
        assert_eq!(ann.lineage(), vec!["r2", "r3"]);
    }

    #[test]
    fn specialization_to_bags() {
        // Evaluating provenance at multiplicity-1 sources recovers the
        // bag multiplicity computed directly over Card.
        let r_poly = annotated();
        let joined_poly = r_poly.product(&r_poly);
        let ones = BTreeMap::new(); // defaults to 1 per source
        let as_bag = joined_poly.map_annotations(|p: &Polynomial| p.evaluate(&ones));

        let mut r_card: KRelation<Card> = KRelation::empty(int());
        r_card.insert(Tuple::int(1), Card::ONE);
        r_card.insert(Tuple::int(2), Card::Fin(2));
        let joined_card = r_card.product(&r_card);
        assert_eq!(as_bag, joined_card);
    }

    #[test]
    fn specialization_to_sets() {
        // The boolean image forgets multiplicity.
        let r = annotated();
        let sets = r.map_annotations(|p: &Polynomial| !p.is_zero());
        assert!(sets.annotation(&Tuple::int(2)));
        assert!(!sets.annotation(&Tuple::int(9)));
    }

    #[test]
    fn homomorphism_commutes_with_queries() {
        // Green et al.'s fundamental property, on a join-project query:
        // evaluate-then-map equals map-then-evaluate.
        let r = annotated();
        let query = |rel: &KRelation<Polynomial>| {
            rel.product(rel)
                .select(|t| t.fst() == t.snd())
                .project(int(), |t| t.fst().unwrap().clone())
        };
        let query_card = |rel: &KRelation<Card>| {
            rel.product(rel)
                .select(|t| t.fst() == t.snd())
                .project(int(), |t| t.fst().unwrap().clone())
        };
        let mut assignment = BTreeMap::new();
        assignment.insert("r1".to_string(), Card::Fin(3));
        assignment.insert("r2".to_string(), Card::Fin(2));
        assignment.insert("r3".to_string(), Card::ZERO);
        let h = |p: &Polynomial| p.evaluate(&assignment);
        let path1 = query(&r).map_annotations(h);
        let path2 = query_card(&r.map_annotations(h));
        assert_eq!(path1, path2);
    }

    #[test]
    fn card_and_bool_semiring_impls() {
        assert_eq!(Semiring::add(&Card::Fin(2), &Card::Fin(3)), Card::Fin(5));
        assert!(Semiring::is_zero(&Card::ZERO));
        assert!(bool::one());
        assert!(!bool::zero());
        assert!(true.mul(&true));
        assert!(!true.mul(&false));
    }

    #[test]
    fn polynomial_display_and_constants() {
        let p = Polynomial::constant(2).add(&Polynomial::var("x").mul(&Polynomial::var("x")));
        assert_eq!(p.to_string(), "2 + x^2");
        assert_eq!(Polynomial::zero().to_string(), "0");
        assert_eq!(Polynomial::constant(0), Polynomial::zero());
    }
}
