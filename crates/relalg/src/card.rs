//! Cardinals: natural numbers extended with the countable infinite `ω`.
//!
//! HoTTSQL's first generalization of K-relations (Sec. 2) drops the
//! finite-support requirement and lets a tuple's multiplicity be *any*
//! cardinal. In the executable model we represent cardinals as
//! `ℕ ∪ {ω}`; `ω` stands for any infinite multiplicity (the distinction
//! between infinite cardinals is never observable through UniNomial
//! operations used by SQL queries on countable domains).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, MulAssign};

/// A cardinal number: a finite natural or the countable infinite `ω`.
///
/// `Card` forms the commutative semiring the paper requires of
/// multiplicities, together with the derived unary operations of
/// Definition 3.1: [`Card::squash`] (`‖·‖`) and [`Card::not`] (`· → 0`).
///
/// # Example
///
/// ```
/// use relalg::Card;
/// assert_eq!(Card::Fin(2) + Card::Fin(3), Card::Fin(5));
/// assert_eq!(Card::Omega * Card::ZERO, Card::ZERO); // ω × 0 = 0
/// assert_eq!(Card::Fin(7).squash(), Card::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Card {
    /// A finite multiplicity.
    Fin(u64),
    /// An infinite multiplicity (`ω`).
    Omega,
}

impl Card {
    /// The additive identity `0` (the empty type).
    pub const ZERO: Card = Card::Fin(0);
    /// The multiplicative identity `1` (the unit type).
    pub const ONE: Card = Card::Fin(1);

    /// Returns `true` if this cardinal is zero.
    ///
    /// ```
    /// use relalg::Card;
    /// assert!(Card::ZERO.is_zero());
    /// assert!(!Card::Omega.is_zero());
    /// ```
    pub fn is_zero(self) -> bool {
        self == Card::ZERO
    }

    /// The squash `‖n‖` of Definition 3.1: `0` if `n = 0`, otherwise `1`.
    ///
    /// This is the multiplicity-level meaning of SQL `DISTINCT`.
    ///
    /// ```
    /// use relalg::Card;
    /// assert_eq!(Card::Omega.squash(), Card::ONE);
    /// assert_eq!(Card::ZERO.squash(), Card::ZERO);
    /// ```
    pub fn squash(self) -> Card {
        if self.is_zero() {
            Card::ZERO
        } else {
            Card::ONE
        }
    }

    /// The negation `n → 0` of Definition 3.1: `1` if `n = 0`, else `0`.
    ///
    /// Used to denote `NOT` and `EXCEPT` (Sec. 3.4).
    ///
    /// ```
    /// use relalg::Card;
    /// assert_eq!(Card::ZERO.not(), Card::ONE);
    /// assert_eq!(Card::Fin(3).not(), Card::ZERO);
    /// ```
    #[allow(clippy::should_implement_trait)] // deliberate: Definition 3.1's `· → 0`, not `!`
    pub fn not(self) -> Card {
        if self.is_zero() {
            Card::ONE
        } else {
            Card::ZERO
        }
    }

    /// Converts a boolean proposition into its propositional cardinal:
    /// `true ↦ 1`, `false ↦ 0`.
    ///
    /// ```
    /// use relalg::Card;
    /// assert_eq!(Card::from_bool(1 + 1 == 2), Card::ONE);
    /// ```
    pub fn from_bool(b: bool) -> Card {
        if b {
            Card::ONE
        } else {
            Card::ZERO
        }
    }

    /// Returns the finite value, or `None` for `ω`.
    pub fn finite(self) -> Option<u64> {
        match self {
            Card::Fin(n) => Some(n),
            Card::Omega => None,
        }
    }

    /// Saturating exponent-free multiplication helper used internally:
    /// identical to `*` but avoids constructing temporaries.
    pub(crate) fn mul_card(self, rhs: Card) -> Card {
        match (self, rhs) {
            (Card::Fin(0), _) | (_, Card::Fin(0)) => Card::ZERO,
            (Card::Fin(a), Card::Fin(b)) => match a.checked_mul(b) {
                Some(p) => Card::Fin(p),
                // Multiplicities beyond u64 are indistinguishable from ω for
                // every operation SQL queries can perform on them.
                None => Card::Omega,
            },
            _ => Card::Omega,
        }
    }
}

impl Default for Card {
    fn default() -> Self {
        Card::ZERO
    }
}

impl fmt::Debug for Card {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Card::Fin(n) => write!(f, "{n}"),
            Card::Omega => write!(f, "ω"),
        }
    }
}

impl fmt::Display for Card {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for Card {
    fn from(n: u64) -> Self {
        Card::Fin(n)
    }
}

impl From<bool> for Card {
    fn from(b: bool) -> Self {
        Card::from_bool(b)
    }
}

impl Add for Card {
    type Output = Card;

    fn add(self, rhs: Card) -> Card {
        match (self, rhs) {
            (Card::Fin(a), Card::Fin(b)) => match a.checked_add(b) {
                Some(s) => Card::Fin(s),
                None => Card::Omega,
            },
            _ => Card::Omega,
        }
    }
}

impl AddAssign for Card {
    fn add_assign(&mut self, rhs: Card) {
        *self = *self + rhs;
    }
}

impl Mul for Card {
    type Output = Card;

    fn mul(self, rhs: Card) -> Card {
        self.mul_card(rhs)
    }
}

impl MulAssign for Card {
    fn mul_assign(&mut self, rhs: Card) {
        *self = *self * rhs;
    }
}

impl Sum for Card {
    fn sum<I: Iterator<Item = Card>>(iter: I) -> Card {
        iter.fold(Card::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additive_identity() {
        for c in [Card::ZERO, Card::Fin(7), Card::Omega] {
            assert_eq!(c + Card::ZERO, c);
            assert_eq!(Card::ZERO + c, c);
        }
    }

    #[test]
    fn multiplicative_identity() {
        for c in [Card::ZERO, Card::Fin(7), Card::Omega] {
            assert_eq!(c * Card::ONE, c);
            assert_eq!(Card::ONE * c, c);
        }
    }

    #[test]
    fn annihilation_by_zero_including_omega() {
        // The crucial semiring law for infinite multiplicities: ω × 0 = 0.
        assert_eq!(Card::Omega * Card::ZERO, Card::ZERO);
        assert_eq!(Card::ZERO * Card::Omega, Card::ZERO);
    }

    #[test]
    fn omega_absorbs_addition() {
        assert_eq!(Card::Omega + Card::Fin(3), Card::Omega);
        assert_eq!(Card::Fin(3) + Card::Omega, Card::Omega);
        assert_eq!(Card::Omega + Card::Omega, Card::Omega);
    }

    #[test]
    fn omega_absorbs_nonzero_multiplication() {
        assert_eq!(Card::Omega * Card::Fin(2), Card::Omega);
        assert_eq!(Card::Fin(2) * Card::Omega, Card::Omega);
        assert_eq!(Card::Omega * Card::Omega, Card::Omega);
    }

    #[test]
    fn squash_and_not() {
        assert_eq!(Card::ZERO.squash(), Card::ZERO);
        assert_eq!(Card::Fin(1).squash(), Card::ONE);
        assert_eq!(Card::Fin(42).squash(), Card::ONE);
        assert_eq!(Card::Omega.squash(), Card::ONE);
        assert_eq!(Card::ZERO.not(), Card::ONE);
        assert_eq!(Card::Fin(42).not(), Card::ZERO);
        assert_eq!(Card::Omega.not(), Card::ZERO);
    }

    #[test]
    fn double_negation_is_squash() {
        // ‖n‖ = (n → 0) → 0, Definition 3.1.
        for c in [Card::ZERO, Card::ONE, Card::Fin(9), Card::Omega] {
            assert_eq!(c.not().not(), c.squash());
        }
    }

    #[test]
    fn overflow_saturates_to_omega() {
        assert_eq!(Card::Fin(u64::MAX) + Card::ONE, Card::Omega);
        assert_eq!(Card::Fin(u64::MAX) * Card::Fin(2), Card::Omega);
    }

    #[test]
    fn distributivity_samples() {
        let cases = [
            (Card::Fin(2), Card::Fin(3), Card::Fin(4)),
            (Card::Omega, Card::Fin(3), Card::ZERO),
            (Card::Fin(5), Card::Omega, Card::Fin(1)),
            (Card::ZERO, Card::Omega, Card::Omega),
        ];
        for (a, b, c) in cases {
            assert_eq!(a * (b + c), a * b + a * c, "a={a:?} b={b:?} c={c:?}");
        }
    }

    #[test]
    fn sum_iterator() {
        let total: Card = [Card::Fin(1), Card::Fin(2), Card::Fin(3)].into_iter().sum();
        assert_eq!(total, Card::Fin(6));
        let total: Card = [Card::Fin(1), Card::Omega].into_iter().sum();
        assert_eq!(total, Card::Omega);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Card::Fin(12).to_string(), "12");
        assert_eq!(Card::Omega.to_string(), "ω");
    }
}
