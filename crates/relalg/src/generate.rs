//! Random schema and instance generators.
//!
//! The differential-testing harness (see the `dopcert` crate) validates
//! every proved rewrite rule by executing both sides on randomly generated
//! database instances. This module provides deterministic, seedable
//! generators for schemas, tuples, and relations.

use crate::card::Card;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::{BaseType, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for random instance generation.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum number of distinct tuples per generated relation.
    pub max_support: usize,
    /// Maximum multiplicity per tuple.
    pub max_multiplicity: u64,
    /// Inclusive range of integer values (small, to force collisions —
    /// equality-heavy rewrite rules are only exercised when values repeat).
    pub int_range: (i64, i64),
    /// Maximum leaves when generating random schemas.
    pub max_schema_width: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_support: 6,
            max_multiplicity: 3,
            int_range: (0, 3),
            max_schema_width: 3,
        }
    }
}

/// A seedable generator of schemas, tuples, and relations.
#[derive(Debug)]
pub struct Generator {
    rng: StdRng,
    config: GenConfig,
}

impl Generator {
    /// Creates a generator with the given seed and default configuration.
    ///
    /// ```
    /// use relalg::generate::Generator;
    /// let mut g = Generator::new(42);
    /// let schema = g.schema();
    /// let r = g.relation(&schema);
    /// for (t, _) in r.iter() {
    ///     assert!(t.conforms_to(&schema));
    /// }
    /// ```
    pub fn new(seed: u64) -> Generator {
        Generator::with_config(seed, GenConfig::default())
    }

    /// Creates a generator with an explicit configuration.
    pub fn with_config(seed: u64, config: GenConfig) -> Generator {
        Generator {
            rng: StdRng::seed_from_u64(seed),
            config,
        }
    }

    /// Generates a random base type (ints weighted higher: most rewrite
    /// rules compare attributes, and integer collisions exercise joins).
    pub fn base_type(&mut self) -> BaseType {
        match self.rng.gen_range(0..4) {
            0 => BaseType::Bool,
            1 => BaseType::Str,
            _ => BaseType::Int,
        }
    }

    /// Generates a random schema with between 1 and `max_schema_width`
    /// leaves, with random tree shape.
    pub fn schema(&mut self) -> Schema {
        let width = self.rng.gen_range(1..=self.config.max_schema_width);
        self.schema_of_width(width)
    }

    /// Generates a random schema with exactly `width` leaves.
    pub fn schema_of_width(&mut self, width: usize) -> Schema {
        match width {
            0 => Schema::Empty,
            1 => Schema::Leaf(self.base_type()),
            _ => {
                let left = self.rng.gen_range(1..width);
                Schema::node(
                    self.schema_of_width(left),
                    self.schema_of_width(width - left),
                )
            }
        }
    }

    /// Generates a random value of the given type.
    pub fn value(&mut self, ty: BaseType) -> Value {
        match ty {
            BaseType::Int => {
                let (lo, hi) = self.config.int_range;
                Value::Int(self.rng.gen_range(lo..=hi))
            }
            BaseType::Bool => Value::Bool(self.rng.gen()),
            BaseType::Str => {
                let letters = ["a", "b", "c"];
                Value::str(letters[self.rng.gen_range(0..letters.len())])
            }
        }
    }

    /// Generates a random tuple conforming to `schema`.
    pub fn tuple(&mut self, schema: &Schema) -> Tuple {
        match schema {
            Schema::Empty => Tuple::Unit,
            Schema::Leaf(t) => Tuple::Leaf(self.value(*t)),
            Schema::Node(l, r) => Tuple::pair(self.tuple(l), self.tuple(r)),
        }
    }

    /// Generates a random relation over `schema` with finite
    /// multiplicities.
    pub fn relation(&mut self, schema: &Schema) -> Relation {
        let support = self.rng.gen_range(0..=self.config.max_support);
        let mut r = Relation::empty(schema.clone());
        for _ in 0..support {
            let t = self.tuple(schema);
            let m = self.rng.gen_range(1..=self.config.max_multiplicity);
            r.insert_with(t, Card::Fin(m));
        }
        r
    }

    /// Generates a relation where `fst` is a key (for index/FD rules).
    /// Keys are consecutive integers; the rest of the tuple is random.
    ///
    /// # Panics
    ///
    /// Panics if `schema` is not a `node` with an `int` leaf on the left.
    pub fn keyed_relation(&mut self, schema: &Schema) -> Relation {
        let (left, right) = schema
            .children()
            .expect("keyed relation schema must be a node");
        assert_eq!(
            *left,
            Schema::leaf(BaseType::Int),
            "key column must be a single int leaf"
        );
        let support = self.rng.gen_range(0..=self.config.max_support);
        let mut r = Relation::empty(schema.clone());
        for i in 0..support {
            let t = Tuple::pair(Tuple::int(i as i64), self.tuple(right));
            r.insert_with(t, Card::ONE);
        }
        r
    }

    /// Access to the underlying RNG for ad-hoc choices.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Generator::new(7);
        let mut b = Generator::new(7);
        let s = a.schema();
        assert_eq!(s, b.schema());
        assert!(a.relation(&s).bag_eq(&b.relation(&s)));
    }

    #[test]
    fn different_seeds_usually_differ() {
        let mut a = Generator::new(1);
        let mut b = Generator::new(2);
        let sa: Vec<Schema> = (0..8).map(|_| a.schema()).collect();
        let sb: Vec<Schema> = (0..8).map(|_| b.schema()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn generated_tuples_conform() {
        let mut g = Generator::new(3);
        for _ in 0..50 {
            let s = g.schema();
            let t = g.tuple(&s);
            assert!(t.conforms_to(&s), "{t} !: {s}");
        }
    }

    #[test]
    fn generated_relations_conform_and_are_finite() {
        let mut g = Generator::new(4);
        for _ in 0..20 {
            let s = g.schema();
            let r = g.relation(&s);
            assert_eq!(r.schema(), &s);
            for (t, c) in r.iter() {
                assert!(t.conforms_to(&s));
                assert!(c.finite().is_some());
                assert!(!c.is_zero());
            }
        }
    }

    #[test]
    fn schema_width_respected() {
        let mut g = Generator::new(5);
        for w in 1..6 {
            assert_eq!(g.schema_of_width(w).width(), w);
        }
    }

    #[test]
    fn keyed_relation_has_key() {
        let mut g = Generator::new(6);
        let schema = Schema::node(
            Schema::leaf(BaseType::Int),
            Schema::node(Schema::leaf(BaseType::Int), Schema::leaf(BaseType::Bool)),
        );
        for _ in 0..10 {
            let r = g.keyed_relation(&schema);
            assert!(crate::constraints::is_key(&r, |t| t.fst().unwrap().clone()));
        }
    }

    #[test]
    fn small_int_range_forces_collisions() {
        let mut g = Generator::new(8);
        let s = Schema::leaf(BaseType::Int);
        let mut total = 0usize;
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..100 {
            let t = g.tuple(&s);
            distinct.insert(t);
            total += 1;
        }
        assert!(
            distinct.len() < total / 2,
            "domain too large for collisions"
        );
    }
}
