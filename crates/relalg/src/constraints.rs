//! Integrity constraints: keys and functional dependencies (Sec. 4.2).
//!
//! The paper defines a key semantically: a projection `k` is a key of `R`
//! iff `R` equals its self-join on `k` projected back (so the self-join
//! keeps every tuple with unchanged multiplicity). Operationally, that is
//! equivalent to: every tuple of `R` has multiplicity 1 and no two
//! distinct tuples agree on `k`. This module provides both the semantic
//! (self-join) check — matching the paper's definition literally — and
//! the operational check, and tests that they coincide.

use crate::card::Card;
use crate::ops;
use crate::relation::Relation;
use crate::tuple::Tuple;

/// Checks `key(k)(R)` operationally: all multiplicities are 1 and the
/// projection `k` is injective on the support.
///
/// ```
/// use relalg::{constraints, BaseType, Relation, Schema, Tuple};
/// let s = Schema::node(Schema::leaf(BaseType::Int), Schema::leaf(BaseType::Int));
/// let r = Relation::from_tuples(s, [
///     Tuple::pair(Tuple::int(1), Tuple::int(10)),
///     Tuple::pair(Tuple::int(2), Tuple::int(10)),
/// ]).unwrap();
/// assert!(constraints::is_key(&r, |t| t.fst().unwrap().clone()));
/// assert!(!constraints::is_key(&r, |t| t.snd().unwrap().clone()));
/// ```
pub fn is_key(r: &Relation, k: impl Fn(&Tuple) -> Tuple) -> bool {
    let mut seen = std::collections::BTreeSet::new();
    for (t, c) in r.iter() {
        if c != Card::ONE {
            return false;
        }
        if !seen.insert(k(t)) {
            return false;
        }
    }
    true
}

/// Checks `key(k)(R)` with the paper's semantic definition (Sec. 4.2):
///
/// ```text
/// SELECT * FROM R  ≡  SELECT Left.* FROM R, R WHERE Right.Left.k = Right.Right.k
/// ```
///
/// i.e. the self-join of `R` on `k`, projected to the left copy, is
/// bag-equal to `R` itself.
pub fn is_key_semantic(r: &Relation, k: impl Fn(&Tuple) -> Tuple) -> bool {
    let joined = ops::product(r, r);
    let filtered = ops::select(&joined, |t| {
        let l = t.fst().expect("product tuple");
        let rr = t.snd().expect("product tuple");
        Card::from_bool(k(l) == k(rr))
    });
    let projected = ops::project(&filtered, r.schema().clone(), |t| {
        t.fst().expect("product tuple").clone()
    })
    .expect("projection to left copy conforms");
    projected.bag_eq(r)
}

/// Checks the functional dependency `a → b` on `R`: any two tuples that
/// agree on `a` also agree on `b` (Sec. 4.2).
///
/// ```
/// use relalg::{constraints, BaseType, Relation, Schema, Tuple};
/// let s = Schema::node(Schema::leaf(BaseType::Int), Schema::leaf(BaseType::Int));
/// let r = Relation::from_tuples(s, [
///     Tuple::pair(Tuple::int(1), Tuple::int(10)),
///     Tuple::pair(Tuple::int(1), Tuple::int(10)),
///     Tuple::pair(Tuple::int(2), Tuple::int(20)),
/// ]).unwrap();
/// assert!(constraints::functional_dependency(
///     &r,
///     |t| t.fst().unwrap().clone(),
///     |t| t.snd().unwrap().clone(),
/// ));
/// ```
pub fn functional_dependency(
    r: &Relation,
    a: impl Fn(&Tuple) -> Tuple,
    b: impl Fn(&Tuple) -> Tuple,
) -> bool {
    let mut map: std::collections::BTreeMap<Tuple, Tuple> = std::collections::BTreeMap::new();
    for (t, _) in r.iter() {
        let av = a(t);
        let bv = b(t);
        match map.get(&av) {
            Some(prev) if *prev != bv => return false,
            Some(_) => {}
            None => {
                map.insert(av, bv);
            }
        }
    }
    true
}

/// The paper's reduction (Sec. 4.2): `a → b` holds on `R` iff `a` is a key
/// of `DISTINCT (SELECT a, b FROM R)`.
pub fn functional_dependency_via_key(
    r: &Relation,
    a: impl Fn(&Tuple) -> Tuple,
    b: impl Fn(&Tuple) -> Tuple,
) -> bool {
    // Project to (a, b) pairs, then dedup.
    let mut projected = Relation::empty(crate::Schema::Empty);
    let mut first = true;
    for (t, c) in r.iter() {
        let pair = Tuple::pair(a(t), b(t));
        if first {
            // Infer the output schema from the first projected tuple: the
            // generic caller supplies untyped projections.
            projected = Relation::empty(infer_schema(&pair));
            first = false;
        }
        projected.insert_with(pair, c);
    }
    if first {
        return true; // empty relation satisfies every FD
    }
    let deduped = ops::distinct(&projected);
    is_key(&deduped, |t| t.fst().expect("pair tuple").clone())
}

/// Infers the (unique) schema a concrete NULL-free tuple conforms to.
/// NULL leaves are assigned `int` arbitrarily.
pub fn infer_schema(t: &Tuple) -> crate::Schema {
    use crate::{BaseType, Schema};
    match t {
        Tuple::Unit => Schema::Empty,
        Tuple::Leaf(v) => Schema::Leaf(v.base_type().unwrap_or(BaseType::Int)),
        Tuple::Pair(l, r) => Schema::node(infer_schema(l), infer_schema(r)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::BaseType;
    use crate::Schema;

    fn two_col(rows: &[(i64, i64)]) -> Relation {
        let s = Schema::node(Schema::leaf(BaseType::Int), Schema::leaf(BaseType::Int));
        Relation::from_tuples(
            s,
            rows.iter()
                .map(|&(a, b)| Tuple::pair(Tuple::int(a), Tuple::int(b))),
        )
        .unwrap()
    }

    fn fst(t: &Tuple) -> Tuple {
        t.fst().unwrap().clone()
    }
    fn snd(t: &Tuple) -> Tuple {
        t.snd().unwrap().clone()
    }

    #[test]
    fn key_holds() {
        let r = two_col(&[(1, 10), (2, 10), (3, 30)]);
        assert!(is_key(&r, fst));
        assert!(is_key_semantic(&r, fst));
    }

    #[test]
    fn key_fails_on_duplicate_key_values() {
        let r = two_col(&[(1, 10), (1, 20)]);
        assert!(!is_key(&r, fst));
        assert!(!is_key_semantic(&r, fst));
    }

    #[test]
    fn key_fails_on_duplicate_rows() {
        let r = two_col(&[(1, 10), (1, 10)]);
        assert!(!is_key(&r, fst));
        assert!(!is_key_semantic(&r, fst));
    }

    #[test]
    fn semantic_and_operational_key_agree_on_samples() {
        let cases: &[&[(i64, i64)]] = &[
            &[],
            &[(1, 1)],
            &[(1, 1), (2, 1)],
            &[(1, 1), (1, 2)],
            &[(1, 1), (2, 2), (2, 2)],
            &[(0, 5), (1, 5), (2, 5), (3, 5)],
        ];
        for rows in cases {
            let r = two_col(rows);
            assert_eq!(
                is_key(&r, fst),
                is_key_semantic(&r, fst),
                "disagreement on {rows:?}"
            );
        }
    }

    #[test]
    fn fd_holds() {
        let r = two_col(&[(1, 10), (1, 10), (2, 20)]);
        assert!(functional_dependency(&r, fst, snd));
        assert!(functional_dependency_via_key(&r, fst, snd));
    }

    #[test]
    fn fd_fails() {
        let r = two_col(&[(1, 10), (1, 20)]);
        assert!(!functional_dependency(&r, fst, snd));
        assert!(!functional_dependency_via_key(&r, fst, snd));
    }

    #[test]
    fn fd_on_empty_relation() {
        let r = two_col(&[]);
        assert!(functional_dependency(&r, fst, snd));
        assert!(functional_dependency_via_key(&r, fst, snd));
    }

    #[test]
    fn fd_definitions_agree_on_samples() {
        let cases: &[&[(i64, i64)]] = &[
            &[],
            &[(1, 1)],
            &[(1, 1), (2, 1)],
            &[(1, 1), (1, 2)],
            &[(1, 1), (1, 1), (2, 3)],
            &[(5, 5), (6, 5), (5, 6)],
        ];
        for rows in cases {
            let r = two_col(rows);
            assert_eq!(
                functional_dependency(&r, fst, snd),
                functional_dependency_via_key(&r, fst, snd),
                "disagreement on {rows:?}"
            );
        }
    }

    #[test]
    fn key_implies_fd_to_everything() {
        let r = two_col(&[(1, 7), (2, 9), (3, 7)]);
        assert!(is_key(&r, fst));
        assert!(functional_dependency(&r, fst, snd));
        assert!(functional_dependency(&r, fst, |t| t.clone()));
    }

    #[test]
    fn infer_schema_roundtrip() {
        let t = Tuple::pair(
            Tuple::string("x"),
            Tuple::pair(Tuple::int(1), Tuple::bool(true)),
        );
        let s = infer_schema(&t);
        assert!(t.conforms_to(&s));
    }
}
