//! SQL scalar types and values (Fig. 3 of the paper).
//!
//! The paper assumes a set of SQL base types `Type = {int, bool, string, …}`
//! denoted into host-language types. We model three base types, which is
//! enough to express every query and rewrite rule in the paper, plus a
//! `Null` value used by the three-valued-logic extension of Sec. 7.

use std::fmt;

/// A SQL base type (`τ ∈ Type` in Fig. 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BaseType {
    /// Integers, denoted to `i64`.
    Int,
    /// Booleans, denoted to `bool`.
    Bool,
    /// Strings, denoted to `String`.
    Str,
}

impl BaseType {
    /// All base types, in a fixed order (useful for generators).
    pub const ALL: [BaseType; 3] = [BaseType::Int, BaseType::Bool, BaseType::Str];

    /// A small, fixed sample domain for this type, used when a test needs
    /// to enumerate "all" values of a finite active domain.
    ///
    /// ```
    /// use relalg::BaseType;
    /// assert!(BaseType::Bool.sample_domain().len() >= 2);
    /// ```
    pub fn sample_domain(self) -> Vec<Value> {
        match self {
            BaseType::Int => (-2..=2).map(Value::Int).collect(),
            BaseType::Bool => vec![Value::Bool(false), Value::Bool(true)],
            BaseType::Str => ["", "a", "b"].iter().map(|s| Value::str(*s)).collect(),
        }
    }
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseType::Int => write!(f, "int"),
            BaseType::Bool => write!(f, "bool"),
            BaseType::Str => write!(f, "string"),
        }
    }
}

/// A SQL scalar value.
///
/// `Null` is only produced/consumed by the three-valued-logic extension
/// (Sec. 7); the core semantics never constructs it.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A boolean value.
    Bool(bool),
    /// A string value.
    Str(String),
    /// SQL `NULL` of an (untyped) base type — Sec. 7 extension.
    Null,
}

impl Value {
    /// Convenience constructor for string values.
    ///
    /// ```
    /// use relalg::Value;
    /// assert_eq!(Value::str("bob"), Value::Str("bob".to_owned()));
    /// ```
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The base type of this value, or `None` for `Null`.
    pub fn base_type(&self) -> Option<BaseType> {
        match self {
            Value::Int(_) => Some(BaseType::Int),
            Value::Bool(_) => Some(BaseType::Bool),
            Value::Str(_) => Some(BaseType::Str),
            Value::Null => None,
        }
    }

    /// Returns `true` if the value conforms to `ty` (`Null` conforms to
    /// every type, as in SQL).
    pub fn conforms_to(&self, ty: BaseType) -> bool {
        match self.base_type() {
            Some(t) => t == ty,
            None => true,
        }
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns `true` if the value is `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_types() {
        assert_eq!(Value::Int(3).base_type(), Some(BaseType::Int));
        assert_eq!(Value::Bool(true).base_type(), Some(BaseType::Bool));
        assert_eq!(Value::str("x").base_type(), Some(BaseType::Str));
        assert_eq!(Value::Null.base_type(), None);
    }

    #[test]
    fn conformance() {
        assert!(Value::Int(1).conforms_to(BaseType::Int));
        assert!(!Value::Int(1).conforms_to(BaseType::Bool));
        assert!(Value::Null.conforms_to(BaseType::Str));
    }

    #[test]
    fn sample_domains_are_well_typed() {
        for ty in BaseType::ALL {
            for v in ty.sample_domain() {
                assert!(v.conforms_to(ty), "{v} should conform to {ty}");
            }
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("s").as_int(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::str("a").to_string(), "\"a\"");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(BaseType::Str.to_string(), "string");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::str("hi"));
    }
}
