//! Tuples as nested pairs mirroring their schema (Fig. 3/4 of the paper).
//!
//! A HoTTSQL tuple is a dependent type on its schema: `Tuple empty = Unit`,
//! `Tuple (leaf τ) = ⟦τ⟧`, and `Tuple (node σ₁ σ₂) = Tuple σ₁ × Tuple σ₂`.
//! Rust has no dependent types, so conformance is a runtime invariant
//! checked by [`Tuple::conforms_to`]; every operator in this workspace
//! preserves it.

use crate::schema::Schema;
use crate::value::Value;
use std::fmt;

/// A tuple: a nested pair with the same shape as its schema.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tuple {
    /// The unique tuple of the empty schema.
    Unit,
    /// A scalar tuple of a leaf schema.
    Leaf(Value),
    /// A pair of tuples, conforming to `node σ₁ σ₂`.
    Pair(Box<Tuple>, Box<Tuple>),
}

impl Tuple {
    /// Constructs a pair tuple.
    ///
    /// ```
    /// use relalg::Tuple;
    /// let t = Tuple::pair(Tuple::int(52), Tuple::bool(true));
    /// assert_eq!(t.fst().unwrap(), &Tuple::int(52));
    /// ```
    pub fn pair(left: Tuple, right: Tuple) -> Tuple {
        Tuple::Pair(Box::new(left), Box::new(right))
    }

    /// Constructs a leaf tuple from any value convertible to [`Value`].
    pub fn leaf(v: impl Into<Value>) -> Tuple {
        Tuple::Leaf(v.into())
    }

    /// Constructs an integer leaf tuple.
    pub fn int(n: i64) -> Tuple {
        Tuple::Leaf(Value::Int(n))
    }

    /// Constructs a boolean leaf tuple.
    pub fn bool(b: bool) -> Tuple {
        Tuple::Leaf(Value::Bool(b))
    }

    /// Constructs a string leaf tuple.
    pub fn string(s: impl Into<String>) -> Tuple {
        Tuple::Leaf(Value::Str(s.into()))
    }

    /// Builds a right-leaning tuple from a sequence of values, matching the
    /// shape produced by [`Schema::flat`].
    ///
    /// ```
    /// use relalg::{Tuple, Value};
    /// let t = Tuple::flat([Value::Int(1), Value::Int(40)]);
    /// assert_eq!(t, Tuple::pair(Tuple::int(1), Tuple::int(40)));
    /// ```
    pub fn flat(values: impl IntoIterator<Item = Value>) -> Tuple {
        let mut vs: Vec<Value> = values.into_iter().collect();
        match vs.len() {
            0 => Tuple::Unit,
            1 => Tuple::Leaf(vs.remove(0)),
            _ => {
                let first = vs.remove(0);
                Tuple::pair(Tuple::Leaf(first), Tuple::flat(vs))
            }
        }
    }

    /// The first component (`t.1` in the paper's notation).
    pub fn fst(&self) -> Option<&Tuple> {
        match self {
            Tuple::Pair(l, _) => Some(l),
            _ => None,
        }
    }

    /// The second component (`t.2` in the paper's notation).
    pub fn snd(&self) -> Option<&Tuple> {
        match self {
            Tuple::Pair(_, r) => Some(r),
            _ => None,
        }
    }

    /// The scalar value of a leaf tuple.
    pub fn value(&self) -> Option<&Value> {
        match self {
            Tuple::Leaf(v) => Some(v),
            _ => None,
        }
    }

    /// Checks the dependent-type invariant: does this tuple have exactly
    /// the shape of `schema`?
    ///
    /// ```
    /// use relalg::{BaseType, Schema, Tuple};
    /// let sigma = Schema::node(Schema::leaf(BaseType::Str), Schema::leaf(BaseType::Int));
    /// let t = Tuple::pair(Tuple::string("Bob"), Tuple::int(52));
    /// assert!(t.conforms_to(&sigma));
    /// assert!(!Tuple::Unit.conforms_to(&sigma));
    /// ```
    pub fn conforms_to(&self, schema: &Schema) -> bool {
        match (self, schema) {
            (Tuple::Unit, Schema::Empty) => true,
            (Tuple::Leaf(v), Schema::Leaf(t)) => v.conforms_to(*t),
            (Tuple::Pair(l, r), Schema::Node(sl, sr)) => l.conforms_to(sl) && r.conforms_to(sr),
            _ => false,
        }
    }

    /// The leaf values of the tuple, left to right (flattened view).
    pub fn leaves(&self) -> Vec<&Value> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a Value>) {
        match self {
            Tuple::Unit => {}
            Tuple::Leaf(v) => out.push(v),
            Tuple::Pair(l, r) => {
                l.collect_leaves(out);
                r.collect_leaves(out);
            }
        }
    }

    /// Returns `true` if any leaf of the tuple is `NULL` (Sec. 7 extension).
    pub fn contains_null(&self) -> bool {
        self.leaves().iter().any(|v| v.is_null())
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tuple::Unit => write!(f, "()"),
            Tuple::Leaf(v) => write!(f, "{v}"),
            Tuple::Pair(l, r) => write!(f, "({l}, {r})"),
        }
    }
}

impl From<Value> for Tuple {
    fn from(v: Value) -> Self {
        Tuple::Leaf(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::BaseType;

    fn fig4_schema() -> Schema {
        Schema::node(
            Schema::leaf(BaseType::Str),
            Schema::node(Schema::leaf(BaseType::Int), Schema::leaf(BaseType::Bool)),
        )
    }

    fn fig4_tuple() -> Tuple {
        // t = ("Bob", (52, true)) — Fig. 4.
        Tuple::pair(
            Tuple::string("Bob"),
            Tuple::pair(Tuple::int(52), Tuple::bool(true)),
        )
    }

    #[test]
    fn fig4_conformance() {
        assert!(fig4_tuple().conforms_to(&fig4_schema()));
    }

    #[test]
    fn fig4_path_access() {
        // Left.Right retrieves 52 (Sec. 3.1): denoted .2 then .1 … in our
        // encoding Right then Left of the nested pair.
        let t = fig4_tuple();
        let inner = t.snd().unwrap();
        assert_eq!(inner.fst().unwrap(), &Tuple::int(52));
    }

    #[test]
    fn mismatched_shapes_fail_conformance() {
        let sigma = fig4_schema();
        assert!(!Tuple::int(1).conforms_to(&sigma));
        assert!(!Tuple::pair(Tuple::int(1), Tuple::int(2)).conforms_to(&sigma));
        // Wrong leaf type.
        let t = Tuple::pair(
            Tuple::int(0),
            Tuple::pair(Tuple::int(52), Tuple::bool(true)),
        );
        assert!(!t.conforms_to(&sigma));
    }

    #[test]
    fn flat_matches_flat_schema() {
        let s = Schema::flat([BaseType::Int, BaseType::Int, BaseType::Bool]);
        let t = Tuple::flat([Value::Int(1), Value::Int(2), Value::Bool(false)]);
        assert!(t.conforms_to(&s));
        assert_eq!(t.leaves().len(), 3);
    }

    #[test]
    fn unit_conforms_only_to_empty() {
        assert!(Tuple::Unit.conforms_to(&Schema::Empty));
        assert!(!Tuple::Unit.conforms_to(&Schema::leaf(BaseType::Int)));
    }

    #[test]
    fn null_detection() {
        let t = Tuple::pair(Tuple::Leaf(Value::Null), Tuple::int(1));
        assert!(t.contains_null());
        assert!(!fig4_tuple().contains_null());
    }

    #[test]
    fn null_conforms_to_any_leaf() {
        assert!(Tuple::Leaf(Value::Null).conforms_to(&Schema::leaf(BaseType::Int)));
        assert!(Tuple::Leaf(Value::Null).conforms_to(&Schema::leaf(BaseType::Str)));
    }

    #[test]
    fn display() {
        assert_eq!(fig4_tuple().to_string(), "(\"Bob\", (52, true))");
        assert_eq!(Tuple::Unit.to_string(), "()");
    }

    #[test]
    fn ordering_is_total_for_conforming_tuples() {
        let s = Schema::flat([BaseType::Int, BaseType::Int]);
        let mut ts = s.enumerate_sample_tuples();
        ts.sort();
        ts.dedup();
        assert_eq!(ts.len(), 25);
    }
}
