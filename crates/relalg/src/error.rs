//! Error types for the `relalg` crate.

use crate::schema::Schema;
use std::fmt;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, RelalgError>;

/// Errors raised by relational operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelalgError {
    /// A tuple does not conform to the schema of the relation it was
    /// inserted into or evaluated against.
    SchemaMismatch {
        /// The expected schema.
        expected: Schema,
        /// A description of the offending tuple.
        tuple: String,
    },
    /// Two relations that must share a schema do not.
    IncompatibleSchemas {
        /// Schema of the left operand.
        left: Schema,
        /// Schema of the right operand.
        right: Schema,
    },
    /// An aggregate was applied to a value of the wrong type.
    TypeError(String),
    /// An operation required a finite relation but received one with an
    /// `ω` multiplicity (e.g. `AVG` over an infinite bag).
    InfiniteCardinality(String),
}

impl fmt::Display for RelalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelalgError::SchemaMismatch { expected, tuple } => {
                write!(f, "tuple {tuple} does not conform to schema {expected}")
            }
            RelalgError::IncompatibleSchemas { left, right } => {
                write!(f, "incompatible schemas {left} and {right}")
            }
            RelalgError::TypeError(msg) => write!(f, "type error: {msg}"),
            RelalgError::InfiniteCardinality(msg) => {
                write!(f, "operation requires finite multiplicities: {msg}")
            }
        }
    }
}

impl std::error::Error for RelalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = RelalgError::TypeError("SUM over bool".into());
        assert_eq!(e.to_string(), "type error: SUM over bool");
        let e = RelalgError::IncompatibleSchemas {
            left: Schema::Empty,
            right: Schema::Empty,
        };
        assert!(e.to_string().contains("incompatible schemas"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RelalgError>();
    }
}
