//! Relational operators over K-relations, following Fig. 7 of the paper.
//!
//! Each operator is defined pointwise on multiplicities:
//!
//! | SQL | multiplicity semantics |
//! |---|---|
//! | `FROM R, S` (product) | `⟦R⟧ t.1 × ⟦S⟧ t.2` |
//! | `R UNION ALL S` | `⟦R⟧ t + ⟦S⟧ t` |
//! | `R WHERE b` | `⟦R⟧ t × ⟦b⟧ t` |
//! | `SELECT p R` (projection) | `Σ_{t'} (p t' = t) × ⟦R⟧ t'` |
//! | `R EXCEPT S` | `⟦R⟧ t × (‖⟦S⟧ t‖ → 0)` |
//! | `DISTINCT R` | `‖⟦R⟧ t‖` |

use crate::card::Card;
use crate::error::{RelalgError, Result};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Cross product `R ⋈ S`: the output schema is `node σ_R σ_S` and the
/// multiplicity of `(t₁, t₂)` is the product of the inputs'.
///
/// ```
/// use relalg::{ops, BaseType, Card, Relation, Schema, Tuple};
/// let s = Schema::leaf(BaseType::Int);
/// let r = Relation::from_tuples(s.clone(), [Tuple::int(1), Tuple::int(1)]).unwrap();
/// let q = Relation::from_tuples(s, [Tuple::int(9)]).unwrap();
/// let p = ops::product(&r, &q);
/// assert_eq!(p.multiplicity(&Tuple::pair(Tuple::int(1), Tuple::int(9))), Card::Fin(2));
/// ```
pub fn product(r: &Relation, s: &Relation) -> Relation {
    let mut out = Relation::empty(Schema::node(r.schema().clone(), s.schema().clone()));
    for (t1, c1) in r.iter() {
        for (t2, c2) in s.iter() {
            out.insert_with(Tuple::pair(t1.clone(), t2.clone()), c1 * c2);
        }
    }
    out
}

/// Bag union `R UNION ALL S`: multiplicities add.
///
/// # Errors
///
/// Returns [`RelalgError::IncompatibleSchemas`] when the schemas differ.
pub fn union_all(r: &Relation, s: &Relation) -> Result<Relation> {
    if r.schema() != s.schema() {
        return Err(RelalgError::IncompatibleSchemas {
            left: r.schema().clone(),
            right: s.schema().clone(),
        });
    }
    let mut out = r.clone();
    for (t, c) in s.iter() {
        out.insert_with(t.clone(), c);
    }
    Ok(out)
}

/// Bag difference with *negation* semantics (the paper's `EXCEPT`,
/// Sec. 3.4): a tuple keeps its full multiplicity from `R` iff its
/// multiplicity in `S` is zero.
///
/// Note this is the paper's `⟦R⟧ t × (‖⟦S⟧ t‖ → 0)`, not SQL's per-copy
/// `EXCEPT ALL` subtraction.
///
/// # Errors
///
/// Returns [`RelalgError::IncompatibleSchemas`] when the schemas differ.
pub fn except(r: &Relation, s: &Relation) -> Result<Relation> {
    if r.schema() != s.schema() {
        return Err(RelalgError::IncompatibleSchemas {
            left: r.schema().clone(),
            right: s.schema().clone(),
        });
    }
    let mut out = Relation::empty(r.schema().clone());
    for (t, c) in r.iter() {
        let keep = s.multiplicity(t).squash().not();
        out.insert_with(t.clone(), c * keep);
    }
    Ok(out)
}

/// Duplicate elimination `DISTINCT R`: squashes every multiplicity.
pub fn distinct(r: &Relation) -> Relation {
    r.map_multiplicities(Card::squash)
}

/// Selection `R WHERE b`: multiplies each multiplicity by the predicate's
/// propositional cardinal (`0` or `1`). The predicate is an arbitrary
/// closure so that callers can evaluate HoTTSQL predicates under a
/// context tuple.
pub fn select(r: &Relation, pred: impl Fn(&Tuple) -> Card) -> Relation {
    let mut out = Relation::empty(r.schema().clone());
    for (t, c) in r.iter() {
        out.insert_with(t.clone(), c * pred(t).squash());
    }
    out
}

/// Projection `SELECT p R`: for each output tuple the multiplicity is the
/// (possibly infinite) sum `Σ_{t'} (p t' = t) × ⟦R⟧ t'`. Because the
/// represented support is finite, the sum ranges over the support only.
///
/// # Errors
///
/// Returns [`RelalgError::SchemaMismatch`] when `p` maps some tuple
/// outside `out_schema`.
pub fn project(r: &Relation, out_schema: Schema, p: impl Fn(&Tuple) -> Tuple) -> Result<Relation> {
    let mut out = Relation::empty(out_schema);
    for (t, c) in r.iter() {
        out.try_insert_with(p(t), c)?;
    }
    Ok(out)
}

/// Scales every multiplicity by `k` — the semiring scalar action, useful
/// in tests of distributivity.
pub fn scale(r: &Relation, k: Card) -> Relation {
    r.map_multiplicities(|c| c * k)
}

/// The supported aggregate functions (Sec. 4.2 uses SUM/AVG/COUNT).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Aggregate {
    /// Sum of an integer column (each tuple counted with multiplicity).
    Sum,
    /// Number of rows (with multiplicity).
    Count,
    /// Maximum value.
    Max,
    /// Minimum value.
    Min,
    /// Average (integer division, as the paper's examples only compare).
    Avg,
}

impl Aggregate {
    /// Parses an aggregate name as written in queries (`SUM`, `COUNT`, …).
    pub fn parse(name: &str) -> Option<Aggregate> {
        match name.to_ascii_uppercase().as_str() {
            "SUM" => Some(Aggregate::Sum),
            "COUNT" => Some(Aggregate::Count),
            "MAX" => Some(Aggregate::Max),
            "MIN" => Some(Aggregate::Min),
            "AVG" => Some(Aggregate::Avg),
            _ => None,
        }
    }

    /// The name as written in queries.
    pub fn name(self) -> &'static str {
        match self {
            Aggregate::Sum => "SUM",
            Aggregate::Count => "COUNT",
            Aggregate::Max => "MAX",
            Aggregate::Min => "MIN",
            Aggregate::Avg => "AVG",
        }
    }
}

impl std::fmt::Display for Aggregate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Applies an aggregate to a single-attribute relation (the paper's
/// `agg(q)` expression form takes a query returning `leaf τ`).
///
/// Empty bags yield `SUM = 0`, `COUNT = 0`, and `MAX/MIN/AVG = NULL`
/// (mirroring SQL).
///
/// # Errors
///
/// - [`RelalgError::InfiniteCardinality`] if any multiplicity is `ω`;
/// - [`RelalgError::TypeError`] if the relation is not a bag of scalars or
///   a numeric aggregate meets a non-integer.
pub fn aggregate(agg: Aggregate, r: &Relation) -> Result<Value> {
    let mut count: i64 = 0;
    let mut sum: i64 = 0;
    let mut max: Option<Value> = None;
    let mut min: Option<Value> = None;
    for (t, c) in r.iter() {
        let n = match c {
            Card::Fin(n) => n as i64,
            Card::Omega => {
                return Err(RelalgError::InfiniteCardinality(format!(
                    "{agg} over a bag with ω multiplicities"
                )))
            }
        };
        let v = t
            .value()
            .ok_or_else(|| RelalgError::TypeError(format!("{agg} over non-scalar tuples")))?;
        count += n;
        match agg {
            Aggregate::Sum | Aggregate::Avg => {
                let x = v.as_int().ok_or_else(|| {
                    RelalgError::TypeError(format!("{agg} over non-integer values"))
                })?;
                sum += x * n;
            }
            Aggregate::Max => {
                if max.as_ref().is_none_or(|m| v > m) {
                    max = Some(v.clone());
                }
            }
            Aggregate::Min => {
                if min.as_ref().is_none_or(|m| v < m) {
                    min = Some(v.clone());
                }
            }
            Aggregate::Count => {}
        }
    }
    Ok(match agg {
        Aggregate::Count => Value::Int(count),
        Aggregate::Sum => Value::Int(sum),
        Aggregate::Avg => {
            if count == 0 {
                Value::Null
            } else {
                Value::Int(sum / count)
            }
        }
        Aggregate::Max => max.unwrap_or(Value::Null),
        Aggregate::Min => min.unwrap_or(Value::Null),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::BaseType;

    fn ints(vals: &[i64]) -> Relation {
        Relation::from_tuples(
            Schema::leaf(BaseType::Int),
            vals.iter().map(|&n| Tuple::int(n)),
        )
        .unwrap()
    }

    #[test]
    fn product_multiplies_multiplicities() {
        let r = ints(&[1, 1, 2]);
        let s = ints(&[1, 2, 2]);
        let p = product(&r, &s);
        assert_eq!(
            p.multiplicity(&Tuple::pair(Tuple::int(1), Tuple::int(2))),
            Card::Fin(4)
        );
        assert_eq!(p.total_multiplicity(), Card::Fin(9));
    }

    #[test]
    fn product_with_empty_is_empty() {
        let r = ints(&[1, 2]);
        let e = Relation::empty(Schema::leaf(BaseType::Int));
        assert!(product(&r, &e).is_empty());
    }

    #[test]
    fn union_all_adds() {
        let r = ints(&[1, 1]);
        let s = ints(&[1, 2]);
        let u = union_all(&r, &s).unwrap();
        assert_eq!(u.multiplicity(&Tuple::int(1)), Card::Fin(3));
        assert_eq!(u.multiplicity(&Tuple::int(2)), Card::Fin(1));
    }

    #[test]
    fn union_all_schema_mismatch() {
        let r = ints(&[1]);
        let s = Relation::empty(Schema::leaf(BaseType::Bool));
        assert!(union_all(&r, &s).is_err());
    }

    #[test]
    fn except_is_negation_not_subtraction() {
        // Paper semantics: 3 copies of 1 EXCEPT 1 copy of 1 = nothing,
        // because ‖1‖ → 0 = 0. Not SQL's EXCEPT ALL.
        let r = ints(&[1, 1, 1, 2]);
        let s = ints(&[1]);
        let d = except(&r, &s).unwrap();
        assert_eq!(d.multiplicity(&Tuple::int(1)), Card::ZERO);
        assert_eq!(d.multiplicity(&Tuple::int(2)), Card::Fin(1));
    }

    #[test]
    fn distinct_squashes() {
        let r = ints(&[1, 1, 2]);
        let d = distinct(&r);
        assert_eq!(d.multiplicity(&Tuple::int(1)), Card::ONE);
        assert_eq!(d.multiplicity(&Tuple::int(2)), Card::ONE);
    }

    #[test]
    fn distinct_idempotent() {
        let r = ints(&[3, 3, 3, 4]);
        assert!(distinct(&distinct(&r)).bag_eq(&distinct(&r)));
    }

    #[test]
    fn select_filters() {
        let r = ints(&[1, 2, 3, 3]);
        let s = select(&r, |t| {
            Card::from_bool(t.value().and_then(Value::as_int).unwrap() > 1)
        });
        assert_eq!(s.multiplicity(&Tuple::int(1)), Card::ZERO);
        assert_eq!(s.multiplicity(&Tuple::int(3)), Card::Fin(2));
    }

    #[test]
    fn select_squashes_predicate_cardinality() {
        // Even if a "predicate" returns a large cardinal, selection treats
        // it as a proposition (Sec. 4.1: predicates denote squash types).
        let r = ints(&[5]);
        let s = select(&r, |_| Card::Fin(17));
        assert_eq!(s.multiplicity(&Tuple::int(5)), Card::Fin(1));
    }

    #[test]
    fn project_sums_preimages() {
        // SELECT a FROM R(a,b): Q1 of Sec. 2 — {(1,40),(2,40),(2,50)} ↦ {1,2,2}.
        let schema = Schema::node(Schema::leaf(BaseType::Int), Schema::leaf(BaseType::Int));
        let r = Relation::from_tuples(
            schema,
            [
                Tuple::pair(Tuple::int(1), Tuple::int(40)),
                Tuple::pair(Tuple::int(2), Tuple::int(40)),
                Tuple::pair(Tuple::int(2), Tuple::int(50)),
            ],
        )
        .unwrap();
        let p = project(&r, Schema::leaf(BaseType::Int), |t| {
            t.fst().unwrap().clone()
        })
        .unwrap();
        assert_eq!(p.multiplicity(&Tuple::int(1)), Card::Fin(1));
        assert_eq!(p.multiplicity(&Tuple::int(2)), Card::Fin(2));
    }

    #[test]
    fn q2_distinct_projection() {
        // Q2 of Sec. 2: SELECT DISTINCT a FROM R = {1, 2}.
        let schema = Schema::node(Schema::leaf(BaseType::Int), Schema::leaf(BaseType::Int));
        let r = Relation::from_tuples(
            schema,
            [
                Tuple::pair(Tuple::int(1), Tuple::int(40)),
                Tuple::pair(Tuple::int(2), Tuple::int(40)),
                Tuple::pair(Tuple::int(2), Tuple::int(50)),
            ],
        )
        .unwrap();
        let p = project(&r, Schema::leaf(BaseType::Int), |t| {
            t.fst().unwrap().clone()
        })
        .unwrap();
        let d = distinct(&p);
        assert_eq!(d.support_size(), 2);
        assert_eq!(d.total_multiplicity(), Card::Fin(2));
    }

    #[test]
    fn scale_distributes_over_union() {
        let r = ints(&[1, 2]);
        let s = ints(&[2, 3]);
        let k = Card::Fin(3);
        let lhs = scale(&union_all(&r, &s).unwrap(), k);
        let rhs = union_all(&scale(&r, k), &scale(&s, k)).unwrap();
        assert!(lhs.bag_eq(&rhs));
    }

    #[test]
    fn aggregates() {
        let r = ints(&[1, 2, 2, 5]);
        assert_eq!(aggregate(Aggregate::Sum, &r).unwrap(), Value::Int(10));
        assert_eq!(aggregate(Aggregate::Count, &r).unwrap(), Value::Int(4));
        assert_eq!(aggregate(Aggregate::Max, &r).unwrap(), Value::Int(5));
        assert_eq!(aggregate(Aggregate::Min, &r).unwrap(), Value::Int(1));
        assert_eq!(aggregate(Aggregate::Avg, &r).unwrap(), Value::Int(2));
    }

    #[test]
    fn aggregates_respect_multiplicity() {
        let mut r = Relation::empty(Schema::leaf(BaseType::Int));
        r.insert_with(Tuple::int(4), Card::Fin(3));
        assert_eq!(aggregate(Aggregate::Sum, &r).unwrap(), Value::Int(12));
        assert_eq!(aggregate(Aggregate::Count, &r).unwrap(), Value::Int(3));
    }

    #[test]
    fn aggregates_on_empty() {
        let e = Relation::empty(Schema::leaf(BaseType::Int));
        assert_eq!(aggregate(Aggregate::Sum, &e).unwrap(), Value::Int(0));
        assert_eq!(aggregate(Aggregate::Count, &e).unwrap(), Value::Int(0));
        assert_eq!(aggregate(Aggregate::Max, &e).unwrap(), Value::Null);
        assert_eq!(aggregate(Aggregate::Avg, &e).unwrap(), Value::Null);
    }

    #[test]
    fn aggregate_rejects_omega() {
        let mut r = Relation::empty(Schema::leaf(BaseType::Int));
        r.insert_with(Tuple::int(1), Card::Omega);
        assert!(matches!(
            aggregate(Aggregate::Sum, &r),
            Err(RelalgError::InfiniteCardinality(_))
        ));
    }

    #[test]
    fn aggregate_rejects_non_scalars() {
        let schema = Schema::node(Schema::leaf(BaseType::Int), Schema::leaf(BaseType::Int));
        let r = Relation::from_tuples(schema, [Tuple::pair(Tuple::int(1), Tuple::int(2))]).unwrap();
        assert!(matches!(
            aggregate(Aggregate::Sum, &r),
            Err(RelalgError::TypeError(_))
        ));
    }

    #[test]
    fn aggregate_parse_roundtrip() {
        for agg in [
            Aggregate::Sum,
            Aggregate::Count,
            Aggregate::Max,
            Aggregate::Min,
            Aggregate::Avg,
        ] {
            assert_eq!(Aggregate::parse(agg.name()), Some(agg));
        }
        assert_eq!(Aggregate::parse("median"), None);
    }

    #[test]
    fn product_preserves_omega_times_zero() {
        // ω-multiplicity tuple joined with empty relation disappears.
        let mut r = Relation::empty(Schema::leaf(BaseType::Int));
        r.insert_with(Tuple::int(1), Card::Omega);
        let e = Relation::empty(Schema::leaf(BaseType::Int));
        assert!(product(&r, &e).is_empty());
    }
}
