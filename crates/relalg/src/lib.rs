//! Executable K-relation substrate for the HoTTSQL reproduction.
//!
//! The paper (Sec. 2–3) interprets a SQL relation as a function
//! `Tuple σ → U` from tuples to univalent types, whose *cardinality* is the
//! multiplicity of the tuple. This crate provides the concrete, executable
//! counterpart of that model:
//!
//! - [`BaseType`] / [`Value`] — SQL scalar types and values (Fig. 3).
//! - [`Schema`] — schemas as binary trees of base types (Fig. 3).
//! - [`Tuple`] — tuples as nested pairs mirroring their schema (Fig. 3/4).
//! - [`Card`] — cardinals `ℕ ∪ {ω}`: the paper generalizes K-relations to
//!   infinite multiplicities (Sec. 2, "HoTTSQL Semantics"); `ω` is the
//!   countable infinite cardinal.
//! - [`Relation`] — a finitely *represented* K-relation: a map from tuples
//!   to nonzero cardinals. (Tuples may carry multiplicity `ω`, so the
//!   represented bag can be infinite even though its support is finite.)
//! - [`ops`] — the relational operators of Fig. 7 expressed over
//!   multiplicities: product is `×`, union-all is `+`, distinct is squash,
//!   except is `× (‖·‖ → 0)`, projection is `Σ`.
//! - [`constraints`] — keys and functional dependencies (Sec. 4.2).
//! - [`index`] — index-as-relation (Sec. 4.2, after Tsatalos et al.).
//! - [`generate`] — random schema/instance generators used by the
//!   differential-testing harness.
//! - [`stats`] — table statistics (row counts, per-column distinct
//!   estimates) feeding the certified optimizer's cost model.
//!
//! # Example
//!
//! ```
//! use relalg::{BaseType, Relation, Schema, Tuple};
//!
//! // R(a:int, b:int) with instance {(1,40), (2,40), (2,50)} (Sec. 2, Q1).
//! let schema = Schema::node(Schema::leaf(BaseType::Int), Schema::leaf(BaseType::Int));
//! let mut r = Relation::empty(schema);
//! for (a, b) in [(1, 40), (2, 40), (2, 50)] {
//!     r.insert(Tuple::pair(Tuple::int(a), Tuple::int(b)));
//! }
//! assert_eq!(r.total_multiplicity(), relalg::Card::Fin(3));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod card;
mod error;
mod relation;
mod schema;
mod tuple;
mod value;

pub mod constraints;
pub mod generate;
pub mod index;
pub mod ops;
pub mod provenance;
pub mod stats;

pub use card::Card;
pub use error::{RelalgError, Result};
pub use relation::Relation;
pub use schema::Schema;
pub use tuple::Tuple;
pub use value::{BaseType, Value};
