//! The list-semantics baseline (Sec. 2, "List Semantics").
//!
//! Prior mechanized SQL semantics ([35], [53], [54] in the paper)
//! interpret relations as *lists* and queries as recursive functions over
//! lists; two queries are equivalent when their outputs are equal up to
//! permutation (bag semantics) or up to permutation and duplicate
//! elimination (set semantics). The paper's motivation is that proofs in
//! this style require intricate induction; this crate implements the
//! semantics as the *comparison baseline*:
//!
//! - it is a second, independently-written oracle for differential
//!   testing (its results must agree bag-wise with the K-relation
//!   evaluator [`hottsql::eval`]), and
//! - the `bench` crate measures the cost of the permutation-equivalence
//!   checks it forces, versus the normalized-multiset representation of
//!   [`relalg::Relation`] — the quantitative version of the paper's
//!   "65 lines vs 10 lines" comparison (Sec. 2).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use hottsql::ast::{Expr, Predicate, Proj, Query};
use hottsql::env::QueryEnv;
use hottsql::error::{HottsqlError, Result};
use hottsql::eval::Instance;
use hottsql::ty::{infer_proj, infer_query};
use relalg::ops::Aggregate;
use relalg::{Relation, Schema, Tuple, Value};

/// Evaluates a query to a *list* of tuples (order-sensitive recursive
/// semantics). Table contents are read from `inst` in their normalized
/// relation order expanded to explicit duplicates.
///
/// # Errors
///
/// Same failure modes as [`hottsql::eval::eval_query`], plus
/// [`relalg::RelalgError::InfiniteCardinality`] when a table carries an
/// `ω` multiplicity (lists cannot represent infinite bags — one of the
/// paper's arguments for K-relations, Sec. 7).
pub fn eval_query_list(
    q: &Query,
    env: &QueryEnv,
    inst: &Instance,
    ctx: &Schema,
    g: &Tuple,
) -> Result<Vec<Tuple>> {
    match q {
        Query::Table(name) => {
            infer_query(q, env, ctx)?;
            let rel = inst
                .tables
                .get(name)
                .ok_or_else(|| HottsqlError::Unbound(name.clone()))?;
            Ok(rel.to_list()?)
        }
        Query::Select(p, inner) => {
            let rows = eval_query_list(inner, env, inst, ctx, g)?;
            let sigma_inner = infer_query(inner, env, ctx)?;
            let select_ctx = Schema::node(ctx.clone(), sigma_inner);
            let mut out = Vec::with_capacity(rows.len());
            for t in rows {
                let gt = Tuple::pair(g.clone(), t);
                out.push(eval_proj_list(p, env, inst, &select_ctx, &gt)?);
            }
            Ok(out)
        }
        Query::Product(a, b) => {
            let la = eval_query_list(a, env, inst, ctx, g)?;
            let lb = eval_query_list(b, env, inst, ctx, g)?;
            let mut out = Vec::with_capacity(la.len() * lb.len());
            for x in &la {
                for y in &lb {
                    out.push(Tuple::pair(x.clone(), y.clone()));
                }
            }
            Ok(out)
        }
        Query::Where(inner, b) => {
            let rows = eval_query_list(inner, env, inst, ctx, g)?;
            let sigma = infer_query(inner, env, ctx)?;
            let where_ctx = Schema::node(ctx.clone(), sigma);
            let mut out = Vec::new();
            for t in rows {
                let gt = Tuple::pair(g.clone(), t.clone());
                if eval_pred_list(b, env, inst, &where_ctx, &gt)? {
                    out.push(t);
                }
            }
            Ok(out)
        }
        Query::UnionAll(a, b) => {
            let mut out = eval_query_list(a, env, inst, ctx, g)?;
            out.extend(eval_query_list(b, env, inst, ctx, g)?);
            Ok(out)
        }
        Query::Except(a, b) => {
            let la = eval_query_list(a, env, inst, ctx, g)?;
            let lb = eval_query_list(b, env, inst, ctx, g)?;
            Ok(la.into_iter().filter(|t| !lb.contains(t)).collect())
        }
        Query::Distinct(inner) => {
            let rows = eval_query_list(inner, env, inst, ctx, g)?;
            let mut out: Vec<Tuple> = Vec::new();
            for t in rows {
                if !out.contains(&t) {
                    out.push(t);
                }
            }
            Ok(out)
        }
    }
}

fn eval_pred_list(
    b: &Predicate,
    env: &QueryEnv,
    inst: &Instance,
    ctx: &Schema,
    gamma: &Tuple,
) -> Result<bool> {
    match b {
        Predicate::Eq(e1, e2) => Ok(eval_expr_list(e1, env, inst, ctx, gamma)?
            == eval_expr_list(e2, env, inst, ctx, gamma)?),
        Predicate::Not(x) => Ok(!eval_pred_list(x, env, inst, ctx, gamma)?),
        Predicate::And(x, y) => {
            Ok(eval_pred_list(x, env, inst, ctx, gamma)?
                && eval_pred_list(y, env, inst, ctx, gamma)?)
        }
        Predicate::Or(x, y) => {
            Ok(eval_pred_list(x, env, inst, ctx, gamma)?
                || eval_pred_list(y, env, inst, ctx, gamma)?)
        }
        Predicate::True => Ok(true),
        Predicate::False => Ok(false),
        Predicate::CastPred(p, inner) => {
            let target = infer_proj(p, env, ctx)?;
            let cast = eval_proj_list(p, env, inst, ctx, gamma)?;
            eval_pred_list(inner, env, inst, &target, &cast)
        }
        Predicate::Exists(q) => Ok(!eval_query_list(q, env, inst, ctx, gamma)?.is_empty()),
        Predicate::Var(name) => {
            hottsql::ty::check_pred(b, env, ctx)?;
            let f = inst
                .preds
                .get(name)
                .ok_or_else(|| HottsqlError::Unbound(name.clone()))?;
            Ok(f(gamma))
        }
        Predicate::Uninterp(name, args) => {
            let f = inst
                .upreds
                .get(name)
                .ok_or_else(|| HottsqlError::Unbound(name.clone()))?;
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_expr_list(a, env, inst, ctx, gamma)?);
            }
            Ok(f(&vals))
        }
    }
}

fn eval_expr_list(
    e: &Expr,
    env: &QueryEnv,
    inst: &Instance,
    ctx: &Schema,
    gamma: &Tuple,
) -> Result<Value> {
    match e {
        Expr::P2E(p) => match eval_proj_list(p, env, inst, ctx, gamma)? {
            Tuple::Leaf(v) => Ok(v),
            other => Err(HottsqlError::Eval(format!("non-scalar projection {other}"))),
        },
        Expr::Fn(name, args) => {
            let f = inst
                .fns
                .get(name)
                .ok_or_else(|| HottsqlError::Unbound(name.clone()))?;
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_expr_list(a, env, inst, ctx, gamma)?);
            }
            Ok(f(&vals))
        }
        Expr::Agg(name, q) => {
            let agg = Aggregate::parse(name)
                .ok_or_else(|| HottsqlError::Unbound(format!("aggregate {name}")))?;
            let rows = eval_query_list(q, env, inst, ctx, gamma)?;
            let sigma = infer_query(q, env, ctx)?;
            let rel = Relation::from_tuples(sigma, rows)?;
            Ok(relalg::ops::aggregate(agg, &rel)?)
        }
        Expr::CastExpr(p, inner) => {
            let target = infer_proj(p, env, ctx)?;
            let cast = eval_proj_list(p, env, inst, ctx, gamma)?;
            eval_expr_list(inner, env, inst, &target, &cast)
        }
        Expr::Const(v) => Ok(v.clone()),
        Expr::Var(name) => {
            hottsql::ty::infer_expr(e, env, ctx)?;
            let f = inst
                .exprs
                .get(name)
                .ok_or_else(|| HottsqlError::Unbound(name.clone()))?;
            Ok(f(gamma))
        }
    }
}

fn eval_proj_list(
    p: &Proj,
    env: &QueryEnv,
    inst: &Instance,
    ctx: &Schema,
    gamma: &Tuple,
) -> Result<Tuple> {
    match p {
        Proj::Star => Ok(gamma.clone()),
        Proj::Left => gamma
            .fst()
            .cloned()
            .ok_or_else(|| HottsqlError::Eval("Left on non-pair".into())),
        Proj::Right => gamma
            .snd()
            .cloned()
            .ok_or_else(|| HottsqlError::Eval("Right on non-pair".into())),
        Proj::Empty => Ok(Tuple::Unit),
        Proj::Dot(p1, p2) => {
            let mid_schema = infer_proj(p1, env, ctx)?;
            let mid = eval_proj_list(p1, env, inst, ctx, gamma)?;
            eval_proj_list(p2, env, inst, &mid_schema, &mid)
        }
        Proj::Pair(p1, p2) => Ok(Tuple::pair(
            eval_proj_list(p1, env, inst, ctx, gamma)?,
            eval_proj_list(p2, env, inst, ctx, gamma)?,
        )),
        Proj::E2P(e) => Ok(Tuple::Leaf(eval_expr_list(e, env, inst, ctx, gamma)?)),
        Proj::Var(name) => {
            infer_proj(p, env, ctx)?;
            let f = inst
                .projs
                .get(name)
                .ok_or_else(|| HottsqlError::Unbound(name.clone()))?;
            Ok(f(gamma))
        }
    }
}

/// Equality of lists up to permutation — the bag-semantics equivalence
/// check forced by list representations (requires a full sort, the cost
/// the paper's semantics avoids by normalizing into multisets).
pub fn bag_equal_lists(a: &[Tuple], b: &[Tuple]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort();
    sb.sort();
    sa == sb
}

/// Equality of lists up to permutation and duplicate elimination — the
/// set-semantics equivalence check.
pub fn set_equal_lists(a: &[Tuple], b: &[Tuple]) -> bool {
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort();
    sa.dedup();
    sb.sort();
    sb.dedup();
    sa == sb
}

/// Converts a list back to a K-relation (for cross-checking the two
/// semantics).
///
/// # Errors
///
/// Propagates schema-conformance failures.
pub fn list_to_relation(schema: Schema, rows: Vec<Tuple>) -> Result<Relation> {
    Ok(Relation::from_tuples(schema, rows)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hottsql::ast::{Predicate, Proj, Query};
    use relalg::BaseType;

    fn int() -> Schema {
        Schema::leaf(BaseType::Int)
    }

    fn setup() -> (QueryEnv, Instance) {
        let sigma = Schema::node(int(), int());
        let r = Relation::from_tuples(
            sigma.clone(),
            [
                Tuple::pair(Tuple::int(1), Tuple::int(40)),
                Tuple::pair(Tuple::int(2), Tuple::int(40)),
                Tuple::pair(Tuple::int(2), Tuple::int(50)),
            ],
        )
        .unwrap();
        (
            QueryEnv::new().with_table("R", sigma),
            Instance::new().with_table("R", r),
        )
    }

    #[test]
    fn q1_list_projection() {
        let (env, inst) = setup();
        let q = Query::select(Proj::path([Proj::Right, Proj::Left]), Query::table("R"));
        let rows = eval_query_list(&q, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
        assert!(bag_equal_lists(
            &rows,
            &[Tuple::int(1), Tuple::int(2), Tuple::int(2)]
        ));
    }

    #[test]
    fn distinct_first_occurrence() {
        let (env, inst) = setup();
        let q = Query::distinct(Query::select(
            Proj::path([Proj::Right, Proj::Left]),
            Query::table("R"),
        ));
        let rows = eval_query_list(&q, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(set_equal_lists(&rows, &[Tuple::int(2), Tuple::int(1)]));
    }

    #[test]
    fn agrees_with_k_relation_semantics() {
        // The two evaluators must produce bag-equal outputs.
        let (env, inst) = setup();
        let x_a = Proj::path([Proj::Right, Proj::Left, Proj::Left]);
        let y_a = Proj::path([Proj::Right, Proj::Right, Proj::Left]);
        let queries = [
            Query::select(Proj::path([Proj::Right, Proj::Left]), Query::table("R")),
            Query::union_all(Query::table("R"), Query::table("R")),
            Query::except(Query::table("R"), Query::table("R")),
            Query::distinct(Query::select(
                x_a.clone(),
                Query::where_(
                    Query::product(Query::table("R"), Query::table("R")),
                    Predicate::eq(hottsql::ast::Expr::p2e(x_a), hottsql::ast::Expr::p2e(y_a)),
                ),
            )),
        ];
        for q in &queries {
            let rows = eval_query_list(q, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
            let rel =
                hottsql::eval::eval_query(q, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
            let as_rel = list_to_relation(rel.schema().clone(), rows).unwrap();
            assert!(as_rel.bag_eq(&rel), "disagreement on {q}");
        }
    }

    #[test]
    fn except_follows_paper_negation_semantics() {
        let (env, _) = setup();
        let sigma = Schema::node(int(), int());
        let many = Relation::from_tuples(
            sigma.clone(),
            [
                Tuple::pair(Tuple::int(1), Tuple::int(1)),
                Tuple::pair(Tuple::int(1), Tuple::int(1)),
                Tuple::pair(Tuple::int(2), Tuple::int(2)),
            ],
        )
        .unwrap();
        let one =
            Relation::from_tuples(sigma, [Tuple::pair(Tuple::int(1), Tuple::int(1))]).unwrap();
        let env = env.with_table("A", Schema::node(int(), int()));
        let env = env.with_table("B", Schema::node(int(), int()));
        let inst = Instance::new().with_table("A", many).with_table("B", one);
        let q = Query::except(Query::table("A"), Query::table("B"));
        let rows = eval_query_list(&q, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
        // Both copies of (1,1) are removed — negation semantics, not
        // per-copy subtraction.
        assert_eq!(rows, vec![Tuple::pair(Tuple::int(2), Tuple::int(2))]);
    }

    #[test]
    fn omega_tables_are_rejected() {
        let (env, _) = setup();
        let mut r = Relation::empty(Schema::node(int(), int()));
        r.insert_with(
            Tuple::pair(Tuple::int(1), Tuple::int(1)),
            relalg::Card::Omega,
        );
        let inst = Instance::new().with_table("R", r);
        let q = Query::table("R");
        assert!(eval_query_list(&q, &env, &inst, &Schema::Empty, &Tuple::Unit).is_err());
    }

    #[test]
    fn permutation_equality_checks() {
        let a = [Tuple::int(1), Tuple::int(2), Tuple::int(2)];
        let b = [Tuple::int(2), Tuple::int(1), Tuple::int(2)];
        let c = [Tuple::int(1), Tuple::int(2)];
        assert!(bag_equal_lists(&a, &b));
        assert!(!bag_equal_lists(&a, &c));
        assert!(set_equal_lists(&a, &c));
        assert!(!set_equal_lists(&a, &[Tuple::int(3)]));
    }
}
