//! The certified optimization pipeline.
//!
//! [`optimize_query`] takes a HoTTSQL query, denotes it (Fig. 7),
//! saturates an e-graph under the lemma-compiled rewrites, extracts the
//! cheapest equivalent denotation under the cost model, reads it back
//! into a plan, and — crucially — *certifies* the plan: the input and
//! output denotations are proved equal by the ordinary prover stack
//! (tactics, then equality saturation), and the resulting
//! [`ProofTrace`] ships inside the report. A plan that cannot be
//! certified is never returned: the pipeline falls back to the next
//! cheapest candidate, ultimately the input itself, whose reflexive
//! certificate always exists. `cost_after ≤ cost_before` therefore
//! holds by construction, with both costs measured the same way (on the
//! query denotations, not on intermediate forms).
//!
//! Candidate plans come from two routes:
//!
//! - **e-graph extraction** — normalize, seed, saturate under budget,
//!   extract the best class representative under [`StatsCost`], read
//!   back via [`hottsql::readback`];
//! - **core minimization** — queries in the conjunctive fragment are
//!   minimized (Chandra–Merlin cores) and rendered back via
//!   [`cq::translate::to_query`], the Cosette-lineage redundant-join
//!   elimination.

use crate::cost::{Cost, StatsCost};
use crate::session::PlanSession;
use egraph::extract::cost_uexpr;
use egraph::solve::{Budget, Outcome, Solver, Stats};
use egraph::MinedRule;
use hottsql::ast::Query;
use hottsql::denote::{denote_closed_query, denote_query};
use hottsql::env::QueryEnv;
use relalg::stats::Statistics;
use relalg::Schema;
use std::fmt;
use std::sync::Arc;
use uninomial::normalize::{normalize, normalize_with_cache, NormCache, Trace};
use uninomial::prove::{prove_eq_cached, prove_eq_with_axioms, Method, ProofTrace};
use uninomial::syntax::{Term, UExpr, VarGen};

/// Optimization options.
#[derive(Clone, Copy, Debug, Default)]
pub struct OptimizeOptions {
    /// Saturation budget for the plan search (and for the certificate's
    /// saturation fallback).
    pub budget: Budget,
}

/// Which route produced the chosen plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// Cost-based extraction from the saturated e-graph.
    EGraph,
    /// Conjunctive-query core minimization.
    CqMinimize,
    /// No certified cheaper plan was found; the input is returned.
    Unchanged,
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Route::EGraph => write!(f, "e-graph extraction"),
            Route::CqMinimize => write!(f, "CQ core minimization"),
            Route::Unchanged => write!(f, "unchanged"),
        }
    }
}

/// The machine-checkable equivalence certificate shipped with a plan:
/// an ordinary [`ProofTrace`] over the trusted lemma catalog, exactly
/// like the proof-checker's traces.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// Which prover closed the equivalence.
    pub method: Method,
    /// The lemma-application trace.
    pub trace: ProofTrace,
}

impl Certificate {
    /// Replays the certificate: re-derives the input ≡ output proof
    /// through the same (deterministic) pipeline and checks that it
    /// reproduces this trace step for step. `false` means the
    /// certificate does not match what the checker derives — a corrupt
    /// or forged report.
    pub fn replay(&self, input: &Query, output: &Query, env: &QueryEnv, budget: Budget) -> bool {
        match certify(input, output, env, budget, None, None) {
            Some(fresh) => fresh.method == self.method && fresh.trace.steps() == self.trace.steps(),
            None => false,
        }
    }
}

/// One measured plan candidate — a line of the `--explain` narrative.
#[derive(Clone, Debug, PartialEq)]
pub struct CandidateInfo {
    /// Which route produced it.
    pub route: String,
    /// Its measured cost (same cost model as the input).
    pub cost: f64,
    /// Whether this is the candidate that certified and shipped.
    pub chosen: bool,
}

/// The result of optimizing one query.
#[derive(Clone, Debug)]
pub struct OptimizeReport {
    /// The query as given.
    pub input: Query,
    /// The chosen (certified) plan.
    pub output: Query,
    /// Estimated work of the input plan.
    pub cost_before: f64,
    /// Estimated work of the output plan (`≤ cost_before` by
    /// construction).
    pub cost_after: f64,
    /// Which route produced the plan.
    pub route: Route,
    /// Whether the output differs from the input.
    pub improved: bool,
    /// The equivalence certificate (present even when unchanged — the
    /// reflexive proof).
    pub certificate: Certificate,
    /// How the plan-search saturation ended.
    pub sat_outcome: Outcome,
    /// Plan-search saturation statistics.
    pub sat_stats: Stats,
    /// Every candidate measured (cheapest first, input included), with
    /// the shipped one flagged — the route narrative of `--explain`.
    /// Deterministic, so memoized reports replay it byte-identically.
    pub candidates: Vec<CandidateInfo>,
}

/// Failure to optimize: the query does not denote (typing error).
#[derive(Clone, Debug)]
pub struct OptimizeError(pub String);

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot optimize: {}", self.0)
    }
}

impl std::error::Error for OptimizeError {}

/// The normalization/session context an [`optimize`] call runs in.
///
/// Both fields are optional, so the one entry point covers the whole
/// old variant family: `PlanCtx::default()` is the fresh path, a cache
/// alone is the old `_cached` path, and cache + session is the old
/// `_session` path. Borrowed (not owned) so a batch worker can thread
/// its long-lived cache and session through many calls.
#[derive(Debug, Default)]
pub struct PlanCtx<'a> {
    /// Memoized normalization. Reports are identical with or without
    /// it (the cache is trace-exact).
    pub cache: Option<&'a mut NormCache>,
    /// Persistent per-worker session: plan memo, certificate memo, and
    /// the shared multi-seed saturation graph.
    pub session: Option<&'a mut PlanSession>,
    /// Mined rewrite rules for the plan search (`--mined-rules`). The
    /// rules only widen the e-graph's search space; every candidate they
    /// surface is still certified by the ordinary trusted prover stack,
    /// so an unsound catalog can waste budget but never ship a wrong
    /// plan. `None` (the default) leaves the search bit-identical to a
    /// build without mining.
    pub mined: Option<&'a Arc<Vec<MinedRule>>>,
}

impl<'a> PlanCtx<'a> {
    /// A context with memoized normalization only.
    pub fn cached(cache: &'a mut NormCache) -> PlanCtx<'a> {
        PlanCtx {
            cache: Some(cache),
            session: None,
            mined: None,
        }
    }

    /// A full session context: memoized normalization plus the
    /// persistent per-worker [`PlanSession`].
    pub fn session(cache: &'a mut NormCache, session: &'a mut PlanSession) -> PlanCtx<'a> {
        PlanCtx {
            cache: Some(cache),
            session: Some(session),
            mined: None,
        }
    }

    /// This context with a mined-rule catalog for the plan search.
    pub fn with_mined(self, mined: Option<&'a Arc<Vec<MinedRule>>>) -> PlanCtx<'a> {
        PlanCtx { mined, ..self }
    }
}

/// Optimizes a closed query under the given statistics — the single
/// entry point for fresh, cached, and session-backed optimization.
///
/// With a session in the context, repeated queries are answered from
/// the plan memo, candidate certifications from the certificate memo
/// (both byte-identical by determinism of the pipeline), and the
/// query's input denotation, CQ-core route, and candidates all seed the
/// session's shared multi-seed saturation graph for cross-seed
/// discovery. Memoized reports are only valid under the exact
/// configuration they were computed with; rebinding a session under a
/// different one clears its memos rather than replaying stale costs.
///
/// # Errors
///
/// Returns [`OptimizeError`] when the query fails to type or denote.
pub fn optimize(
    q: &Query,
    env: &QueryEnv,
    stats: &Statistics,
    opts: OptimizeOptions,
    ctx: PlanCtx<'_>,
) -> Result<OptimizeReport, OptimizeError> {
    let _span = telemetry::span("optimizer.query");
    let PlanCtx {
        cache,
        mut session,
        mined,
    } = ctx;
    let mined = mined.filter(|m| !m.is_empty());
    if let Some(session) = session.as_deref_mut() {
        // Mined rules change the reachable plan space, so memos computed
        // with a different catalog (or none) must not replay; the
        // fingerprint therefore names the catalog. With mining off, the
        // fingerprint is byte-identical to a build without mining.
        let mined_fp = match mined {
            Some(m) => {
                let labels: Vec<&str> = m.iter().map(|r| r.name.as_str()).collect();
                format!("|mined:[{}]", labels.join(","))
            }
            None => String::new(),
        };
        session.bind_config(format!("{env:?}|{stats:?}|{opts:?}{mined_fp}"));
        if let Some(report) = session.lookup_plan(q) {
            telemetry::count("memo.plan.hit", 1);
            return Ok(report);
        }
    }
    telemetry::count("memo.plan.miss", 1);
    let report = optimize_query_impl(q, env, stats, opts, cache, session.as_deref_mut(), mined)?;
    if let Some(session) = session {
        session.record_plan(q, &report);
    }
    Ok(report)
}

/// Optimizes a closed query under the given statistics.
///
/// # Errors
///
/// Returns [`OptimizeError`] when the query fails to type or denote.
#[deprecated(note = "use `optimize` with `PlanCtx::default()`")]
pub fn optimize_query(
    q: &Query,
    env: &QueryEnv,
    stats: &Statistics,
    opts: OptimizeOptions,
) -> Result<OptimizeReport, OptimizeError> {
    optimize(q, env, stats, opts, PlanCtx::default())
}

/// [`optimize`] with memoized normalization through a reusable
/// [`NormCache`].
///
/// # Errors
///
/// Returns [`OptimizeError`] when the query fails to type or denote.
#[deprecated(note = "use `optimize` with `PlanCtx::cached(..)`")]
pub fn optimize_query_cached(
    q: &Query,
    env: &QueryEnv,
    stats: &Statistics,
    opts: OptimizeOptions,
    cache: &mut NormCache,
) -> Result<OptimizeReport, OptimizeError> {
    optimize(q, env, stats, opts, PlanCtx::cached(cache))
}

/// [`optimize`] through a persistent per-worker [`PlanSession`].
///
/// # Errors
///
/// Returns [`OptimizeError`] when the query fails to type or denote.
#[deprecated(note = "use `optimize` with `PlanCtx::session(..)`")]
pub fn optimize_query_session(
    q: &Query,
    env: &QueryEnv,
    stats: &Statistics,
    opts: OptimizeOptions,
    cache: &mut NormCache,
    session: &mut PlanSession,
) -> Result<OptimizeReport, OptimizeError> {
    optimize(q, env, stats, opts, PlanCtx::session(cache, session))
}

fn optimize_query_impl(
    q: &Query,
    env: &QueryEnv,
    stats: &Statistics,
    opts: OptimizeOptions,
    mut cache: Option<&mut NormCache>,
    mut session: Option<&mut PlanSession>,
    mined: Option<&Arc<Vec<MinedRule>>>,
) -> Result<OptimizeReport, OptimizeError> {
    let model = StatsCost::new(stats);
    let input_schema = hottsql::ty::infer_query(q, env, &Schema::Empty)
        .map_err(|e| OptimizeError(e.to_string()))?;
    let mut gen = VarGen::new();
    let denote_span = telemetry::span("optimizer.denote");
    let (t, el) =
        denote_closed_query(q, env, &mut gen).map_err(|e| OptimizeError(e.to_string()))?;
    let cost_before = cost_uexpr(&el.beta_reduce_terms(), &model);
    drop(denote_span);

    // Plan search: normalize, seed, saturate, extract cheapest.
    let mut scratch = Trace::new();
    let nf = match cache.as_deref_mut() {
        Some(cache) => normalize_with_cache(&el, &mut gen, &mut scratch, cache),
        None => normalize(&el, &mut gen, &mut scratch),
    };
    let mut solver = Solver::new(opts.budget);
    if let Some(m) = mined {
        solver.set_mined_rules(Arc::clone(m));
    }
    let seed = nf.reify();
    let root = solver.seed_expr(&seed);
    let (sat_outcome, sat_stats) = {
        let _s = telemetry::span("optimizer.search");
        solver.saturate()
    };
    let mut candidates: Vec<(Query, Route)> = Vec::new();
    if let Some((_, best)) = solver.extract_best(root, &model) {
        let _s = telemetry::span("optimizer.readback");
        if let Some(q2) = readback(&best, &t, env, &mut gen) {
            candidates.push((q2, Route::EGraph));
        }
    }
    // Conjunctive-query core minimization.
    if let Some(cq0) = cq::translate::from_query(q, env) {
        let core = cq::minimize::minimize(&cq0);
        if core.size() < cq0.size() {
            if let Some(q2) = cq::translate::to_query(&core, env) {
                candidates.push((q2, Route::CqMinimize));
            }
        }
    }
    // Multi-seed discovery (session mode): the input, its CQ-core
    // route, and every candidate seed the session's shared graph;
    // saturation is lazy (it resumes when discovery is queried via
    // `Session::discovered`). Purely a side-channel — the report below
    // never reads the shared graph, so session-mode reports stay
    // byte-identical to fresh mode.
    if let Some(session) = session.as_deref_mut() {
        let n = session.next_query_ordinal();
        // The input's normal form is already in hand — seeding it is
        // pure hash-consing. Candidates cost one (memoized) normalize
        // each; their denotations are needed below by `measure` anyway.
        session.sat.add_root(format!("q{n}/input"), &seed);
        for (j, (cand, route)) in candidates.iter().enumerate() {
            let mut cgen = VarGen::new();
            let Ok((_, ce)) = denote_closed_query(cand, env, &mut cgen) else {
                continue;
            };
            let mut scratch = Trace::new();
            let cnf = match cache.as_deref_mut() {
                Some(cache) => normalize_with_cache(&ce, &mut cgen, &mut scratch, cache),
                None => normalize(&ce, &mut cgen, &mut scratch),
            };
            let tag = match route {
                Route::CqMinimize => format!("q{n}/cq-core"),
                _ => format!("q{n}/cand{j}"),
            };
            session.sat.add_root(tag, &cnf.reify());
        }
    }
    // Measure every candidate the same way the input was measured,
    // discarding plans that fail to type at the input schema. The input
    // goes FIRST: the sort is stable, so an equal-cost rewritten plan
    // never displaces it — no plan churn without a strict cost win.
    let mut measured: Vec<(Cost, Query, Route)> = vec![(cost_before, q.clone(), Route::Unchanged)];
    for (cand, route) in candidates {
        if hottsql::ty::infer_query(&cand, env, &Schema::Empty).ok() != Some(input_schema.clone()) {
            continue;
        }
        if let Some(cost) = measure(&cand, env, &model) {
            measured.push((cost, cand, route));
        }
    }
    measured.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    let considered: Vec<CandidateInfo> = measured
        .iter()
        .map(|(cost, _, route)| CandidateInfo {
            route: route.to_string(),
            cost: cost.work,
            chosen: false,
        })
        .collect();

    // Ship the cheapest candidate that certifies; the input always
    // does (reflexive proof), so the loop cannot fall through.
    for (k, (cost, cand, route)) in measured.into_iter().enumerate() {
        let Some(certificate) = certify(
            q,
            &cand,
            env,
            opts.budget,
            cache.as_deref_mut(),
            session.as_deref_mut(),
        ) else {
            continue;
        };
        let route = if cand == *q { Route::Unchanged } else { route };
        let mut candidates = considered;
        candidates[k].chosen = true;
        // Holds by construction (the input sorts into the list and the
        // sort is stable); reported unclamped so the downstream gates
        // can actually catch a regression here.
        debug_assert!(cost.work <= cost_before.work);
        return Ok(OptimizeReport {
            improved: route != Route::Unchanged,
            input: q.clone(),
            output: cand,
            cost_before: cost_before.work,
            cost_after: cost.work,
            route,
            certificate,
            sat_outcome,
            sat_stats,
            candidates,
        });
    }
    Err(OptimizeError(
        "reflexive certificate unexpectedly failed".into(),
    ))
}

/// Extraction → normal form → query syntax. Re-normalizing the
/// extracted expression puts it into the shape the readback fragment
/// covers (and is itself a trusted, lemma-audited step).
fn readback(best: &UExpr, t: &uninomial::Var, env: &QueryEnv, gen: &mut VarGen) -> Option<Query> {
    gen.reserve_above(best.max_var_id());
    let mut scratch = Trace::new();
    let nf = normalize(best, gen, &mut scratch);
    hottsql::readback::query_of_spnf(&nf, t, env)
}

/// Costs a candidate plan exactly the way the input was costed: on its
/// β-reduced denotation.
fn measure(q: &Query, env: &QueryEnv, model: &StatsCost) -> Option<Cost> {
    let mut gen = VarGen::new();
    let (_, e) = denote_closed_query(q, env, &mut gen).ok()?;
    Some(cost_uexpr(&e.beta_reduce_terms(), model))
}

/// Proves `input ≡ output` with the ordinary prover stack and packages
/// the trace as a [`Certificate`]. Deterministic: the same pair always
/// yields the same trace, which is what makes certificates replayable —
/// and what makes the session's certificate memo byte-exact.
fn certify(
    input: &Query,
    output: &Query,
    env: &QueryEnv,
    budget: Budget,
    cache: Option<&mut NormCache>,
    mut session: Option<&mut PlanSession>,
) -> Option<Certificate> {
    let _span = telemetry::span("optimizer.certify");
    if let Some(session) = session.as_deref_mut() {
        if let Some(hit) = session.lookup_cert(input, output) {
            telemetry::count("memo.cert.hit", 1);
            return hit;
        }
    }
    telemetry::count("memo.cert.miss", 1);
    let mut gen = VarGen::new();
    let (t, el) = denote_closed_query(input, env, &mut gen).ok()?;
    let er = denote_query(
        output,
        env,
        &Schema::Empty,
        &Term::Unit,
        &Term::var(&t),
        &mut gen,
    )
    .ok()?;
    let package = |proof: &uninomial::prove::Proof| Certificate {
        method: proof.method(),
        trace: proof.trace().clone(),
    };
    let cert = match cache {
        Some(cache) => match prove_eq_cached(&el, &er, &[], &mut gen, cache) {
            Ok(proof) => Some(package(&proof)),
            Err(_) => match session.as_deref_mut() {
                Some(session) => egraph::prove_eq_saturate_session(
                    &el,
                    &er,
                    &[],
                    &mut gen,
                    cache,
                    &mut session.sat,
                )
                .ok()
                .map(|proof| package(&proof)),
                None => egraph::prove_eq_saturate_cached(&el, &er, &[], &mut gen, cache, budget)
                    .ok()
                    .map(|proof| package(&proof)),
            },
        },
        None => match prove_eq_with_axioms(&el, &er, &[], &mut gen) {
            Ok(proof) => Some(package(&proof)),
            Err(_) => egraph::prove_eq_saturate(&el, &er, &[], &mut gen, budget)
                .ok()
                .map(|proof| package(&proof)),
        },
    };
    if let Some(session) = session {
        session.record_cert(input, output, cert.clone());
    }
    cert
}
