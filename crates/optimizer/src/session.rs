//! Persistent per-worker optimization sessions.
//!
//! A [`PlanSession`] is the optimizer's face of [`egraph::Session`]:
//! one per batch worker, shared across every query the worker
//! optimizes. It layers two memo tables over the shared multi-seed
//! saturation session:
//!
//! - **plan memo** — query → finished [`OptimizeReport`]. The
//!   optimization pipeline is deterministic, so a repeated query (the
//!   common case in production traffic) returns the byte-identical
//!   report without re-running search, readback, or certification;
//! - **certificate memo** — `(input, output)` query pair →
//!   [`Certificate`] (or the recorded failure to certify). Candidate
//!   plans recur across related queries, and the reflexive certificate
//!   of an already-seen query is free.
//!
//! The embedded saturation session is *multi-seed*: the input query's
//! normalized denotation, its CQ-core route, and the other candidates
//! all seed the same shared graph (tagged `q{n}/input`, `q{n}/cq-core`,
//! `q{n}/cand{j}`), so resumed saturation can merge classes across
//! queries — cross-seed equalities no single-query search would pose.
//! Discovery is a side-channel: reports stay byte-identical to fresh
//! mode, and [`egraph::Session::discovered`] exposes what the batch
//! graph found.

use crate::optimize::{Certificate, OptimizeReport};
use egraph::session::Session;
use egraph::solve::Budget;
use hottsql::ast::Query;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A persistent per-worker optimization session.
#[derive(Debug)]
pub struct PlanSession {
    /// The underlying multi-seed saturation session.
    pub sat: Session,
    plans: HashMap<Query, OptimizeReport>,
    /// Certificate memo, nested so lookups need no key allocation:
    /// input → output → recorded outcome (`None` = tried and failed).
    certs: HashMap<Query, HashMap<Query, Option<Certificate>>>,
    /// Fingerprint of the configuration the memos were computed under
    /// (environment, statistics, options). A memo is only valid for the
    /// exact configuration; a rebind with a different fingerprint clears
    /// the memos instead of replaying stale reports.
    config: Option<String>,
    plan_hits: usize,
    cert_hits: usize,
    queries: usize,
    publish: Option<Arc<AtomicUsize>>,
}

impl PlanSession {
    /// A session sized by the per-goal saturation budget.
    pub fn new(budget: Budget) -> PlanSession {
        PlanSession {
            sat: Session::new(budget),
            plans: HashMap::new(),
            certs: HashMap::new(),
            config: None,
            plan_hits: 0,
            cert_hits: 0,
            queries: 0,
            publish: None,
        }
    }

    /// Mirrors the live plan-hit count into `sink` on every subsequent
    /// memo hit (and once now): an observer sees a long batch's memo
    /// progress without waiting for it to finish.
    pub fn publish_hits_to(&mut self, sink: Arc<AtomicUsize>) {
        sink.store(self.plan_hits, Ordering::Relaxed);
        self.publish = Some(sink);
    }

    /// Binds the session to an optimization configuration. Reports and
    /// certificates depend on the environment, statistics, and options
    /// — not just the query — so reusing a session under a *different*
    /// configuration invalidates the memos (the multi-seed graph is
    /// kept; its equalities are configuration-independent).
    pub fn bind_config(&mut self, fingerprint: String) {
        if self.config.as_deref() != Some(fingerprint.as_str()) {
            if self.config.is_some() {
                self.plans.clear();
                self.certs.clear();
            }
            self.config = Some(fingerprint);
        }
    }

    /// The recorded report for a query, if it was optimized before.
    pub fn lookup_plan(&mut self, q: &Query) -> Option<OptimizeReport> {
        let hit = self.plans.get(q).cloned();
        if hit.is_some() {
            self.plan_hits += 1;
            if let Some(sink) = &self.publish {
                sink.store(self.plan_hits, Ordering::Relaxed);
            }
        }
        hit
    }

    /// Records a finished report.
    pub fn record_plan(&mut self, q: &Query, report: &OptimizeReport) {
        self.plans.insert(q.clone(), report.clone());
    }

    /// The recorded certification outcome for an `(input, output)`
    /// pair, if this pair was certified before. The outer `Option` is
    /// the memo lookup; the inner one records "tried and failed".
    #[allow(clippy::option_option)]
    pub fn lookup_cert(&mut self, input: &Query, output: &Query) -> Option<Option<Certificate>> {
        let hit = self.certs.get(input).and_then(|m| m.get(output)).cloned();
        if hit.is_some() {
            self.cert_hits += 1;
        }
        hit
    }

    /// Records a certification outcome (including failures).
    pub fn record_cert(&mut self, input: &Query, output: &Query, cert: Option<Certificate>) {
        self.certs
            .entry(input.clone())
            .or_default()
            .insert(output.clone(), cert);
    }

    /// Allocates the next query ordinal for discovery-root tags.
    pub fn next_query_ordinal(&mut self) -> usize {
        self.queries += 1;
        self.queries
    }

    /// Queries answered from the plan memo.
    pub fn plan_hits(&self) -> usize {
        self.plan_hits
    }

    /// Certificates answered from the certificate memo.
    pub fn cert_hits(&self) -> usize {
        self.cert_hits
    }
}
