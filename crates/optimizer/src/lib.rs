//! Certified cost-based query optimization — the paper's motivating
//! use case (Sec. 1), built end-to-end on the proving stack.
//!
//! A conventional optimizer applies rewrites it *believes* are sound; a
//! certified optimizer only ships plans it can *prove* equivalent to
//! the input. This crate closes the loop the repo has been building
//! toward: the e-graph of `egraph` proves equivalences, and this crate
//! *chooses among* them:
//!
//! 1. denote the HoTTSQL query into UniNomial (Fig. 7);
//! 2. normalize and seed the e-graph, saturate under the
//!    lemma-compiled rewrite set within a budget;
//! 3. extract the **cheapest** equivalent denotation under a pluggable
//!    cost model ([`StatsCost`] — statistics-driven: table row counts,
//!    per-conjunct equality selectivity from distinct-value estimates,
//!    product = cross size, `DISTINCT`/squash discounts);
//! 4. read the winner back into query syntax
//!    ([`hottsql::readback`]), with conjunctive-query core
//!    minimization ([`cq::minimize`]) as a second candidate route;
//! 5. certify: prove input ≡ output with the ordinary prover stack and
//!    ship the [`ProofTrace`](uninomial::prove::ProofTrace) as a
//!    replayable [`Certificate`]. Uncertifiable candidates are
//!    discarded, so `cost_after ≤ cost_before` holds by construction.
//!
//! ```
//! use hottsql::parse::parse_query;
//! use hottsql::env::QueryEnv;
//! use optimizer::{optimize, OptimizeOptions, PlanCtx};
//! use relalg::stats::Statistics;
//! use relalg::{BaseType, Schema};
//!
//! let env = QueryEnv::new()
//!     .with_table("R", Schema::flat([BaseType::Int, BaseType::Int]));
//! // The Sec. 2 redundant self-join: its core is a single scan.
//! let q = parse_query(
//!     "DISTINCT SELECT Right.Left.Left FROM R, R \
//!      WHERE Right.Left.Left = Right.Right.Left",
//! ).unwrap();
//! let report = optimize(
//!     &q, &env, &Statistics::new().with_rows("R", 1000.0),
//!     OptimizeOptions::default(), PlanCtx::default(),
//! ).unwrap();
//! assert!(report.improved);
//! assert!(report.cost_after < report.cost_before);
//! assert!(!report.certificate.trace.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod optimize;
pub mod session;

pub use cost::{Cost, StatsCost};
pub use optimize::{
    optimize, CandidateInfo, Certificate, OptimizeError, OptimizeOptions, OptimizeReport, PlanCtx,
    Route,
};
#[allow(deprecated)]
pub use optimize::{optimize_query, optimize_query_cached, optimize_query_session};
pub use session::PlanSession;
