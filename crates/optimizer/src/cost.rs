//! The pluggable cost model.
//!
//! Costs live on *denotations*: a [`Cost`] estimates the output mass
//! (bag cardinality summed over the output tuple) and the work to
//! enumerate it. [`StatsCost`] is the statistics-driven default —
//! built on [`relalg::stats::Statistics`] table cardinalities, with
//! equality selectivity per conjunct derived from per-column distinct
//! counts, product mass as cross size, and `DISTINCT`/squash discounts.
//!
//! Any [`egraph::CostFunction`] with `Cost = Cost` plugs into the
//! optimizer in its place.

use egraph::{CostFunction, ENode};
use relalg::stats::Statistics;
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Per-node bookkeeping charge: keeps equal-mass plans ordered by
/// syntactic size, so extraction prefers the smaller of two otherwise
/// indistinguishable forms.
const NODE: f64 = 1.0;

/// Estimated cost of a (sub)denotation: how many rows it stands for,
/// and how much work enumerating it takes. Ordered by work, then rows;
/// equality and ordering both go through `total_cmp`, so the two
/// always agree (including on `-0.0` and NaN).
#[derive(Clone, Copy, Debug)]
pub struct Cost {
    /// Estimated output mass (bag cardinality over all assignments).
    pub rows: f64,
    /// Estimated enumeration work.
    pub work: f64,
}

impl Cost {
    fn leaf(rows: f64) -> Cost {
        Cost { rows, work: NODE }
    }

    fn total_cmp(&self, other: &Cost) -> Ordering {
        self.work
            .total_cmp(&other.work)
            .then(self.rows.total_cmp(&other.rows))
    }
}

impl PartialEq for Cost {
    fn eq(&self, other: &Cost) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Cost) -> Option<Ordering> {
        Some(self.total_cmp(other))
    }
}

/// The statistics-driven default cost model.
#[derive(Clone, Debug)]
pub struct StatsCost {
    rows: BTreeMap<String, f64>,
    default_rows: f64,
    eq_selectivity: f64,
    pred_selectivity: f64,
    distinct_ratio: f64,
}

impl StatsCost {
    /// Builds the model from a statistics catalog.
    pub fn new(stats: &Statistics) -> StatsCost {
        StatsCost {
            rows: stats.tables().map(|(n, t)| (n.clone(), t.rows)).collect(),
            default_rows: stats.default_rows,
            eq_selectivity: stats.eq_selectivity(),
            pred_selectivity: 0.5,
            distinct_ratio: stats.distinct_ratio(),
        }
    }

    /// Estimated rows of a relation symbol.
    pub fn table_rows(&self, name: &str) -> f64 {
        self.rows.get(name).copied().unwrap_or(self.default_rows)
    }
}

impl CostFunction for StatsCost {
    type Cost = Cost;

    fn cost(&self, node: &ENode, children: &[Cost]) -> Cost {
        let child_work: f64 = children.iter().map(|c| c.work).sum();
        match node {
            ENode::Zero => Cost {
                rows: 0.0,
                work: 0.0,
            },
            ENode::One => Cost::leaf(1.0),
            // Cross size: the product of the factor masses — each
            // propositional conjunct contributes its selectivity.
            ENode::Mul(_) => {
                let rows = children.iter().map(|c| c.rows).product();
                Cost {
                    rows,
                    work: child_work + rows + NODE,
                }
            }
            ENode::Add(_) => {
                let rows = children.iter().map(|c| c.rows).sum();
                Cost {
                    rows,
                    work: child_work + NODE,
                }
            }
            // A filter-shaped factor: `¬n ∈ {0, 1}`.
            ENode::Not(_) => Cost {
                rows: self.pred_selectivity,
                work: child_work + NODE,
            },
            // DISTINCT: shrink by the measured distinct ratio; pay a
            // dedup pass over the input mass.
            ENode::Squash(_) => {
                let input = children[0].rows;
                Cost {
                    rows: input * self.distinct_ratio,
                    work: child_work + input + NODE,
                }
            }
            // Σ reorganizes which variable carries the mass.
            ENode::Sum(_, _) => Cost {
                rows: children[0].rows,
                work: child_work + NODE,
            },
            ENode::Eq(_, _) => Cost {
                rows: self.eq_selectivity,
                work: child_work + NODE,
            },
            ENode::Pred(_, _) => Cost {
                rows: self.pred_selectivity,
                work: child_work + NODE,
            },
            ENode::Rel(name, _) => {
                let rows = self.table_rows(name);
                Cost {
                    rows,
                    work: child_work + rows + NODE,
                }
            }
            // Aggregates scan their body once and yield a scalar.
            ENode::Agg(_, _, _) => Cost {
                rows: 1.0,
                work: child_work + children[0].rows + NODE,
            },
            // Tuple-sort nodes: unit mass, structural work only.
            ENode::FreeVar(_)
            | ENode::Bound(_, _)
            | ENode::Unit
            | ENode::Const(_)
            | ENode::Pair(_, _)
            | ENode::Fst(_)
            | ENode::Snd(_)
            | ENode::Fn(_, _) => Cost {
                rows: 1.0,
                work: child_work + NODE,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph::extract::cost_uexpr;
    use relalg::{BaseType, Schema};
    use uninomial::syntax::{Term, UExpr, VarGen};

    fn model() -> StatsCost {
        StatsCost::new(&Statistics::new().with_rows("R", 100.0).with_rows("S", 10.0))
    }

    #[test]
    fn fewer_atoms_cost_less() {
        let mut gen = VarGen::new();
        let t = gen.fresh(Schema::leaf(BaseType::Int));
        let r = UExpr::rel("R", Term::var(&t));
        let one = cost_uexpr(&r, &model());
        let two = cost_uexpr(&UExpr::mul(r.clone(), r), &model());
        assert!(one < two, "{one:?} vs {two:?}");
    }

    #[test]
    fn table_statistics_drive_relative_cost() {
        let mut gen = VarGen::new();
        let t = gen.fresh(Schema::leaf(BaseType::Int));
        let r = cost_uexpr(&UExpr::rel("R", Term::var(&t)), &model());
        let s = cost_uexpr(&UExpr::rel("S", Term::var(&t)), &model());
        assert!(s < r, "10-row S must be cheaper than 100-row R");
        assert_eq!(r.rows, 100.0);
    }

    #[test]
    fn ordering_is_total_on_finite_costs() {
        let a = Cost {
            rows: 1.0,
            work: 2.0,
        };
        let b = Cost {
            rows: 2.0,
            work: 2.0,
        };
        assert!(a < b);
        assert!(a <= a);
    }
}
