//! End-to-end soundness of the certified optimizer: every optimized
//! query must (a) cost no more than its input, (b) carry a certificate
//! that replays through the proof checker, and (c) agree with its input
//! on random concrete instances — the acceptance gates of the
//! subsystem, checked over hand-picked shapes and a seeded CQ corpus.

use hottsql::ast::{Expr, Predicate, Proj, Query};
use hottsql::env::QueryEnv;
use hottsql::eval::{eval_query, Instance};
use hottsql::parse::parse_query;
use optimizer::{optimize, OptimizeOptions, PlanCtx, Route};
use relalg::generate::Generator;
use relalg::stats::Statistics;
use relalg::{BaseType, Schema, Tuple};

fn env_rst() -> QueryEnv {
    let binary = Schema::flat([BaseType::Int, BaseType::Int]);
    QueryEnv::new()
        .with_table("R", binary.clone())
        .with_table("S", binary.clone())
        .with_table("T", binary)
}

fn stats() -> Statistics {
    Statistics::new()
        .with_rows("R", 1000.0)
        .with_rows("S", 500.0)
        .with_rows("T", 100.0)
}

/// Executes input and output on `trials` random instances and asserts
/// bag equality — the difftest gate.
fn assert_difftest_parity(input: &Query, output: &Query, env: &QueryEnv, trials: u64) {
    for seed in 0..trials {
        let mut g = Generator::new(0xC0DE ^ seed);
        let mut inst = Instance::new();
        for (name, schema) in env.tables() {
            inst = inst.with_table(name.clone(), g.relation(schema));
        }
        let a =
            eval_query(input, env, &inst, &Schema::Empty, &Tuple::Unit).expect("input evaluates");
        let b =
            eval_query(output, env, &inst, &Schema::Empty, &Tuple::Unit).expect("output evaluates");
        assert!(
            a.bag_eq(&b),
            "seed {seed}: {input}  vs  {output}\n  {a:?}\n  {b:?}"
        );
    }
}

/// Number of table scans in a plan (counts occurrences, unlike
/// `table_names`, which dedups).
fn scans(q: &Query) -> usize {
    match q {
        Query::Table(_) => 1,
        Query::Select(_, q) | Query::Distinct(q) => scans(q),
        Query::Product(a, b) | Query::UnionAll(a, b) | Query::Except(a, b) => scans(a) + scans(b),
        Query::Where(q, _) => scans(q),
    }
}

/// Full gate for one query: optimize, check the cost invariant, replay
/// the certificate, difftest. Returns the report for extra assertions.
fn gate(q: &Query, env: &QueryEnv) -> optimizer::OptimizeReport {
    gate_with(q, env, OptimizeOptions::default())
}

fn gate_with(q: &Query, env: &QueryEnv, opts: OptimizeOptions) -> optimizer::OptimizeReport {
    let report = optimize(q, env, &stats(), opts, PlanCtx::default()).expect("optimizes");
    assert!(
        report.cost_after <= report.cost_before,
        "{q}: cost went up: {} -> {}",
        report.cost_before,
        report.cost_after
    );
    assert!(
        !report.certificate.trace.is_empty(),
        "{q}: empty certificate"
    );
    assert!(
        report
            .certificate
            .replay(&report.input, &report.output, env, opts.budget),
        "{q}: certificate does not replay"
    );
    assert_difftest_parity(&report.input, &report.output, env, 4);
    report
}

#[test]
fn sec2_self_join_collapses_to_single_scan() {
    let env = env_rst();
    let q = parse_query(
        "DISTINCT SELECT Right.Left.Left FROM R, R \
         WHERE Right.Left.Left = Right.Right.Left",
    )
    .unwrap();
    let report = gate(&q, &env);
    assert!(report.improved, "{report:?}");
    assert!(report.cost_after < report.cost_before);
    // The redundant scan is gone.
    assert_eq!(scans(&report.output), 1, "{}", report.output);
}

#[test]
fn dead_branch_is_eliminated_by_the_egraph() {
    // R UNION ALL (S WHERE 1 = 2): the e-graph's constant-inequality
    // collapse kills the right branch; extraction drops the `+ 0`.
    let env = env_rst();
    let q = Query::union_all(
        Query::table("R"),
        Query::where_(Query::table("S"), Predicate::eq(Expr::int(1), Expr::int(2))),
    );
    let report = gate(&q, &env);
    assert!(report.improved, "{report:?}");
    assert_eq!(report.output, Query::table("R"), "{}", report.output);
    assert!(report.cost_after < report.cost_before);
}

#[test]
fn tautological_filter_is_dropped() {
    // R WHERE 5 = 5 collapses to R (eq-refl is structural in the
    // e-graph).
    let env = env_rst();
    let q = Query::where_(Query::table("R"), Predicate::eq(Expr::int(5), Expr::int(5)));
    let report = gate(&q, &env);
    assert_eq!(report.output, Query::table("R"), "{}", report.output);
}

#[test]
fn select_star_becomes_a_scan() {
    let env = env_rst();
    let q = parse_query("SELECT Right FROM R").unwrap();
    let report = gate(&q, &env);
    assert_eq!(report.output, Query::table("R"), "{}", report.output);
}

#[test]
fn minimal_queries_come_back_unchanged_at_equal_cost() {
    let env = env_rst();
    for sql in [
        "R",
        "R UNION ALL S",
        "R EXCEPT S",
        "DISTINCT SELECT Right.Left.Left FROM R, S WHERE Right.Left.Right = Right.Right.Left",
    ] {
        let q = parse_query(sql).unwrap();
        let report = gate(&q, &env);
        assert_eq!(
            report.cost_after, report.cost_before,
            "{sql}: {} -> {}",
            report.cost_before, report.cost_after
        );
        // No plan churn: without a strict cost win the input itself
        // must come back, not an equal-cost rewriting.
        assert_eq!(report.output, q, "{sql} churned to {}", report.output);
        assert!(!report.improved);
    }
}

/// The TPC-H-flavored schemas of `tests/tpch_like.rs`: a redundant
/// self-join on lineitem's order key collapses; the lineitem ⋈ orders
/// key join is already minimal and must survive untouched.
#[test]
fn tpch_like_queries_optimize_soundly() {
    let env = QueryEnv::new()
        .with_table(
            "lineitem",
            Schema::flat([BaseType::Int, BaseType::Int, BaseType::Int]),
        )
        .with_table("orders", Schema::flat([BaseType::Int, BaseType::Int]));
    let self_join = parse_query(
        "DISTINCT SELECT Right.Left.Left FROM lineitem, lineitem \
         WHERE Right.Left.Left = Right.Right.Left",
    )
    .unwrap();
    let report = gate(&self_join, &env);
    assert!(report.improved, "{report:?}");
    assert_eq!(scans(&report.output), 1, "{}", report.output);
    let key_join = parse_query(
        "DISTINCT SELECT Right.Right.Right FROM lineitem, orders \
         WHERE Right.Left.Left = Right.Right.Left",
    )
    .unwrap();
    let report = gate(&key_join, &env);
    assert_eq!(report.cost_after, report.cost_before);
    assert_eq!(scans(&report.output), 2, "{}", report.output);
}

/// Seeded property test over generated conjunctive queries: both sides
/// of every equivalent pair must optimize soundly, and the corpus must
/// show genuine wins (the generator emits redundant atoms often).
#[test]
fn generated_cq_corpus_optimizes_soundly() {
    let env = env_rst();
    let pairs = cq::generate::equivalent_pairs(0x0971, 8);
    // Larger seeds need no deep saturation to hit the gates; a tight
    // budget keeps the corpus fast while still exercising the pipeline.
    let opts = OptimizeOptions {
        budget: egraph::Budget::new(8, 1500),
    };
    let mut improved = 0usize;
    for (a, b) in &pairs {
        for side in [a, b] {
            let Some(q) = cq::translate::to_query(side, &env) else {
                panic!("generated CQ must render: {side}");
            };
            let report = gate_with(&q, &env, opts);
            if report.improved {
                improved += 1;
            }
        }
    }
    assert!(improved > 0, "no generated query improved");
}

/// A star query folds to a single atom only by Chandra–Merlin homo-
/// morphism reasoning — the e-graph's rewrites cannot dedup atoms over
/// *distinct* bound variables from a single seed, so this reduction
/// must come through the core-minimization route.
#[test]
fn star_query_minimizes_via_the_cq_route() {
    let env = env_rst().with_table("E", Schema::flat([BaseType::Int, BaseType::Int]));
    let q = cq::translate::to_query(&cq::generate::star(4), &env).expect("star renders");
    let report = gate(&q, &env);
    assert!(report.improved, "{report:?}");
    assert_eq!(report.route, Route::CqMinimize, "{}", report.output);
    assert_eq!(scans(&report.output), 1, "{}", report.output);
}

#[test]
fn exotic_shapes_fall_back_to_unchanged_not_unsound() {
    // EXISTS and aggregates are outside the readback fragment; the
    // optimizer must return them unchanged with a valid certificate.
    let env = env_rst();
    let exists = Query::where_(Query::table("R"), Predicate::exists(Query::table("S")));
    let agg = Query::select(
        Proj::e2p(Expr::agg(
            "SUM",
            Query::select(Proj::path([Proj::Right, Proj::Left]), Query::table("R")),
        )),
        Query::table("S"),
    );
    for q in [exists, agg] {
        let report = gate(&q, &env);
        assert_eq!(report.output, q, "{q}");
        assert_eq!(report.route, Route::Unchanged);
    }
}
