//! Regenerates Fig. 9 empirically: the complexity landscape of CQ
//! containment and equivalence.
//!
//! Fig. 9 is a complexity table; we reproduce its *shape* by measuring
//! the implemented decision procedures on scaling workloads:
//! NP-complete set containment blows up on clique-detection instances,
//! bag equivalence (graph isomorphism) stays fast on structure-preserving
//! instances, and UCQ containment multiplies per-disjunct costs.
//!
//! Usage: `cargo run -p bench --bin fig9 --release`

fn main() {
    println!("=== Fig. 9 (empirical): CQ decision procedures ===\n");
    let containment = bench::fig9_containment_series(&[2, 3, 4, 5, 6], 9);
    println!(
        "{}",
        bench::render_series(
            "Set containment (NP-complete): k-clique pattern vs 9-vertex random graph",
            "k",
            &containment
        )
    );
    let bag = bench::fig9_bag_series(&[4, 8, 12, 16, 20]);
    println!(
        "{}",
        bench::render_series(
            "Bag equivalence (graph isomorphism): shuffled α-renamed copies",
            "atoms",
            &bag
        )
    );
    let ucq = bench::fig9_ucq_series(&[1, 2, 4, 8]);
    println!(
        "{}",
        bench::render_series(
            "UCQ containment (Sagiv–Yannakakis): unions of chain queries",
            "width",
            &ucq
        )
    );
    let minimize = bench::minimize_series(&[2, 4, 8, 12]);
    println!(
        "{}",
        bench::render_series(
            "CQ minimization: star queries fold to their core",
            "arms",
            &minimize
        )
    );
}
