//! Scale harness: batch-proves thousands of generated CQ equivalence
//! pairs and compares tactic vs saturation proving over the Fig. 8
//! catalog, emitting machine-readable BENCH json lines (one object per
//! measurement) alongside a human summary.
//!
//! Usage: `cargo run -p bench --bin scale --release [-- pairs] [--out file.json]`
//!
//! `--out` additionally writes the BENCH objects as newline-delimited
//! JSON to a file — the committed `bench-results/` artifacts and the
//! CI upload come from this. The first object is always a `meta` line
//! carrying the artifact schema version and the series list, so that
//! `diff` can refuse incompatible artifacts.
//!
//! Regression mode: `scale diff baseline.json candidate.json
//! [--tolerance pct]` compares two artifacts series-by-series. A schema
//! mismatch or a series present in the baseline but missing from the
//! candidate is a hard failure (exit 1); numeric regressions beyond the
//! tolerance are warnings only (exit 0) — deterministic count fields
//! (anything that is not a timing) must match exactly.

use dopcert::engine::{Engine, EngineConfig};
use dopcert::prove::{ProveOptions, SaturateMode};
use dopcert::wire::{parse_json, Json};
use egraph::{Budget, Outcome, Solver};
use std::fmt::Write as _;
use std::io::Write;
use std::process::ExitCode;
use uninomial::syntax::UExpr;

/// Artifact schema version: bump when a series changes shape or
/// meaning, so `diff` refuses to compare across the break.
const SCHEMA: u64 = 3;

/// Every series a full run emits, in emission order. `diff` hard-fails
/// when a baseline series is missing from the candidate.
const SERIES: [&str; 11] = [
    "cq_scale",
    "containment_scale",
    "optimizer_scale",
    "session_vs_fresh",
    "telemetry_overhead",
    "telemetry_phases",
    "saturation_vs_tactics",
    "rule_attribution",
    "egraph_growth",
    "rule_mining",
    "mining_gap",
];

/// Emits one measurement: a `BENCH {json}` line on stdout, the human
/// summary on stderr, and (with `--out`) the bare JSON object appended
/// to the artifact file.
struct Emitter {
    out: Option<std::io::BufWriter<std::fs::File>>,
}

impl Emitter {
    fn emit(&mut self, json: String, human: String) {
        println!("BENCH {json}");
        eprintln!("{human}");
        if let Some(f) = &mut self.out {
            writeln!(f, "{json}").expect("write --out file");
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("diff") {
        return run_diff(&argv[1..]);
    }

    let mut max_pairs: usize = 4000;
    let mut out = None;
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        if arg == "--out" {
            let path = args.next().expect("--out needs a path");
            out = Some(std::io::BufWriter::new(
                std::fs::File::create(&path)
                    .unwrap_or_else(|e| panic!("cannot create {path}: {e}")),
            ));
        } else {
            max_pairs = arg.parse().expect("pairs must be a number");
        }
    }
    let mut em = Emitter { out };

    // The meta line first: schema and series versioning for `diff`.
    {
        let series: Vec<String> = SERIES.iter().map(|s| format!("\"{s}\"")).collect();
        em.emit(
            format!(
                "{{\"bench\":\"meta\",\"schema\":{SCHEMA},\"series\":[{}]}}",
                series.join(",")
            ),
            format!("meta: schema v{SCHEMA}, {} series", SERIES.len()),
        );
    }

    // Untimed warmup: the first timed block of the process otherwise
    // absorbs one-time costs (allocator arena growth, lazy binding)
    // that have nothing to do with the series being measured.
    {
        let warmup = cq::generate::equivalent_pairs(0x5CA1E, 1000.min(max_pairs));
        let _ = bench::decide_cq_pairs(&warmup);
    }

    // N-thousand CQ equivalence pairs through the batch decider.
    let mut n = 1000;
    while n <= max_pairs {
        let pairs = cq::generate::equivalent_pairs(0x5CA1E, n);
        let (time, equivalent) = bench::timed(|| bench::decide_cq_pairs(&pairs));
        assert_eq!(equivalent, n, "every generated pair is equivalent");
        em.emit(
            format!(
                "{{\"bench\":\"cq_scale\",\"pairs\":{n},\"equivalent\":{equivalent},\"millis\":{:.3}}}",
                time.as_secs_f64() * 1e3
            ),
            format!(
                "cq_scale: {n} pairs decided in {:.1} ms ({:.1} µs/pair)",
                time.as_secs_f64() * 1e3,
                time.as_secs_f64() * 1e6 / n as f64
            ),
        );
        n *= 2;
    }

    // Containment-search internals: the same batch decider over a
    // corpus decorated so the per-relation candidate bitsets have
    // something to prune (same-relation atoms of mixed arity and with
    // clashing constant positions). The counts are deterministic — the
    // pruned/scanned split is exactly the bitset index's claim to its
    // speedup, so `diff` compares it exactly; only `millis` floats.
    {
        let n = max_pairs.min(1000);
        let (queries, index_pairs) = bench::containment_corpus(0x0B175E7, n);
        let (time, (verdicts, stats)) =
            bench::timed(|| cq::containment::equivalent_set_batch_stats(&queries, &index_pairs));
        let equivalent = verdicts.iter().filter(|&&v| v).count();
        assert_eq!(equivalent, n, "decorated pairs stay equivalent");
        em.emit(
            format!(
                "{{\"bench\":\"containment_scale\",\"pairs\":{n},\"equivalent\":{equivalent},\"checks\":{},\"candidates_total\":{},\"bitset_pruned\":{},\"candidates_scanned\":{},\"millis\":{:.3}}}",
                stats.checks,
                stats.candidates_total,
                stats.bitset_pruned,
                stats.candidates_scanned,
                time.as_secs_f64() * 1e3
            ),
            format!(
                "containment_scale: {n} pairs, {} hom checks, {} of {} candidates bitset-pruned ({} scanned) in {:.1} ms",
                stats.checks,
                stats.bitset_pruned,
                stats.candidates_total,
                stats.candidates_scanned,
                time.as_secs_f64() * 1e3
            ),
        );
    }

    // Certified optimizer over a generated CQ corpus: total cost
    // reduction and wall time (the optimizer's first BENCH series).
    {
        let n = 64.min(max_pairs.max(2));
        let (env, queries) = bench::optimizer_corpus(0x0971, n);
        let budget = egraph::Budget::new(8, 1500);
        let (time, summary) = bench::timed(|| bench::optimize_corpus(&env, &queries, budget));
        em.emit(
            format!(
                "{{\"bench\":\"optimizer_scale\",\"queries\":{},\"improved\":{},\"cost_before\":{:.0},\"cost_after\":{:.0},\"millis\":{:.3}}}",
                summary.queries,
                summary.improved,
                summary.cost_before,
                summary.cost_after,
                time.as_secs_f64() * 1e3
            ),
            format!(
                "optimizer_scale: {} queries, {} improved, total cost {:.0} -> {:.0} ({:.1}% saved) in {:.1} ms",
                summary.queries,
                summary.improved,
                summary.cost_before,
                summary.cost_after,
                100.0 * (1.0 - summary.cost_after / summary.cost_before.max(1.0)),
                time.as_secs_f64() * 1e3
            ),
        );
    }

    // Persistent sessions vs fresh solver state over a repetition-heavy
    // generated corpus (≥1k goals sampled from a pool of distinct
    // equivalent CQ pairs — production traffic repeats, and repetition
    // is what the per-worker session amortizes). Verdicts must be
    // identical; only the wall clock may differ.
    {
        let goals = max_pairs.max(1000);
        let (env, pairs, distinct) = bench::session_corpus(0x005E_5510, goals, 48);
        let mut fresh_reports = None;
        for (session, name) in [(false, "fresh"), (true, "session")] {
            let (time, reports) = bench::timed(|| bench::prove_corpus(&env, &pairs, session));
            let proved = reports.iter().filter(|r| r.proved).count();
            let steps: usize = reports.iter().map(|r| r.steps).sum();
            em.emit(
                format!(
                    "{{\"bench\":\"session_vs_fresh\",\"mode\":\"{name}\",\"goals\":{},\"distinct\":{distinct},\"proved\":{proved},\"steps\":{steps},\"millis\":{:.3}}}",
                    pairs.len(),
                    time.as_secs_f64() * 1e3
                ),
                format!(
                    "session_vs_fresh[{name}]: {proved}/{} goals proved ({distinct} distinct), {:.1} ms ({:.1} µs/goal)",
                    pairs.len(),
                    time.as_secs_f64() * 1e3,
                    time.as_secs_f64() * 1e6 / pairs.len() as f64
                ),
            );
            match &fresh_reports {
                None => fresh_reports = Some(reports),
                Some(fresh) => assert_eq!(
                    fresh, &reports,
                    "session-mode verdicts must be identical to fresh mode"
                ),
            }
        }
    }

    // Telemetry: the disabled-path overhead (same 1k-goal session
    // corpus proved with collection off and on — verdicts must be
    // bit-identical, only the wall clock may move) and the phase
    // breakdown the enabled run recorded.
    {
        let goals = 1000;
        let (env, pairs, distinct) = bench::session_corpus(0x005E_5510, goals, 48);
        telemetry::disable();
        telemetry::reset();
        let (t_off, off_reports) = bench::timed(|| bench::prove_corpus(&env, &pairs, true));
        telemetry::enable();
        telemetry::reset();
        let (t_on, on_reports) = bench::timed(|| bench::prove_corpus(&env, &pairs, true));
        assert_eq!(
            off_reports, on_reports,
            "telemetry must not change a verdict"
        );
        let snap = telemetry::snapshot();
        telemetry::disable();
        let (off_ms, on_ms) = (t_off.as_secs_f64() * 1e3, t_on.as_secs_f64() * 1e3);
        em.emit(
            format!(
                "{{\"bench\":\"telemetry_overhead\",\"goals\":{goals},\"distinct\":{distinct},\"millis_off\":{off_ms:.3},\"millis_on\":{on_ms:.3}}}"
            ),
            format!(
                "telemetry_overhead: {goals} goals, {off_ms:.1} ms off vs {on_ms:.1} ms on ({:+.1}%)",
                100.0 * (on_ms - off_ms) / off_ms.max(1e-9)
            ),
        );
        let hits = snap.counter("memo.verdict.hit");
        let misses = snap.counter("memo.verdict.miss");
        em.emit(
            format!(
                "{{\"bench\":\"telemetry_phases\",\"goals\":{goals},\"distinct\":{distinct},\"breakdown\":{}}}",
                bench::phase_breakdown_json(&snap)
            ),
            format!(
                "telemetry_phases: {} spans, {} counters recorded; memo.verdict {hits} hit / {misses} miss",
                snap.hists().count(),
                snap.counters().count()
            ),
        );
    }

    // Fig. 8 catalog: tactics-only vs saturation-only cost.
    for (mode, name) in [
        (SaturateMode::Off, "tactics"),
        (SaturateMode::Only, "saturate"),
    ] {
        let opts = ProveOptions {
            saturate: mode,
            ..ProveOptions::default()
        };
        let (time, reports) = bench::timed(|| bench::fig8_reports_with(opts));
        let proved = reports.iter().filter(|r| r.proved).count();
        let steps: usize = reports.iter().map(|r| r.steps).sum();
        em.emit(
            format!(
                "{{\"bench\":\"saturation_vs_tactics\",\"mode\":\"{name}\",\"rules\":{},\"proved\":{proved},\"steps\":{steps},\"millis\":{:.3}}}",
                reports.len(),
                time.as_secs_f64() * 1e3
            ),
            format!(
                "saturation_vs_tactics[{name}]: {proved}/{} rules, {steps} total steps, {:.1} ms",
                reports.len(),
                time.as_secs_f64() * 1e3
            ),
        );
    }

    // Per-rule attribution over the saturation-only catalog run: which
    // rewrite rules produce the matches, nodes, unions, and oracle
    // calls. The counter fields are deterministic (the saturation loop
    // is), so `diff` compares them exactly; only `millis` gets the
    // tolerance.
    {
        telemetry::disable();
        telemetry::reset();
        telemetry::enable();
        telemetry::enable_profiling();
        let opts = ProveOptions {
            saturate: SaturateMode::Only,
            ..ProveOptions::default()
        };
        let (time, reports) = bench::timed(|| bench::fig8_reports_with(opts));
        assert!(reports.iter().all(|r| r.proved), "catalog must prove");
        let profile = telemetry::profile_snapshot();
        let snap = telemetry::snapshot();
        telemetry::disable();
        telemetry::reset();
        assert!(!profile.is_empty(), "saturation left no attribution rows");
        assert_eq!(
            profile.total("nodes_added"),
            snap.counter("egraph.nodes_added"),
            "attribution must telescope to the aggregate"
        );
        let mut rows = String::from("{");
        for (i, (label, metrics)) in profile.rows().enumerate() {
            if i > 0 {
                rows.push(',');
            }
            let _ = write!(
                rows,
                "\"{label}\":{{\"matches\":{},\"unions\":{},\"nodes_added\":{},\"oracle_calls\":{}}}",
                metrics.counter("matches"),
                metrics.counter("unions"),
                metrics.counter("nodes_added"),
                metrics.counter("oracle_calls")
            );
        }
        rows.push('}');
        em.emit(
            format!(
                "{{\"bench\":\"rule_attribution\",\"rules\":{},\"rows\":{rows},\"total_matches\":{},\"total_unions\":{},\"total_nodes_added\":{},\"total_oracle_calls\":{},\"millis\":{:.3}}}",
                reports.len(),
                profile.total("matches"),
                profile.total("unions"),
                profile.total("nodes_added"),
                profile.total("oracle_calls"),
                time.as_secs_f64() * 1e3
            ),
            format!(
                "rule_attribution: {} rules, {} attribution rows, {} matches -> {} nodes added, {} unions, {} oracle calls in {:.1} ms",
                reports.len(),
                profile.len(),
                profile.total("matches"),
                profile.total("nodes_added"),
                profile.total("unions"),
                profile.total("oracle_calls"),
                time.as_secs_f64() * 1e3
            ),
        );
    }

    // E-graph growth timeline: the classes/nodes/memo counter samples
    // the solve loop emits once per iteration, over the saturation-only
    // catalog on a single worker (sequential, so the sample order is
    // the catalog order). Deterministic — `diff` compares the arrays
    // exactly.
    {
        telemetry::disable();
        telemetry::reset();
        telemetry::enable();
        telemetry::enable_tracing();
        telemetry::enable_profiling();
        let rules = dopcert::catalog::sound_rules();
        let engine = Engine::with_config(EngineConfig {
            prove: ProveOptions {
                saturate: SaturateMode::Only,
                ..ProveOptions::default()
            },
            ..EngineConfig::with_threads(1)
        });
        let reports = engine.prove_catalog(&rules);
        assert!(reports.iter().all(|r| r.proved), "catalog must prove");
        let events = telemetry::take_trace();
        telemetry::disable();
        telemetry::reset();
        let series = |metric: &str| -> Vec<u64> {
            events
                .iter()
                .filter(|ev| ev.name == metric)
                .filter_map(|ev| ev.value)
                .collect()
        };
        let (classes, nodes, memo) = (
            series("egraph.classes"),
            series("egraph.nodes"),
            series("egraph.memo"),
        );
        assert!(!classes.is_empty(), "no growth samples recorded");
        let arr = |vs: &[u64]| {
            let strs: Vec<String> = vs.iter().map(u64::to_string).collect();
            format!("[{}]", strs.join(","))
        };
        em.emit(
            format!(
                "{{\"bench\":\"egraph_growth\",\"rules\":{},\"iterations\":{},\"classes\":{},\"nodes\":{},\"memo\":{}}}",
                reports.len(),
                classes.len(),
                arr(&classes),
                arr(&nodes),
                arr(&memo)
            ),
            format!(
                "egraph_growth: {} samples over {} rules, peak {} classes / {} nodes / {} memo entries",
                classes.len(),
                reports.len(),
                classes.iter().max().copied().unwrap_or(0),
                nodes.iter().max().copied().unwrap_or(0),
                memo.iter().max().copied().unwrap_or(0)
            ),
        );
    }

    // Rule mining: the full synthesis loop (corpus → discovery →
    // anti-unification → screening → certification). Every funnel
    // count is deterministic under the default config; only the
    // wall-clock is timing-tolerant.
    let mined = {
        let cfg = mine::MineConfig::default();
        let (time, report) = bench::timed(|| mine::mine(&cfg));
        let replays = report.accepted.iter().filter(|e| e.replays).count();
        assert_eq!(
            replays,
            report.rules.len(),
            "every accepted mined rule carries a replaying certificate"
        );
        em.emit(
            format!(
                "{{\"bench\":\"rule_mining\",\"corpus\":{},\"discovered\":{},\"candidates\":{},\"screened_out\":{},\"uncertified\":{},\"accepted\":{},\"replays\":{replays},\"millis\":{:.3}}}",
                report.corpus_size,
                report.discovered,
                report.candidates,
                report.screened_out,
                report.uncertified,
                report.rules.len(),
                time.as_secs_f64() * 1e3
            ),
            format!(
                "rule_mining: {} rules certified from {} candidates ({} screened out, {} uncertified) in {:.1} ms; all {replays} certificates replay",
                report.rules.len(),
                report.candidates,
                report.screened_out,
                report.uncertified,
                time.as_secs_f64() * 1e3
            ),
        );
        std::sync::Arc::new(report.rules)
    };

    // Mining gap: replay every mined equation under a zero oracle
    // budget. The shallow schemas stay provable syntactically, but the
    // CQ-derived ground rules needed the equational oracle to discover
    // — without it the default set *saturates* unproven at any
    // iteration budget, while the mined catalog closes each in one
    // iteration. Mining amortizes the oracle work: certification paid
    // it once, replay is a syntactic match.
    {
        let prove = |lhs: &UExpr, rhs: &UExpr, catalog: bool| {
            let mut solver = Solver::new(Budget::new(4, 20_000).with_oracle_calls(0));
            if catalog {
                solver.set_mined_rules(std::sync::Arc::clone(&mined));
            }
            let l = solver.seed_expr(lhs);
            let r = solver.seed_expr(rhs);
            solver.run(l, r).0
        };
        let (mut proved_default, mut proved_mined, mut gap_rules) = (0usize, 0usize, 0usize);
        for rule in mined.iter() {
            let d = prove(&rule.lhs, &rule.rhs, false);
            let m = prove(&rule.lhs, &rule.rhs, true);
            proved_default += usize::from(d == Outcome::Proved);
            proved_mined += usize::from(m == Outcome::Proved);
            gap_rules += usize::from(d != Outcome::Proved && m == Outcome::Proved);
        }
        assert_eq!(
            proved_mined,
            mined.len(),
            "every mined rule must replay through its own catalog"
        );
        assert!(
            gap_rules > 0,
            "at least one mined rule must close a goal the oracle-free default set cannot"
        );
        em.emit(
            format!(
                "{{\"bench\":\"mining_gap\",\"rules\":{},\"proved_default\":{proved_default},\"proved_mined\":{proved_mined},\"gap_rules\":{gap_rules}}}",
                mined.len()
            ),
            format!(
                "mining_gap: oracle-free replay of {} mined equations — default rules prove {proved_default}, mined catalog proves {proved_mined} ({gap_rules} beyond the default set's reach)",
                mined.len()
            ),
        );
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------
// `scale diff`: the bench-regression pipeline.
// ---------------------------------------------------------------------

/// One parsed artifact: the meta line plus every measurement keyed by
/// series name (and `mode`/size where a series emits several points).
struct Artifact {
    schema: u64,
    series_names: Vec<String>,
    measurements: Vec<(String, Json)>,
}

fn series_key(obj: &Json) -> Option<String> {
    let bench = obj.get("bench")?.as_str()?;
    let mut key = bench.to_owned();
    if let Some(mode) = obj.get("mode").and_then(Json::as_str) {
        let _ = write!(key, "[{mode}]");
    }
    if bench == "cq_scale" {
        if let Some(Json::Num(pairs)) = obj.get("pairs") {
            let _ = write!(key, "[{pairs}]");
        }
    }
    Some(key)
}

fn load_artifact(path: &str) -> Result<Artifact, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let mut schema = None;
    let mut series_names = Vec::new();
    let mut measurements = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim().trim_start_matches("BENCH ");
        if line.is_empty() {
            continue;
        }
        let obj = parse_json(line).map_err(|e| format!("{path}:{}: bad JSON: {e}", lineno + 1))?;
        let bench = obj
            .get("bench")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}:{}: object without a \"bench\" field", lineno + 1))?;
        if bench == "meta" {
            schema = obj.get("schema").and_then(Json::as_usize).map(|s| s as u64);
            if let Some(Json::Arr(names)) = obj.get("series") {
                series_names = names
                    .iter()
                    .filter_map(|n| n.as_str().map(str::to_owned))
                    .collect();
            }
        } else if let Some(key) = series_key(&obj) {
            measurements.push((key, obj));
        }
    }
    let schema = schema.ok_or_else(|| {
        format!("{path}: no meta line — not a versioned BENCH artifact (regenerate with the current harness)")
    })?;
    Ok(Artifact {
        schema,
        series_names,
        measurements,
    })
}

/// Numeric leaves whose key names a duration are compared with the
/// tolerance; everything else in a BENCH object is a deterministic
/// count and must match exactly.
fn is_timing_field(key: &str) -> bool {
    key.contains("millis") || key.ends_with("_ms") || key.ends_with("_ns")
}

/// Walks two JSON values in parallel, appending one warning line per
/// divergence. `path` names the location for the report.
fn diff_values(path: &str, base: &Json, cand: &Json, tolerance: f64, warnings: &mut Vec<String>) {
    match (base, cand) {
        (Json::Num(b), Json::Num(c)) => {
            let key = path.rsplit('.').next().unwrap_or(path);
            if is_timing_field(key) {
                if *c > *b * (1.0 + tolerance / 100.0) && *c - *b > 1.0 {
                    warnings.push(format!(
                        "{path}: {c:.1} vs baseline {b:.1} ({:+.1}%, tolerance {tolerance}%)",
                        100.0 * (c - b) / b.max(1e-9)
                    ));
                }
            } else if b != c {
                warnings.push(format!(
                    "{path}: deterministic field changed: {c} vs baseline {b}"
                ));
            }
        }
        (Json::Obj(b), Json::Obj(c)) => {
            for (k, bv) in b {
                match c.get(k) {
                    Some(cv) => diff_values(&format!("{path}.{k}"), bv, cv, tolerance, warnings),
                    None => warnings.push(format!("{path}.{k}: missing from candidate")),
                }
            }
            for k in c.keys().filter(|k| !b.contains_key(*k)) {
                warnings.push(format!("{path}.{k}: new field absent from baseline"));
            }
        }
        (Json::Arr(b), Json::Arr(c)) => {
            if b.len() != c.len() {
                warnings.push(format!(
                    "{path}: length changed: {} vs baseline {}",
                    c.len(),
                    b.len()
                ));
            }
            for (i, (bv, cv)) in b.iter().zip(c).enumerate() {
                diff_values(&format!("{path}[{i}]"), bv, cv, tolerance, warnings);
            }
        }
        _ => {
            if base != cand {
                warnings.push(format!("{path}: value changed shape or content"));
            }
        }
    }
}

fn run_diff(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut tolerance = 25.0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" {
            let pct = it.next().expect("--tolerance needs a percentage");
            tolerance = pct.parse().expect("tolerance must be a number");
        } else {
            paths.push(arg.clone());
        }
    }
    let [base_path, cand_path] = paths.as_slice() else {
        eprintln!("usage: scale diff <baseline.json> <candidate.json> [--tolerance pct]");
        return ExitCode::FAILURE;
    };
    let (base, cand) = match (load_artifact(base_path), load_artifact(cand_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench diff: error: {e}");
            }
            return ExitCode::FAILURE;
        }
    };

    // Hard failures: incompatible schema, or a baseline series with no
    // candidate measurement at all.
    if base.schema != cand.schema {
        eprintln!(
            "bench diff: error: schema mismatch: baseline v{} vs candidate v{}",
            base.schema, cand.schema
        );
        return ExitCode::FAILURE;
    }
    // Coverage is judged over the *intersection* of the two meta series
    // lists: a series only one artifact's harness knows about (an older
    // baseline diffed against a newer candidate, or vice versa) is not a
    // regression — a series both metas claim but the candidate failed to
    // measure is.
    let mut missing = Vec::new();
    for name in base
        .series_names
        .iter()
        .filter(|n| cand.series_names.contains(n))
    {
        let covered = cand
            .measurements
            .iter()
            .any(|(_, obj)| obj.get("bench").and_then(Json::as_str) == Some(name.as_str()));
        if !covered {
            missing.push(name.clone());
        }
    }
    for (key, _) in &base.measurements {
        // A keyed point absent from the candidate is only fatal when its
        // whole series vanished *and* the candidate's meta claims the
        // series; scale points beyond the candidate's pair count — or
        // whole series outside the meta intersection — are fine.
        let series = key.split('[').next().unwrap_or(key);
        if !cand.series_names.iter().any(|n| n == series) {
            continue;
        }
        let series_alive = cand
            .measurements
            .iter()
            .any(|(k, _)| k == key || k.split('[').next() == key.split('[').next());
        if !series_alive && !missing.contains(key) {
            missing.push(key.clone());
        }
    }
    if !missing.is_empty() {
        for name in &missing {
            eprintln!("bench diff: error: series missing from candidate: {name}");
        }
        return ExitCode::FAILURE;
    }

    // Series-by-series numeric comparison: warn-only.
    let mut warnings = Vec::new();
    let mut compared = 0;
    for (key, base_obj) in &base.measurements {
        let Some((_, cand_obj)) = cand.measurements.iter().find(|(k, _)| k == key) else {
            continue;
        };
        compared += 1;
        diff_values(key, base_obj, cand_obj, tolerance, &mut warnings);
    }
    for w in &warnings {
        println!("WARN {w}");
    }
    println!(
        "bench diff: {compared} series compared, {} warnings (tolerance {tolerance}%)",
        warnings.len()
    );
    ExitCode::SUCCESS
}
