//! Scale harness: batch-proves thousands of generated CQ equivalence
//! pairs and compares tactic vs saturation proving over the Fig. 8
//! catalog, emitting machine-readable BENCH json lines (one object per
//! measurement) alongside a human summary.
//!
//! Usage: `cargo run -p bench --bin scale --release [-- pairs]`

use dopcert::prove::{ProveOptions, SaturateMode};

fn emit(json: String, human: String) {
    println!("BENCH {json}");
    eprintln!("{human}");
}

fn main() {
    let max_pairs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4000);

    // N-thousand CQ equivalence pairs through the batch decider.
    let mut n = 1000;
    while n <= max_pairs {
        let pairs = cq::generate::equivalent_pairs(0x5CA1E, n);
        let (time, equivalent) = bench::timed(|| bench::decide_cq_pairs(&pairs));
        assert_eq!(equivalent, n, "every generated pair is equivalent");
        emit(
            format!(
                "{{\"bench\":\"cq_scale\",\"pairs\":{n},\"equivalent\":{equivalent},\"millis\":{:.3}}}",
                time.as_secs_f64() * 1e3
            ),
            format!(
                "cq_scale: {n} pairs decided in {:.1} ms ({:.1} µs/pair)",
                time.as_secs_f64() * 1e3,
                time.as_secs_f64() * 1e6 / n as f64
            ),
        );
        n *= 2;
    }

    // Certified optimizer over a generated CQ corpus: total cost
    // reduction and wall time (the optimizer's first BENCH series).
    {
        let n = 64.min(max_pairs.max(2));
        let (env, queries) = bench::optimizer_corpus(0x0971, n);
        let budget = egraph::Budget::new(8, 1500);
        let (time, summary) = bench::timed(|| bench::optimize_corpus(&env, &queries, budget));
        emit(
            format!(
                "{{\"bench\":\"optimizer_scale\",\"queries\":{},\"improved\":{},\"cost_before\":{:.0},\"cost_after\":{:.0},\"millis\":{:.3}}}",
                summary.queries,
                summary.improved,
                summary.cost_before,
                summary.cost_after,
                time.as_secs_f64() * 1e3
            ),
            format!(
                "optimizer_scale: {} queries, {} improved, total cost {:.0} -> {:.0} ({:.1}% saved) in {:.1} ms",
                summary.queries,
                summary.improved,
                summary.cost_before,
                summary.cost_after,
                100.0 * (1.0 - summary.cost_after / summary.cost_before.max(1.0)),
                time.as_secs_f64() * 1e3
            ),
        );
    }

    // Persistent sessions vs fresh solver state over a repetition-heavy
    // generated corpus (≥1k goals sampled from a pool of distinct
    // equivalent CQ pairs — production traffic repeats, and repetition
    // is what the per-worker session amortizes). Verdicts must be
    // identical; only the wall clock may differ.
    {
        let goals = max_pairs.max(1000);
        let (env, pairs, distinct) = bench::session_corpus(0x005E_5510, goals, 48);
        let mut fresh_reports = None;
        for (session, name) in [(false, "fresh"), (true, "session")] {
            let (time, reports) = bench::timed(|| bench::prove_corpus(&env, &pairs, session));
            let proved = reports.iter().filter(|r| r.proved).count();
            let steps: usize = reports.iter().map(|r| r.steps).sum();
            emit(
                format!(
                    "{{\"bench\":\"session_vs_fresh\",\"mode\":\"{name}\",\"goals\":{},\"distinct\":{distinct},\"proved\":{proved},\"steps\":{steps},\"millis\":{:.3}}}",
                    pairs.len(),
                    time.as_secs_f64() * 1e3
                ),
                format!(
                    "session_vs_fresh[{name}]: {proved}/{} goals proved ({distinct} distinct), {:.1} ms ({:.1} µs/goal)",
                    pairs.len(),
                    time.as_secs_f64() * 1e3,
                    time.as_secs_f64() * 1e6 / pairs.len() as f64
                ),
            );
            match &fresh_reports {
                None => fresh_reports = Some(reports),
                Some(fresh) => assert_eq!(
                    fresh, &reports,
                    "session-mode verdicts must be identical to fresh mode"
                ),
            }
        }
    }

    // Fig. 8 catalog: tactics-only vs saturation-only cost.
    for (mode, name) in [
        (SaturateMode::Off, "tactics"),
        (SaturateMode::Only, "saturate"),
    ] {
        let opts = ProveOptions {
            saturate: mode,
            ..ProveOptions::default()
        };
        let (time, reports) = bench::timed(|| bench::fig8_reports_with(opts));
        let proved = reports.iter().filter(|r| r.proved).count();
        let steps: usize = reports.iter().map(|r| r.steps).sum();
        emit(
            format!(
                "{{\"bench\":\"saturation_vs_tactics\",\"mode\":\"{name}\",\"rules\":{},\"proved\":{proved},\"steps\":{steps},\"millis\":{:.3}}}",
                reports.len(),
                time.as_secs_f64() * 1e3
            ),
            format!(
                "saturation_vs_tactics[{name}]: {proved}/{} rules, {steps} total steps, {:.1} ms",
                reports.len(),
                time.as_secs_f64() * 1e3
            ),
        );
    }
}
