//! Scale harness: batch-proves thousands of generated CQ equivalence
//! pairs and compares tactic vs saturation proving over the Fig. 8
//! catalog, emitting machine-readable BENCH json lines (one object per
//! measurement) alongside a human summary.
//!
//! Usage: `cargo run -p bench --bin scale --release [-- pairs] [--out file.json]`
//!
//! `--out` additionally writes the BENCH objects as newline-delimited
//! JSON to a file — the committed `bench-results/` artifacts and the
//! CI upload come from this.

use dopcert::prove::{ProveOptions, SaturateMode};
use std::io::Write;

/// Emits one measurement: a `BENCH {json}` line on stdout, the human
/// summary on stderr, and (with `--out`) the bare JSON object appended
/// to the artifact file.
struct Emitter {
    out: Option<std::io::BufWriter<std::fs::File>>,
}

impl Emitter {
    fn emit(&mut self, json: String, human: String) {
        println!("BENCH {json}");
        eprintln!("{human}");
        if let Some(f) = &mut self.out {
            writeln!(f, "{json}").expect("write --out file");
        }
    }
}

fn main() {
    let mut max_pairs: usize = 4000;
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            let path = args.next().expect("--out needs a path");
            out = Some(std::io::BufWriter::new(
                std::fs::File::create(&path)
                    .unwrap_or_else(|e| panic!("cannot create {path}: {e}")),
            ));
        } else {
            max_pairs = arg.parse().expect("pairs must be a number");
        }
    }
    let mut em = Emitter { out };

    // N-thousand CQ equivalence pairs through the batch decider.
    let mut n = 1000;
    while n <= max_pairs {
        let pairs = cq::generate::equivalent_pairs(0x5CA1E, n);
        let (time, equivalent) = bench::timed(|| bench::decide_cq_pairs(&pairs));
        assert_eq!(equivalent, n, "every generated pair is equivalent");
        em.emit(
            format!(
                "{{\"bench\":\"cq_scale\",\"pairs\":{n},\"equivalent\":{equivalent},\"millis\":{:.3}}}",
                time.as_secs_f64() * 1e3
            ),
            format!(
                "cq_scale: {n} pairs decided in {:.1} ms ({:.1} µs/pair)",
                time.as_secs_f64() * 1e3,
                time.as_secs_f64() * 1e6 / n as f64
            ),
        );
        n *= 2;
    }

    // Certified optimizer over a generated CQ corpus: total cost
    // reduction and wall time (the optimizer's first BENCH series).
    {
        let n = 64.min(max_pairs.max(2));
        let (env, queries) = bench::optimizer_corpus(0x0971, n);
        let budget = egraph::Budget::new(8, 1500);
        let (time, summary) = bench::timed(|| bench::optimize_corpus(&env, &queries, budget));
        em.emit(
            format!(
                "{{\"bench\":\"optimizer_scale\",\"queries\":{},\"improved\":{},\"cost_before\":{:.0},\"cost_after\":{:.0},\"millis\":{:.3}}}",
                summary.queries,
                summary.improved,
                summary.cost_before,
                summary.cost_after,
                time.as_secs_f64() * 1e3
            ),
            format!(
                "optimizer_scale: {} queries, {} improved, total cost {:.0} -> {:.0} ({:.1}% saved) in {:.1} ms",
                summary.queries,
                summary.improved,
                summary.cost_before,
                summary.cost_after,
                100.0 * (1.0 - summary.cost_after / summary.cost_before.max(1.0)),
                time.as_secs_f64() * 1e3
            ),
        );
    }

    // Persistent sessions vs fresh solver state over a repetition-heavy
    // generated corpus (≥1k goals sampled from a pool of distinct
    // equivalent CQ pairs — production traffic repeats, and repetition
    // is what the per-worker session amortizes). Verdicts must be
    // identical; only the wall clock may differ.
    {
        let goals = max_pairs.max(1000);
        let (env, pairs, distinct) = bench::session_corpus(0x005E_5510, goals, 48);
        let mut fresh_reports = None;
        for (session, name) in [(false, "fresh"), (true, "session")] {
            let (time, reports) = bench::timed(|| bench::prove_corpus(&env, &pairs, session));
            let proved = reports.iter().filter(|r| r.proved).count();
            let steps: usize = reports.iter().map(|r| r.steps).sum();
            em.emit(
                format!(
                    "{{\"bench\":\"session_vs_fresh\",\"mode\":\"{name}\",\"goals\":{},\"distinct\":{distinct},\"proved\":{proved},\"steps\":{steps},\"millis\":{:.3}}}",
                    pairs.len(),
                    time.as_secs_f64() * 1e3
                ),
                format!(
                    "session_vs_fresh[{name}]: {proved}/{} goals proved ({distinct} distinct), {:.1} ms ({:.1} µs/goal)",
                    pairs.len(),
                    time.as_secs_f64() * 1e3,
                    time.as_secs_f64() * 1e6 / pairs.len() as f64
                ),
            );
            match &fresh_reports {
                None => fresh_reports = Some(reports),
                Some(fresh) => assert_eq!(
                    fresh, &reports,
                    "session-mode verdicts must be identical to fresh mode"
                ),
            }
        }
    }

    // Telemetry: the disabled-path overhead (same 1k-goal session
    // corpus proved with collection off and on — verdicts must be
    // bit-identical, only the wall clock may move) and the phase
    // breakdown the enabled run recorded.
    {
        let goals = 1000;
        let (env, pairs, distinct) = bench::session_corpus(0x005E_5510, goals, 48);
        telemetry::disable();
        telemetry::reset();
        let (t_off, off_reports) = bench::timed(|| bench::prove_corpus(&env, &pairs, true));
        telemetry::enable();
        telemetry::reset();
        let (t_on, on_reports) = bench::timed(|| bench::prove_corpus(&env, &pairs, true));
        assert_eq!(
            off_reports, on_reports,
            "telemetry must not change a verdict"
        );
        let snap = telemetry::snapshot();
        telemetry::disable();
        let (off_ms, on_ms) = (t_off.as_secs_f64() * 1e3, t_on.as_secs_f64() * 1e3);
        em.emit(
            format!(
                "{{\"bench\":\"telemetry_overhead\",\"goals\":{goals},\"distinct\":{distinct},\"millis_off\":{off_ms:.3},\"millis_on\":{on_ms:.3}}}"
            ),
            format!(
                "telemetry_overhead: {goals} goals, {off_ms:.1} ms off vs {on_ms:.1} ms on ({:+.1}%)",
                100.0 * (on_ms - off_ms) / off_ms.max(1e-9)
            ),
        );
        let hits = snap.counter("memo.verdict.hit");
        let misses = snap.counter("memo.verdict.miss");
        em.emit(
            format!(
                "{{\"bench\":\"telemetry_phases\",\"goals\":{goals},\"distinct\":{distinct},\"breakdown\":{}}}",
                bench::phase_breakdown_json(&snap)
            ),
            format!(
                "telemetry_phases: {} spans, {} counters recorded; memo.verdict {hits} hit / {misses} miss",
                snap.hists().count(),
                snap.counters().count()
            ),
        );
    }

    // Fig. 8 catalog: tactics-only vs saturation-only cost.
    for (mode, name) in [
        (SaturateMode::Off, "tactics"),
        (SaturateMode::Only, "saturate"),
    ] {
        let opts = ProveOptions {
            saturate: mode,
            ..ProveOptions::default()
        };
        let (time, reports) = bench::timed(|| bench::fig8_reports_with(opts));
        let proved = reports.iter().filter(|r| r.proved).count();
        let steps: usize = reports.iter().map(|r| r.steps).sum();
        em.emit(
            format!(
                "{{\"bench\":\"saturation_vs_tactics\",\"mode\":\"{name}\",\"rules\":{},\"proved\":{proved},\"steps\":{steps},\"millis\":{:.3}}}",
                reports.len(),
                time.as_secs_f64() * 1e3
            ),
            format!(
                "saturation_vs_tactics[{name}]: {proved}/{} rules, {steps} total steps, {:.1} ms",
                reports.len(),
                time.as_secs_f64() * 1e3
            ),
        );
    }
}
