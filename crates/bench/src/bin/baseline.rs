//! The list-semantics baseline comparison (Sec. 2).
//!
//! The paper reports that commutativity of selection takes 65 lines of
//! Coq under list semantics [35] and 10 lines under HoTTSQL. We make the
//! comparison quantitative on two axes: (a) proof effort in our system
//! (trace steps for the same rule), and (b) the runtime cost that the
//! list representation forces on every equivalence check (sorting for
//! permutation-equality) versus the normalized multiset representation.
//!
//! Usage: `cargo run -p bench --bin baseline --release`

fn main() {
    println!("=== Baseline: list semantics vs HoTTSQL semantics ===\n");
    let steps = bench::baseline_proof_steps();
    println!("commutativity of selection (conj-slct-split):");
    println!("  paper, list semantics [35]: 65 proof lines");
    println!("  paper, HoTTSQL:             10 proof lines");
    println!("  this system:                {steps} trace steps (automatic)\n");
    println!(
        "{:<12} {:>18} {:>22} {:>8}",
        "rows", "list check (µs)", "K-relation check (µs)", "ratio"
    );
    for n in [100u64, 1_000, 10_000, 100_000] {
        let (list, rel) = bench::baseline_equivalence_times(n);
        let (lus, rus) = (list.as_secs_f64() * 1e6, rel.as_secs_f64() * 1e6);
        println!(
            "{:<12} {:>18.1} {:>22.1} {:>8.1}",
            n,
            lus,
            rus,
            if rus > 0.0 { lus / rus } else { f64::INFINITY }
        );
    }
    println!("\n(list semantics must sort on every comparison; the K-relation");
    println!("representation is kept normalized, so equality is a linear scan)");
}
