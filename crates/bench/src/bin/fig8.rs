//! Regenerates Fig. 8: rewrite rules proved per category with average
//! proof effort.
//!
//! Usage: `cargo run -p bench --bin fig8 --release`

fn main() {
    let (reports, rows) = bench::fig8();
    println!("=== Fig. 8: Rewrite rules proved ===\n");
    println!("{}", bench::render_fig8(&rows));
    println!("Per-rule detail:");
    println!(
        "{:<28} {:<18} {:<22} {:>8} {:>12}",
        "rule", "category", "method", "steps", "time (µs)"
    );
    for r in &reports {
        println!(
            "{:<28} {:<18} {:<22} {:>8} {:>12}",
            r.name,
            r.category.name(),
            r.method.map(|m| m.to_string()).unwrap_or_default(),
            r.steps,
            r.micros
        );
    }
    println!("\nExtension rules (beyond the paper's catalog):");
    for rule in dopcert::catalog::extension_rules() {
        let report = dopcert::api::prove_rule(&rule);
        println!(
            "  {:<28} {:<22} {:>4} steps",
            rule.name,
            report
                .method
                .map(|m| m.to_string())
                .unwrap_or_else(|| "FAILED".into()),
            report.steps
        );
        assert!(report.proved, "extension rule regressed");
    }
    let unsound = dopcert::catalog::unsound_rules();
    println!("\nRejected (unsound) rules:");
    for rule in &unsound {
        let report = dopcert::api::prove_rule(rule);
        let outcome = dopcert::difftest::differential_test(rule, 200, 0x5EED);
        let refuted = matches!(outcome, dopcert::difftest::DiffOutcome::Refuted(_));
        println!(
            "  {:<28} prover: {:<10} counterexample: {}",
            rule.name,
            if report.proved {
                "ACCEPTED(!)"
            } else {
                "rejected"
            },
            if refuted { "found" } else { "none" },
        );
        assert!(!report.proved && refuted, "unsound rule handling regressed");
    }
}
