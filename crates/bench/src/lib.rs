//! Shared harness code for regenerating the paper's tables and figures.
//!
//! Each experiment has (a) a printable harness binary (`fig8`, `fig9`,
//! `baseline`) that emits the same rows/series the paper reports, and
//! (b) a Criterion benchmark measuring the same workload. This library
//! holds the workload definitions shared by both.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use cq::Cq;
use dopcert::api::prove_rule;
use dopcert::engine::Engine;
use dopcert::prove::{fig8_table, Fig8Row, RuleReport};
use std::time::{Duration, Instant};

/// Runs the full Fig. 8 experiment on the parallel batch engine:
/// proves every sound rule and returns the per-rule reports (catalog
/// order; verdicts identical to the sequential path).
pub fn fig8_reports() -> Vec<RuleReport> {
    Engine::new().prove_catalog(&dopcert::catalog::sound_rules())
}

/// The sequential baseline the engine replaced: one rule after another,
/// no memoization. Kept for the `engine_parallel` benchmark comparison.
pub fn fig8_reports_sequential() -> Vec<RuleReport> {
    dopcert::catalog::sound_rules()
        .iter()
        .map(prove_rule)
        .collect()
}

/// Renders the Fig. 8 table (category, rule count, average proof steps —
/// the LOC analog — and average time).
pub fn render_fig8(rows: &[Fig8Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>12} {:>18} {:>14}\n",
        "Category", "No. of rules", "Avg. steps (LOC)", "Avg. time (µs)"
    ));
    let mut total = 0;
    let mut weighted_steps = 0.0;
    for r in rows {
        out.push_str(&format!(
            "{:<20} {:>12} {:>18.1} {:>14.0}\n",
            r.category.name(),
            r.proved,
            r.avg_steps,
            r.avg_micros
        ));
        total += r.proved;
        weighted_steps += r.avg_steps * r.proved as f64;
    }
    out.push_str(&format!(
        "{:<20} {:>12} {:>18.1}\n",
        "Total",
        total,
        if total > 0 {
            weighted_steps / total as f64
        } else {
            0.0
        }
    ));
    out
}

/// Computes the Fig. 8 table end-to-end.
pub fn fig8() -> (Vec<RuleReport>, Vec<Fig8Row>) {
    let reports = fig8_reports();
    let rows = fig8_table(&reports);
    (reports, rows)
}

/// One measured point of a scaling series.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Instance-size parameter.
    pub size: u32,
    /// Wall-clock time.
    pub time: Duration,
    /// The decision reached (for sanity display).
    pub answer: bool,
}

/// Measures one closure, returning its duration and result.
pub fn timed<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed(), value)
}

/// Renders a telemetry snapshot as one JSON object for BENCH lines:
/// every span histogram (count, total and p50/p99 in ns) and every
/// counter, sorted by name — the phase-breakdown fields committed to
/// `bench-results/`.
pub fn phase_breakdown_json(snap: &telemetry::Metrics) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"spans\":{");
    for (i, (name, h)) in snap.hists().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{name}\":{{\"count\":{},\"sum_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
            h.count(),
            h.sum(),
            h.p50(),
            h.p99()
        );
    }
    out.push_str("},\"counters\":{");
    for (i, (name, v)) in snap.counters().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{v}");
    }
    out.push_str("}}");
    out
}

/// Fig. 9 row 1 (NP-complete set containment): time to decide whether a
/// random graph query contains a `k`-clique pattern, for growing `k`.
/// The worst-case blowup is exponential in `k`.
pub fn fig9_containment_series(ks: &[u32], graph_vars: u32) -> Vec<ScalePoint> {
    ks.iter()
        .map(|&k| {
            let pattern = cq::generate::clique(k);
            // A sparse-ish graph so the backtracking search must work.
            let graph = cq::generate::random_graph_query(42, graph_vars, 0.3);
            let (time, answer) = timed(|| cq::containment::contained_in(&graph, &pattern));
            ScalePoint {
                size: k,
                time,
                answer,
            }
        })
        .collect()
}

/// Fig. 9 row "bag equivalence" (graph isomorphism): time to decide bag
/// equivalence of a random CQ against an α-renamed shuffled copy, for
/// growing size — easy instances stay fast.
pub fn fig9_bag_series(sizes: &[u32]) -> Vec<ScalePoint> {
    sizes
        .iter()
        .map(|&n| {
            let q = cq::generate::random_cq(7, n, n.max(2) / 2 + 1, &["R", "S", "T"]);
            let copy = cq::generate::shuffled_copy(&q, 99);
            let (time, answer) = timed(|| cq::bag::bag_equivalent(&q, &copy));
            ScalePoint {
                size: n,
                time,
                answer,
            }
        })
        .collect()
}

/// Fig. 9 row 2 (UCQ containment): per-disjunct CQ containment over
/// unions of growing width.
pub fn fig9_ucq_series(widths: &[u32]) -> Vec<ScalePoint> {
    widths
        .iter()
        .map(|&w| {
            let a = cq::ucq::Ucq::new((0..w).map(|i| cq::generate::boolean_chain(i + 2)).collect());
            let b = cq::ucq::Ucq::new((0..w).map(|i| cq::generate::boolean_chain(i + 1)).collect());
            let (time, answer) = timed(|| cq::ucq::ucq_contained_in(&a, &b));
            ScalePoint {
                size: w,
                time,
                answer,
            }
        })
        .collect()
}

/// CQ minimization scaling (the decidable-fragment workhorse): star
/// queries of growing width collapse to one atom.
pub fn minimize_series(sizes: &[u32]) -> Vec<ScalePoint> {
    sizes
        .iter()
        .map(|&n| {
            let q = cq::generate::star(n);
            let (time, core) = timed(|| cq::minimize::minimize(&q));
            ScalePoint {
                size: n,
                time,
                answer: core.size() == 1,
            }
        })
        .collect()
}

/// Renders a scaling series as a printable table.
pub fn render_series(title: &str, unit: &str, points: &[ScalePoint]) -> String {
    let mut out = format!(
        "{title}\n{:<10} {:>14} {:>8}\n",
        unit, "time (µs)", "answer"
    );
    for p in points {
        out.push_str(&format!(
            "{:<10} {:>14.1} {:>8}\n",
            p.size,
            p.time.as_secs_f64() * 1e6,
            p.answer
        ));
    }
    out
}

/// The baseline comparison (Sec. 2's "65 LOC vs 10 LOC" claim, made
/// quantitative): proof-trace length for commutativity of selection in
/// our semantics, and the cost of list-permutation equivalence checks vs
/// normalized-multiset equality on instances of growing size.
pub fn baseline_proof_steps() -> usize {
    let rules = dopcert::catalog::sound_rules();
    let rule = rules
        .iter()
        .find(|r| r.name == "conj-slct-split")
        .expect("commutativity-of-selection rule present");
    let report = prove_rule(rule);
    assert!(report.proved, "baseline rule must prove");
    report.steps
}

/// Timing one bag-equivalence check over `n`-row outputs, list semantics
/// (sort-based) vs K-relation (already-normalized map equality).
pub fn baseline_equivalence_times(n: u64) -> (Duration, Duration) {
    use relalg::{BaseType, Relation, Schema, Tuple};
    let schema = Schema::flat([BaseType::Int, BaseType::Int]);
    let rows: Vec<Tuple> = (0..n)
        .map(|i| Tuple::pair(Tuple::int((i % 17) as i64), Tuple::int((i % 23) as i64)))
        .collect();
    let mut reversed = rows.clone();
    reversed.reverse();
    let (list_time, list_eq) = timed(|| listsem::bag_equal_lists(&rows, &reversed));
    assert!(list_eq);
    let ra = Relation::from_tuples(schema.clone(), rows).expect("conforming rows");
    let rb = Relation::from_tuples(schema, reversed).expect("conforming rows");
    let (rel_time, rel_eq) = timed(|| ra.bag_eq(&rb));
    assert!(rel_eq);
    (list_time, rel_time)
}

/// Proves the Fig. 8 sound catalog with explicit verification options
/// (the `saturation_vs_tactics` comparison entry point).
pub fn fig8_reports_with(opts: dopcert::prove::ProveOptions) -> Vec<RuleReport> {
    Engine::with_prove_options(opts).prove_catalog(&dopcert::catalog::sound_rules())
}

/// Decides a seeded batch of equivalent-by-construction CQ pairs with
/// the shared-index batch decider, returning how many were (correctly)
/// decided equivalent. This is the N-thousand-pair scale workload that
/// makes batching and indexing costs visible.
pub fn decide_cq_pairs(pairs: &[(Cq, Cq)]) -> usize {
    decide_cq_pairs_stats(pairs).0
}

/// [`decide_cq_pairs`] that also reports the batch decider's
/// [`cq::containment::SearchStats`] — the `containment_scale` series.
pub fn decide_cq_pairs_stats(pairs: &[(Cq, Cq)]) -> (usize, cq::containment::SearchStats) {
    let mut queries = Vec::with_capacity(pairs.len() * 2);
    let mut index_pairs = Vec::with_capacity(pairs.len());
    for (a, b) in pairs {
        queries.push(a);
        queries.push(b);
        index_pairs.push((queries.len() - 2, queries.len() - 1));
    }
    let (verdicts, stats) = cq::containment::equivalent_set_batch_stats_ref(&queries, &index_pairs);
    (verdicts.into_iter().filter(|&eq| eq).count(), stats)
}

/// The certified-optimizer scale corpus: a seeded batch of generated
/// conjunctive queries (both sides of every equivalent pair) rendered
/// as `DISTINCT SELECT` queries over the binary `R`/`S`/`T` vocabulary.
pub fn optimizer_corpus(seed: u64, n: usize) -> (hottsql::env::QueryEnv, Vec<hottsql::ast::Query>) {
    use relalg::{BaseType, Schema};
    let binary = Schema::flat([BaseType::Int, BaseType::Int]);
    let env = hottsql::env::QueryEnv::new()
        .with_table("R", binary.clone())
        .with_table("S", binary.clone())
        .with_table("T", binary);
    // Over-generate: unsafe heads (a head variable absent from the
    // body) have no query rendering and are skipped.
    let mut queries = Vec::with_capacity(n);
    for (a, b) in cq::generate::equivalent_pairs(seed, n) {
        for side in [&a, &b] {
            if queries.len() < n {
                if let Some(q) = cq::translate::to_query(side, &env) {
                    queries.push(q);
                }
            }
        }
    }
    (env, queries)
}

/// Aggregate outcome of optimizing a corpus.
#[derive(Clone, Copy, Debug, Default)]
pub struct OptimizeSummary {
    /// Queries optimized.
    pub queries: usize,
    /// Plans that genuinely changed.
    pub improved: usize,
    /// Total estimated work before.
    pub cost_before: f64,
    /// Total estimated work after (`≤ cost_before`).
    pub cost_after: f64,
}

/// Optimizes a corpus through the parallel batch engine under the
/// given saturation budget, checking the no-worse invariant on every
/// report.
pub fn optimize_corpus(
    env: &hottsql::env::QueryEnv,
    queries: &[hottsql::ast::Query],
    budget: egraph::Budget,
) -> OptimizeSummary {
    let engine = Engine::with_config(dopcert::engine::EngineConfig {
        prove: dopcert::prove::ProveOptions {
            budget,
            ..Default::default()
        },
        ..Default::default()
    });
    let stats = relalg::stats::Statistics::new();
    let mut summary = OptimizeSummary::default();
    for report in engine.optimize_batch(env, &stats, queries) {
        let r = report.expect("corpus queries optimize");
        assert!(r.cost_after <= r.cost_before, "{}: costlier plan", r.input);
        summary.queries += 1;
        summary.improved += usize::from(r.improved);
        summary.cost_before += r.cost_before;
        summary.cost_after += r.cost_after;
    }
    summary
}

/// Corpus for the `containment_scale` series: `n` equivalent CQ pairs
/// decorated so the containment search's per-relation bitset indexes
/// have something to prune. Each side gains three same-relation `K`
/// atoms over its own head variable — one unary, two binary with
/// *different* constants — so every `K` goal atom faces candidates that
/// mismatch on arity or on a constant position. Both sides get the same
/// decoration, so pair equivalence is preserved (the α-rename between
/// them extends trivially). Returns the flat query list plus the
/// `(lhs, rhs)` index pairs for the batch decider.
pub fn containment_corpus(seed: u64, n: usize) -> (Vec<Cq>, Vec<(usize, usize)>) {
    use cq::{CqAtom, CqTerm};
    use relalg::Value;
    let pairs = cq::generate::equivalent_pairs(seed, n);
    let mut queries = Vec::with_capacity(2 * n);
    let mut index_pairs = Vec::with_capacity(n);
    for (i, (a, b)) in pairs.into_iter().enumerate() {
        let c1 = Value::Int((i % 4) as i64);
        let c2 = Value::Int(((i % 4) + 4) as i64);
        let decorate = |mut q: Cq| {
            let head = q.head[0].clone();
            q.atoms.push(CqAtom::new(
                "K",
                vec![head.clone(), CqTerm::Const(c1.clone())],
            ));
            q.atoms.push(CqAtom::new(
                "K",
                vec![head.clone(), CqTerm::Const(c2.clone())],
            ));
            q.atoms.push(CqAtom::new("K", vec![head]));
            q
        };
        queries.push(decorate(a));
        queries.push(decorate(b));
        index_pairs.push((2 * i, 2 * i + 1));
    }
    (queries, index_pairs)
}

/// Corpus for the `session_vs_fresh` series: `goals` equivalence goals
/// sampled *with repetition* from a pool of `pool` generated equivalent
/// CQ pairs rendered as queries — production query traffic repeats
/// heavily, and repetition is exactly what a persistent session
/// amortizes. Returns the environment, the goal list, and the number of
/// distinct pairs actually in play.
pub fn session_corpus(
    seed: u64,
    goals: usize,
    pool: usize,
) -> (
    hottsql::env::QueryEnv,
    Vec<(hottsql::ast::Query, hottsql::ast::Query)>,
    usize,
) {
    use relalg::{BaseType, Schema};
    let binary = Schema::flat([BaseType::Int, BaseType::Int]);
    let env = hottsql::env::QueryEnv::new()
        .with_table("R", binary.clone())
        .with_table("S", binary.clone())
        .with_table("T", binary);
    let mut base = Vec::new();
    for (a, b) in cq::generate::equivalent_pairs(seed, pool) {
        if let (Some(qa), Some(qb)) = (
            cq::translate::to_query(&a, &env),
            cq::translate::to_query(&b, &env),
        ) {
            base.push((qa, qb));
        }
    }
    assert!(!base.is_empty(), "pool must render at least one pair");
    // Sample with repetition through a seeded LCG (no third-party RNG).
    let mut out = Vec::with_capacity(goals);
    let mut state = seed | 1;
    for _ in 0..goals {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let idx = (state >> 33) as usize % base.len();
        out.push(base[idx].clone());
    }
    let distinct = base.len();
    (env, out, distinct)
}

/// Batch-proves a pair corpus through the engine with sessions on or
/// off, returning the reports.
pub fn prove_corpus(
    env: &hottsql::env::QueryEnv,
    pairs: &[(hottsql::ast::Query, hottsql::ast::Query)],
    session: bool,
) -> Vec<dopcert::engine::PairReport> {
    let engine = Engine::with_config(dopcert::engine::EngineConfig {
        prove: dopcert::prove::ProveOptions {
            session,
            ..Default::default()
        },
        ..Default::default()
    });
    engine.prove_pairs(env, pairs)
}

/// Generates the Cq pair of Fig. 10 (used by both the example and the
/// benchmark).
pub fn fig10_pair() -> (Cq, Cq) {
    use cq::{CqAtom, CqTerm};
    let v = CqTerm::Var;
    let q1 = Cq::new(
        vec![v(0)],
        vec![
            CqAtom::new("R1", vec![v(0), v(1)]),
            CqAtom::new("R2", vec![v(1)]),
        ],
    );
    let q2 = Cq::new(
        vec![v(0)],
        vec![
            CqAtom::new("R1", vec![v(0), v(1)]),
            CqAtom::new("R1", vec![v(0), v(2)]),
            CqAtom::new("R2", vec![v(1)]),
        ],
    );
    (q1, q2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_proves_everything() {
        let (reports, rows) = fig8();
        assert_eq!(reports.len(), 23);
        assert!(reports.iter().all(|r| r.proved));
        let rendered = render_fig8(&rows);
        assert!(rendered.contains("Magic Set"), "{rendered}");
        assert!(rendered.contains("Total"), "{rendered}");
    }

    #[test]
    fn fig9_series_shapes() {
        let c = fig9_containment_series(&[2, 3], 6);
        assert_eq!(c.len(), 2);
        let b = fig9_bag_series(&[2, 4]);
        assert!(b.iter().all(|p| p.answer), "shuffled copies are equivalent");
        let u = fig9_ucq_series(&[1, 2]);
        assert!(u.iter().all(|p| p.answer), "longer chains are contained");
        let m = minimize_series(&[3, 5]);
        assert!(m.iter().all(|p| p.answer), "stars minimize to one atom");
    }

    #[test]
    fn baseline_measures() {
        assert!(baseline_proof_steps() >= 1);
        let (list, rel) = baseline_equivalence_times(500);
        // Both must complete; no timing assertion (CI noise), just sanity.
        assert!(list.as_nanos() > 0 && rel.as_nanos() > 0);
    }

    #[test]
    fn fig10_pair_is_equivalent() {
        let (a, b) = fig10_pair();
        assert!(cq::containment::equivalent_set(&a, &b));
        assert!(!cq::bag::bag_equivalent(&a, &b));
    }

    #[test]
    fn cq_pair_batch_decides_all_equivalent() {
        let pairs = cq::generate::equivalent_pairs(7, 200);
        assert_eq!(decide_cq_pairs(&pairs), 200);
    }

    #[test]
    fn saturation_mode_proves_the_catalog() {
        use dopcert::prove::{ProveOptions, SaturateMode, VerifyMethod};
        let reports = fig8_reports_with(ProveOptions {
            saturate: SaturateMode::Only,
            ..ProveOptions::default()
        });
        assert!(reports.iter().all(|r| r.proved));
        assert!(reports
            .iter()
            .any(|r| r.method == Some(VerifyMethod::Saturation)));
    }
}
