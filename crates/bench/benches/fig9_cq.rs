//! Criterion benchmark for the Fig. 9 decision-procedure workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_containment(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9/set-containment-clique");
    for k in [2u32, 3, 4, 5] {
        let pattern = cq::generate::clique(k);
        let graph = cq::generate::random_graph_query(42, 9, 0.3);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| cq::containment::contained_in(&graph, &pattern))
        });
    }
    group.finish();
}

fn bench_bag_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9/bag-equivalence-iso");
    for n in [4u32, 8, 16] {
        let q = cq::generate::random_cq(7, n, n / 2 + 1, &["R", "S", "T"]);
        let copy = cq::generate::shuffled_copy(&q, 99);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| assert!(cq::bag::bag_equivalent(&q, &copy)))
        });
    }
    group.finish();
}

fn bench_ucq(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9/ucq-containment");
    for w in [2u32, 4, 8] {
        let a = cq::ucq::Ucq::new((0..w).map(|i| cq::generate::boolean_chain(i + 2)).collect());
        let b_ucq = cq::ucq::Ucq::new((0..w).map(|i| cq::generate::boolean_chain(i + 1)).collect());
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, _| {
            b.iter(|| assert!(cq::ucq::ucq_contained_in(&a, &b_ucq)))
        });
    }
    group.finish();
}

fn bench_minimize(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9/minimize-star");
    for n in [4u32, 8, 12] {
        let q = cq::generate::star(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| assert_eq!(cq::minimize::minimize(&q).size(), 1))
        });
    }
    group.finish();
}

/// Fast Criterion config: the harness binaries are the primary
/// reporting path; these benches exist for regression tracking.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_containment,
    bench_bag_equivalence,
    bench_ucq,
    bench_minimize
}
criterion_main!(benches);
