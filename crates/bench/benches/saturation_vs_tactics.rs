//! Criterion benchmark: proving cost of the Fig. 8 catalog under the
//! normalization-based tactics vs equality saturation alone, plus the
//! N-thousand-pair CQ equivalence batch that exercises the scale path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dopcert::prove::{ProveOptions, SaturateMode};

fn bench_saturation_vs_tactics(c: &mut Criterion) {
    let mut group = c.benchmark_group("saturation-vs-tactics/fig8-catalog");
    for (mode, name) in [
        (SaturateMode::Off, "tactics"),
        (SaturateMode::Only, "saturate"),
        (SaturateMode::Fallback, "fallback"),
    ] {
        let opts = ProveOptions {
            saturate: mode,
            ..ProveOptions::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let reports = bench::fig8_reports_with(opts);
                assert!(reports.iter().all(|r| r.proved), "catalog regressed");
            })
        });
    }
    group.finish();
}

fn bench_cq_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("saturation-vs-tactics/cq-batch");
    for n in [1000usize, 2000] {
        let pairs = cq::generate::equivalent_pairs(0x5CA1E, n);
        group.bench_with_input(BenchmarkId::new("pairs", n), &pairs, |b, pairs| {
            b.iter(|| {
                let equivalent = bench::decide_cq_pairs(pairs);
                assert_eq!(equivalent, pairs.len());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_saturation_vs_tactics, bench_cq_scale);
criterion_main!(benches);
