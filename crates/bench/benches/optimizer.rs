//! Criterion benchmark: the certified optimizer end-to-end — one
//! hand-picked redundant query through the full pipeline, and a small
//! generated-CQ corpus through the batch engine.

use criterion::{criterion_group, criterion_main, Criterion};
use hottsql::parse::parse_query;
use optimizer::{optimize, OptimizeOptions, PlanCtx};
use relalg::stats::Statistics;
use relalg::{BaseType, Schema};

fn bench_self_join_dedup(c: &mut Criterion) {
    let env =
        hottsql::env::QueryEnv::new().with_table("R", Schema::flat([BaseType::Int, BaseType::Int]));
    let stats = Statistics::new().with_rows("R", 1000.0);
    let q = parse_query(
        "DISTINCT SELECT Right.Left.Left FROM R, R \
         WHERE Right.Left.Left = Right.Right.Left",
    )
    .unwrap();
    c.bench_function("optimizer/self-join-dedup", |b| {
        b.iter(|| {
            let report = optimize(
                &q,
                &env,
                &stats,
                OptimizeOptions::default(),
                PlanCtx::default(),
            )
            .expect("optimizes");
            assert!(report.improved && report.cost_after < report.cost_before);
        })
    });
}

fn bench_corpus(c: &mut Criterion) {
    let (env, queries) = bench::optimizer_corpus(0x0971, 8);
    let budget = egraph::Budget::new(8, 1500);
    c.bench_function("optimizer/corpus-8", |b| {
        b.iter(|| {
            let summary = bench::optimize_corpus(&env, &queries, budget);
            assert_eq!(summary.queries, queries.len());
            assert!(summary.cost_after <= summary.cost_before);
        })
    });
}

criterion_group!(benches, bench_self_join_dedup, bench_corpus);
criterion_main!(benches);
