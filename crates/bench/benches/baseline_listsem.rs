//! Criterion benchmark for the list-semantics baseline comparison
//! (Sec. 2): permutation-equality vs normalized-multiset equality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relalg::{BaseType, Relation, Schema, Tuple};

fn rows(n: u64) -> Vec<Tuple> {
    (0..n)
        .map(|i| Tuple::pair(Tuple::int((i % 17) as i64), Tuple::int((i % 23) as i64)))
        .collect()
}

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline/bag-equality");
    for n in [1_000u64, 10_000] {
        let a = rows(n);
        let mut b_rows = a.clone();
        b_rows.reverse();
        group.bench_with_input(BenchmarkId::new("list-permutation", n), &n, |b, _| {
            b.iter(|| assert!(listsem::bag_equal_lists(&a, &b_rows)))
        });
        let schema = Schema::flat([BaseType::Int, BaseType::Int]);
        let ra = Relation::from_tuples(schema.clone(), a.clone()).unwrap();
        let rb = Relation::from_tuples(schema.clone(), b_rows.clone()).unwrap();
        group.bench_with_input(BenchmarkId::new("k-relation", n), &n, |b, _| {
            b.iter(|| assert!(ra.bag_eq(&rb)))
        });
    }
    group.finish();
}

/// Fast Criterion config: the harness binaries are the primary
/// reporting path; these benches exist for regression tracking.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_baseline
}
criterion_main!(benches);
