//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! - pair-splitting (Lemma 5.1): normalization cost for wide schemas,
//!   where each `Σ` binder splits into many leaf binders;
//! - congruence closure: growth with the number of equality atoms;
//! - the deductive witness search: cost as hypothesis count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relalg::{BaseType, Schema};
use uninomial::normalize::{normalize, Trace};
use uninomial::syntax::{Term, UExpr, VarGen};

fn wide_schema(width: usize) -> Schema {
    Schema::flat(std::iter::repeat_n(BaseType::Int, width))
}

fn bench_pair_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/pair-split-width");
    for width in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &w| {
            b.iter(|| {
                let mut gen = VarGen::new();
                let x = gen.fresh(wide_schema(w));
                let e = UExpr::sum(x.clone(), UExpr::rel("R", Term::var(&x)));
                let mut tr = Trace::new();
                let nf = normalize(&e, &mut gen, &mut tr);
                assert_eq!(nf.terms[0].vars.len(), w);
            })
        });
    }
    group.finish();
}

fn bench_congruence(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/congruence-chain");
    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut gen = VarGen::new();
                let vars: Vec<_> = (0..n)
                    .map(|_| gen.fresh(Schema::leaf(BaseType::Int)))
                    .collect();
                let mut cc = uninomial::congruence::Congruence::new();
                for w in vars.windows(2) {
                    cc.add_eq(&Term::var(&w[0]), &Term::var(&w[1]));
                }
                let fa = Term::func("f", vec![Term::var(&vars[0])]);
                let fb = Term::func("f", vec![Term::var(&vars[n - 1])]);
                assert!(cc.equal(&fa, &fb));
            })
        });
    }
    group.finish();
}

fn bench_witness_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/witness-search");
    for n in [2usize, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                // hypotheses: R(c_1), …, R(c_n); goal: ∃x,y. R(x) × R(y).
                let mut gen = VarGen::new();
                let int = Schema::leaf(BaseType::Int);
                let consts: Vec<_> = (0..n).map(|_| gen.fresh(int.clone())).collect();
                let hyp = UExpr::product(consts.iter().map(|c| UExpr::rel("R", Term::var(c))));
                let x = gen.fresh(int.clone());
                let y = gen.fresh(int.clone());
                let goal = UExpr::squash(UExpr::sum(
                    x.clone(),
                    UExpr::sum(
                        y.clone(),
                        UExpr::mul(
                            UExpr::rel("R", Term::var(&x)),
                            UExpr::rel("R", Term::var(&y)),
                        ),
                    ),
                ));
                let lhs = UExpr::mul(hyp.clone(), goal);
                let rhs = hyp;
                // lhs = rhs because the squash factor is entailed.
                assert!(uninomial::prove_eq(&lhs, &rhs, &mut gen).is_ok());
            })
        });
    }
    group.finish();
}

/// Fast Criterion config: the harness binaries are the primary
/// reporting path; these benches exist for regression tracking.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_pair_split, bench_congruence, bench_witness_search
}
criterion_main!(benches);
