//! Criterion benchmark for Fig. 8: proving each rule category.

use criterion::{criterion_group, criterion_main, Criterion};
use dopcert::api::prove_rule;
use dopcert::rule::Category;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    for category in Category::FIG8 {
        let rules = dopcert::catalog::rules_in(category);
        if rules.is_empty() {
            continue;
        }
        group.bench_function(category.name(), |b| {
            b.iter(|| {
                for rule in &rules {
                    let report = prove_rule(rule);
                    assert!(report.proved, "{} failed", rule.name);
                }
            })
        });
    }
    group.finish();
}

/// Fast Criterion config: the harness binaries are the primary
/// reporting path; these benches exist for regression tracking.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_fig8
}
criterion_main!(benches);
