//! Criterion benchmark for the K-relation substrate operators (the
//! simulator the experiments run on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relalg::generate::{GenConfig, Generator};
use relalg::{ops, BaseType, Card, Schema};

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for support in [100usize, 1_000] {
        let mut gen = Generator::with_config(
            1,
            GenConfig {
                max_support: support,
                max_multiplicity: 3,
                int_range: (0, 1_000),
                max_schema_width: 2,
            },
        );
        let schema = Schema::flat([BaseType::Int, BaseType::Int]);
        let r = gen.relation(&schema);
        let s = gen.relation(&schema);
        group.bench_with_input(BenchmarkId::new("product", support), &support, |b, _| {
            b.iter(|| ops::product(&r, &s))
        });
        group.bench_with_input(BenchmarkId::new("union_all", support), &support, |b, _| {
            b.iter(|| ops::union_all(&r, &s).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("distinct", support), &support, |b, _| {
            b.iter(|| ops::distinct(&r))
        });
        group.bench_with_input(BenchmarkId::new("select", support), &support, |b, _| {
            b.iter(|| {
                ops::select(&r, |t| {
                    Card::from_bool(t.fst().and_then(|x| x.value()).is_some())
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("project", support), &support, |b, _| {
            b.iter(|| {
                ops::project(&r, Schema::leaf(BaseType::Int), |t| {
                    t.fst().unwrap().clone()
                })
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Fast Criterion config: the harness binaries are the primary
/// reporting path; these benches exist for regression tracking.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_operators
}
criterion_main!(benches);
