//! Criterion benchmark for the batch proving engine: the full Fig. 8
//! catalog proved by the sequential loop vs the hash-consed parallel
//! engine at several worker counts, plus the memoization ablation
//! (1-thread engine = sequential order + cache, isolating the
//! hash-consing win from the parallelism win).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dopcert::api::prove_rule;
use dopcert::engine::Engine;

fn bench_catalog_proving(c: &mut Criterion) {
    let rules = dopcert::catalog::sound_rules();
    let mut group = c.benchmark_group("engine-parallel/fig8-catalog");

    group.bench_function("sequential-baseline", |b| {
        b.iter(|| {
            for rule in &rules {
                let report = prove_rule(rule);
                assert!(report.proved, "{} failed", rule.name);
            }
        })
    });

    let max = std::thread::available_parallelism().map_or(4, usize::from);
    let mut counts = vec![1usize, 2, 4];
    if max > 4 {
        counts.push(max);
    }
    counts.dedup();
    for threads in counts {
        let engine = Engine::with_threads(threads);
        group.bench_with_input(BenchmarkId::new("engine", threads), &threads, |b, _| {
            b.iter(|| {
                let reports = engine.prove_catalog(&rules);
                assert!(reports.iter().all(|r| r.proved), "catalog regressed");
            })
        });
    }
    group.finish();
}

fn bench_difftest(c: &mut Criterion) {
    let rules = dopcert::catalog::sound_rules();
    let mut group = c.benchmark_group("engine-parallel/difftest");
    const TRIALS: usize = 8;

    group.bench_function("sequential-baseline", |b| {
        b.iter(|| {
            for rule in &rules {
                assert!(
                    dopcert::difftest::differential_test(rule, TRIALS, 0xDA7A).agreed(),
                    "{} refuted",
                    rule.name
                );
            }
        })
    });

    let engine = Engine::new();
    group.bench_function("engine-all-cores", |b| {
        b.iter(|| {
            let outcomes = engine.difftest_catalog(&rules, TRIALS, 0xDA7A);
            assert!(
                outcomes.iter().all(|(_, o)| o.agreed()),
                "difftest regressed"
            );
        })
    });
    group.finish();
}

/// Fast Criterion config: the harness binaries are the primary
/// reporting path; these benches exist for regression tracking.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_catalog_proving, bench_difftest
}
criterion_main!(benches);
