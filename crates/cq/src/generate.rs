//! Workload generators for the Fig. 9 complexity benchmarks.
//!
//! Fig. 9 is a complexity table; reproducing its *shape* empirically
//! means demonstrating, on synthetic CQ families, that (a) set
//! containment exhibits the exponential blowup of an NP-complete problem
//! on adversarial instances (clique-detection encodings), while (b) bag
//! equivalence on structure-preserving pairs behaves like graph
//! isomorphism on easy instances (polynomial in practice), and (c) the
//! per-disjunct structure of UCQ containment multiplies CQ costs.

use crate::{Cq, CqAtom, CqTerm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

fn v(n: u32) -> CqTerm {
    CqTerm::Var(n)
}

/// The chain (path) query of length `n`:
/// `ans(x₀, xₙ) :- E(x₀,x₁), …, E(xₙ₋₁,xₙ)`.
pub fn chain(n: u32) -> Cq {
    assert!(n >= 1, "chain length must be positive");
    let atoms = (0..n)
        .map(|i| CqAtom::new("E", vec![v(i), v(i + 1)]))
        .collect();
    Cq::new(vec![v(0), v(n)], atoms)
}

/// A Boolean chain (no head), used for containment scaling.
pub fn boolean_chain(n: u32) -> Cq {
    assert!(n >= 1);
    let atoms = (0..n)
        .map(|i| CqAtom::new("E", vec![v(i), v(i + 1)]))
        .collect();
    Cq::new(vec![], atoms)
}

/// The Boolean cycle query of length `n`:
/// `ans() :- E(x₀,x₁), …, E(xₙ₋₁,x₀)`.
pub fn cycle(n: u32) -> Cq {
    assert!(n >= 1);
    let atoms = (0..n)
        .map(|i| CqAtom::new("E", vec![v(i), v((i + 1) % n)]))
        .collect();
    Cq::new(vec![], atoms)
}

/// The Boolean clique query on `k` variables:
/// `ans() :- E(xᵢ,xⱼ)` for all `i ≠ j`. Deciding whether `clique(k)` has
/// a homomorphism into a graph query is the NP-complete k-clique
/// problem — the adversarial family for the Fig. 9 containment row.
pub fn clique(k: u32) -> Cq {
    let mut atoms = Vec::new();
    for i in 0..k {
        for j in 0..k {
            if i != j {
                atoms.push(CqAtom::new("E", vec![v(i), v(j)]));
            }
        }
    }
    Cq::new(vec![], atoms)
}

/// A Boolean query whose body is a random graph on `n` variables with
/// edge probability `p` (plus symmetric edges, so cliques can embed).
pub fn random_graph_query(seed: u64, n: u32, p: f64) -> Cq {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut atoms = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                atoms.push(CqAtom::new("E", vec![v(i), v(j)]));
                atoms.push(CqAtom::new("E", vec![v(j), v(i)]));
            }
        }
    }
    if atoms.is_empty() {
        atoms.push(CqAtom::new("E", vec![v(0), v(1)]));
    }
    Cq::new(vec![], atoms)
}

/// A star query: `ans(x₀) :- E(x₀,x₁), …, E(x₀,xₙ)`; its core is a
/// single atom, making it the adversarial family for minimization.
pub fn star(n: u32) -> Cq {
    assert!(n >= 1);
    let atoms = (1..=n)
        .map(|i| CqAtom::new("E", vec![v(0), v(i)]))
        .collect();
    Cq::new(vec![v(0)], atoms)
}

/// An α-renamed, atom-shuffled copy of `q` — bag-equivalent to `q` by
/// construction (the easy-isomorphism family for the Fig. 9 bag row).
pub fn shuffled_copy(q: &Cq, seed: u64) -> Cq {
    let mut rng = StdRng::seed_from_u64(seed);
    let vars = q.variables();
    let mut target: Vec<u32> = (0..vars.len() as u32).map(|i| i + 1000).collect();
    // Fisher–Yates shuffle of the rename targets.
    for i in (1..target.len()).rev() {
        let j = rng.gen_range(0..=i);
        target.swap(i, j);
    }
    let map: BTreeMap<u32, u32> = vars.into_iter().zip(target).collect();
    let mut renamed = q.rename(&map);
    for i in (1..renamed.atoms.len()).rev() {
        let j = rng.gen_range(0..=i);
        renamed.atoms.swap(i, j);
    }
    renamed
}

/// A seeded batch of `n` *equivalent-by-construction* CQ pairs: each
/// pair is a random query and an α-renamed, atom-shuffled copy, so set
/// (and bag) equivalence holds for every pair. This is the scale
/// workload for the batch deciders — thousands of pairs sharing the
/// small relation vocabulary, making parallel scaling and per-pair
/// indexing costs visible.
pub fn equivalent_pairs(seed: u64, n: usize) -> Vec<(Cq, Cq)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let atoms = 3 + (i % 5) as u32;
            let vars = 2 + (i % 3) as u32;
            let q_seed = rng.gen_range(0..u64::MAX / 2);
            let q = random_cq(q_seed, atoms, vars, &["R", "S", "T"]);
            let copy = shuffled_copy(&q, q_seed ^ 0xC0FFEE);
            if i % 2 == 0 {
                (q, copy)
            } else {
                (copy, q)
            }
        })
        .collect()
}

/// A random CQ over `rels` relation names with `n_atoms` binary atoms on
/// `n_vars` variables, head on the first variable.
pub fn random_cq(seed: u64, n_atoms: u32, n_vars: u32, rels: &[&str]) -> Cq {
    assert!(n_vars >= 1 && !rels.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let atoms = (0..n_atoms)
        .map(|_| {
            let rel = rels[rng.gen_range(0..rels.len())];
            let a = rng.gen_range(0..n_vars);
            let b = rng.gen_range(0..n_vars);
            CqAtom::new(rel, vec![v(a), v(b)])
        })
        .collect();
    Cq::new(vec![v(0)], atoms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bag::bag_equivalent;
    use crate::containment::contained_in;
    use crate::minimize::minimize;

    #[test]
    fn chain_shapes() {
        let c = chain(3);
        assert_eq!(c.size(), 3);
        assert_eq!(c.head, vec![v(0), v(3)]);
        assert_eq!(boolean_chain(5).head.len(), 0);
    }

    #[test]
    fn longer_boolean_chains_are_contained_in_shorter() {
        // An instance with a 5-path has a 3-path.
        assert!(contained_in(&boolean_chain(5), &boolean_chain(3)));
        assert!(!contained_in(&boolean_chain(3), &boolean_chain(5)));
    }

    #[test]
    fn cycle_contains_clique_relationship() {
        // A triangle query is exactly clique(3) up to duplicate edges'
        // orientation; cycle(3) ⊆ ... sanity: cycle(3) maps into clique(3).
        assert!(contained_in(&clique(3), &cycle(3)));
    }

    #[test]
    fn clique_embeds_iff_graph_has_clique() {
        // Dense graph surely has a triangle; sparse (empty-ish) does not.
        let dense = random_graph_query(1, 8, 0.9);
        let sparse = random_graph_query(2, 8, 0.0);
        assert!(contained_in(&dense, &clique(3)));
        assert!(!contained_in(&sparse, &clique(3)));
    }

    #[test]
    fn star_minimizes_to_one_atom() {
        let s = star(6);
        assert_eq!(minimize(&s).size(), 1);
    }

    #[test]
    fn shuffled_copy_is_bag_equivalent() {
        for seed in 0..5 {
            let q = random_cq(seed, 6, 4, &["R", "S"]);
            let q2 = shuffled_copy(&q, seed + 100);
            assert!(bag_equivalent(&q, &q2), "seed {seed}: {q} vs {q2}");
        }
    }

    #[test]
    fn random_cq_is_deterministic() {
        let a = random_cq(7, 5, 3, &["R"]);
        let b = random_cq(7, 5, 3, &["R"]);
        assert_eq!(a, b);
    }

    #[test]
    fn equivalent_pairs_are_equivalent_and_deterministic() {
        let pairs = equivalent_pairs(0xABCD, 64);
        assert_eq!(pairs.len(), 64);
        for (i, (a, b)) in pairs.iter().enumerate() {
            assert!(
                crate::containment::equivalent_set(a, b),
                "pair {i}: {a} vs {b}"
            );
        }
        assert_eq!(pairs, equivalent_pairs(0xABCD, 64), "seeded determinism");
    }
}
