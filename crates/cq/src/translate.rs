//! Translation from HoTTSQL queries to conjunctive queries.
//!
//! Recognizes the CQ fragment of Sec. 5.2:
//! `DISTINCT SELECT p FROM t₁, …, tₙ [WHERE b]` where every `tᵢ` is a
//! base table, `p` is built from paths/pairs/constants, and `b` is a
//! conjunction of equalities between paths (or paths and constants).
//! Returns `None` for queries outside the fragment — the caller then
//! falls back to the general prover.

use crate::{Cq, CqBuilder, CqTerm};
use hottsql::ast::{Expr, Predicate, Proj, Query};
use hottsql::env::QueryEnv;
use relalg::Schema;

/// The tuple shape of a context, with CQ variables at the leaves.
#[derive(Clone, Debug)]
enum Shape {
    Unit,
    Leaf(CqTerm),
    Node(Box<Shape>, Box<Shape>),
}

impl Shape {
    fn leaves(&self, out: &mut Vec<CqTerm>) {
        match self {
            Shape::Unit => {}
            Shape::Leaf(t) => out.push(t.clone()),
            Shape::Node(l, r) => {
                l.leaves(out);
                r.leaves(out);
            }
        }
    }
}

/// Attempts to view a HoTTSQL query (closed, empty context) as a CQ.
///
/// Returns `None` when the query falls outside the conjunctive fragment.
pub fn from_query(q: &Query, env: &QueryEnv) -> Option<Cq> {
    let Query::Distinct(inner) = q else {
        return None;
    };
    let Query::Select(proj, body) = &**inner else {
        return None;
    };
    let (from, pred) = match &**body {
        Query::Where(f, b) => (&**f, Some(b)),
        other => (other, None),
    };
    let mut builder = CqBuilder::new();
    let from_shape = shape_of_from(from, env, &mut builder)?;
    // Context of the projection and predicate: node(empty, σ_from).
    let ctx = Shape::Node(Box::new(Shape::Unit), Box::new(from_shape));
    if let Some(b) = pred {
        collect_equalities(b, &ctx, &mut builder)?;
    }
    let head_shape = resolve_proj(proj, &ctx, &mut builder)?;
    let mut head = Vec::new();
    head_shape.leaves(&mut head);
    // Resolve head through the union-find by rebuilding with build():
    let head_vars: Option<Vec<u32>> = head
        .iter()
        .map(|t| match t {
            CqTerm::Var(v) => Some(*v),
            CqTerm::Const(_) => None,
        })
        .collect();
    match head_vars {
        Some(vars) => Some(builder.build(vars)),
        None => {
            // Heads with constants: build with placeholder vars bound to
            // the constants.
            let vars: Vec<u32> = head
                .iter()
                .map(|t| match t {
                    CqTerm::Var(v) => *v,
                    CqTerm::Const(c) => {
                        let v = builder.fresh();
                        builder.bind_const(v, c.clone());
                        v
                    }
                })
                .collect();
            Some(builder.build(vars))
        }
    }
}

/// Builds the shape of a FROM clause: a left-nested product of tables.
fn shape_of_from(q: &Query, env: &QueryEnv, b: &mut CqBuilder) -> Option<Shape> {
    match q {
        Query::Table(name) => {
            let schema = env.table(name)?;
            let (shape, vars) = fresh_shape(schema, b);
            b.atom(name.clone(), vars);
            Some(shape)
        }
        Query::Product(l, r) => {
            let ls = shape_of_from(l, env, b)?;
            let rs = shape_of_from(r, env, b)?;
            Some(Shape::Node(Box::new(ls), Box::new(rs)))
        }
        _ => None,
    }
}

fn fresh_shape(schema: &Schema, b: &mut CqBuilder) -> (Shape, Vec<u32>) {
    match schema {
        Schema::Empty => (Shape::Unit, Vec::new()),
        Schema::Leaf(_) => {
            let v = b.fresh();
            (Shape::Leaf(CqTerm::Var(v)), vec![v])
        }
        Schema::Node(l, r) => {
            let (ls, mut lv) = fresh_shape(l, b);
            let (rs, rv) = fresh_shape(r, b);
            lv.extend(rv);
            (Shape::Node(Box::new(ls), Box::new(rs)), lv)
        }
    }
}

/// Collects conjunctive equality predicates into the builder.
fn collect_equalities(p: &Predicate, ctx: &Shape, b: &mut CqBuilder) -> Option<()> {
    match p {
        Predicate::True => Some(()),
        Predicate::And(x, y) => {
            collect_equalities(x, ctx, b)?;
            collect_equalities(y, ctx, b)
        }
        Predicate::Eq(e1, e2) => {
            let t1 = resolve_scalar(e1, ctx, b)?;
            let t2 = resolve_scalar(e2, ctx, b)?;
            match (t1, t2) {
                (CqTerm::Var(x), CqTerm::Var(y)) => b.equate(x, y),
                (CqTerm::Var(x), CqTerm::Const(c)) | (CqTerm::Const(c), CqTerm::Var(x)) => {
                    b.bind_const(x, c)
                }
                (CqTerm::Const(c), CqTerm::Const(d)) => {
                    if c != d {
                        // Unsatisfiable query; representable but we bail
                        // to the general prover for clarity.
                        return None;
                    }
                }
            }
            Some(())
        }
        _ => None,
    }
}

fn resolve_scalar(e: &Expr, ctx: &Shape, b: &mut CqBuilder) -> Option<CqTerm> {
    match e {
        Expr::P2E(p) => match resolve_proj(p, ctx, b)? {
            Shape::Leaf(t) => Some(t),
            _ => None,
        },
        Expr::Const(v) => Some(CqTerm::Const(v.clone())),
        _ => None,
    }
}

fn resolve_proj(p: &Proj, ctx: &Shape, b: &mut CqBuilder) -> Option<Shape> {
    match p {
        Proj::Star => Some(ctx.clone()),
        Proj::Left => match ctx {
            Shape::Node(l, _) => Some((**l).clone()),
            _ => None,
        },
        Proj::Right => match ctx {
            Shape::Node(_, r) => Some((**r).clone()),
            _ => None,
        },
        Proj::Empty => Some(Shape::Unit),
        Proj::Dot(p1, p2) => {
            let mid = resolve_proj(p1, ctx, b)?;
            resolve_proj(p2, &mid, b)
        }
        Proj::Pair(p1, p2) => Some(Shape::Node(
            Box::new(resolve_proj(p1, ctx, b)?),
            Box::new(resolve_proj(p2, ctx, b)?),
        )),
        Proj::E2P(e) => Some(Shape::Leaf(resolve_scalar(e, ctx, b)?)),
        Proj::Var(_) => None, // meta-variables are outside the decidable fragment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent_set;
    use hottsql::parse::parse_query;
    use relalg::BaseType;

    fn env() -> QueryEnv {
        QueryEnv::new()
            .with_table("R1", Schema::flat([BaseType::Int, BaseType::Int]))
            .with_table("R2", Schema::flat([BaseType::Int]))
            .with_table("R", Schema::flat([BaseType::Int, BaseType::Int]))
    }

    #[test]
    fn translates_simple_projection() {
        let q = parse_query("DISTINCT SELECT Right.Left FROM R").unwrap();
        let cq = from_query(&q, &env()).unwrap();
        assert_eq!(cq.atoms.len(), 1);
        assert_eq!(cq.atoms[0].rel, "R");
        assert_eq!(cq.head.len(), 1);
        assert_eq!(cq.head[0], cq.atoms[0].terms[0]);
    }

    #[test]
    fn translates_join_with_equality() {
        // The Sec. 5.2 / Fig. 10 left query:
        // DISTINCT SELECT x.c1 FROM R1 x, R2 y WHERE x.c2 = y.c3
        let q = parse_query(
            "DISTINCT SELECT Right.Left.Left FROM R1, R2 \
             WHERE Right.Left.Right = Right.Right",
        )
        .unwrap();
        let cq = from_query(&q, &env()).unwrap();
        assert_eq!(cq.atoms.len(), 2);
        // The equality identified R1's second column with R2's column.
        assert_eq!(cq.atoms[0].terms[1], cq.atoms[1].terms[0]);
    }

    #[test]
    fn fig10_pair_equivalence_via_decision_procedure() {
        let q1 = parse_query(
            "DISTINCT SELECT Right.Left.Left FROM R1, R2 \
             WHERE Right.Left.Right = Right.Right",
        )
        .unwrap();
        let q2 = parse_query(
            "DISTINCT SELECT Right.Left.Left.Left FROM (R1, R1), R2 \
             WHERE Right.Left.Left.Left = Right.Left.Right.Left \
             AND Right.Left.Left.Right = Right.Right",
        )
        .unwrap();
        let e = env();
        let c1 = from_query(&q1, &e).unwrap();
        let c2 = from_query(&q2, &e).unwrap();
        assert!(equivalent_set(&c1, &c2), "{c1}  vs  {c2}");
    }

    #[test]
    fn constants_translate() {
        let q = parse_query("DISTINCT SELECT Right.Left FROM R WHERE Right.Right = 5").unwrap();
        let cq = from_query(&q, &env()).unwrap();
        assert!(cq.atoms[0]
            .terms
            .iter()
            .any(|t| matches!(t, CqTerm::Const(relalg::Value::Int(5)))));
    }

    #[test]
    fn non_cq_features_are_rejected() {
        let e = env();
        // No DISTINCT.
        let q = parse_query("SELECT Right.Left FROM R").unwrap();
        assert!(from_query(&q, &e).is_none());
        // Disjunction.
        let q = parse_query(
            "DISTINCT SELECT Right.Left FROM R WHERE Right.Right = 1 OR Right.Right = 2",
        )
        .unwrap();
        assert!(from_query(&q, &e).is_none());
        // EXCEPT.
        let q = parse_query("DISTINCT SELECT Right.Left FROM (R EXCEPT R)").unwrap();
        assert!(from_query(&q, &e).is_none());
    }

    #[test]
    fn unsatisfiable_constant_equality_rejected() {
        let q = parse_query("DISTINCT SELECT Right.Left FROM R WHERE 1 = 2").unwrap();
        assert!(from_query(&q, &env()).is_none());
    }

    #[test]
    fn star_head_projects_all_columns() {
        let q = parse_query("DISTINCT SELECT Right FROM R").unwrap();
        let cq = from_query(&q, &env()).unwrap();
        assert_eq!(cq.head.len(), 2);
    }
}
