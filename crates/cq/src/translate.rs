//! Translation between HoTTSQL queries and conjunctive queries.
//!
//! [`from_query`] recognizes the CQ fragment of Sec. 5.2:
//! `DISTINCT SELECT p FROM t₁, …, tₙ [WHERE b]` where every `tᵢ` is a
//! base table, `p` is built from paths/pairs/constants, and `b` is a
//! conjunction of equalities between paths (or paths and constants).
//! Returns `None` for queries outside the fragment — the caller then
//! falls back to the general prover.
//!
//! [`to_query`] goes the other way: a [`Cq`] becomes the canonical
//! `DISTINCT SELECT head FROM atoms WHERE joins` query, with repeated
//! variables rendered as explicit join equalities. The certified
//! optimizer uses it to turn a minimized core back into a plan.

use crate::{Cq, CqBuilder, CqTerm};
use hottsql::ast::{Expr, Predicate, Proj, Query};
use hottsql::env::QueryEnv;
use relalg::Schema;

/// The tuple shape of a context, with CQ variables at the leaves.
#[derive(Clone, Debug)]
enum Shape {
    Unit,
    Leaf(CqTerm),
    Node(Box<Shape>, Box<Shape>),
}

impl Shape {
    fn leaves(&self, out: &mut Vec<CqTerm>) {
        match self {
            Shape::Unit => {}
            Shape::Leaf(t) => out.push(t.clone()),
            Shape::Node(l, r) => {
                l.leaves(out);
                r.leaves(out);
            }
        }
    }
}

/// Attempts to view a HoTTSQL query (closed, empty context) as a CQ.
///
/// Returns `None` when the query falls outside the conjunctive fragment.
pub fn from_query(q: &Query, env: &QueryEnv) -> Option<Cq> {
    let Query::Distinct(inner) = q else {
        return None;
    };
    let Query::Select(proj, body) = &**inner else {
        return None;
    };
    let (from, pred) = match &**body {
        Query::Where(f, b) => (&**f, Some(b)),
        other => (other, None),
    };
    let mut builder = CqBuilder::new();
    let from_shape = shape_of_from(from, env, &mut builder)?;
    // Context of the projection and predicate: node(empty, σ_from).
    let ctx = Shape::Node(Box::new(Shape::Unit), Box::new(from_shape));
    if let Some(b) = pred {
        collect_equalities(b, &ctx, &mut builder)?;
    }
    let head_shape = resolve_proj(proj, &ctx, &mut builder)?;
    let mut head = Vec::new();
    head_shape.leaves(&mut head);
    // Resolve head through the union-find by rebuilding with build():
    let head_vars: Option<Vec<u32>> = head
        .iter()
        .map(|t| match t {
            CqTerm::Var(v) => Some(*v),
            CqTerm::Const(_) => None,
        })
        .collect();
    match head_vars {
        Some(vars) => Some(builder.build(vars)),
        None => {
            // Heads with constants: build with placeholder vars bound to
            // the constants.
            let vars: Vec<u32> = head
                .iter()
                .map(|t| match t {
                    CqTerm::Var(v) => *v,
                    CqTerm::Const(c) => {
                        let v = builder.fresh();
                        builder.bind_const(v, c.clone());
                        v
                    }
                })
                .collect();
            Some(builder.build(vars))
        }
    }
}

/// Builds the shape of a FROM clause: a left-nested product of tables.
fn shape_of_from(q: &Query, env: &QueryEnv, b: &mut CqBuilder) -> Option<Shape> {
    match q {
        Query::Table(name) => {
            let schema = env.table(name)?;
            let (shape, vars) = fresh_shape(schema, b);
            b.atom(name.clone(), vars);
            Some(shape)
        }
        Query::Product(l, r) => {
            let ls = shape_of_from(l, env, b)?;
            let rs = shape_of_from(r, env, b)?;
            Some(Shape::Node(Box::new(ls), Box::new(rs)))
        }
        _ => None,
    }
}

fn fresh_shape(schema: &Schema, b: &mut CqBuilder) -> (Shape, Vec<u32>) {
    match schema {
        Schema::Empty => (Shape::Unit, Vec::new()),
        Schema::Leaf(_) => {
            let v = b.fresh();
            (Shape::Leaf(CqTerm::Var(v)), vec![v])
        }
        Schema::Node(l, r) => {
            let (ls, mut lv) = fresh_shape(l, b);
            let (rs, rv) = fresh_shape(r, b);
            lv.extend(rv);
            (Shape::Node(Box::new(ls), Box::new(rs)), lv)
        }
    }
}

/// Collects conjunctive equality predicates into the builder.
fn collect_equalities(p: &Predicate, ctx: &Shape, b: &mut CqBuilder) -> Option<()> {
    match p {
        Predicate::True => Some(()),
        Predicate::And(x, y) => {
            collect_equalities(x, ctx, b)?;
            collect_equalities(y, ctx, b)
        }
        Predicate::Eq(e1, e2) => {
            let t1 = resolve_scalar(e1, ctx, b)?;
            let t2 = resolve_scalar(e2, ctx, b)?;
            match (t1, t2) {
                (CqTerm::Var(x), CqTerm::Var(y)) => b.equate(x, y),
                (CqTerm::Var(x), CqTerm::Const(c)) | (CqTerm::Const(c), CqTerm::Var(x)) => {
                    b.bind_const(x, c)
                }
                (CqTerm::Const(c), CqTerm::Const(d)) => {
                    if c != d {
                        // Unsatisfiable query; representable but we bail
                        // to the general prover for clarity.
                        return None;
                    }
                }
            }
            Some(())
        }
        _ => None,
    }
}

fn resolve_scalar(e: &Expr, ctx: &Shape, b: &mut CqBuilder) -> Option<CqTerm> {
    match e {
        Expr::P2E(p) => match resolve_proj(p, ctx, b)? {
            Shape::Leaf(t) => Some(t),
            _ => None,
        },
        Expr::Const(v) => Some(CqTerm::Const(v.clone())),
        _ => None,
    }
}

fn resolve_proj(p: &Proj, ctx: &Shape, b: &mut CqBuilder) -> Option<Shape> {
    match p {
        Proj::Star => Some(ctx.clone()),
        Proj::Left => match ctx {
            Shape::Node(l, _) => Some((**l).clone()),
            _ => None,
        },
        Proj::Right => match ctx {
            Shape::Node(_, r) => Some((**r).clone()),
            _ => None,
        },
        Proj::Empty => Some(Shape::Unit),
        Proj::Dot(p1, p2) => {
            let mid = resolve_proj(p1, ctx, b)?;
            resolve_proj(p2, &mid, b)
        }
        Proj::Pair(p1, p2) => Some(Shape::Node(
            Box::new(resolve_proj(p1, ctx, b)?),
            Box::new(resolve_proj(p2, ctx, b)?),
        )),
        Proj::E2P(e) => Some(Shape::Leaf(resolve_scalar(e, ctx, b)?)),
        Proj::Var(_) => None, // meta-variables are outside the decidable fragment
    }
}

/// Renders a CQ as the canonical HoTTSQL query of its fragment:
/// `DISTINCT SELECT h₁, … FROM R₁, … WHERE joins`. The head projects a
/// right-nested pair of columns (a single projection when the head has
/// one term, `Empty` for Boolean queries). Every table mentioned must
/// be declared in `env` with a schema whose leaf count matches the
/// atom's arity; returns `None` otherwise.
pub fn to_query(cq: &Cq, env: &QueryEnv) -> Option<Query> {
    if cq.atoms.is_empty() {
        return None;
    }
    let n = cq.atoms.len();
    // Path to table slot `i` in the left-associated FROM product, then
    // to leaf `j` of that table's schema, all under the WHERE/SELECT
    // context `node(empty, σ_FROM)` (hence the leading `Right`).
    let slot_proj = |i: usize| -> Proj {
        let mut p = Proj::Right;
        for _ in 0..(n - 1 - i) {
            p = Proj::dot(p, Proj::Left);
        }
        if i > 0 {
            p = Proj::dot(p, Proj::Right);
        }
        p
    };
    let mut schemas = Vec::with_capacity(n);
    for atom in &cq.atoms {
        let schema = env.table(&atom.rel)?;
        if schema.width() != atom.terms.len() {
            return None;
        }
        schemas.push(schema);
    }
    // First occurrence of each variable, and join equalities for the
    // rest; constants constrain their column directly.
    let mut rep: std::collections::BTreeMap<u32, Proj> = std::collections::BTreeMap::new();
    let mut preds: Vec<Predicate> = Vec::new();
    for (i, atom) in cq.atoms.iter().enumerate() {
        for (j, term) in atom.terms.iter().enumerate() {
            let col = leaf_proj(slot_proj(i), schemas[i], j)?;
            match term {
                CqTerm::Var(v) => match rep.get(v) {
                    None => {
                        rep.insert(*v, col);
                    }
                    Some(first) => {
                        preds.push(Predicate::eq(Expr::p2e(first.clone()), Expr::p2e(col)))
                    }
                },
                CqTerm::Const(c) => {
                    preds.push(Predicate::eq(Expr::p2e(col), Expr::value(c.clone())))
                }
            }
        }
    }
    let head: Option<Vec<Proj>> = cq
        .head
        .iter()
        .map(|t| match t {
            CqTerm::Var(v) => rep.get(v).cloned(),
            CqTerm::Const(c) => Some(Proj::e2p(Expr::value(c.clone()))),
        })
        .collect();
    let head = head?;
    let head_proj = match head.len() {
        0 => Proj::Empty,
        _ => {
            let mut it = head.into_iter().rev();
            let last = it.next().expect("nonempty head");
            it.fold(last, |acc, p| Proj::pair(p, acc))
        }
    };
    let from = Query::product_all(cq.atoms.iter().map(|a| Query::table(a.rel.clone())));
    let body = if preds.is_empty() {
        from
    } else {
        Query::where_(from, Predicate::and_all(preds))
    };
    Some(Query::distinct(Query::select(head_proj, body)))
}

/// Projection from a table slot to its `j`-th leaf.
fn leaf_proj(base: Proj, schema: &Schema, j: usize) -> Option<Proj> {
    match schema {
        Schema::Empty => None,
        Schema::Leaf(_) => (j == 0).then_some(base),
        Schema::Node(l, r) => {
            let lw = l.width();
            if j < lw {
                leaf_proj(Proj::dot(base, Proj::Left), l, j)
            } else {
                leaf_proj(Proj::dot(base, Proj::Right), r, j - lw)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent_set;
    use hottsql::parse::parse_query;
    use relalg::BaseType;

    fn env() -> QueryEnv {
        QueryEnv::new()
            .with_table("R1", Schema::flat([BaseType::Int, BaseType::Int]))
            .with_table("R2", Schema::flat([BaseType::Int]))
            .with_table("R", Schema::flat([BaseType::Int, BaseType::Int]))
    }

    #[test]
    fn translates_simple_projection() {
        let q = parse_query("DISTINCT SELECT Right.Left FROM R").unwrap();
        let cq = from_query(&q, &env()).unwrap();
        assert_eq!(cq.atoms.len(), 1);
        assert_eq!(cq.atoms[0].rel, "R");
        assert_eq!(cq.head.len(), 1);
        assert_eq!(cq.head[0], cq.atoms[0].terms[0]);
    }

    #[test]
    fn translates_join_with_equality() {
        // The Sec. 5.2 / Fig. 10 left query:
        // DISTINCT SELECT x.c1 FROM R1 x, R2 y WHERE x.c2 = y.c3
        let q = parse_query(
            "DISTINCT SELECT Right.Left.Left FROM R1, R2 \
             WHERE Right.Left.Right = Right.Right",
        )
        .unwrap();
        let cq = from_query(&q, &env()).unwrap();
        assert_eq!(cq.atoms.len(), 2);
        // The equality identified R1's second column with R2's column.
        assert_eq!(cq.atoms[0].terms[1], cq.atoms[1].terms[0]);
    }

    #[test]
    fn fig10_pair_equivalence_via_decision_procedure() {
        let q1 = parse_query(
            "DISTINCT SELECT Right.Left.Left FROM R1, R2 \
             WHERE Right.Left.Right = Right.Right",
        )
        .unwrap();
        let q2 = parse_query(
            "DISTINCT SELECT Right.Left.Left.Left FROM (R1, R1), R2 \
             WHERE Right.Left.Left.Left = Right.Left.Right.Left \
             AND Right.Left.Left.Right = Right.Right",
        )
        .unwrap();
        let e = env();
        let c1 = from_query(&q1, &e).unwrap();
        let c2 = from_query(&q2, &e).unwrap();
        assert!(equivalent_set(&c1, &c2), "{c1}  vs  {c2}");
    }

    #[test]
    fn constants_translate() {
        let q = parse_query("DISTINCT SELECT Right.Left FROM R WHERE Right.Right = 5").unwrap();
        let cq = from_query(&q, &env()).unwrap();
        assert!(cq.atoms[0]
            .terms
            .iter()
            .any(|t| matches!(t, CqTerm::Const(relalg::Value::Int(5)))));
    }

    #[test]
    fn non_cq_features_are_rejected() {
        let e = env();
        // No DISTINCT.
        let q = parse_query("SELECT Right.Left FROM R").unwrap();
        assert!(from_query(&q, &e).is_none());
        // Disjunction.
        let q = parse_query(
            "DISTINCT SELECT Right.Left FROM R WHERE Right.Right = 1 OR Right.Right = 2",
        )
        .unwrap();
        assert!(from_query(&q, &e).is_none());
        // EXCEPT.
        let q = parse_query("DISTINCT SELECT Right.Left FROM (R EXCEPT R)").unwrap();
        assert!(from_query(&q, &e).is_none());
    }

    #[test]
    fn unsatisfiable_constant_equality_rejected() {
        let q = parse_query("DISTINCT SELECT Right.Left FROM R WHERE 1 = 2").unwrap();
        assert!(from_query(&q, &env()).is_none());
    }

    #[test]
    fn star_head_projects_all_columns() {
        let q = parse_query("DISTINCT SELECT Right FROM R").unwrap();
        let cq = from_query(&q, &env()).unwrap();
        assert_eq!(cq.head.len(), 2);
    }

    #[test]
    fn to_query_roundtrips_through_from_query() {
        // Cq → Query → Cq must be set-equivalent to the original.
        let e = env();
        for (i, cq) in [
            crate::generate::chain(3),
            crate::generate::star(4),
            crate::generate::random_cq(7, 5, 3, &["R", "R1"]),
        ]
        .iter()
        .enumerate()
        {
            // chain/star use binary "E"; declare it.
            let e = e
                .clone()
                .with_table("E", Schema::flat([BaseType::Int, BaseType::Int]));
            let q = to_query(cq, &e).unwrap_or_else(|| panic!("case {i}: to_query failed"));
            let back = from_query(&q, &e).unwrap_or_else(|| panic!("case {i}: not in fragment"));
            assert!(equivalent_set(cq, &back), "case {i}: {cq} vs {back}");
        }
    }

    #[test]
    fn to_query_renders_constants_and_boolean_heads() {
        let e = env();
        let cq = Cq::new(
            vec![],
            vec![crate::CqAtom::new(
                "R",
                vec![CqTerm::Var(0), CqTerm::Const(relalg::Value::Int(3))],
            )],
        );
        let q = to_query(&cq, &e).unwrap();
        let back = from_query(&q, &e).unwrap();
        assert!(equivalent_set(&cq, &back), "{cq} vs {back}");
    }

    #[test]
    fn to_query_rejects_unknown_tables_and_arity_mismatch() {
        let e = env();
        let unknown = Cq::new(vec![], vec![crate::CqAtom::new("Z", vec![CqTerm::Var(0)])]);
        assert!(to_query(&unknown, &e).is_none());
        let wrong_arity = Cq::new(vec![], vec![crate::CqAtom::new("R", vec![CqTerm::Var(0)])]);
        assert!(to_query(&wrong_arity, &e).is_none());
    }
}
