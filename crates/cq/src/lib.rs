//! Conjunctive queries and the automated decision procedure (Sec. 5.2).
//!
//! Conjunctive queries (CQs) are the fragment
//! `DISTINCT SELECT p FROM q₁, …, qₙ WHERE b` where `b` is a conjunction
//! of equalities — the best-studied decidable fragment of SQL (Fig. 9):
//!
//! | problem | complexity |
//! |---|---|
//! | set containment / equivalence | NP-complete (Chandra–Merlin) |
//! | bag equivalence | graph isomorphism |
//! | UCQ containment (set) | NP-complete (Sagiv–Yannakakis) |
//!
//! This crate implements the canonical representation ([`Cq`]),
//! homomorphism-based containment with witness extraction (the mappings
//! visualized in Fig. 10), bag equivalence via atom-multiset isomorphism,
//! CQ minimization (cores), union-of-CQ containment, translation from
//! HoTTSQL ([`translate`]), and workload generators for the Fig. 9
//! scaling benchmarks ([`generate`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bag;
pub mod containment;
pub mod generate;
pub mod minimize;
pub mod translate;
pub mod ucq;

use relalg::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A term in a CQ atom or head: a variable or a constant.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CqTerm {
    /// A query variable.
    Var(u32),
    /// A constant value.
    Const(Value),
}

impl CqTerm {
    /// The variable id, if this is a variable.
    pub fn var(&self) -> Option<u32> {
        match self {
            CqTerm::Var(v) => Some(*v),
            CqTerm::Const(_) => None,
        }
    }
}

impl fmt::Display for CqTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqTerm::Var(v) => write!(f, "x{v}"),
            CqTerm::Const(c) => write!(f, "{c}"),
        }
    }
}

/// One relational atom `R(t₁, …, tₖ)` of a CQ body.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CqAtom {
    /// Relation name.
    pub rel: String,
    /// Argument terms, one per column.
    pub terms: Vec<CqTerm>,
}

impl CqAtom {
    /// Builds an atom.
    pub fn new(rel: impl Into<String>, terms: Vec<CqTerm>) -> CqAtom {
        CqAtom {
            rel: rel.into(),
            terms,
        }
    }
}

impl fmt::Display for CqAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A conjunctive query `head(h₁,…,hₘ) :- atom₁, …, atomₙ`.
///
/// Equality predicates are represented by *variable identification*:
/// building a [`Cq`] through [`CqBuilder`] merges equated variables, so a
/// `Cq` is always in equality-collapsed form.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cq {
    /// Projected terms, in output-column order.
    pub head: Vec<CqTerm>,
    /// Body atoms.
    pub atoms: Vec<CqAtom>,
}

impl Cq {
    /// Builds a CQ directly (callers must have collapsed equalities).
    pub fn new(head: Vec<CqTerm>, atoms: Vec<CqAtom>) -> Cq {
        Cq { head, atoms }
    }

    /// All variables occurring in the query (sorted).
    pub fn variables(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .head
            .iter()
            .chain(self.atoms.iter().flat_map(|a| a.terms.iter()))
            .filter_map(CqTerm::var)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of body atoms.
    pub fn size(&self) -> usize {
        self.atoms.len()
    }

    /// Renames all variables by the given map (ids absent from the map
    /// are kept).
    pub fn rename(&self, map: &BTreeMap<u32, u32>) -> Cq {
        let fix = |t: &CqTerm| match t {
            CqTerm::Var(v) => CqTerm::Var(*map.get(v).unwrap_or(v)),
            c => c.clone(),
        };
        Cq {
            head: self.head.iter().map(fix).collect(),
            atoms: self
                .atoms
                .iter()
                .map(|a| CqAtom::new(a.rel.clone(), a.terms.iter().map(fix).collect()))
                .collect(),
        }
    }

    /// Renames variables so the two queries share no ids (returns the
    /// renamed `other`).
    pub fn apart(&self, other: &Cq) -> Cq {
        let max = self.variables().last().copied().unwrap_or(0);
        let map: BTreeMap<u32, u32> = other
            .variables()
            .into_iter()
            .map(|v| (v, v + max + 1))
            .collect();
        other.rename(&map)
    }
}

impl fmt::Display for Cq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ans(")?;
        for (i, h) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{h}")?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// Incremental CQ builder with union-find variable identification for
/// equality predicates.
#[derive(Clone, Debug, Default)]
pub struct CqBuilder {
    next_var: u32,
    parent: BTreeMap<u32, u32>,
    consts: BTreeMap<u32, Value>,
    atoms: Vec<CqAtom>,
    contradictory: bool,
}

impl CqBuilder {
    /// An empty builder.
    pub fn new() -> CqBuilder {
        CqBuilder::default()
    }

    /// Allocates a fresh variable.
    pub fn fresh(&mut self) -> u32 {
        let v = self.next_var;
        self.next_var += 1;
        self.parent.insert(v, v);
        v
    }

    fn find(&mut self, v: u32) -> u32 {
        let p = *self.parent.get(&v).unwrap_or(&v);
        if p == v {
            return v;
        }
        let r = self.find(p);
        self.parent.insert(v, r);
        r
    }

    /// Asserts `a = b` (variable identification).
    pub fn equate(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // Merge constant bindings.
        match (self.consts.get(&ra).cloned(), self.consts.get(&rb).cloned()) {
            (Some(x), Some(y)) if x != y => self.contradictory = true,
            (Some(x), None) => {
                self.consts.insert(rb, x);
            }
            _ => {}
        }
        self.parent.insert(ra, rb);
    }

    /// Binds a variable to a constant (`x = c` predicates).
    pub fn bind_const(&mut self, v: u32, c: Value) {
        let r = self.find(v);
        match self.consts.get(&r) {
            Some(prev) if *prev != c => self.contradictory = true,
            _ => {
                self.consts.insert(r, c);
            }
        }
    }

    /// Adds a body atom over variables.
    pub fn atom(&mut self, rel: impl Into<String>, vars: Vec<u32>) {
        self.atoms.push(CqAtom::new(
            rel,
            vars.into_iter().map(CqTerm::Var).collect(),
        ));
    }

    /// Whether the accumulated equalities are unsatisfiable (two distinct
    /// constants identified) — the query denotes the empty set.
    pub fn contradictory(&self) -> bool {
        self.contradictory
    }

    /// Finalizes into a [`Cq`] with the given head variables.
    pub fn build(mut self, head: Vec<u32>) -> Cq {
        let resolve = |b: &mut CqBuilder, v: u32| -> CqTerm {
            let r = b.find(v);
            match b.consts.get(&r) {
                Some(c) => CqTerm::Const(c.clone()),
                None => CqTerm::Var(r),
            }
        };
        let head: Vec<CqTerm> = head.into_iter().map(|v| resolve(&mut self, v)).collect();
        let atoms = self
            .atoms
            .clone()
            .into_iter()
            .map(|a| {
                let terms = a
                    .terms
                    .iter()
                    .map(|t| match t {
                        CqTerm::Var(v) => resolve(&mut self, *v),
                        c => c.clone(),
                    })
                    .collect();
                CqAtom::new(a.rel, terms)
            })
            .collect();
        Cq { head, atoms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_identifies_variables() {
        let mut b = CqBuilder::new();
        let x = b.fresh();
        let y = b.fresh();
        let z = b.fresh();
        b.atom("R", vec![x, y]);
        b.atom("S", vec![y, z]);
        b.equate(x, z);
        let q = b.build(vec![x]);
        // x and z collapse to one variable.
        assert_eq!(q.variables().len(), 2);
        assert_eq!(q.atoms[0].terms[0], q.atoms[1].terms[1]);
    }

    #[test]
    fn builder_propagates_constants() {
        let mut b = CqBuilder::new();
        let x = b.fresh();
        let y = b.fresh();
        b.atom("R", vec![x, y]);
        b.bind_const(x, Value::Int(3));
        b.equate(x, y);
        let q = b.build(vec![y]);
        assert_eq!(q.head, vec![CqTerm::Const(Value::Int(3))]);
        assert_eq!(q.atoms[0].terms[1], CqTerm::Const(Value::Int(3)));
    }

    #[test]
    fn contradictory_constants_flagged() {
        let mut b = CqBuilder::new();
        let x = b.fresh();
        let y = b.fresh();
        b.bind_const(x, Value::Int(1));
        b.bind_const(y, Value::Int(2));
        assert!(!b.contradictory());
        b.equate(x, y);
        assert!(b.contradictory());
    }

    #[test]
    fn rename_apart_disjoint() {
        let q1 = Cq::new(
            vec![CqTerm::Var(0)],
            vec![CqAtom::new("R", vec![CqTerm::Var(0), CqTerm::Var(1)])],
        );
        let q2 = q1.clone();
        let q2r = q1.apart(&q2);
        let v1 = q1.variables();
        let v2 = q2r.variables();
        assert!(v1.iter().all(|v| !v2.contains(v)));
    }

    #[test]
    fn display_is_datalog_like() {
        let q = Cq::new(
            vec![CqTerm::Var(0)],
            vec![
                CqAtom::new("R", vec![CqTerm::Var(0), CqTerm::Var(1)]),
                CqAtom::new("S", vec![CqTerm::Var(1), CqTerm::Const(Value::Int(5))]),
            ],
        );
        assert_eq!(q.to_string(), "ans(x0) :- R(x0, x1), S(x1, 5)");
    }

    #[test]
    fn variables_sorted_dedup() {
        let q = Cq::new(
            vec![CqTerm::Var(3)],
            vec![CqAtom::new("R", vec![CqTerm::Var(1), CqTerm::Var(3)])],
        );
        assert_eq!(q.variables(), vec![1, 3]);
        assert_eq!(q.size(), 1);
    }
}
