//! Unions of conjunctive queries (UCQs).
//!
//! Sagiv–Yannakakis [42]: a UCQ `q₁ ∪ … ∪ qₙ` is contained in
//! `p₁ ∪ … ∪ pₘ` (set semantics) iff every `qᵢ` is contained in *some*
//! `pⱼ`. Containment/equivalence of UCQs is NP-complete (Fig. 9, row 2).

use crate::containment::contained_in;
use crate::Cq;
use std::fmt;

/// A union of conjunctive queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ucq {
    /// The disjuncts.
    pub disjuncts: Vec<Cq>,
}

impl Ucq {
    /// Builds a UCQ from disjuncts.
    pub fn new(disjuncts: Vec<Cq>) -> Ucq {
        Ucq { disjuncts }
    }

    /// Removes disjuncts that are contained in another disjunct
    /// (redundant union arms).
    pub fn simplify(&self) -> Ucq {
        let mut keep: Vec<Cq> = Vec::new();
        for (i, q) in self.disjuncts.iter().enumerate() {
            let redundant = self.disjuncts.iter().enumerate().any(|(j, p)| {
                i != j
                    && contained_in(q, p)
                    // Break ties deterministically for mutually-contained
                    // pairs: keep the earlier one.
                    && !(contained_in(p, q) && j > i)
            });
            if !redundant {
                keep.push(q.clone());
            }
        }
        Ucq::new(keep)
    }
}

impl fmt::Display for Ucq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, q) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, "  ∪  ")?;
            }
            write!(f, "{q}")?;
        }
        Ok(())
    }
}

/// Decides `a ⊆ b` for UCQs (Sagiv–Yannakakis).
pub fn ucq_contained_in(a: &Ucq, b: &Ucq) -> bool {
    a.disjuncts
        .iter()
        .all(|q| b.disjuncts.iter().any(|p| contained_in(q, p)))
}

/// Decides set equivalence of UCQs.
pub fn ucq_equivalent(a: &Ucq, b: &Ucq) -> bool {
    ucq_contained_in(a, b) && ucq_contained_in(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CqAtom, CqTerm};

    fn v(n: u32) -> CqTerm {
        CqTerm::Var(n)
    }

    fn edge() -> Cq {
        Cq::new(vec![], vec![CqAtom::new("R", vec![v(0), v(1)])])
    }

    fn path2() -> Cq {
        Cq::new(
            vec![],
            vec![
                CqAtom::new("R", vec![v(0), v(1)]),
                CqAtom::new("R", vec![v(1), v(2)]),
            ],
        )
    }

    fn s_atom() -> Cq {
        Cq::new(vec![], vec![CqAtom::new("S", vec![v(0)])])
    }

    #[test]
    fn union_with_redundant_arm_simplifies() {
        let u = Ucq::new(vec![edge(), path2()]);
        // path2 ⊆ edge, so the union collapses to edge.
        let s = u.simplify();
        assert_eq!(s.disjuncts.len(), 1);
        assert_eq!(s.disjuncts[0], edge());
        assert!(ucq_equivalent(&u, &s));
    }

    #[test]
    fn containment_per_disjunct() {
        let a = Ucq::new(vec![path2()]);
        let b = Ucq::new(vec![edge(), s_atom()]);
        assert!(ucq_contained_in(&a, &b));
        assert!(!ucq_contained_in(&b, &a));
    }

    #[test]
    fn disjuncts_may_map_to_different_arms() {
        let a = Ucq::new(vec![path2(), s_atom()]);
        let b = Ucq::new(vec![edge(), s_atom()]);
        assert!(ucq_contained_in(&a, &b));
    }

    #[test]
    fn equivalence_of_reordered_unions() {
        let a = Ucq::new(vec![edge(), s_atom()]);
        let b = Ucq::new(vec![s_atom(), edge()]);
        assert!(ucq_equivalent(&a, &b));
    }

    #[test]
    fn mutually_contained_duplicates_keep_one() {
        let u = Ucq::new(vec![edge(), edge()]);
        let s = u.simplify();
        assert_eq!(s.disjuncts.len(), 1);
    }

    #[test]
    fn display_joins_with_union() {
        let u = Ucq::new(vec![edge(), s_atom()]);
        assert!(u.to_string().contains("∪"));
    }
}
