//! CQ minimization: computing the core.
//!
//! The *core* of a CQ is a minimal set-equivalent subquery; it is unique
//! up to isomorphism (Chandra–Merlin). Minimization repeatedly tries to
//! drop a body atom while preserving set equivalence — the foundation of
//! redundant-join elimination (the Q2 ≡ Q3 pattern of Sec. 2 generalizes
//! to: a CQ equals its core).

use crate::containment::equivalent_set;
use crate::Cq;

/// Computes the core of a CQ.
///
/// Quadratic in the number of atoms times the (NP) cost of the
/// containment checks; fine at rewrite-rule scale.
pub fn minimize(q: &Cq) -> Cq {
    let mut current = q.clone();
    loop {
        let mut reduced = None;
        for i in 0..current.atoms.len() {
            if current.atoms.len() == 1 {
                break;
            }
            let mut candidate = current.clone();
            candidate.atoms.remove(i);
            // Dropping an atom can only grow the result; equivalence
            // holds iff the candidate is contained in the original.
            if equivalent_set(&candidate, &current) {
                reduced = Some(candidate);
                break;
            }
        }
        match reduced {
            Some(c) => current = c,
            None => return current,
        }
    }
}

/// Whether a CQ is its own core (no removable atom).
pub fn is_minimal(q: &Cq) -> bool {
    minimize(q).size() == q.size()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CqAtom, CqTerm};

    fn v(n: u32) -> CqTerm {
        CqTerm::Var(n)
    }

    #[test]
    fn redundant_self_join_minimizes_to_single_atom() {
        let q3 = Cq::new(
            vec![v(0)],
            vec![
                CqAtom::new("R", vec![v(0), v(1)]),
                CqAtom::new("R", vec![v(0), v(2)]),
            ],
        );
        let core = minimize(&q3);
        assert_eq!(core.size(), 1);
        assert!(equivalent_set(&core, &q3));
        assert!(!is_minimal(&q3));
    }

    #[test]
    fn chain_is_already_minimal() {
        // ans(x) :- R(x,y), S(y,z): both atoms needed.
        let q = Cq::new(
            vec![v(0)],
            vec![
                CqAtom::new("R", vec![v(0), v(1)]),
                CqAtom::new("S", vec![v(1), v(2)]),
            ],
        );
        assert!(is_minimal(&q));
        assert_eq!(minimize(&q), q);
    }

    #[test]
    fn triangle_with_pendant_edge() {
        // ans() :- E(x,y), E(y,z), E(z,x), E(x,w):
        // the pendant E(x,w) folds onto E(x,y), so the core is the
        // triangle.
        let q = Cq::new(
            vec![],
            vec![
                CqAtom::new("E", vec![v(0), v(1)]),
                CqAtom::new("E", vec![v(1), v(2)]),
                CqAtom::new("E", vec![v(2), v(0)]),
                CqAtom::new("E", vec![v(0), v(3)]),
            ],
        );
        let core = minimize(&q);
        assert_eq!(core.size(), 3);
        assert!(equivalent_set(&core, &q));
    }

    #[test]
    fn head_variables_protect_atoms() {
        // ans(x, w) :- E(x,y), E(x,w): w is in the head, so its atom
        // cannot fold away; only y's can.
        let q = Cq::new(
            vec![v(0), v(3)],
            vec![
                CqAtom::new("E", vec![v(0), v(1)]),
                CqAtom::new("E", vec![v(0), v(3)]),
            ],
        );
        let core = minimize(&q);
        assert_eq!(core.size(), 1);
        assert_eq!(core.head, vec![v(0), v(3)]);
        // The surviving atom must be the one with the head variable.
        assert_eq!(core.atoms[0].terms, vec![v(0), v(3)]);
    }

    #[test]
    fn single_atom_is_minimal() {
        let q = Cq::new(vec![v(0)], vec![CqAtom::new("R", vec![v(0)])]);
        assert!(is_minimal(&q));
    }
}
