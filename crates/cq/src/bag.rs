//! Bag equivalence of conjunctive queries.
//!
//! Under bag semantics, two CQs are equivalent iff they are *isomorphic*
//! (Chaudhuri–Vardi [10]; Fig. 9 lists the problem as graph-isomorphism
//! complete). The implementation searches for a variable bijection that
//! maps the atom multiset of one query onto the other's exactly and
//! preserves the head.

use crate::{Cq, CqTerm};
use std::collections::BTreeMap;

/// Decides bag equivalence of two CQs (isomorphism), returning the
/// variable bijection on success.
pub fn bag_equivalent_witness(a: &Cq, b: &Cq) -> Option<BTreeMap<u32, u32>> {
    if a.head.len() != b.head.len() || a.atoms.len() != b.atoms.len() {
        return None;
    }
    // Necessary: same multiset of relation names.
    let mut ra: Vec<&str> = a.atoms.iter().map(|x| x.rel.as_str()).collect();
    let mut rb: Vec<&str> = b.atoms.iter().map(|x| x.rel.as_str()).collect();
    ra.sort_unstable();
    rb.sort_unstable();
    if ra != rb {
        return None;
    }
    let mut map: BTreeMap<u32, u32> = BTreeMap::new();
    let mut used_b: BTreeMap<u32, u32> = BTreeMap::new(); // reverse map
                                                          // Head must map pointwise.
    for (ta, tb) in a.head.iter().zip(&b.head) {
        if !extend(&mut map, &mut used_b, ta, tb) {
            return None;
        }
    }
    let mut used_atoms = vec![false; b.atoms.len()];
    if match_atoms(a, b, 0, &mut used_atoms, &mut map, &mut used_b) {
        Some(map)
    } else {
        None
    }
}

/// Decides bag equivalence.
pub fn bag_equivalent(a: &Cq, b: &Cq) -> bool {
    bag_equivalent_witness(a, b).is_some()
}

fn extend(
    map: &mut BTreeMap<u32, u32>,
    rev: &mut BTreeMap<u32, u32>,
    ta: &CqTerm,
    tb: &CqTerm,
) -> bool {
    match (ta, tb) {
        (CqTerm::Const(x), CqTerm::Const(y)) => x == y,
        (CqTerm::Var(x), CqTerm::Var(y)) => match (map.get(x), rev.get(y)) {
            (Some(mapped), _) if mapped != y => false,
            (_, Some(src)) if src != x => false,
            _ => {
                map.insert(*x, *y);
                rev.insert(*y, *x);
                true
            }
        },
        _ => false,
    }
}

fn match_atoms(
    a: &Cq,
    b: &Cq,
    i: usize,
    used: &mut [bool],
    map: &mut BTreeMap<u32, u32>,
    rev: &mut BTreeMap<u32, u32>,
) -> bool {
    let Some(atom) = a.atoms.get(i) else {
        return true;
    };
    for (j, cand) in b.atoms.iter().enumerate() {
        if used[j] || cand.rel != atom.rel || cand.terms.len() != atom.terms.len() {
            continue;
        }
        let (m0, r0) = (map.clone(), rev.clone());
        let ok = atom
            .terms
            .iter()
            .zip(&cand.terms)
            .all(|(ta, tb)| extend(map, rev, ta, tb));
        if ok {
            used[j] = true;
            if match_atoms(a, b, i + 1, used, map, rev) {
                return true;
            }
            used[j] = false;
        }
        *map = m0;
        *rev = r0;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CqAtom;

    fn v(n: u32) -> CqTerm {
        CqTerm::Var(n)
    }

    #[test]
    fn alpha_renaming_is_bag_equivalent() {
        let a = Cq::new(vec![v(0)], vec![CqAtom::new("R", vec![v(0), v(1)])]);
        let b = Cq::new(vec![v(7)], vec![CqAtom::new("R", vec![v(7), v(9)])]);
        let w = bag_equivalent_witness(&a, &b).unwrap();
        assert_eq!(w.get(&0), Some(&7));
        assert_eq!(w.get(&1), Some(&9));
    }

    #[test]
    fn atom_reordering_is_bag_equivalent() {
        let a = Cq::new(
            vec![],
            vec![
                CqAtom::new("R", vec![v(0)]),
                CqAtom::new("S", vec![v(0), v(1)]),
            ],
        );
        let b = Cq::new(
            vec![],
            vec![
                CqAtom::new("S", vec![v(2), v(3)]),
                CqAtom::new("R", vec![v(2)]),
            ],
        );
        assert!(bag_equivalent(&a, &b));
    }

    #[test]
    fn redundant_self_join_not_bag_equivalent() {
        // Set-equivalent but multiplicities differ: a key distinction the
        // paper's semantics gets right (Sec. 2).
        let q2 = Cq::new(vec![v(0)], vec![CqAtom::new("R", vec![v(0), v(1)])]);
        let q3 = Cq::new(
            vec![v(0)],
            vec![
                CqAtom::new("R", vec![v(0), v(1)]),
                CqAtom::new("R", vec![v(0), v(2)]),
            ],
        );
        assert!(crate::containment::equivalent_set(&q2, &q3));
        assert!(!bag_equivalent(&q2, &q3));
    }

    #[test]
    fn injectivity_enforced() {
        // ans() :- R(x, y)  vs  ans() :- R(x, x): not isomorphic.
        let a = Cq::new(vec![], vec![CqAtom::new("R", vec![v(0), v(1)])]);
        let b = Cq::new(vec![], vec![CqAtom::new("R", vec![v(0), v(0)])]);
        assert!(!bag_equivalent(&a, &b));
        assert!(!bag_equivalent(&b, &a));
    }

    #[test]
    fn head_order_matters() {
        let a = Cq::new(vec![v(0), v(1)], vec![CqAtom::new("R", vec![v(0), v(1)])]);
        let b = Cq::new(vec![v(1), v(0)], vec![CqAtom::new("R", vec![v(0), v(1)])]);
        assert!(!bag_equivalent(&a, &b));
    }

    #[test]
    fn constants_compared_exactly() {
        use relalg::Value;
        let a = Cq::new(
            vec![],
            vec![CqAtom::new("R", vec![CqTerm::Const(Value::Int(1))])],
        );
        let b = Cq::new(
            vec![],
            vec![CqAtom::new("R", vec![CqTerm::Const(Value::Int(2))])],
        );
        assert!(!bag_equivalent(&a, &b));
        assert!(bag_equivalent(&a, &a.clone()));
    }
}
