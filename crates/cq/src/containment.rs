//! Homomorphism-based containment and equivalence of conjunctive queries.
//!
//! The Chandra–Merlin theorem: `q₁ ⊆ q₂` (set semantics) iff there is a
//! *homomorphism* `h : vars(q₂) → terms(q₁)` with `h(head₂) = head₁`
//! mapping every atom of `q₂` onto an atom of `q₁`. Deciding this is
//! NP-complete (Fig. 9); the implementation is a backtracking search over
//! atom images with forward-checking on the variable assignment.
//!
//! Two layers keep the search fast without changing a single verdict:
//!
//! * **Bitset candidate indexes** — [`prepare`] builds, per relation, a
//!   bitset over that relation's body atoms for every arity and for every
//!   `(position, constant)` occurrence. A containment check intersects
//!   those words once per goal atom, so the backtracking loop only ever
//!   visits candidates that could possibly match, instead of re-scanning
//!   (and arity-checking) the full atom list at every search node. The
//!   filters only remove candidates the old scan would have rejected
//!   anyway, so the first witness found — and therefore the returned
//!   [`Homomorphism`] — is bit-identical to the plain scan's.
//! * **Trail-based backtracking** — variable bindings live in a dense
//!   slot array with an undo trail; backtracking pops the trail instead
//!   of cloning the whole assignment map per candidate.
//!
//! The homomorphism witness is returned explicitly: printed, it is the
//! arrow diagram of Fig. 10. [`SearchStats`] reports how much work the
//! bitsets saved (the `containment_scale` BENCH series plots it).

use crate::{Cq, CqAtom, CqTerm};
use relalg::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A homomorphism witness: a mapping from the contained-in query's
/// variables to terms of the containing query.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Homomorphism {
    /// Variable assignment.
    pub map: BTreeMap<u32, CqTerm>,
}

impl Homomorphism {
    /// Applies the mapping to a term.
    pub fn apply(&self, t: &CqTerm) -> CqTerm {
        match t {
            CqTerm::Var(v) => self.map.get(v).cloned().unwrap_or_else(|| t.clone()),
            c => c.clone(),
        }
    }
}

impl fmt::Display for Homomorphism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (v, t)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "x{v} ↦ {t}")?;
        }
        Ok(())
    }
}

/// Deterministic work counters for the homomorphism search. Candidate
/// accounting is static per (goal, target) pair — the bitsets are built
/// before the search runs — so repeated runs over the same corpus report
/// the same numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Containment checks that got past the head-width guard.
    pub checks: u64,
    /// Candidate atoms a full per-goal-atom scan would have visited
    /// (sum of same-relation body atom counts over all goal atoms).
    pub candidates_total: u64,
    /// Candidates the bitset intersection excluded before the search
    /// (arity mismatch or constant-position mismatch).
    pub bitset_pruned: u64,
    /// Candidates the backtracking search actually attempted.
    pub candidates_scanned: u64,
}

impl SearchStats {
    /// Accumulates another stats bag into this one.
    pub fn merge(&mut self, other: &SearchStats) {
        self.checks += other.checks;
        self.candidates_total += other.candidates_total;
        self.bitset_pruned += other.bitset_pruned;
        self.candidates_scanned += other.candidates_scanned;
    }
}

/// A bitset over one relation's candidate atoms. Up to 64 candidates —
/// effectively every real query — live inline in one word; larger
/// bodies spill into a vector. Cloning/intersecting the inline form is
/// allocation-free, which keeps [`prepare`] cheap on small queries.
#[derive(Clone, Debug, Default)]
struct Mask {
    head: u64,
    spill: Vec<u64>,
}

impl Mask {
    fn empty(len: usize) -> Mask {
        Mask {
            head: 0,
            spill: vec![0; len.div_ceil(64).saturating_sub(1)],
        }
    }

    /// All candidates live: the identity of [`Mask::intersect`].
    fn all(len: usize) -> Mask {
        let mut m = Mask::empty(len);
        m.head = ones_below(len.min(64));
        for (w, chunk) in m.spill.iter_mut().zip((64..len).step_by(64)) {
            *w = ones_below((len - chunk).min(64));
        }
        m
    }

    fn set(&mut self, i: usize) {
        if i < 64 {
            self.head |= 1u64 << i;
        } else {
            self.spill[i / 64 - 1] |= 1u64 << (i % 64);
        }
    }

    fn intersect(&mut self, other: &Mask) {
        self.head &= other.head;
        for (a, b) in self.spill.iter_mut().zip(&other.spill) {
            *a &= b;
        }
    }

    fn count(&self) -> u64 {
        u64::from(self.head.count_ones())
            + self
                .spill
                .iter()
                .map(|w| u64::from(w.count_ones()))
                .sum::<u64>()
    }
}

/// The low `n` bits set (`n ≤ 64`).
fn ones_below(n: usize) -> u64 {
    match n {
        64 => u64::MAX,
        n => (1u64 << n) - 1,
    }
}

/// One relation's candidate group inside a [`PreparedCq`]: a contiguous
/// run of the flat candidate-atom array plus the static bitset filters a
/// goal atom intersects before searching. The filter tables are built
/// lazily — `None` when they could never prune (all candidates share one
/// arity / carry no constants), which is the common case and keeps
/// [`prepare`] allocation-light.
#[derive(Clone, Debug)]
struct RelGroup<'a> {
    rel: &'a str,
    /// Offset of this group's run in `PreparedCq::atoms`.
    start: u32,
    /// Number of candidate atoms in the run.
    len: u32,
    /// The uniform arity when `arity_masks` is `None`.
    arity: u32,
    /// Candidates disagree on arity (tracked while grouping, so the
    /// common uniform case skips mask building entirely).
    mixed: bool,
    /// Some candidate carries a constant.
    any_const: bool,
    /// `(arity, candidates with that arity)`; `None` when uniform.
    arity_masks: Option<Vec<(usize, Mask)>>,
    /// `(position, constant, candidates with that constant there)`;
    /// `None` when no candidate carries a constant.
    const_masks: Option<Vec<(u32, &'a Value, Mask)>>,
}

impl<'a> RelGroup<'a> {
    /// Builds the lazy filter tables over this group's candidate run
    /// (bit indexes are group-relative). Only called for groups whose
    /// grouping-time flags say a filter could prune.
    fn build_masks(&mut self, atoms: &[&'a CqAtom]) {
        let n = atoms.len();
        self.arity_masks = self.mixed.then(|| {
            let mut masks: Vec<(usize, Mask)> = Vec::new();
            for (i, atom) in atoms.iter().enumerate() {
                let k = atom.terms.len();
                match masks.iter_mut().find(|(a, _)| *a == k) {
                    Some((_, mask)) => mask.set(i),
                    None => {
                        let mut mask = Mask::empty(n);
                        mask.set(i);
                        masks.push((k, mask));
                    }
                }
            }
            masks
        });
        self.const_masks = self.any_const.then(|| {
            let mut masks: Vec<(u32, &'a Value, Mask)> = Vec::new();
            for (i, atom) in atoms.iter().enumerate() {
                for (p, t) in atom.terms.iter().enumerate() {
                    if let CqTerm::Const(c) = t {
                        let p = p as u32;
                        match masks.iter_mut().find(|(q, v, _)| *q == p && *v == c) {
                            Some((_, _, mask)) => mask.set(i),
                            None => {
                                let mut mask = Mask::empty(n);
                                mask.set(i);
                                masks.push((p, c, mask));
                            }
                        }
                    }
                }
            }
            masks
        });
    }

    /// Candidate set for one goal atom: arity filter ∩ constant
    /// filters. Every candidate removed here is one the term matcher
    /// would have rejected (arity mismatch, or a Const/Const or
    /// Const/Var mismatch independent of any variable bindings). The
    /// common no-filter case (uniform arity, no constants anywhere)
    /// costs no mask construction at all.
    fn candidates(&self, atom: &CqAtom) -> Candidates {
        let goal_consts = atom.terms.iter().any(|t| matches!(t, CqTerm::Const(_)));
        let mut mask = match &self.arity_masks {
            Some(masks) => match masks.iter().find(|(a, _)| *a == atom.terms.len()) {
                Some((_, m)) => m.clone(),
                None => return Candidates::None,
            },
            None if atom.terms.len() as u32 != self.arity => return Candidates::None,
            None if self.const_masks.is_none() && !goal_consts => {
                // Nothing can prune: every body atom is a candidate.
                return Candidates::All(self.len);
            }
            None => Mask::all(self.len as usize),
        };
        if let Some(masks) = &self.const_masks {
            for (p, t) in atom.terms.iter().enumerate() {
                if let CqTerm::Const(c) = t {
                    match masks.iter().find(|(q, v, _)| *q == p as u32 && *v == c) {
                        Some((_, _, m)) => mask.intersect(m),
                        None => return Candidates::None,
                    }
                }
            }
        } else if goal_consts {
            // Goal demands a constant no candidate carries.
            return Candidates::None;
        }
        Candidates::Mask(mask)
    }
}

/// A goal atom's candidate set, with the no-filter case kept symbolic
/// so the hot path never touches bitset words.
enum Candidates {
    /// Every body atom of the relation is live.
    All(u32),
    /// The bitset intersection pruned some candidates.
    Mask(Mask),
    /// No candidate can match (dead goal atom).
    None,
}

impl Candidates {
    #[inline]
    fn live(&self) -> u64 {
        match self {
            Candidates::All(n) => u64::from(*n),
            Candidates::Mask(m) => m.count(),
            Candidates::None => 0,
        }
    }
}

/// Borrow-free iteration state over one [`Candidates`] set, so the
/// iterative search can keep a reusable stack of these in [`Scratch`]
/// without tying lifetimes to the plan slice. Candidates come out in
/// increasing body-atom order, so the first witness found matches the
/// unindexed scan's.
enum Cursor {
    Range { pos: u32, n: u32 },
    Bits { word: u64, spill_pos: u32 },
}

impl Cursor {
    fn start(c: &Candidates) -> Cursor {
        match c {
            Candidates::All(n) => Cursor::Range { pos: 0, n: *n },
            Candidates::Mask(m) => Cursor::Bits {
                word: m.head,
                spill_pos: 0,
            },
            Candidates::None => Cursor::Range { pos: 0, n: 0 },
        }
    }

    /// Next candidate index in body order, refilling spill words from
    /// the candidate set this cursor was started on.
    #[inline]
    fn next(&mut self, c: &Candidates) -> Option<usize> {
        match self {
            Cursor::Range { pos, n } => {
                if pos < n {
                    let i = *pos as usize;
                    *pos += 1;
                    Some(i)
                } else {
                    None
                }
            }
            Cursor::Bits { word, spill_pos } => {
                let spill: &[u64] = match c {
                    Candidates::Mask(m) => &m.spill,
                    _ => &[],
                };
                loop {
                    if *word != 0 {
                        let bit = word.trailing_zeros() as usize;
                        *word &= *word - 1;
                        return Some(*spill_pos as usize * 64 + bit);
                    }
                    if *spill_pos as usize >= spill.len() {
                        return None;
                    }
                    *word = spill[*spill_pos as usize];
                    *spill_pos += 1;
                }
            }
        }
    }
}

/// A conjunctive query with its homomorphism-target side index built:
/// body atoms grouped by relation name with per-arity and per-constant
/// candidate bitsets, so the backtracking search intersects words
/// instead of scanning the whole body per goal atom.
///
/// Preparing is the batching primitive: when one query participates in
/// many containment checks (catalog proving, script goals, UCQ
/// disjuncts), [`prepare`] it once and reuse it for every check.
#[derive(Clone, Debug)]
pub struct PreparedCq<'a> {
    /// The underlying query.
    pub cq: &'a Cq,
    /// All body atoms, grouped into contiguous same-relation runs
    /// (within a run, body order is preserved).
    atoms: Vec<&'a CqAtom>,
    /// Relation groups in first-occurrence order; queries touch a
    /// handful of relations, so a linear scan beats a tree here.
    groups: Vec<RelGroup<'a>>,
}

/// Builds the containment-target index of a query.
pub fn prepare(cq: &Cq) -> PreparedCq<'_> {
    let mut atoms: Vec<&CqAtom> = Vec::with_capacity(cq.atoms.len());
    let mut groups: Vec<RelGroup<'_>> = Vec::new();
    for atom in &cq.atoms {
        let has_const = atom.terms.iter().any(|t| matches!(t, CqTerm::Const(_)));
        match groups.iter().position(|g| g.rel == atom.rel) {
            Some(g) => {
                // Insert at the end of the group's run; later runs (all
                // groups appear in first-occurrence order) shift right.
                let at = (groups[g].start + groups[g].len) as usize;
                atoms.insert(at, atom);
                groups[g].len += 1;
                groups[g].mixed |= atom.terms.len() as u32 != groups[g].arity;
                groups[g].any_const |= has_const;
                for h in &mut groups[g + 1..] {
                    h.start += 1;
                }
            }
            None => {
                groups.push(RelGroup {
                    rel: atom.rel.as_str(),
                    start: atoms.len() as u32,
                    len: 1,
                    arity: atom.terms.len() as u32,
                    mixed: false,
                    any_const: has_const,
                    arity_masks: None,
                    const_masks: None,
                });
                atoms.push(atom);
            }
        }
    }
    for g in &mut groups {
        if g.mixed || g.any_const {
            let run = &atoms[g.start as usize..(g.start + g.len) as usize];
            g.build_masks(run);
        }
    }
    PreparedCq { cq, atoms, groups }
}

impl<'q> PreparedCq<'q> {
    fn group<'p>(&'p self, rel: &str) -> Option<&'p RelGroup<'q>> {
        self.groups.iter().find(|g| g.rel == rel)
    }

    fn run<'p>(&'p self, g: &RelGroup<'q>) -> &'p [&'q CqAtom] {
        &self.atoms[g.start as usize..(g.start + g.len) as usize]
    }
}

/// Decides `sub ⊆ sup` under set semantics, returning a homomorphism
/// `sup → sub` on success (Chandra–Merlin).
pub fn containment_witness(sub: &Cq, sup: &Cq) -> Option<Homomorphism> {
    containment_witness_prepared(&prepare(sub), sup)
}

/// [`containment_witness`] against a pre-indexed `sub` side.
pub fn containment_witness_prepared(sub: &PreparedCq<'_>, sup: &Cq) -> Option<Homomorphism> {
    containment_witness_stats(sub, sup, &mut SearchStats::default())
}

/// [`containment_witness_prepared`] that also accumulates search work
/// counters into `stats`.
pub fn containment_witness_stats(
    sub: &PreparedCq<'_>,
    sup: &Cq,
    stats: &mut SearchStats,
) -> Option<Homomorphism> {
    let mut scratch = Scratch::default();
    if !contained_core(sub, sup, stats, &mut scratch) {
        return None;
    }
    let mut map = BTreeMap::new();
    for (s, v) in scratch.slots.iter().enumerate() {
        if let Some(t) = scratch.bind[s] {
            map.insert(*v, t.clone());
        }
    }
    Some(Homomorphism { map })
}

/// A goal-atom term, compiled against the slot table once per check so
/// the candidate loop never re-resolves variables.
#[derive(Clone, Copy)]
enum TermPlan<'q> {
    /// Goal constant: the candidate term must be this exact constant.
    Const(&'q Value),
    /// Goal variable, resolved to its dense slot.
    Slot(u32),
}

/// Reusable search state: one instance serves a whole batch, so the
/// per-check cost is clearing lengths, not reallocating. All bound
/// terms borrow from the batch's query slice (`'q`); plans borrow the
/// prepared indexes (`'p`).
#[derive(Default)]
struct Scratch<'q, 'p> {
    slots: Vec<u32>,
    bind: Vec<Option<&'q CqTerm>>,
    trail: Vec<u32>,
    plans: Vec<(&'p [&'q CqAtom], Candidates, u32)>,
    tplans: Vec<TermPlan<'q>>,
    cursors: Vec<(Cursor, u32)>,
}

/// The containment check proper. On success the witness is readable
/// from `scratch` (`slots[i]` bound to `bind[i]`); the boolean batch
/// path never materializes it.
fn contained_core<'q, 'p>(
    sub: &'p PreparedCq<'q>,
    sup: &'q Cq,
    stats: &mut SearchStats,
    scratch: &mut Scratch<'q, 'p>,
) -> bool {
    if sub.cq.head.len() != sup.head.len() {
        return false;
    }
    stats.checks += 1;
    let Scratch {
        slots,
        bind,
        trail,
        plans,
        tplans,
        cursors,
    } = scratch;
    // Dense slots for the goal side's variables, in first-occurrence
    // order (head first, then body). Goal queries hold a handful of
    // variables, so a linear-probed list beats a map.
    slots.clear();
    for t in sup
        .head
        .iter()
        .chain(sup.atoms.iter().flat_map(|a| a.terms.iter()))
    {
        if let CqTerm::Var(v) = t {
            if !slots.contains(v) {
                slots.push(*v);
            }
        }
    }
    bind.clear();
    bind.resize(slots.len(), None);
    trail.clear();
    // The head must map exactly.
    for (hsup, hsub) in sup.head.iter().zip(&sub.cq.head) {
        if !extend(slots, bind, trail, hsup, hsub) {
            return false;
        }
    }
    // Intersect each goal atom's candidate bitset up front, and compile
    // the atom's terms against the slot table. A dead atom (no
    // candidates survive) fails the whole check immediately.
    plans.clear();
    tplans.clear();
    for atom in &sup.atoms {
        let Some(group) = sub.group(&atom.rel) else {
            return false;
        };
        let total = u64::from(group.len);
        let cands = group.candidates(atom);
        let live = cands.live();
        stats.candidates_total += total;
        stats.bitset_pruned += total - live;
        if live == 0 {
            return false;
        }
        let tstart = tplans.len() as u32;
        for t in &atom.terms {
            tplans.push(match t {
                CqTerm::Const(c) => TermPlan::Const(c),
                CqTerm::Var(v) => TermPlan::Slot(
                    slots
                        .iter()
                        .position(|x| x == v)
                        .expect("every goal variable has a slot") as u32,
                ),
            });
        }
        plans.push((sub.run(group), cands, tstart));
    }
    search(plans, tplans, bind, trail, cursors, stats)
}

/// Decides `sub ⊆ sup` under set semantics.
pub fn contained_in(sub: &Cq, sup: &Cq) -> bool {
    containment_witness(sub, sup).is_some()
}

/// [`contained_in`] against a pre-indexed `sub` side.
pub fn contained_in_prepared(sub: &PreparedCq<'_>, sup: &Cq) -> bool {
    containment_witness_prepared(sub, sup).is_some()
}

/// Decides set equivalence (containment both ways), returning both
/// witnesses — the two mapping families of Fig. 10.
pub fn equivalent_set_witness(a: &Cq, b: &Cq) -> Option<(Homomorphism, Homomorphism)> {
    let fwd = containment_witness(a, b)?;
    let bwd = containment_witness(b, a)?;
    Some((fwd, bwd))
}

/// Decides set equivalence.
pub fn equivalent_set(a: &Cq, b: &Cq) -> bool {
    contained_in(a, b) && contained_in(b, a)
}

/// Batch set-equivalence: decides every `(i, j)` pair over a slice of
/// queries, indexing each query **once** no matter how many pairs it
/// participates in. This is the API the proving engine and the script
/// runner use for multi-goal workloads.
///
/// # Panics
///
/// Panics when a pair index is out of bounds.
pub fn equivalent_set_batch(queries: &[Cq], pairs: &[(usize, usize)]) -> Vec<bool> {
    equivalent_set_batch_stats(queries, pairs).0
}

/// [`equivalent_set_batch`] that also reports the aggregate
/// [`SearchStats`] across every containment check in the batch — the
/// numbers behind the `containment_scale` BENCH series.
///
/// # Panics
///
/// Panics when a pair index is out of bounds.
pub fn equivalent_set_batch_stats(
    queries: &[Cq],
    pairs: &[(usize, usize)],
) -> (Vec<bool>, SearchStats) {
    let refs: Vec<&Cq> = queries.iter().collect();
    equivalent_set_batch_stats_ref(&refs, pairs)
}

/// [`equivalent_set_batch_stats`] over borrowed queries — batch callers
/// that already own their corpus elsewhere skip cloning it into a
/// contiguous slice.
///
/// # Panics
///
/// Panics when a pair index is out of bounds.
pub fn equivalent_set_batch_stats_ref(
    queries: &[&Cq],
    pairs: &[(usize, usize)],
) -> (Vec<bool>, SearchStats) {
    let prepared: Vec<PreparedCq<'_>> = queries.iter().map(|q| prepare(q)).collect();
    let mut stats = SearchStats::default();
    let mut scratch = Scratch::default();
    let verdicts = pairs
        .iter()
        .map(|&(i, j)| {
            contained_core(&prepared[i], prepared[j].cq, &mut stats, &mut scratch)
                && contained_core(&prepared[j], prepared[i].cq, &mut stats, &mut scratch)
        })
        .collect();
    (verdicts, stats)
}

fn extend<'s>(
    slots: &[u32],
    bind: &mut [Option<&'s CqTerm>],
    trail: &mut Vec<u32>,
    from: &CqTerm,
    to: &'s CqTerm,
) -> bool {
    match from {
        CqTerm::Const(c) => matches!(to, CqTerm::Const(d) if c == d),
        CqTerm::Var(v) => {
            let s = slots
                .iter()
                .position(|x| x == v)
                .expect("every goal variable has a slot") as u32;
            match bind[s as usize] {
                Some(existing) => existing == to,
                None => {
                    bind[s as usize] = Some(to);
                    trail.push(s);
                    true
                }
            }
        }
    }
}

/// The backtracking loop, iterative with an explicit cursor stack: one
/// `(cursor, trail mark)` frame per goal atom. Candidates are explored
/// in exactly the order the recursive formulation would — cursor
/// advancement is depth-first with in-body-order candidates — so the
/// first witness (left in `bind` on success) is unchanged.
fn search<'q>(
    plans: &[(&[&'q CqAtom], Candidates, u32)],
    tplans: &[TermPlan<'q>],
    bind: &mut [Option<&'q CqTerm>],
    trail: &mut Vec<u32>,
    cursors: &mut Vec<(Cursor, u32)>,
    stats: &mut SearchStats,
) -> bool {
    if plans.is_empty() {
        return true;
    }
    cursors.clear();
    cursors.push((Cursor::start(&plans[0].1), trail.len() as u32));
    let mut depth = 0;
    'descend: loop {
        // Everything depth-dependent is loaded once per depth change,
        // not once per candidate.
        let (run, cands, tstart) = &plans[depth];
        let tplan = &tplans[*tstart as usize..];
        let (cursor, mark) = cursors.last_mut().expect("stack is non-empty");
        let mark = *mark as usize;
        loop {
            // Undo whatever the previous candidate at this depth bound.
            while trail.len() > mark {
                let s = trail.pop().expect("trail entries above mark");
                bind[s as usize] = None;
            }
            let Some(cand) = cursor.next(cands) else {
                cursors.pop();
                if cursors.is_empty() {
                    return false;
                }
                depth -= 1;
                continue 'descend;
            };
            stats.candidates_scanned += 1;
            let target = run[cand];
            // The arity filter guarantees every candidate's term count
            // equals the goal atom's, so the zip pairs them exactly.
            let ok = target
                .terms
                .iter()
                .zip(tplan)
                .all(|(to, &plan)| match plan {
                    TermPlan::Const(c) => matches!(to, CqTerm::Const(d) if d == c),
                    TermPlan::Slot(s) => match bind[s as usize] {
                        Some(existing) => existing == to,
                        None => {
                            bind[s as usize] = Some(to);
                            trail.push(s);
                            true
                        }
                    },
                });
            if ok {
                if depth + 1 == plans.len() {
                    return true;
                }
                depth += 1;
                cursors.push((Cursor::start(&plans[depth].1), trail.len() as u32));
                continue 'descend;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::Value;

    fn v(n: u32) -> CqTerm {
        CqTerm::Var(n)
    }

    /// ans(x) :- R(x, y)
    fn simple() -> Cq {
        Cq::new(vec![v(0)], vec![CqAtom::new("R", vec![v(0), v(1)])])
    }

    /// ans(x) :- R(x, y), R(x, z)   (redundant self-join)
    fn self_join() -> Cq {
        Cq::new(
            vec![v(0)],
            vec![
                CqAtom::new("R", vec![v(0), v(1)]),
                CqAtom::new("R", vec![v(0), v(2)]),
            ],
        )
    }

    #[test]
    fn reflexive_containment() {
        let q = simple();
        assert!(contained_in(&q, &q));
        assert!(equivalent_set(&q, &q));
    }

    #[test]
    fn redundant_self_join_is_equivalent() {
        // The Q2 ≡ Q3 example (Sec. 2): a redundant self-join collapses.
        let q2 = simple();
        let q3 = self_join();
        assert!(equivalent_set(&q2, &q3));
    }

    #[test]
    fn chain_containment_is_one_directional() {
        // ans() :- R(x,y)            (some edge)
        // ans() :- R(x,y), R(y,z)    (some path of length 2)
        let edge = Cq::new(vec![], vec![CqAtom::new("R", vec![v(0), v(1)])]);
        let path2 = Cq::new(
            vec![],
            vec![
                CqAtom::new("R", vec![v(0), v(1)]),
                CqAtom::new("R", vec![v(1), v(2)]),
            ],
        );
        // Any instance with a 2-path has an edge: path2 ⊆ edge.
        assert!(contained_in(&path2, &edge));
        // But not conversely.
        assert!(!contained_in(&edge, &path2));
    }

    #[test]
    fn head_must_be_preserved() {
        // ans(x) :- R(x, y)  vs  ans(y) :- R(x, y): not equivalent.
        let q1 = Cq::new(vec![v(0)], vec![CqAtom::new("R", vec![v(0), v(1)])]);
        let q2 = Cq::new(vec![v(1)], vec![CqAtom::new("R", vec![v(0), v(1)])]);
        assert!(!equivalent_set(&q1, &q2));
    }

    #[test]
    fn constants_must_match() {
        let q_const = Cq::new(
            vec![v(0)],
            vec![CqAtom::new("R", vec![v(0), CqTerm::Const(Value::Int(5))])],
        );
        let q_var = simple();
        // q_const ⊆ q_var (drop the constant restriction)…
        assert!(contained_in(&q_const, &q_var));
        // …but not conversely.
        assert!(!contained_in(&q_var, &q_const));
    }

    #[test]
    fn fig10_example() {
        // SELECT DISTINCT x.c1 FROM R1 x, R2 y WHERE x.c2 = y.c3
        //   ≡ SELECT DISTINCT x.c1 FROM R1 x, R1 y, R2 z
        //     WHERE x.c1 = y.c1 AND x.c2 = z.c3              (Sec. 5.2)
        // As CQs over R1(c1, c2), R2(c3):
        //   q1: ans(a) :- R1(a, b), R2(b)
        //   q2: ans(a) :- R1(a, b), R1(a, c), R2(b)
        let q1 = Cq::new(
            vec![v(0)],
            vec![
                CqAtom::new("R1", vec![v(0), v(1)]),
                CqAtom::new("R2", vec![v(1)]),
            ],
        );
        let q2 = Cq::new(
            vec![v(0)],
            vec![
                CqAtom::new("R1", vec![v(0), v(1)]),
                CqAtom::new("R1", vec![v(0), v(2)]),
                CqAtom::new("R2", vec![v(1)]),
            ],
        );
        let (fwd, bwd) = equivalent_set_witness(&q1, &q2).expect("Fig. 10 equivalence");
        // `fwd` witnesses q1 ⊆ q2: a homomorphism q2 → q1 that must fold
        // both R1 atoms onto the single one (the red arrows of Fig. 10).
        assert_eq!(fwd.apply(&v(1)), fwd.apply(&v(2)));
        assert_eq!(fwd.apply(&v(0)), v(0));
        // `bwd` witnesses q2 ⊆ q1: the identity-like embedding (blue).
        assert_eq!(bwd.apply(&v(0)), v(0));
        assert_eq!(bwd.apply(&v(1)), v(1));
    }

    #[test]
    fn different_relation_names_not_contained() {
        let q1 = Cq::new(vec![], vec![CqAtom::new("R", vec![v(0)])]);
        let q2 = Cq::new(vec![], vec![CqAtom::new("S", vec![v(0)])]);
        assert!(!contained_in(&q1, &q2));
    }

    #[test]
    fn arity_mismatch_not_contained() {
        let q1 = Cq::new(vec![], vec![CqAtom::new("R", vec![v(0)])]);
        let q2 = Cq::new(vec![], vec![CqAtom::new("R", vec![v(0), v(1)])]);
        assert!(!contained_in(&q1, &q2));
    }

    #[test]
    fn head_width_mismatch() {
        let q1 = Cq::new(vec![v(0)], vec![CqAtom::new("R", vec![v(0)])]);
        let q2 = Cq::new(vec![v(0), v(0)], vec![CqAtom::new("R", vec![v(0)])]);
        assert!(!contained_in(&q1, &q2));
    }

    #[test]
    fn batch_matches_pairwise_decisions() {
        let queries = vec![
            simple(),
            self_join(),
            Cq::new(vec![v(0)], vec![CqAtom::new("S", vec![v(0), v(1)])]),
        ];
        let pairs = vec![(0, 1), (0, 2), (1, 1), (2, 0)];
        let batch = equivalent_set_batch(&queries, &pairs);
        let pairwise: Vec<bool> = pairs
            .iter()
            .map(|&(i, j)| equivalent_set(&queries[i], &queries[j]))
            .collect();
        assert_eq!(batch, pairwise);
        assert_eq!(batch, vec![true, false, true, false]);
    }

    #[test]
    fn prepared_containment_matches_unprepared() {
        let queries = [simple(), self_join()];
        for a in &queries {
            let pa = prepare(a);
            for b in &queries {
                assert_eq!(contained_in_prepared(&pa, b), contained_in(a, b));
            }
        }
    }

    #[test]
    fn witness_display() {
        let q2 = simple();
        let q3 = self_join();
        let (_, bwd) = equivalent_set_witness(&q2, &q3).unwrap();
        let shown = bwd.to_string();
        assert!(shown.contains("↦"), "{shown}");
    }

    #[test]
    fn batch_stats_are_deterministic_and_prune() {
        // Constants in distinct positions give the bitset filters
        // something to cut: only one of the three R atoms can ever host
        // the goal's `R(x, 5)`.
        let q_const = Cq::new(
            vec![v(0)],
            vec![CqAtom::new("R", vec![v(0), CqTerm::Const(Value::Int(5))])],
        );
        let wide = Cq::new(
            vec![v(0)],
            vec![
                CqAtom::new("R", vec![v(0), CqTerm::Const(Value::Int(7))]),
                CqAtom::new("R", vec![v(0), CqTerm::Const(Value::Int(5))]),
                CqAtom::new("R", vec![v(0), v(1)]),
            ],
        );
        let queries = vec![q_const, wide];
        let pairs = vec![(0, 1), (1, 0)];
        let (verdicts, stats) = equivalent_set_batch_stats(&queries, &pairs);
        let (again, stats2) = equivalent_set_batch_stats(&queries, &pairs);
        assert_eq!(verdicts, again);
        assert_eq!(stats, stats2, "stats must be deterministic");
        assert!(stats.bitset_pruned > 0, "{stats:?}");
        // Pruned candidates are never scanned; the search may revisit a
        // live candidate while backtracking, but here the masks leave a
        // single live candidate per goal atom, so scanned ≤ live.
        assert!(
            stats.bitset_pruned + stats.candidates_scanned <= stats.candidates_total,
            "{stats:?}"
        );
        assert!(stats.checks >= pairs.len() as u64, "{stats:?}");
    }

    #[test]
    fn bitset_search_matches_generated_corpus_decisions() {
        // Cross-check the indexed search against fresh pairwise calls
        // (which rebuild indexes per call) on a generated corpus.
        let pairs = crate::generate::equivalent_pairs(0xC0FFEE, 24);
        for (a, b) in &pairs {
            assert!(equivalent_set(a, b), "generated pair must stay equivalent");
            let (fwd, bwd) = equivalent_set_witness(a, b).expect("witness");
            // Witnesses respect the head exactly.
            for (hb, ha) in b.head.iter().zip(&a.head) {
                assert_eq!(&fwd.apply(hb), ha);
            }
            for (ha, hb) in a.head.iter().zip(&b.head) {
                assert_eq!(&bwd.apply(ha), hb);
            }
        }
    }
}
