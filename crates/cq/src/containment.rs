//! Homomorphism-based containment and equivalence of conjunctive queries.
//!
//! The Chandra–Merlin theorem: `q₁ ⊆ q₂` (set semantics) iff there is a
//! *homomorphism* `h : vars(q₂) → terms(q₁)` with `h(head₂) = head₁`
//! mapping every atom of `q₂` onto an atom of `q₁`. Deciding this is
//! NP-complete (Fig. 9); the implementation is a backtracking search over
//! atom images with forward-checking on the variable assignment.
//!
//! The homomorphism witness is returned explicitly: printed, it is the
//! arrow diagram of Fig. 10.

use crate::{Cq, CqAtom, CqTerm};
use std::collections::BTreeMap;
use std::fmt;

/// A homomorphism witness: a mapping from the contained-in query's
/// variables to terms of the containing query.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Homomorphism {
    /// Variable assignment.
    pub map: BTreeMap<u32, CqTerm>,
}

impl Homomorphism {
    /// Applies the mapping to a term.
    pub fn apply(&self, t: &CqTerm) -> CqTerm {
        match t {
            CqTerm::Var(v) => self.map.get(v).cloned().unwrap_or_else(|| t.clone()),
            c => c.clone(),
        }
    }
}

impl fmt::Display for Homomorphism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (v, t)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "x{v} ↦ {t}")?;
        }
        Ok(())
    }
}

/// A conjunctive query with its homomorphism-target side index built:
/// body atoms grouped by relation name, so the backtracking search asks
/// "candidate images of `R(…)`" in one map lookup instead of scanning
/// the whole body per goal atom.
///
/// Preparing is the batching primitive: when one query participates in
/// many containment checks (catalog proving, script goals, UCQ
/// disjuncts), [`prepare`] it once and reuse it for every check.
#[derive(Clone, Debug)]
pub struct PreparedCq<'a> {
    /// The underlying query.
    pub cq: &'a Cq,
    by_rel: BTreeMap<&'a str, Vec<&'a CqAtom>>,
}

/// Builds the containment-target index of a query.
pub fn prepare(cq: &Cq) -> PreparedCq<'_> {
    let mut by_rel: BTreeMap<&str, Vec<&CqAtom>> = BTreeMap::new();
    for atom in &cq.atoms {
        by_rel.entry(atom.rel.as_str()).or_default().push(atom);
    }
    PreparedCq { cq, by_rel }
}

impl PreparedCq<'_> {
    fn candidates(&self, rel: &str) -> &[&CqAtom] {
        self.by_rel.get(rel).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Decides `sub ⊆ sup` under set semantics, returning a homomorphism
/// `sup → sub` on success (Chandra–Merlin).
pub fn containment_witness(sub: &Cq, sup: &Cq) -> Option<Homomorphism> {
    containment_witness_prepared(&prepare(sub), sup)
}

/// [`containment_witness`] against a pre-indexed `sub` side.
pub fn containment_witness_prepared(sub: &PreparedCq<'_>, sup: &Cq) -> Option<Homomorphism> {
    if sub.cq.head.len() != sup.head.len() {
        return None;
    }
    let mut h = Homomorphism::default();
    // The head must map exactly.
    for (hsup, hsub) in sup.head.iter().zip(&sub.cq.head) {
        if !extend(&mut h, hsup, hsub) {
            return None;
        }
    }
    if search(&mut h, &sup.atoms, 0, sub) {
        Some(h)
    } else {
        None
    }
}

/// Decides `sub ⊆ sup` under set semantics.
pub fn contained_in(sub: &Cq, sup: &Cq) -> bool {
    containment_witness(sub, sup).is_some()
}

/// [`contained_in`] against a pre-indexed `sub` side.
pub fn contained_in_prepared(sub: &PreparedCq<'_>, sup: &Cq) -> bool {
    containment_witness_prepared(sub, sup).is_some()
}

/// Decides set equivalence (containment both ways), returning both
/// witnesses — the two mapping families of Fig. 10.
pub fn equivalent_set_witness(a: &Cq, b: &Cq) -> Option<(Homomorphism, Homomorphism)> {
    let fwd = containment_witness(a, b)?;
    let bwd = containment_witness(b, a)?;
    Some((fwd, bwd))
}

/// Decides set equivalence.
pub fn equivalent_set(a: &Cq, b: &Cq) -> bool {
    contained_in(a, b) && contained_in(b, a)
}

/// Batch set-equivalence: decides every `(i, j)` pair over a slice of
/// queries, indexing each query **once** no matter how many pairs it
/// participates in. This is the API the proving engine and the script
/// runner use for multi-goal workloads.
///
/// # Panics
///
/// Panics when a pair index is out of bounds.
pub fn equivalent_set_batch(queries: &[Cq], pairs: &[(usize, usize)]) -> Vec<bool> {
    let prepared: Vec<PreparedCq<'_>> = queries.iter().map(prepare).collect();
    pairs
        .iter()
        .map(|&(i, j)| {
            contained_in_prepared(&prepared[i], prepared[j].cq)
                && contained_in_prepared(&prepared[j], prepared[i].cq)
        })
        .collect()
}

fn extend(h: &mut Homomorphism, from: &CqTerm, to: &CqTerm) -> bool {
    match from {
        CqTerm::Const(c) => match to {
            CqTerm::Const(d) => c == d,
            CqTerm::Var(_) => false,
        },
        CqTerm::Var(v) => match h.map.get(v) {
            Some(existing) => existing == to,
            None => {
                h.map.insert(*v, to.clone());
                true
            }
        },
    }
}

fn search(h: &mut Homomorphism, goal_atoms: &[CqAtom], i: usize, body: &PreparedCq<'_>) -> bool {
    let Some(atom) = goal_atoms.get(i) else {
        return true;
    };
    for target in body.candidates(&atom.rel) {
        if target.terms.len() != atom.terms.len() {
            continue;
        }
        let saved = h.map.clone();
        let ok = atom
            .terms
            .iter()
            .zip(&target.terms)
            .all(|(from, to)| extend(h, from, to));
        if ok && search(h, goal_atoms, i + 1, body) {
            return true;
        }
        h.map = saved;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::Value;

    fn v(n: u32) -> CqTerm {
        CqTerm::Var(n)
    }

    /// ans(x) :- R(x, y)
    fn simple() -> Cq {
        Cq::new(vec![v(0)], vec![CqAtom::new("R", vec![v(0), v(1)])])
    }

    /// ans(x) :- R(x, y), R(x, z)   (redundant self-join)
    fn self_join() -> Cq {
        Cq::new(
            vec![v(0)],
            vec![
                CqAtom::new("R", vec![v(0), v(1)]),
                CqAtom::new("R", vec![v(0), v(2)]),
            ],
        )
    }

    #[test]
    fn reflexive_containment() {
        let q = simple();
        assert!(contained_in(&q, &q));
        assert!(equivalent_set(&q, &q));
    }

    #[test]
    fn redundant_self_join_is_equivalent() {
        // The Q2 ≡ Q3 example (Sec. 2): a redundant self-join collapses.
        let q2 = simple();
        let q3 = self_join();
        assert!(equivalent_set(&q2, &q3));
    }

    #[test]
    fn chain_containment_is_one_directional() {
        // ans() :- R(x,y)            (some edge)
        // ans() :- R(x,y), R(y,z)    (some path of length 2)
        let edge = Cq::new(vec![], vec![CqAtom::new("R", vec![v(0), v(1)])]);
        let path2 = Cq::new(
            vec![],
            vec![
                CqAtom::new("R", vec![v(0), v(1)]),
                CqAtom::new("R", vec![v(1), v(2)]),
            ],
        );
        // Any instance with a 2-path has an edge: path2 ⊆ edge.
        assert!(contained_in(&path2, &edge));
        // But not conversely.
        assert!(!contained_in(&edge, &path2));
    }

    #[test]
    fn head_must_be_preserved() {
        // ans(x) :- R(x, y)  vs  ans(y) :- R(x, y): not equivalent.
        let q1 = Cq::new(vec![v(0)], vec![CqAtom::new("R", vec![v(0), v(1)])]);
        let q2 = Cq::new(vec![v(1)], vec![CqAtom::new("R", vec![v(0), v(1)])]);
        assert!(!equivalent_set(&q1, &q2));
    }

    #[test]
    fn constants_must_match() {
        let q_const = Cq::new(
            vec![v(0)],
            vec![CqAtom::new("R", vec![v(0), CqTerm::Const(Value::Int(5))])],
        );
        let q_var = simple();
        // q_const ⊆ q_var (drop the constant restriction)…
        assert!(contained_in(&q_const, &q_var));
        // …but not conversely.
        assert!(!contained_in(&q_var, &q_const));
    }

    #[test]
    fn fig10_example() {
        // SELECT DISTINCT x.c1 FROM R1 x, R2 y WHERE x.c2 = y.c3
        //   ≡ SELECT DISTINCT x.c1 FROM R1 x, R1 y, R2 z
        //     WHERE x.c1 = y.c1 AND x.c2 = z.c3              (Sec. 5.2)
        // As CQs over R1(c1, c2), R2(c3):
        //   q1: ans(a) :- R1(a, b), R2(b)
        //   q2: ans(a) :- R1(a, b), R1(a, c), R2(b)
        let q1 = Cq::new(
            vec![v(0)],
            vec![
                CqAtom::new("R1", vec![v(0), v(1)]),
                CqAtom::new("R2", vec![v(1)]),
            ],
        );
        let q2 = Cq::new(
            vec![v(0)],
            vec![
                CqAtom::new("R1", vec![v(0), v(1)]),
                CqAtom::new("R1", vec![v(0), v(2)]),
                CqAtom::new("R2", vec![v(1)]),
            ],
        );
        let (fwd, bwd) = equivalent_set_witness(&q1, &q2).expect("Fig. 10 equivalence");
        // `fwd` witnesses q1 ⊆ q2: a homomorphism q2 → q1 that must fold
        // both R1 atoms onto the single one (the red arrows of Fig. 10).
        assert_eq!(fwd.apply(&v(1)), fwd.apply(&v(2)));
        assert_eq!(fwd.apply(&v(0)), v(0));
        // `bwd` witnesses q2 ⊆ q1: the identity-like embedding (blue).
        assert_eq!(bwd.apply(&v(0)), v(0));
        assert_eq!(bwd.apply(&v(1)), v(1));
    }

    #[test]
    fn different_relation_names_not_contained() {
        let q1 = Cq::new(vec![], vec![CqAtom::new("R", vec![v(0)])]);
        let q2 = Cq::new(vec![], vec![CqAtom::new("S", vec![v(0)])]);
        assert!(!contained_in(&q1, &q2));
    }

    #[test]
    fn arity_mismatch_not_contained() {
        let q1 = Cq::new(vec![], vec![CqAtom::new("R", vec![v(0)])]);
        let q2 = Cq::new(vec![], vec![CqAtom::new("R", vec![v(0), v(1)])]);
        assert!(!contained_in(&q1, &q2));
    }

    #[test]
    fn head_width_mismatch() {
        let q1 = Cq::new(vec![v(0)], vec![CqAtom::new("R", vec![v(0)])]);
        let q2 = Cq::new(vec![v(0), v(0)], vec![CqAtom::new("R", vec![v(0)])]);
        assert!(!contained_in(&q1, &q2));
    }

    #[test]
    fn batch_matches_pairwise_decisions() {
        let queries = vec![
            simple(),
            self_join(),
            Cq::new(vec![v(0)], vec![CqAtom::new("S", vec![v(0), v(1)])]),
        ];
        let pairs = vec![(0, 1), (0, 2), (1, 1), (2, 0)];
        let batch = equivalent_set_batch(&queries, &pairs);
        let pairwise: Vec<bool> = pairs
            .iter()
            .map(|&(i, j)| equivalent_set(&queries[i], &queries[j]))
            .collect();
        assert_eq!(batch, pairwise);
        assert_eq!(batch, vec![true, false, true, false]);
    }

    #[test]
    fn prepared_containment_matches_unprepared() {
        let queries = [simple(), self_join()];
        for a in &queries {
            let pa = prepare(a);
            for b in &queries {
                assert_eq!(contained_in_prepared(&pa, b), contained_in(a, b));
            }
        }
    }

    #[test]
    fn witness_display() {
        let q2 = simple();
        let q3 = self_join();
        let (_, bwd) = equivalent_set_witness(&q2, &q3).unwrap();
        let shown = bwd.to_string();
        assert!(shown.contains("↦"), "{shown}");
    }
}
