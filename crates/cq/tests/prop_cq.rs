//! Property-based validation of the CQ decision procedures against a
//! brute-force evaluator: homomorphism-based containment must match
//! actual containment of query results on random instances, bag
//! equivalence must imply set equivalence, and minimization must
//! preserve semantics.

use cq::{Cq, CqTerm};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// A tiny database: each relation is a set of integer tuples.
type Db = BTreeMap<String, BTreeSet<Vec<i64>>>;

/// Brute-force CQ evaluation (set semantics): enumerate all assignments
/// of the query's variables over the active domain.
fn eval_cq(q: &Cq, db: &Db) -> BTreeSet<Vec<i64>> {
    let mut domain: BTreeSet<i64> = BTreeSet::new();
    for rows in db.values() {
        for row in rows {
            domain.extend(row.iter().copied());
        }
    }
    if domain.is_empty() {
        domain.insert(0);
    }
    let domain: Vec<i64> = domain.into_iter().collect();
    let vars = q.variables();
    let mut out = BTreeSet::new();
    let mut assignment: BTreeMap<u32, i64> = BTreeMap::new();
    enumerate(q, db, &domain, &vars, 0, &mut assignment, &mut out);
    out
}

fn resolve(t: &CqTerm, a: &BTreeMap<u32, i64>) -> i64 {
    match t {
        CqTerm::Var(v) => a[v],
        CqTerm::Const(c) => c.as_int().unwrap_or(0),
    }
}

fn enumerate(
    q: &Cq,
    db: &Db,
    domain: &[i64],
    vars: &[u32],
    i: usize,
    assignment: &mut BTreeMap<u32, i64>,
    out: &mut BTreeSet<Vec<i64>>,
) {
    if i == vars.len() {
        let satisfied = q.atoms.iter().all(|atom| {
            let row: Vec<i64> = atom.terms.iter().map(|t| resolve(t, assignment)).collect();
            db.get(&atom.rel).map(|rs| rs.contains(&row)) == Some(true)
        });
        if satisfied {
            out.insert(q.head.iter().map(|t| resolve(t, assignment)).collect());
        }
        return;
    }
    for &d in domain {
        assignment.insert(vars[i], d);
        enumerate(q, db, domain, vars, i + 1, assignment, out);
    }
    assignment.remove(&vars[i]);
}

fn random_db(seed: u64) -> Db {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Db::new();
    for rel in ["R", "S"] {
        let mut rows = BTreeSet::new();
        for _ in 0..rng.gen_range(0..6) {
            rows.insert(vec![rng.gen_range(0..3i64), rng.gen_range(0..3i64)]);
        }
        db.insert(rel.to_string(), rows);
    }
    db
}

fn random_cq_pair(seed: u64) -> (Cq, Cq) {
    let a = cq::generate::random_cq(seed, 3, 3, &["R", "S"]);
    let b = cq::generate::random_cq(seed ^ 0xFFFF, 3, 3, &["R", "S"]);
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn containment_is_sound(seed in 0u64..50_000) {
        let (a, b) = random_cq_pair(seed);
        if cq::containment::contained_in(&a, &b) {
            for db_seed in 0..4u64 {
                let db = random_db(seed ^ db_seed);
                let ra = eval_cq(&a, &db);
                let rb = eval_cq(&b, &db);
                prop_assert!(
                    ra.is_subset(&rb),
                    "seed {}: {} ⊆ {} claimed but {:?} ⊄ {:?}", seed, a, b, ra, rb
                );
            }
        }
    }

    #[test]
    fn equivalence_is_sound(seed in 0u64..20_000) {
        let (a, b) = random_cq_pair(seed);
        if cq::containment::equivalent_set(&a, &b) {
            for db_seed in 0..4u64 {
                let db = random_db(seed ^ db_seed);
                prop_assert_eq!(eval_cq(&a, &db), eval_cq(&b, &db));
            }
        }
    }

    #[test]
    fn bag_equivalence_implies_set_equivalence(seed in 0u64..20_000) {
        let (a, b) = random_cq_pair(seed);
        if cq::bag::bag_equivalent(&a, &b) {
            prop_assert!(cq::containment::equivalent_set(&a, &b));
        }
    }

    #[test]
    fn minimization_preserves_semantics(seed in 0u64..20_000) {
        let q = cq::generate::random_cq(seed, 4, 3, &["R", "S"]);
        let core = cq::minimize::minimize(&q);
        prop_assert!(core.size() <= q.size());
        prop_assert!(cq::containment::equivalent_set(&q, &core));
        for db_seed in 0..3u64 {
            let db = random_db(seed ^ db_seed);
            prop_assert_eq!(eval_cq(&q, &db), eval_cq(&core, &db));
        }
    }

    #[test]
    fn shuffled_copies_stay_equivalent(seed in 0u64..20_000) {
        let q = cq::generate::random_cq(seed, 4, 3, &["R", "S"]);
        let copy = cq::generate::shuffled_copy(&q, seed ^ 0xABC);
        prop_assert!(cq::bag::bag_equivalent(&q, &copy));
        for db_seed in 0..2u64 {
            let db = random_db(seed ^ db_seed);
            prop_assert_eq!(eval_cq(&q, &db), eval_cq(&copy, &db));
        }
    }

    #[test]
    fn ucq_containment_is_sound(seed in 0u64..10_000) {
        let a = cq::ucq::Ucq::new(vec![
            cq::generate::random_cq(seed, 2, 2, &["R"]),
            cq::generate::random_cq(seed ^ 1, 2, 2, &["S"]),
        ]);
        let b = cq::ucq::Ucq::new(vec![
            cq::generate::random_cq(seed ^ 2, 2, 2, &["R"]),
            cq::generate::random_cq(seed ^ 3, 2, 2, &["S"]),
        ]);
        if cq::ucq::ucq_contained_in(&a, &b) {
            for db_seed in 0..3u64 {
                let db = random_db(seed ^ db_seed);
                let ra: BTreeSet<Vec<i64>> = a
                    .disjuncts
                    .iter()
                    .flat_map(|q| eval_cq(q, &db))
                    .collect();
                let rb: BTreeSet<Vec<i64>> = b
                    .disjuncts
                    .iter()
                    .flat_map(|q| eval_cq(q, &db))
                    .collect();
                prop_assert!(ra.is_subset(&rb));
            }
        }
    }
}
