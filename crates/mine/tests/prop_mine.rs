//! Property tests for the mining pipeline's two untrusted stages.
//!
//! - **Anti-unification soundness**: whenever `anti_unify` generalizes
//!   two discovered pairs into a schema, substituting the returned hole
//!   assignments back into the schema must recover the source pairs up
//!   to α-renaming — the schema is a *generalization*, never a guess.
//! - **Screening completeness**: the random-interpretation screen only
//!   rejects on a concrete countermodel, so a candidate the trusted
//!   prover stack can certify is never screened out. (Soundness of
//!   accepted rules is not screening's job — certification gates every
//!   rule behind a replayable certificate.)

use egraph::mined::{alpha_canonical, instantiate_schema};
use egraph::{BatchBudget, Budget, Session};
use mine::antiunify::{anti_unify, ground_candidate, holes_of, Candidate, Generalization};
use mine::certify::certify;
use mine::screen::{screen, ScreenConfig};
use mine::MineConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relalg::{BaseType, Schema};
use std::collections::HashMap;
use uninomial::syntax::{Term, UExpr, VarGen};

/// Random *closed* expression generator: the mining corpus is closed
/// (holes come only from anti-unification), so the property inputs are
/// too. Sums are guarded by a relation atom over the binder, the same
/// discipline the corpus generator follows.
struct ExprGen {
    rng: StdRng,
    gen: VarGen,
}

impl ExprGen {
    fn new(seed: u64) -> ExprGen {
        ExprGen {
            rng: StdRng::seed_from_u64(seed),
            gen: VarGen::new(),
        }
    }

    fn expr(&mut self, depth: usize) -> UExpr {
        if depth == 0 {
            return self.atom();
        }
        match self.rng.gen_range(0..8) {
            0 => UExpr::add(self.expr(depth - 1), self.expr(depth - 1)),
            1 => UExpr::mul(self.expr(depth - 1), self.expr(depth - 1)),
            2 => UExpr::not(self.expr(depth - 1)),
            3 | 4 => UExpr::squash(self.expr(depth - 1)),
            5 => {
                let v = self.gen.fresh(Schema::leaf(BaseType::Int));
                let body = UExpr::mul(UExpr::rel("R", Term::var(&v)), self.expr(depth - 1));
                UExpr::sum(v, body)
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> UExpr {
        match self.rng.gen_range(0..4) {
            0 => UExpr::One,
            1 => UExpr::Zero,
            _ => UExpr::rel("X", Term::Unit),
        }
    }
}

/// Replaces every occurrence of the nullary atom `X` by `name` — the
/// cheap way to manufacture pairs that agree in shape but disagree in
/// closed subterms, which is exactly the situation anti-unification
/// abstracts into holes.
fn reatom(e: &UExpr, name: &str) -> UExpr {
    match e {
        UExpr::Rel(n, Term::Unit) if n == "X" => UExpr::rel(name, Term::Unit),
        UExpr::Add(a, b) => UExpr::add(reatom(a, name), reatom(b, name)),
        UExpr::Mul(a, b) => UExpr::mul(reatom(a, name), reatom(b, name)),
        UExpr::Not(x) => UExpr::not(reatom(x, name)),
        UExpr::Squash(x) => UExpr::squash(reatom(x, name)),
        UExpr::Sum(v, b) => UExpr::sum(v.clone(), reatom(b, name)),
        other => other.clone(),
    }
}

/// True α-canonicalization for closed expressions: hole substitution
/// can duplicate binder *ids* across sibling subtrees (each binding was
/// canonicalized independently), and `alpha_canonical` renames by id —
/// so refresh every binder to a globally distinct id first.
fn alpha(e: &UExpr) -> UExpr {
    let mut gen = VarGen::new();
    gen.reserve_above(e.max_var_id());
    alpha_canonical(&e.refresh_binders(&mut gen))
}

/// The soundness check: instantiating the schema with one of the
/// returned hole assignments recovers the corresponding source pair up
/// to α (anti_unify refreshes the second pair's binders and may swap
/// the orientation, so the comparison allows both pairings).
fn recovers(g: &Generalization, source: &(UExpr, UExpr), binds: &HashMap<String, UExpr>) -> bool {
    let l = alpha(&instantiate_schema(&g.candidate.lhs, binds));
    let r = alpha(&instantiate_schema(&g.candidate.rhs, binds));
    let (sl, sr) = (alpha(&source.0), alpha(&source.1));
    (l == sl && r == sr) || (l == sr && r == sl)
}

/// Structural invariants every emitted candidate must satisfy.
fn assert_well_formed(c: &Candidate) {
    assert!(c.lhs.free_vars().is_empty(), "open lhs: {}", c.lhs);
    assert!(c.rhs.free_vars().is_empty(), "open rhs: {}", c.rhs);
    let lh = holes_of(&c.lhs);
    for h in holes_of(&c.rhs) {
        assert!(
            lh.contains(&h),
            "rhs invents hole {h}: {} == {}",
            c.lhs,
            c.rhs
        );
    }
    assert_ne!(
        alpha_canonical(&c.lhs),
        alpha_canonical(&c.rhs),
        "trivial schema survived wellformedness"
    );
}

/// The discovered-pair worklist of the seeded mining corpus, exactly as
/// `mine::mine` builds it (tight explicit discovery budget).
fn discovered_pairs(cfg: &MineConfig) -> Vec<(UExpr, UExpr)> {
    let pool = mine::corpus::corpus(cfg.seed, cfg.atoms);
    let mut session = Session::with_batch_budget(
        Budget::new(3, 3_000),
        BatchBudget {
            max_total_iters: 3,
            max_nodes: 3_000,
            per_goal_iters: 3,
        },
    );
    for (i, e) in pool.iter().enumerate() {
        session.add_root(format!("c{i}"), e);
    }
    session.discovered_exprs()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Random shape-aligned pairs: anti-unification must either refuse
    // (capture / ill-formedness) or return a schema whose hole
    // assignments recover both sources.
    #[test]
    fn anti_unification_recovers_its_sources(seed in 0u64..1_000_000) {
        let mut eg = ExprGen::new(seed);
        let shape_l = eg.expr(3);
        let shape_r = eg.expr(2);
        let p1 = (reatom(&shape_l, "A"), reatom(&shape_r, "A"));
        let p2 = (reatom(&shape_l, "B"), reatom(&shape_r, "B"));
        if let Some(g) = anti_unify(&p1, &p2) {
            assert_well_formed(&g.candidate);
            prop_assert!(
                recovers(&g, &p1, &g.first),
                "first assignment fails to recover\n  schema {} == {}\n  source {} == {}",
                g.candidate.lhs, g.candidate.rhs, p1.0, p1.1
            );
            prop_assert!(
                recovers(&g, &p2, &g.second),
                "second assignment fails to recover\n  schema {} == {}\n  source {} == {}",
                g.candidate.lhs, g.candidate.rhs, p2.0, p2.1
            );
        }
        // Fully independent pairs exercise the refusal paths.
        let q2 = (eg.expr(2), eg.expr(2));
        if let Some(g) = anti_unify(&p1, &q2) {
            assert_well_formed(&g.candidate);
            prop_assert!(recovers(&g, &p1, &g.first));
            prop_assert!(recovers(&g, &q2, &g.second));
        }
    }
}

// On the real seeded corpus the property must hold for every cross-pair
// generalization the miner would enumerate — this is the non-vacuous
// counterpart of the fuzzed test above.
#[test]
fn corpus_generalizations_recover_their_sources() {
    let pairs = discovered_pairs(&MineConfig::default());
    assert!(!pairs.is_empty(), "discovery found nothing to generalize");
    let mut generalized = 0;
    for i in 0..pairs.len() {
        for j in (i + 1)..pairs.len() {
            let Some(g) = anti_unify(&pairs[i], &pairs[j]) else {
                continue;
            };
            generalized += 1;
            assert_well_formed(&g.candidate);
            assert!(
                recovers(&g, &pairs[i], &g.first),
                "schema {} == {} does not recover pair #{i}",
                g.candidate.lhs,
                g.candidate.rhs
            );
            assert!(
                recovers(&g, &pairs[j], &g.second),
                "schema {} == {} does not recover pair #{j}",
                g.candidate.lhs,
                g.candidate.rhs
            );
        }
    }
    assert!(generalized > 0, "no cross-pair generalization succeeded");
}

// Screening completeness: on the seeded corpus (two different corpus
// seeds), no candidate the prover stack certifies is ever rejected by
// the random-interpretation screen. The screen may *pass* an uncertifiable
// candidate (certification catches those); the reverse would lose
// sound rules, which is the failure this test pins down.
#[test]
fn screening_never_rejects_a_certifiable_candidate() {
    for corpus_seed in [MineConfig::default().seed, 7] {
        let cfg = MineConfig {
            seed: corpus_seed,
            ..MineConfig::default()
        };
        let pairs = discovered_pairs(&cfg);
        let pool = mine::corpus::corpus(cfg.seed, cfg.atoms);
        let screen_cfg = ScreenConfig {
            trials: cfg.trials,
            seed: cfg.seed ^ 0x5C4E,
        };
        let mut candidates: Vec<Candidate> = Vec::new();
        for i in 0..pairs.len() {
            for j in (i + 1)..pairs.len() {
                if candidates.len() >= cfg.max_candidates {
                    break;
                }
                if let Some(g) = anti_unify(&pairs[i], &pairs[j]) {
                    candidates.push(g.candidate);
                }
            }
        }
        for pair in &pairs {
            if let Some(c) = ground_candidate(pair) {
                candidates.push(c);
            }
        }
        assert!(!candidates.is_empty(), "seed {corpus_seed}: no candidates");
        for cand in &candidates {
            if screen(cand, &pool, &screen_cfg).is_err() {
                assert!(
                    certify(&cand.lhs, &cand.rhs).is_none(),
                    "seed {corpus_seed}: screened out a certifiable rule {} == {}",
                    cand.lhs,
                    cand.rhs
                );
            }
        }
    }
}
