//! Anti-unification of discovered equal pairs into rule schemas.
//!
//! A discovered pair `(l, r)` is a *ground* fact: the two closed
//! expressions happen to be equal. The generalization step turns pairs
//! of facts into *schemas*: anti-unifying `(l₁, l₂)` and `(r₁, r₂)`
//! under one shared hole table computes the least general
//! generalization of the two facts — positions where the facts disagree
//! become metavariable holes (rendered as `?hN` relation atoms, the
//! representation the e-graph matcher in [`egraph::mined`]
//! understands), and the same disagreeing subexpression pair always maps
//! to the same hole, so nonlinear patterns like `‖?h0 + ?h0‖` survive.
//!
//! Two discipline checks keep this sound:
//!
//! - **capture**: a position is abstracted into a hole only when both
//!   subexpressions are closed — a subexpression mentioning a Σ-bound
//!   variable cannot move under a metavariable without changing meaning;
//! - **wellformedness**: the right side's holes must be a subset of the
//!   left side's (applying the rule never invents bindings), the left
//!   side is not a bare hole (which would match everything), and the two
//!   sides are not α-equal (a trivial rule).
//!
//! The soundness contract, checked by property tests: substituting the
//! first (resp. second) components of the returned hole assignments into
//! the schema yields the first (resp. second) source pair back, up to α.

use egraph::mined::{alpha_canonical, is_hole};
use std::collections::HashMap;
use uninomial::syntax::{Term, UExpr, VarGen};

/// A candidate rule schema: two sides over shared `?hN` holes.
#[derive(Clone, Debug, PartialEq)]
pub struct Candidate {
    /// Pattern side (matched against e-classes).
    pub lhs: UExpr,
    /// Replacement side (its holes are a subset of the pattern's).
    pub rhs: UExpr,
    /// Hole names in first-assignment order (empty for ground rules).
    pub holes: Vec<String>,
}

/// A successful cross-pair generalization: the schema plus the two hole
/// assignments that recover the source pairs.
#[derive(Clone, Debug)]
pub struct Generalization {
    /// The mined schema.
    pub candidate: Candidate,
    /// Hole assignment recovering the first source pair.
    pub first: HashMap<String, UExpr>,
    /// Hole assignment recovering the second source pair.
    pub second: HashMap<String, UExpr>,
}

/// Shared hole table: the same `(x, y)` disagreement pair always
/// reuses its hole, across both sides of the schema. Keys are
/// α-canonical — the two sides of a source pair carry independently
/// refreshed binder ids, and a hole must unify across them.
struct HoleTable {
    entries: Vec<((UExpr, UExpr), String)>,
}

impl HoleTable {
    fn new() -> HoleTable {
        HoleTable {
            entries: Vec::new(),
        }
    }

    fn hole_for(&mut self, a: &UExpr, b: &UExpr) -> UExpr {
        let key = (alpha_canonical(a), alpha_canonical(b));
        for ((x, y), name) in &self.entries {
            if *x == key.0 && *y == key.1 {
                return hole_expr(name);
            }
        }
        let name = format!("?h{}", self.entries.len());
        self.entries.push((key, name.clone()));
        hole_expr(&name)
    }
}

/// The hole representation: an opaque relation atom over the unit
/// tuple. Opaque to the normalizer, the saturation rewrites, and the
/// eval oracle alike — so a certificate for a schema is parametric in
/// its holes.
pub fn hole_expr(name: &str) -> UExpr {
    UExpr::rel(name, Term::Unit)
}

/// Least general generalization of two expressions under a shared hole
/// table. Returns `None` when the two disagree at a position that is
/// not closed on both sides (abstracting there would capture).
fn lgg(a: &UExpr, b: &UExpr, tbl: &mut HoleTable) -> Option<UExpr> {
    if a == b {
        return Some(a.clone());
    }
    let structural = match (a, b) {
        (UExpr::Add(a1, a2), UExpr::Add(b1, b2)) => {
            lgg(a1, b1, tbl).and_then(|l| lgg(a2, b2, tbl).map(|r| UExpr::add(l, r)))
        }
        (UExpr::Mul(a1, a2), UExpr::Mul(b1, b2)) => {
            lgg(a1, b1, tbl).and_then(|l| lgg(a2, b2, tbl).map(|r| UExpr::mul(l, r)))
        }
        (UExpr::Not(x), UExpr::Not(y)) => lgg(x, y, tbl).map(UExpr::not),
        (UExpr::Squash(x), UExpr::Squash(y)) => lgg(x, y, tbl).map(UExpr::squash),
        (UExpr::Sum(v1, b1), UExpr::Sum(v2, b2)) if v1.schema == v2.schema => {
            // α-align the binders before descending: the callers
            // pre-refresh both inputs into disjoint id ranges, so
            // renaming v2 → v1 cannot capture.
            let aligned = b2.subst(v2, &Term::var(v1));
            lgg(b1, &aligned, tbl).map(|body| UExpr::sum(v1.clone(), body))
        }
        _ => None,
    };
    if let Some(e) = structural {
        return Some(e);
    }
    // Disagreement (or a child that could not generalize): abstract the
    // whole position into a hole — but only capture-free, i.e. closed.
    if a.free_vars().is_empty() && b.free_vars().is_empty() {
        Some(tbl.hole_for(a, b))
    } else {
        None
    }
}

/// Syntactic size, used to orient schemas larger-side-left.
pub fn size(e: &UExpr) -> usize {
    match e {
        UExpr::Zero | UExpr::One | UExpr::Eq(_, _) | UExpr::Rel(_, _) | UExpr::Pred(_, _) => 1,
        UExpr::Add(a, b) | UExpr::Mul(a, b) => 1 + size(a) + size(b),
        UExpr::Not(x) | UExpr::Squash(x) => 1 + size(x),
        UExpr::Sum(_, b) => 1 + size(b),
    }
}

/// Collects hole names in first-occurrence order (depth-first).
pub fn holes_of(e: &UExpr) -> Vec<String> {
    fn walk(e: &UExpr, out: &mut Vec<String>) {
        match e {
            UExpr::Rel(name, _) if is_hole(name) && !out.contains(name) => {
                out.push(name.clone());
            }
            UExpr::Add(a, b) | UExpr::Mul(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            UExpr::Not(x) | UExpr::Squash(x) | UExpr::Sum(_, x) => walk(x, out),
            _ => {}
        }
    }
    let mut out = Vec::new();
    walk(e, &mut out);
    out
}

/// Wellformedness of an *oriented* schema. See the module docs.
pub fn well_formed(lhs: &UExpr, rhs: &UExpr) -> bool {
    if matches!(lhs, UExpr::Rel(name, _) if is_hole(name)) {
        return false; // bare hole matches everything
    }
    if !lhs.free_vars().is_empty() || !rhs.free_vars().is_empty() {
        return false; // sides must be closed modulo holes
    }
    let lh = holes_of(lhs);
    if !holes_of(rhs).iter().all(|h| lh.contains(h)) {
        return false; // rhs may not invent holes
    }
    alpha_canonical(lhs) != alpha_canonical(rhs)
}

/// Orients a schema larger-side-left (rewriting toward smaller terms);
/// ties break on the rendered form for determinism.
pub fn orient(lhs: UExpr, rhs: UExpr) -> (UExpr, UExpr) {
    let (sl, sr) = (size(&lhs), size(&rhs));
    if sl > sr || (sl == sr && format!("{lhs}") >= format!("{rhs}")) {
        (lhs, rhs)
    } else {
        (rhs, lhs)
    }
}

/// A deterministic dedup key: α-canonical rendering of both sides.
/// Hole names are already canonical (assignment order), so schemas
/// differing only in bound-variable names collapse.
pub fn canonical_key(lhs: &UExpr, rhs: &UExpr) -> String {
    format!("{} == {}", alpha_canonical(lhs), alpha_canonical(rhs))
}

/// The ground candidate of a single discovered pair: the pair verbatim,
/// no holes. `None` when the pair is α-trivial.
pub fn ground_candidate(pair: &(UExpr, UExpr)) -> Option<Candidate> {
    let (lhs, rhs) = orient(pair.0.clone(), pair.1.clone());
    if !well_formed(&lhs, &rhs) {
        return None;
    }
    Some(Candidate {
        lhs,
        rhs,
        holes: Vec::new(),
    })
}

/// Cross-pair generalization: anti-unify the left sides and the right
/// sides of two discovered pairs under one shared hole table, orient,
/// and check wellformedness. Returns the schema together with the two
/// hole assignments that recover the sources.
pub fn anti_unify(p1: &(UExpr, UExpr), p2: &(UExpr, UExpr)) -> Option<Generalization> {
    // Disjoint binder namespaces so Sum α-alignment cannot capture.
    let mut gen = VarGen::new();
    gen.reserve_above(p1.0.max_var_id().max(p1.1.max_var_id()));
    let l2 = p2.0.refresh_binders(&mut gen);
    let r2 = p2.1.refresh_binders(&mut gen);

    let mut tbl = HoleTable::new();
    let lhs = lgg(&p1.0, &l2, &mut tbl)?;
    let rhs = lgg(&p1.1, &r2, &mut tbl)?;
    let swap = {
        let (olhs, _) = orient(lhs.clone(), rhs.clone());
        olhs != lhs
    };
    let (lhs, rhs) = if swap { (rhs, lhs) } else { (lhs, rhs) };
    if !well_formed(&lhs, &rhs) {
        return None;
    }
    let mut first = HashMap::new();
    let mut second = HashMap::new();
    let mut holes = Vec::new();
    for ((x, y), name) in tbl.entries {
        first.insert(name.clone(), x);
        second.insert(name.clone(), y);
        holes.push(name);
    }
    // Only holes actually used by the oriented schema matter.
    let used = holes_of(&lhs);
    holes.retain(|h| used.contains(h));
    first.retain(|h, _| used.contains(h));
    second.retain(|h, _| used.contains(h));
    Some(Generalization {
        candidate: Candidate { lhs, rhs, holes },
        first,
        second,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(name: &str) -> UExpr {
        UExpr::rel(name, Term::Unit)
    }

    #[test]
    fn cross_pair_lgg_generalizes_the_disagreement() {
        let a = atom("A");
        let b = atom("B");
        let p1 = (
            UExpr::squash(UExpr::squash(a.clone())),
            UExpr::squash(a.clone()),
        );
        let p2 = (
            UExpr::squash(UExpr::squash(b.clone())),
            UExpr::squash(b.clone()),
        );
        let g = anti_unify(&p1, &p2).expect("generalizes");
        assert_eq!(
            g.candidate.lhs,
            UExpr::squash(UExpr::squash(hole_expr("?h0")))
        );
        assert_eq!(g.candidate.rhs, UExpr::squash(hole_expr("?h0")));
        assert_eq!(g.first.get("?h0"), Some(&a));
        assert_eq!(g.second.get("?h0"), Some(&b));
    }

    #[test]
    fn nonlinear_disagreements_share_a_hole() {
        let a = atom("A");
        let b = atom("B");
        let p1 = (
            UExpr::squash(UExpr::add(a.clone(), a.clone())),
            UExpr::squash(a.clone()),
        );
        let p2 = (
            UExpr::squash(UExpr::add(b.clone(), b.clone())),
            UExpr::squash(b.clone()),
        );
        let g = anti_unify(&p1, &p2).expect("generalizes");
        assert_eq!(g.candidate.holes, vec!["?h0".to_owned()]);
        assert_eq!(
            g.candidate.lhs,
            UExpr::squash(UExpr::add(hole_expr("?h0"), hole_expr("?h0")))
        );
    }

    #[test]
    fn shape_mismatch_collapses_to_an_illformed_bare_hole() {
        let a = atom("A");
        let b = atom("B");
        // (a+b = b+a) vs (a×b = b×a): the whole left sides disagree in
        // kind, so the LGG is a bare hole — rejected as ill-formed.
        let p1 = (
            UExpr::add(a.clone(), b.clone()),
            UExpr::add(b.clone(), a.clone()),
        );
        let p2 = (
            UExpr::mul(a.clone(), b.clone()),
            UExpr::mul(b.clone(), a.clone()),
        );
        assert!(anti_unify(&p1, &p2).is_none());
    }

    #[test]
    fn bound_variable_positions_refuse_to_abstract() {
        use relalg::{BaseType, Schema};
        use uninomial::syntax::Var;
        let v = Var {
            id: 0,
            schema: Schema::Leaf(BaseType::Int),
        };
        // Σv. R(v) vs Σv. S(v): the disagreement R(v) ≠ S(v) mentions
        // the bound variable, so no hole may form there, and the outer
        // sums are closed — the LGG degenerates to a bare hole, which
        // wellformedness rejects.
        let p1 = (
            UExpr::sum(v.clone(), UExpr::rel("R", Term::var(&v))),
            UExpr::sum(v.clone(), UExpr::rel("R", Term::var(&v))),
        );
        let p2 = (
            UExpr::sum(v.clone(), UExpr::rel("S", Term::var(&v))),
            UExpr::sum(v.clone(), UExpr::rel("T", Term::var(&v))),
        );
        assert!(anti_unify(&p1, &p2).is_none());
    }

    #[test]
    fn ground_candidates_keep_the_pair_verbatim() {
        let a = atom("A");
        let pair = (
            UExpr::not(UExpr::not(UExpr::not(a.clone()))),
            UExpr::not(a.clone()),
        );
        let c = ground_candidate(&pair).expect("wellformed");
        assert_eq!(c.lhs, pair.0, "larger side stays left");
        assert_eq!(c.rhs, pair.1);
        assert!(c.holes.is_empty());
        // α-trivial pairs are rejected.
        assert!(ground_candidate(&(a.clone(), a.clone())).is_none());
    }
}
