//! Closed-expression corpora for the mining loop.
//!
//! The miner needs a pool of *closed* [`UExpr`]s: anti-unification can
//! only abstract a subexpression into a metavariable hole when the
//! subexpression carries no free (in particular no Σ-bound) variables,
//! and the screening oracle evaluates candidates under an empty
//! environment. The pool is built from generated conjunctive queries —
//! each CQ denotes through the HoTTSQL front end exactly as the prover
//! pipeline denotes it, then closes over its output-tuple variable with
//! an outer Σ (turning "tuples of the answer" into "cardinality of the
//! answer", a closed UniNomial) — plus a systematic layer of algebraic
//! combinations (`‖·‖`, `¬`, `+`, `×`) over the base atoms. The
//! combination layer is what makes discovery productive: saturating the
//! combos surfaces the equal pairs (`‖‖a‖‖ = ‖a‖`, `a+b = b+a`, …)
//! that anti-unification then generalizes across base atoms into
//! schemas.

use cq::generate::random_cq;
use hottsql::denote::denote_closed_query;
use hottsql::env::QueryEnv;
use relalg::{BaseType, Schema};
use uninomial::syntax::{UExpr, VarGen};

/// The table environment all corpus CQs are generated against: three
/// binary integer relations, the same shape `cq::generate` draws from.
pub fn corpus_env() -> QueryEnv {
    let binary = Schema::flat([BaseType::Int, BaseType::Int]);
    QueryEnv::new()
        .with_table("R", binary.clone())
        .with_table("S", binary.clone())
        .with_table("T", binary)
}

/// Denotes one generated CQ into a closed UniNomial: `Σ t. ⟦q⟧ t`.
/// Returns `None` when the query does not denote (it always should for
/// generated CQs over the corpus environment).
pub fn closed_cq_denotation(seed: u64, env: &QueryEnv, gen: &mut VarGen) -> Option<UExpr> {
    // Tiny queries on purpose: screening *evaluates* candidate
    // instantiations, and Σ enumeration is exponential in the bound
    // tuple's schema width — 1-2 atoms keeps widths ≤ 4 (≤ 5⁴ tuples).
    let q = random_cq(
        seed,
        1 + (seed % 2) as u32,
        1 + (seed % 2) as u32,
        &["R", "S", "T"],
    );
    let query = cq::translate::to_query(&q, env)?;
    let (t, body) = denote_closed_query(&query, env, gen).ok()?;
    Some(UExpr::sum(t, body))
}

/// Builds the mining corpus: `n_atoms` closed CQ denotations plus the
/// algebraic combination layer over consecutive atom pairs. Every
/// element is closed; the list is fully determined by `seed`.
pub fn corpus(seed: u64, n_atoms: usize) -> Vec<UExpr> {
    let env = corpus_env();
    let mut gen = VarGen::new();
    let mut atoms = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut s = seed;
    while atoms.len() < n_atoms {
        if let Some(e) = closed_cq_denotation(s, &env, &mut gen) {
            // Distinct atoms *up to α* only: α-variant denotations make
            // cross-pair generalization degenerate into ground noise.
            if seen.insert(format!("{}", egraph::mined::alpha_canonical(&e))) {
                atoms.push(e);
            }
        }
        s = s.wrapping_add(1);
        if s.wrapping_sub(seed) > 10_000 {
            break; // generation is stuck; ship what we have
        }
    }
    let mut pool = atoms.clone();
    for pair in atoms.chunks(2) {
        let a = &pair[0];
        let b = pair.get(1).unwrap_or(&pair[0]);
        pool.extend([
            UExpr::squash(a.clone()),
            UExpr::squash(UExpr::squash(a.clone())),
            UExpr::not(a.clone()),
            UExpr::not(UExpr::not(UExpr::not(a.clone()))),
            UExpr::add(a.clone(), b.clone()),
            UExpr::add(b.clone(), a.clone()),
            UExpr::mul(a.clone(), b.clone()),
            UExpr::mul(b.clone(), a.clone()),
            UExpr::squash(UExpr::mul(a.clone(), b.clone())),
            UExpr::mul(UExpr::squash(a.clone()), UExpr::squash(b.clone())),
            UExpr::squash(UExpr::add(a.clone(), a.clone())),
        ]);
    }
    pool.dedup();
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_closed_and_deterministic() {
        let pool = corpus(42, 4);
        assert!(pool.len() >= 4 + 11, "atoms plus at least one combo layer");
        for e in &pool {
            assert!(e.free_vars().is_empty(), "corpus element not closed: {e}");
        }
        assert_eq!(
            pool,
            corpus(42, 4),
            "corpus must be a pure function of the seed"
        );
    }
}
