//! Cheap refutation of candidate schemas by random interpretation.
//!
//! Every axiom in the trusted catalog is valid over *arbitrary* finite
//! interpretations, so a candidate rule that is wrong is wrong on some
//! concrete one — and concrete evaluation is orders of magnitude
//! cheaper than certification. Each trial instantiates the schema's
//! holes with random closed corpus expressions, assigns random finite
//! relations (and constant predicates) to every symbol, and evaluates
//! both sides under the [`uninomial::eval`] oracle. A cardinality
//! mismatch refutes the candidate outright; an evaluation error (e.g.
//! an uninterpretable scalar function) merely makes the trial
//! inconclusive — screening only ever rejects on a concrete
//! countermodel, so a certifiable candidate is never screened out.

use crate::antiunify::Candidate;
use egraph::mined::instantiate_schema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relalg::generate::Generator;
use relalg::Tuple;
use std::collections::BTreeMap;
use uninomial::eval::{env_of, eval, Interp};
use uninomial::syntax::{UExpr, Var};

/// Screening knobs: how many fuzz trials, under which seed.
#[derive(Clone, Copy, Debug)]
pub struct ScreenConfig {
    /// Number of random-interpretation trials per candidate.
    pub trials: usize,
    /// Deterministic fuzzing seed.
    pub seed: u64,
}

impl Default for ScreenConfig {
    fn default() -> Self {
        ScreenConfig {
            trials: 8,
            seed: 0x0D0B_CE27,
        }
    }
}

/// A concrete countermodel: which trial refuted the candidate and the
/// two cardinalities that disagreed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Refutation {
    /// Zero-based index of the refuting trial.
    pub trial: usize,
    /// Rendered cardinality of the instantiated left side.
    pub lhs: String,
    /// Rendered cardinality of the instantiated right side.
    pub rhs: String,
}

/// Collects every relation and predicate symbol of `e` with the schema
/// of its argument term (skipping symbols whose schema cannot be
/// derived — evaluation will report those as unbound, which screening
/// treats as inconclusive).
fn symbol_schemas(
    e: &UExpr,
    rels: &mut BTreeMap<String, relalg::Schema>,
    preds: &mut BTreeMap<String, ()>,
) {
    match e {
        UExpr::Rel(name, t) => {
            if let Some(s) = t.schema() {
                rels.entry(name.clone()).or_insert(s);
            }
        }
        UExpr::Pred(name, _) => {
            preds.entry(name.clone()).or_insert(());
        }
        UExpr::Add(a, b) | UExpr::Mul(a, b) => {
            symbol_schemas(a, rels, preds);
            symbol_schemas(b, rels, preds);
        }
        UExpr::Not(x) | UExpr::Squash(x) | UExpr::Sum(_, x) => symbol_schemas(x, rels, preds),
        UExpr::Zero | UExpr::One | UExpr::Eq(_, _) => {}
    }
}

/// Runs `cfg.trials` random-interpretation trials of the candidate
/// against the corpus pool.
///
/// # Errors
///
/// Returns the [`Refutation`] of the first trial on which the two sides
/// evaluated to different cardinalities. `Ok(n)` reports how many
/// trials were conclusive (both sides evaluated).
pub fn screen(cand: &Candidate, pool: &[UExpr], cfg: &ScreenConfig) -> Result<usize, Refutation> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut conclusive = 0;
    for trial in 0..cfg.trials {
        // Random closed instantiation of every hole.
        let binds: std::collections::HashMap<String, UExpr> = cand
            .holes
            .iter()
            .map(|h| {
                let pick = pool[rng.gen_range(0..pool.len().max(1))].clone();
                (h.clone(), pick)
            })
            .collect();
        let lhs = instantiate_schema(&cand.lhs, &binds);
        let rhs = instantiate_schema(&cand.rhs, &binds);

        // One random finite model for all symbols of either side.
        let mut rels = BTreeMap::new();
        let mut preds = BTreeMap::new();
        symbol_schemas(&lhs, &mut rels, &mut preds);
        symbol_schemas(&rhs, &mut rels, &mut preds);
        let mut interp = Interp::new();
        let mut generator = Generator::new(cfg.seed ^ (trial as u64).wrapping_mul(0x9E37_79B9));
        for (name, schema) in rels {
            interp = interp.with_rel(name, generator.relation(&schema));
        }
        for (name, ()) in preds {
            let truth = rng.gen::<bool>();
            interp = interp.with_pred(name, move |_t: &Tuple| truth);
        }

        let env = env_of(Vec::<(Var, Tuple)>::new());
        // Unbound or shape errors make a trial teach nothing; only a
        // pair of successful evaluations is conclusive.
        if let (Ok(cl), Ok(cr)) = (eval(&lhs, &interp, &env), eval(&rhs, &interp, &env)) {
            if cl != cr {
                return Err(Refutation {
                    trial,
                    lhs: format!("{cl}"),
                    rhs: format!("{cr}"),
                });
            }
            conclusive += 1;
        }
    }
    Ok(conclusive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antiunify::hole_expr;
    use uninomial::syntax::Term;

    fn atom(name: &str) -> UExpr {
        UExpr::rel(name, Term::Unit)
    }

    fn pool() -> Vec<UExpr> {
        vec![atom("A"), atom("B"), UExpr::add(atom("A"), atom("B"))]
    }

    #[test]
    fn valid_schema_survives_screening_with_conclusive_trials() {
        let cand = Candidate {
            lhs: UExpr::squash(UExpr::squash(hole_expr("?h0"))),
            rhs: UExpr::squash(hole_expr("?h0")),
            holes: vec!["?h0".to_owned()],
        };
        let n = screen(&cand, &pool(), &ScreenConfig::default()).expect("valid rule survives");
        assert!(n > 0, "at least one conclusive trial");
    }

    #[test]
    fn wrong_schema_is_refuted_with_a_countermodel() {
        // ‖x‖ = x is false as soon as some relation has multiplicity > 1.
        let cand = Candidate {
            lhs: UExpr::squash(hole_expr("?h0")),
            rhs: hole_expr("?h0"),
            holes: vec!["?h0".to_owned()],
        };
        let r = screen(&cand, &pool(), &ScreenConfig::default());
        assert!(r.is_err(), "squash-elimination must be refuted: {r:?}");
    }
}
