//! Certification of screened candidates with the trusted prover stack.
//!
//! Screening is evidence, not proof. A candidate enters the catalog
//! only when the existing tactics-then-saturation pipeline proves its
//! two sides equal — with holes left as opaque relation atoms, so the
//! resulting derivation is *parametric*: it holds for every closed
//! instantiation of the holes. The lemma trace of the proof becomes the
//! rule's [`Certificate`]; feeding the rule back into saturation
//! attaches that trace to every union it performs, so `explain` output
//! for mined rules replays Lemma-only steps exactly like hand-written
//! catalog rules. Certification is deterministic, which is what makes
//! [`Certificate::replays`] meaningful: re-proving must reproduce the
//! byte-identical step list.

use egraph::{Budget, MinedRule, SaturateFailure};
use uninomial::lemmas::Lemma;
use uninomial::prove::{prove_eq_with_axioms, Method};
use uninomial::syntax::{UExpr, VarGen};

/// A replayable proof of one mined rule: which engine closed it and the
/// Lemma-only step list.
#[derive(Clone, Debug, PartialEq)]
pub struct Certificate {
    /// `"tactics"` (normalizer/equational stack) or `"saturate"`.
    pub method: String,
    /// The full lemma trace of the proof.
    pub steps: Vec<(Lemma, String)>,
}

/// The saturation budget used when the tactics stack cannot close a
/// candidate on its own.
pub fn certify_budget() -> Budget {
    Budget::new(12, 3_000)
}

fn fresh_gen(lhs: &UExpr, rhs: &UExpr) -> VarGen {
    let mut gen = VarGen::new();
    gen.reserve_above(lhs.max_var_id().max(rhs.max_var_id()));
    gen
}

/// Attempts to certify `lhs = rhs` (holes opaque): tactics first, then
/// budgeted saturation. `None` when both engines give up — the
/// candidate is dropped, not trusted.
pub fn certify(lhs: &UExpr, rhs: &UExpr) -> Option<Certificate> {
    let mut gen = fresh_gen(lhs, rhs);
    if let Ok(proof) = prove_eq_with_axioms(lhs, rhs, &[], &mut gen) {
        let method = match proof.method() {
            Method::Syntactic => "tactics/syntactic",
            _ => "tactics",
        };
        return Some(Certificate {
            method: method.to_owned(),
            steps: proof.trace().steps().to_vec(),
        });
    }
    let mut gen = fresh_gen(lhs, rhs);
    match egraph::prove_eq_saturate(lhs, rhs, &[], &mut gen, certify_budget()) {
        Ok(proof) => Some(Certificate {
            method: "saturate".to_owned(),
            steps: proof.trace().steps().to_vec(),
        }),
        Err(SaturateFailure { .. }) => None,
    }
}

impl Certificate {
    /// Re-proves the rule from scratch and checks the derivation is
    /// byte-identical — the "certificate replays" acceptance check.
    pub fn replays(&self, lhs: &UExpr, rhs: &UExpr) -> bool {
        certify(lhs, rhs).as_ref() == Some(self)
    }
}

/// Compiles a certified candidate into the e-graph's [`MinedRule`]
/// shape. The union justification leads with the certificate's first
/// lemma (or `AlphaRename` for step-free syntactic proofs) and carries
/// the remaining steps as substeps, so an `explain` of any union this
/// rule performs replays the full certificate.
///
/// Patterns are stored with projection spines β-reduced: the e-graph
/// beta-reduces `t.1`/`t.2` of pairs at node-add time, so extraction
/// readback only ever presents reduced terms — an unreduced pattern
/// would never fire outside the graph it was discovered in.
pub fn to_mined_rule(name: &str, lhs: &UExpr, rhs: &UExpr, cert: &Certificate) -> MinedRule {
    let label = format!("{}{name}", egraph::MINED_LABEL_PREFIX);
    let (lemma, note, steps) = match cert.steps.split_first() {
        Some(((first, first_note), rest)) => {
            (*first, format!("{label}: {first_note}"), rest.to_vec())
        }
        None => (
            Lemma::AlphaRename,
            format!("{label}: sides α-equal"),
            Vec::new(),
        ),
    };
    MinedRule {
        name: name.to_owned(),
        lhs: lhs.beta_reduce_terms(),
        rhs: rhs.beta_reduce_terms(),
        lemma,
        note,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antiunify::hole_expr;

    #[test]
    fn parametric_squash_dedup_certifies_and_replays() {
        let lhs = UExpr::squash(UExpr::squash(hole_expr("?h0")));
        let rhs = UExpr::squash(hole_expr("?h0"));
        let cert = certify(&lhs, &rhs).expect("‖‖x‖‖ = ‖x‖ is provable parametrically");
        assert!(!cert.method.is_empty());
        assert!(
            cert.replays(&lhs, &rhs),
            "certificate must replay byte-identically"
        );
        let rule = to_mined_rule("m000", &lhs, &rhs, &cert);
        assert_eq!(rule.label(), "mined:m000");
    }

    #[test]
    fn compiled_patterns_are_beta_reduced() {
        // The e-graph β-reduces projections of pairs at node-add time,
        // so a compiled pattern carrying `((), t).2` would never match
        // any readback — compilation must store the reduced form.
        use uninomial::syntax::Term;
        let raw = UExpr::pred("P", Term::snd(Term::pair(Term::Unit, Term::int(3))));
        let lhs = UExpr::squash(UExpr::squash(raw.clone()));
        let rhs = UExpr::squash(raw.clone());
        let cert = certify(&lhs, &rhs).expect("‖‖P‖‖ = ‖P‖ certifies");
        let rule = to_mined_rule("m001", &lhs, &rhs, &cert);
        let reduced = UExpr::pred("P", Term::int(3));
        assert_eq!(rule.lhs, UExpr::squash(UExpr::squash(reduced.clone())));
        assert_eq!(rule.rhs, UExpr::squash(reduced));
    }

    #[test]
    fn unprovable_candidates_are_rejected() {
        // ‖x‖ = x is not a theorem; neither engine may accept it.
        let lhs = UExpr::squash(hole_expr("?h0"));
        let rhs = hole_expr("?h0");
        assert!(certify(&lhs, &rhs).is_none());
    }
}
