//! Ruler-style rule mining: grow the lemma catalog from discovered
//! equalities.
//!
//! The prover's catalog is fixed and hand-proved; multi-seed sessions
//! already *discover* cross-seed equalities (`catalog --discover`) but
//! drop them. This crate closes the loop:
//!
//! ```text
//!   corpus ──seed──▶ Session ──saturate──▶ discovered pairs
//!      │                                        │
//!      │                              anti-unification (schemas)
//!      │                                        │
//!      └────random interps────▶ screening (refute cheaply)
//!                                               │
//!                              certification (tactics → saturation)
//!                                               │
//!                          MinedRule + replayable Certificate
//!                                               │
//!                         e-graph rewrite table (provenance `mined:`)
//! ```
//!
//! Generation is cheap and unsound; validation is expensive and
//! trusted — the same split as the CHC-expansion line of work. Every
//! accepted rule carries a Lemma-only proof trace, so saturation unions
//! performed by mined rules explain exactly like hand-written ones.
//!
//! The whole pipeline is a pure function of [`MineConfig`]: the corpus,
//! discovery worklist, candidate order, screening trials, and rule
//! names (`m000`, `m001`, …) are all deterministic.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod antiunify;
pub mod certify;
pub mod corpus;
pub mod screen;

use antiunify::{anti_unify, canonical_key, ground_candidate, Candidate};
use certify::{certify, to_mined_rule, Certificate};
use egraph::{BatchBudget, Budget, MinedRule, Session};
use screen::{screen, ScreenConfig};
use uninomial::syntax::UExpr;

pub use screen::Refutation;

/// Mining-run configuration. Everything downstream is a pure function
/// of this.
#[derive(Clone, Copy, Debug)]
pub struct MineConfig {
    /// Corpus seed.
    pub seed: u64,
    /// Number of base CQ denotations in the corpus.
    pub atoms: usize,
    /// Screening trials per candidate.
    pub trials: usize,
    /// Hard cap on candidates sent to certification.
    pub max_candidates: usize,
    /// Hard cap on accepted rules.
    pub max_rules: usize,
}

impl Default for MineConfig {
    fn default() -> Self {
        MineConfig {
            seed: 0xC0_FFEE,
            atoms: 4,
            trials: 8,
            max_candidates: 64,
            max_rules: 16,
        }
    }
}

/// One accepted rule, with its certificate and mining provenance.
#[derive(Clone, Debug)]
pub struct MinedReportEntry {
    /// Deterministic rule name (`m000`, `m001`, …).
    pub name: String,
    /// Rendered left side.
    pub lhs: String,
    /// Rendered right side.
    pub rhs: String,
    /// Number of metavariable holes (0 = ground rule).
    pub holes: usize,
    /// Proving engine (`tactics`, `tactics/syntactic`, or `saturate`).
    pub method: String,
    /// Certificate length in lemma steps.
    pub steps: usize,
    /// Conclusive screening trials the candidate survived.
    pub screen_trials: usize,
    /// Whether the certificate replayed byte-identically.
    pub replays: bool,
}

/// The outcome of one mining run.
#[derive(Clone, Debug, Default)]
pub struct MineReport {
    /// Closed corpus expressions seeded.
    pub corpus_size: usize,
    /// Equal pairs the saturated session discovered.
    pub discovered: usize,
    /// Wellformed candidate schemas after dedup.
    pub candidates: usize,
    /// Candidates refuted by the screening oracle.
    pub screened_out: usize,
    /// Screened candidates the prover stack could not certify.
    pub uncertified: usize,
    /// Accepted rules, in mining order.
    pub accepted: Vec<MinedReportEntry>,
    /// The compiled rewrite-table entries for the accepted rules.
    pub rules: Vec<MinedRule>,
}

/// The session used to saturate the mining corpus. The batch budget is
/// deliberately tight and *explicit*: the default `Session::new`
/// scaling (64 goals' worth of iterations) is meant for long prove
/// batches, and discovery only needs the shallow equalities a few
/// iterations surface.
fn mining_session() -> Session {
    let goal = Budget::new(3, 3_000);
    let batch = BatchBudget {
        max_total_iters: 3,
        max_nodes: 3_000,
        per_goal_iters: 3,
    };
    Session::with_batch_budget(goal, batch)
}

/// Generates the candidate worklist from discovered pairs: every
/// cross-pair generalization plus every ground pair, deduped by
/// α-canonical schema, generalized candidates first.
fn candidates_of(pairs: &[(UExpr, UExpr)], cap: usize) -> Vec<(Candidate, usize)> {
    let mut seen = std::collections::HashSet::new();
    let mut out: Vec<(Candidate, usize)> = Vec::new();
    for i in 0..pairs.len() {
        for j in (i + 1)..pairs.len() {
            if out.len() >= cap {
                break;
            }
            if let Some(g) = anti_unify(&pairs[i], &pairs[j]) {
                if seen.insert(canonical_key(&g.candidate.lhs, &g.candidate.rhs)) {
                    let holes = g.candidate.holes.len();
                    out.push((g.candidate, holes));
                }
            }
        }
    }
    for pair in pairs {
        if out.len() >= cap {
            break;
        }
        if let Some(c) = ground_candidate(pair) {
            if seen.insert(canonical_key(&c.lhs, &c.rhs)) {
                out.push((c, 0));
            }
        }
    }
    out
}

/// Runs the full mining loop. See the crate docs for the pipeline.
pub fn mine(cfg: &MineConfig) -> MineReport {
    let _span = telemetry::span("mine.run");
    let mut report = MineReport::default();

    // 1. Corpus + discovery: seed everything into one session, saturate
    //    the shared graph, and read back the merged-root worklist.
    let pool = corpus::corpus(cfg.seed, cfg.atoms);
    report.corpus_size = pool.len();
    telemetry::count("mine.corpus", pool.len() as u64);
    let mut session = mining_session();
    for (i, e) in pool.iter().enumerate() {
        session.add_root(format!("c{i}"), e);
    }
    let pairs = session.discovered_exprs();
    report.discovered = pairs.len();
    telemetry::count("mine.discovered", pairs.len() as u64);

    // 2. Anti-unification: ground + cross-pair candidates.
    let candidates = candidates_of(&pairs, cfg.max_candidates);
    report.candidates = candidates.len();
    telemetry::count("mine.candidates", candidates.len() as u64);

    // 3-4. Screen cheaply, certify survivors, compile accepted rules.
    // Holes are instantiated from the small end of the pool only:
    // evaluation cost is exponential in Σ-schema width, and a small
    // closed witness refutes exactly as well as a large one.
    let mut screen_pool: Vec<UExpr> = pool
        .iter()
        .filter(|e| antiunify::size(e) <= 12)
        .cloned()
        .collect();
    if screen_pool.is_empty() {
        screen_pool = pool.clone();
    }
    let screen_cfg = ScreenConfig {
        trials: cfg.trials,
        seed: cfg.seed ^ 0x5C4E,
    };
    for (cand, holes) in candidates {
        if report.rules.len() >= cfg.max_rules {
            break;
        }
        let conclusive = match screen(&cand, &screen_pool, &screen_cfg) {
            Ok(n) => n,
            Err(_refutation) => {
                report.screened_out += 1;
                telemetry::count("mine.screened_out", 1);
                continue;
            }
        };
        let Some(cert) = certify(&cand.lhs, &cand.rhs) else {
            report.uncertified += 1;
            telemetry::count("mine.uncertified", 1);
            continue;
        };
        let name = format!("m{:03}", report.rules.len());
        let replays = cert.replays(&cand.lhs, &cand.rhs);
        report.accepted.push(MinedReportEntry {
            name: name.clone(),
            lhs: format!("{}", cand.lhs),
            rhs: format!("{}", cand.rhs),
            holes,
            method: cert.method.clone(),
            steps: cert.steps.len(),
            screen_trials: conclusive,
            replays,
        });
        report
            .rules
            .push(to_mined_rule(&name, &cand.lhs, &cand.rhs, &cert));
        telemetry::count("mine.accepted", 1);
    }
    report
}

/// Convenience: certificate lookup for a compiled rule (used by smoke
/// tests and the CLI's replay check).
pub fn replay_rule(rule: &MinedRule) -> bool {
    certify(&rule.lhs, &rule.rhs).is_some_and(|c: Certificate| {
        // The compiled rule flattens (lemma, note) + steps; rebuild the
        // flat list and compare against a fresh certification.
        let mut flat = vec![(rule.lemma, rule.note.clone())];
        flat.extend(rule.steps.iter().cloned());
        let fresh = to_mined_rule(&rule.name, &rule.lhs, &rule.rhs, &c);
        let mut fresh_flat = vec![(fresh.lemma, fresh.note)];
        fresh_flat.extend(fresh.steps);
        flat == fresh_flat
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mining_certifies_at_least_three_rules_with_replaying_certificates() {
        let report = mine(&MineConfig::default());
        assert!(
            report.accepted.len() >= 3,
            "expected ≥3 certified rules, got {} (discovered {}, candidates {}, screened out {}, uncertified {})",
            report.accepted.len(),
            report.discovered,
            report.candidates,
            report.screened_out,
            report.uncertified,
        );
        for entry in &report.accepted {
            assert!(entry.replays, "certificate for {} must replay", entry.name);
        }
        for rule in &report.rules {
            assert!(rule.label().starts_with("mined:"));
            assert!(replay_rule(rule), "compiled rule {} must replay", rule.name);
        }
    }

    #[test]
    fn mining_is_deterministic() {
        let a = mine(&MineConfig::default());
        let b = mine(&MineConfig::default());
        assert_eq!(a.rules, b.rules);
        assert_eq!(a.accepted.len(), b.accepted.len());
    }
}
