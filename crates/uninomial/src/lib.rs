//! UniNomial: the algebra of univalent types (Definition 3.1) and the
//! provers built on it.
//!
//! The paper denotes every HoTTSQL query into *UniNomial* — formal
//! expressions over the structure `(U, 0, 1, +, ×, ·→0, ‖·‖, Σ)` where
//! `U` is the universe of univalent types. A relation is a function
//! `Tuple σ → U`; equivalence of two queries is equality of the denoted
//! functions. This crate implements that algebra symbolically:
//!
//! - [`syntax`] — the term language: tuple-valued [`Term`]s and
//!   type-valued [`UExpr`]s (the paper's UNINOMIAL expressions).
//! - [`normalize`] — rewriting into *sum-product normal form* ([`Spnf`]):
//!   a sum of `Σ x₁…xₖ. (product of atoms)` terms, using only the trusted
//!   semiring/squash/sum axioms cataloged in [`lemmas`].
//! - [`congruence`] — congruence closure over tuple terms, used to reason
//!   from equality atoms (the paper's Nelson–Oppen-style step, Sec. 3.4).
//! - [`equiv`] — equivalence of normal forms up to variable bijection and
//!   AC of `+`/`×`, with Lemma 5.3 absorption of entailed propositions.
//! - [`deduce`] — the deductive prover for squash goals: proves
//!   `‖A‖ = ‖B‖` from `A ↔ B` by instantiation search, exactly the Ltac
//!   procedure of Sec. 5.2.
//! - [`prove`] — tactic orchestration and machine-checkable
//!   [`ProofTrace`]s.
//! - [`eval`] — concrete evaluation of `UExpr`s over finite domains;
//!   the soundness oracle for the rewrite axioms.
//!
//! # Example
//!
//! Proving Fig. 1 (selection distributes over `UNION ALL`) at the algebra
//! level: `(R t + S t) × b t = R t × b t + S t × b t`.
//!
//! ```
//! use uninomial::syntax::{Term, UExpr, VarGen};
//! use relalg::{BaseType, Schema};
//!
//! let mut gen = VarGen::new();
//! let t = gen.fresh(Schema::leaf(BaseType::Int));
//! let r = UExpr::rel("R", Term::var(&t));
//! let s = UExpr::rel("S", Term::var(&t));
//! let b = UExpr::pred("b", Term::var(&t));
//! let lhs = UExpr::mul(UExpr::add(r.clone(), s.clone()), b.clone());
//! let rhs = UExpr::add(UExpr::mul(r, b.clone()), UExpr::mul(s, b));
//! let proof = uninomial::prove::prove_eq(&lhs, &rhs, &mut gen).expect("provable");
//! assert!(proof.trace().len() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod axioms;
pub mod congruence;
pub mod deduce;
pub mod equiv;
pub mod eval;
pub mod lemmas;
pub mod normalize;
pub mod prove;
pub mod syntax;

pub use axioms::RelAxiom;
pub use normalize::{Atom, NormCache, SharedMemo, Spnf, SpnfTerm};
pub use prove::{prove_eq, Proof, ProofTrace, ProveError};
pub use syntax::intern::{Interner, InternerSnapshot, TermId, UExprId};
pub use syntax::{Term, UExpr, Var, VarGen};
