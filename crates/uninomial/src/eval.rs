//! Concrete evaluation of UniNomial expressions over finite domains.
//!
//! This is the soundness oracle for the symbolic machinery: a [`UExpr`]
//! is evaluated to a [`Card`] under an [`Interp`] assigning concrete
//! relations to relation symbols, boolean functions to predicate symbols,
//! and value functions to scalar symbols. Infinitary sums `Σ` range over
//! the *finite evaluation domain* of the interpretation; every rewrite
//! axiom of [`crate::lemmas`] is valid for an arbitrary fixed domain, so
//! any normalization bug shows up as an evaluation mismatch on some
//! random interpretation (see the property tests in `tests/`).

use crate::normalize::{Atom, Spnf};
use crate::syntax::{Term, UExpr, Var};
use relalg::ops::Aggregate;
use relalg::{BaseType, Card, Relation, Schema, Tuple, Value};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// A predicate interpretation: tuple → bool.
pub type PredFn = Rc<dyn Fn(&Tuple) -> bool>;
/// A scalar-function interpretation: values → value.
pub type ScalarFn = Rc<dyn Fn(&[Value]) -> Value>;

/// Evaluation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A symbol had no interpretation.
    Unbound(String),
    /// A term did not evaluate to the shape an operation required.
    Shape(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unbound(s) => write!(f, "unbound symbol: {s}"),
            EvalError::Shape(s) => write!(f, "shape error: {s}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// An interpretation of all free symbols plus a finite evaluation domain.
#[derive(Clone)]
pub struct Interp {
    /// Relation symbols.
    pub rels: HashMap<String, Relation>,
    /// Predicate symbols.
    pub preds: HashMap<String, PredFn>,
    /// Scalar function symbols.
    pub fns: HashMap<String, ScalarFn>,
    /// Finite domain per base type used to enumerate `Σ`.
    pub domains: HashMap<BaseType, Vec<Value>>,
}

impl fmt::Debug for Interp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interp")
            .field("rels", &self.rels.keys().collect::<Vec<_>>())
            .field("preds", &self.preds.keys().collect::<Vec<_>>())
            .field("fns", &self.fns.keys().collect::<Vec<_>>())
            .field("domains", &self.domains)
            .finish()
    }
}

impl Default for Interp {
    fn default() -> Self {
        Interp::new()
    }
}

impl Interp {
    /// An empty interpretation with the standard small sample domains.
    pub fn new() -> Interp {
        let mut domains = HashMap::new();
        for ty in BaseType::ALL {
            domains.insert(ty, ty.sample_domain());
        }
        Interp {
            rels: HashMap::new(),
            preds: HashMap::new(),
            fns: HashMap::new(),
            domains,
        }
    }

    /// Registers a relation.
    pub fn with_rel(mut self, name: impl Into<String>, r: Relation) -> Interp {
        self.rels.insert(name.into(), r);
        self
    }

    /// Registers a predicate.
    pub fn with_pred(
        mut self,
        name: impl Into<String>,
        p: impl Fn(&Tuple) -> bool + 'static,
    ) -> Interp {
        self.preds.insert(name.into(), Rc::new(p));
        self
    }

    /// Registers a scalar function.
    pub fn with_fn(
        mut self,
        name: impl Into<String>,
        f: impl Fn(&[Value]) -> Value + 'static,
    ) -> Interp {
        self.fns.insert(name.into(), Rc::new(f));
        self
    }

    /// Enumerates all tuples of a schema over the finite domains.
    pub fn enumerate(&self, schema: &Schema) -> Vec<Tuple> {
        match schema {
            Schema::Empty => vec![Tuple::Unit],
            Schema::Leaf(t) => self
                .domains
                .get(t)
                .map(|vs| vs.iter().cloned().map(Tuple::Leaf).collect())
                .unwrap_or_default(),
            Schema::Node(l, r) => {
                let ls = self.enumerate(l);
                let rs = self.enumerate(r);
                let mut out = Vec::with_capacity(ls.len() * rs.len());
                for lt in &ls {
                    for rt in &rs {
                        out.push(Tuple::pair(lt.clone(), rt.clone()));
                    }
                }
                out
            }
        }
    }
}

/// A variable environment.
pub type Env = HashMap<u32, Tuple>;

/// Evaluates a tuple term to a concrete tuple.
///
/// # Errors
///
/// [`EvalError::Unbound`] for unassigned variables or uninterpreted
/// symbols; [`EvalError::Shape`] when a projection meets a non-pair.
pub fn eval_term(t: &Term, interp: &Interp, env: &Env) -> Result<Tuple, EvalError> {
    match t {
        Term::Var(v) => env
            .get(&v.id)
            .cloned()
            .ok_or_else(|| EvalError::Unbound(v.name())),
        Term::Unit => Ok(Tuple::Unit),
        Term::Const(v) => Ok(Tuple::Leaf(v.clone())),
        Term::Pair(a, b) => Ok(Tuple::pair(
            eval_term(a, interp, env)?,
            eval_term(b, interp, env)?,
        )),
        Term::Fst(x) => match eval_term(x, interp, env)? {
            Tuple::Pair(a, _) => Ok(*a),
            other => Err(EvalError::Shape(format!("{other}.1 on non-pair"))),
        },
        Term::Snd(x) => match eval_term(x, interp, env)? {
            Tuple::Pair(_, b) => Ok(*b),
            other => Err(EvalError::Shape(format!("{other}.2 on non-pair"))),
        },
        Term::Fn(name, args) => {
            let f = interp
                .fns
                .get(name)
                .ok_or_else(|| EvalError::Unbound(name.clone()))?;
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                match eval_term(a, interp, env)? {
                    Tuple::Leaf(v) => vals.push(v),
                    other => {
                        return Err(EvalError::Shape(format!(
                            "function argument {other} is not a scalar"
                        )))
                    }
                }
            }
            Ok(Tuple::Leaf(f(&vals)))
        }
        Term::Agg(name, v, body) => {
            let agg = Aggregate::parse(name)
                .ok_or_else(|| EvalError::Unbound(format!("aggregate {name}")))?;
            let mut rel = Relation::empty(v.schema.clone());
            for tup in interp.enumerate(&v.schema) {
                let mut env2 = env.clone();
                env2.insert(v.id, tup.clone());
                let c = eval(body, interp, &env2)?;
                rel.insert_with(tup, c);
            }
            let value =
                relalg::ops::aggregate(agg, &rel).map_err(|e| EvalError::Shape(e.to_string()))?;
            Ok(Tuple::Leaf(value))
        }
    }
}

/// Evaluates a UniNomial expression to a cardinal.
///
/// # Errors
///
/// See [`eval_term`].
pub fn eval(e: &UExpr, interp: &Interp, env: &Env) -> Result<Card, EvalError> {
    match e {
        UExpr::Zero => Ok(Card::ZERO),
        UExpr::One => Ok(Card::ONE),
        UExpr::Add(a, b) => Ok(eval(a, interp, env)? + eval(b, interp, env)?),
        UExpr::Mul(a, b) => Ok(eval(a, interp, env)? * eval(b, interp, env)?),
        UExpr::Not(x) => Ok(eval(x, interp, env)?.not()),
        UExpr::Squash(x) => Ok(eval(x, interp, env)?.squash()),
        UExpr::Sum(v, body) => {
            let mut total = Card::ZERO;
            for tup in interp.enumerate(&v.schema) {
                let mut env2 = env.clone();
                env2.insert(v.id, tup);
                total += eval(body, interp, &env2)?;
            }
            Ok(total)
        }
        UExpr::Eq(a, b) => Ok(Card::from_bool(
            eval_term(a, interp, env)? == eval_term(b, interp, env)?,
        )),
        UExpr::Rel(r, t) => {
            let rel = interp
                .rels
                .get(r)
                .ok_or_else(|| EvalError::Unbound(r.clone()))?;
            Ok(rel.multiplicity(&eval_term(t, interp, env)?))
        }
        UExpr::Pred(p, t) => {
            let f = interp
                .preds
                .get(p)
                .ok_or_else(|| EvalError::Unbound(p.clone()))?;
            Ok(Card::from_bool(f(&eval_term(t, interp, env)?)))
        }
    }
}

/// Evaluates a normal form (by reification) — used to cross-check the
/// normalizer.
///
/// # Errors
///
/// See [`eval`].
pub fn eval_spnf(s: &Spnf, interp: &Interp, env: &Env) -> Result<Card, EvalError> {
    eval(&s.reify(), interp, env)
}

/// Evaluates a single atom (propositional reading for `Not`/`Squash`).
///
/// # Errors
///
/// See [`eval`].
pub fn eval_atom(a: &Atom, interp: &Interp, env: &Env) -> Result<Card, EvalError> {
    eval(&a.reify(), interp, env)
}

/// Builds an environment binding the free variables of an expression to
/// given tuples (convenience for tests).
pub fn env_of(bindings: impl IntoIterator<Item = (Var, Tuple)>) -> Env {
    bindings.into_iter().map(|(v, t)| (v.id, t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::{normalize, Trace};
    use crate::syntax::VarGen;

    fn leaf_int() -> Schema {
        Schema::leaf(BaseType::Int)
    }

    fn simple_rel(vals: &[i64]) -> Relation {
        Relation::from_tuples(leaf_int(), vals.iter().map(|&n| Tuple::int(n))).unwrap()
    }

    #[test]
    fn constants_and_arithmetic() {
        let i = Interp::new();
        let env = Env::new();
        assert_eq!(eval(&UExpr::Zero, &i, &env).unwrap(), Card::ZERO);
        assert_eq!(eval(&UExpr::One, &i, &env).unwrap(), Card::ONE);
        let two = UExpr::add(UExpr::One, UExpr::One);
        assert_eq!(eval(&two, &i, &env).unwrap(), Card::Fin(2));
        let four = UExpr::mul(two.clone(), two);
        assert_eq!(eval(&four, &i, &env).unwrap(), Card::Fin(4));
    }

    #[test]
    fn relation_multiplicity() {
        let i = Interp::new().with_rel("R", simple_rel(&[1, 1, 2]));
        let env = Env::new();
        let e = UExpr::rel("R", Term::int(1));
        assert_eq!(eval(&e, &i, &env).unwrap(), Card::Fin(2));
        let e = UExpr::rel("R", Term::int(5));
        assert_eq!(eval(&e, &i, &env).unwrap(), Card::ZERO);
    }

    #[test]
    fn sum_counts_domain() {
        // Σx:int. R(x) = |R| when R's support is inside the domain.
        let mut g = VarGen::new();
        let x = g.fresh(leaf_int());
        let i = Interp::new().with_rel("R", simple_rel(&[-1, 0, 0, 2]));
        let e = UExpr::sum(x.clone(), UExpr::rel("R", Term::var(&x)));
        assert_eq!(eval(&e, &i, &Env::new()).unwrap(), Card::Fin(4));
    }

    #[test]
    fn squash_and_not() {
        let i = Interp::new().with_rel("R", simple_rel(&[1, 1]));
        let env = Env::new();
        let r1 = UExpr::rel("R", Term::int(1));
        assert_eq!(
            eval(&UExpr::squash(r1.clone()), &i, &env).unwrap(),
            Card::ONE
        );
        assert_eq!(eval(&UExpr::not(r1), &i, &env).unwrap(), Card::ZERO);
        let r9 = UExpr::rel("R", Term::int(9));
        assert_eq!(eval(&UExpr::not(r9), &i, &env).unwrap(), Card::ONE);
    }

    #[test]
    fn predicates_and_functions() {
        let i = Interp::new()
            .with_pred("pos", |t: &Tuple| {
                t.value().and_then(Value::as_int).map(|n| n > 0) == Some(true)
            })
            .with_fn("neg", |vs: &[Value]| {
                Value::Int(-vs[0].as_int().unwrap_or(0))
            });
        let env = Env::new();
        assert_eq!(
            eval(&UExpr::pred("pos", Term::int(2)), &i, &env).unwrap(),
            Card::ONE
        );
        assert_eq!(
            eval(
                &UExpr::pred("pos", Term::func("neg", vec![Term::int(2)])),
                &i,
                &env
            )
            .unwrap(),
            Card::ZERO
        );
    }

    #[test]
    fn aggregate_evaluation() {
        // SUM over λx. R(x): sums values weighted by multiplicity.
        let mut g = VarGen::new();
        let x = g.fresh(leaf_int());
        let i = Interp::new().with_rel("R", simple_rel(&[1, 2, 2]));
        let agg = Term::agg("SUM", x.clone(), UExpr::rel("R", Term::var(&x)));
        assert_eq!(
            eval_term(&agg, &i, &Env::new()).unwrap(),
            Tuple::int(5) // 1 + 2 + 2
        );
        let cnt = Term::agg("COUNT", x.clone(), UExpr::rel("R", Term::var(&x)));
        assert_eq!(eval_term(&cnt, &i, &Env::new()).unwrap(), Tuple::int(3));
    }

    #[test]
    fn unbound_symbols_error() {
        let i = Interp::new();
        let env = Env::new();
        assert!(matches!(
            eval(&UExpr::rel("Z", Term::int(0)), &i, &env),
            Err(EvalError::Unbound(_))
        ));
        assert!(matches!(
            eval(&UExpr::pred("q", Term::int(0)), &i, &env),
            Err(EvalError::Unbound(_))
        ));
    }

    #[test]
    fn normalization_preserves_evaluation_samples() {
        // A handful of deterministic checks; the heavy randomized version
        // lives in tests/prop_normalize.rs.
        let mut g = VarGen::new();
        let t = g.fresh(leaf_int());
        let x = g.fresh(leaf_int());
        let i = Interp::new()
            .with_rel("R", simple_rel(&[0, 1, 1, 2]))
            .with_rel("S", simple_rel(&[1, 2]))
            .with_pred("b", |t: &Tuple| {
                t.value().and_then(Value::as_int).map(|n| n != 0) == Some(true)
            });
        let exprs = [
            UExpr::mul(
                UExpr::add(
                    UExpr::rel("R", Term::var(&t)),
                    UExpr::rel("S", Term::var(&t)),
                ),
                UExpr::pred("b", Term::var(&t)),
            ),
            UExpr::sum(
                x.clone(),
                UExpr::mul(
                    UExpr::eq(Term::var(&x), Term::var(&t)),
                    UExpr::rel("R", Term::var(&x)),
                ),
            ),
            UExpr::squash(UExpr::mul(
                UExpr::rel("R", Term::var(&t)),
                UExpr::rel("R", Term::var(&t)),
            )),
            UExpr::mul(
                UExpr::rel("R", Term::var(&t)),
                UExpr::not(UExpr::squash(UExpr::rel("S", Term::var(&t)))),
            ),
        ];
        for e in &exprs {
            let mut tr = Trace::new();
            let nf = normalize(e, &mut g, &mut tr);
            for val in [-2i64, -1, 0, 1, 2] {
                let env = env_of([(t.clone(), Tuple::int(val))]);
                let orig = eval(e, &i, &env).unwrap();
                let post = eval_spnf(&nf, &i, &env).unwrap();
                assert_eq!(orig, post, "mismatch for {e} at t={val}: nf = {nf}");
            }
        }
    }
}
