//! Hash-consed (interned) representation of the UniNomial term language.
//!
//! Every distinct [`Term`]/[`UExpr`] tree structure is stored exactly
//! once in an arena and addressed by a small copyable id ([`TermId`],
//! [`UExprId`]). Interning gives the hot paths three things the boxed
//! trees cannot:
//!
//! - **O(1) structural equality** — two interned nodes are structurally
//!   equal iff their ids are equal;
//! - **cached analyses** — free-variable sets and binder-occurrence
//!   flags are computed once per distinct node at interning time and
//!   shared by every occurrence;
//! - **stable memoization keys** — the memoizing normalizer
//!   ([`crate::normalize::NormCache`]) keys its table by [`UExprId`], so
//!   a subterm shared by many rules (or duplicated inside one rule by
//!   `refresh_binders`-free cloning) normalizes once.
//!
//! The arenas only ever grow; ids are never invalidated. A frozen
//! [`InternerSnapshot`] (an `Arc` of the whole interner) can be shared
//! across worker threads without locking: workers clone the snapshot
//! once and extend their private copy, which preserves every id of the
//! snapshot (ids are indices and the arenas are append-only).

use crate::syntax::{Term, UExpr, Var};
use relalg::Value;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Arena id of an interned [`Term`]. Ids are only meaningful relative to
/// the [`Interner`] that issued them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

/// Arena id of an interned [`UExpr`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UExprId(u32);

impl TermId {
    /// The raw arena index. Ids are issued densely from 0, so an index
    /// below a snapshot's `term_count` addresses the same tree in every
    /// clone of that snapshot.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl UExprId {
    /// The raw arena index (see [`TermId::index`]).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Flattened [`Term`] node: children are ids, not boxes.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TermNode {
    /// A tuple variable.
    Var(Var),
    /// The unit tuple.
    Unit,
    /// Pairing.
    Pair(TermId, TermId),
    /// First projection.
    Fst(TermId),
    /// Second projection.
    Snd(TermId),
    /// A scalar constant.
    Const(Value),
    /// Uninterpreted function application.
    Fn(String, Vec<TermId>),
    /// Aggregate over a relation body.
    Agg(String, Var, UExprId),
}

/// Flattened [`UExpr`] node.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum UExprNode {
    /// `0`.
    Zero,
    /// `1`.
    One,
    /// `n₁ + n₂`.
    Add(UExprId, UExprId),
    /// `n₁ × n₂`.
    Mul(UExprId, UExprId),
    /// `n → 0`.
    Not(UExprId),
    /// `‖n‖`.
    Squash(UExprId),
    /// `Σ v. body`.
    Sum(Var, UExprId),
    /// `t₁ = t₂`.
    Eq(TermId, TermId),
    /// `⟦R⟧ t`.
    Rel(String, TermId),
    /// `⟦b⟧ t`.
    Pred(String, TermId),
}

/// Per-node cached analyses.
#[derive(Clone, Debug)]
struct NodeMeta {
    /// Free variables of the subtree rooted here (binders removed).
    free_vars: Arc<BTreeSet<Var>>,
    /// Whether the subtree contains any binder (`Σ` or an aggregate).
    has_binder: bool,
}

/// The hash-consing arena for both sorts.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    terms: Vec<TermNode>,
    term_meta: Vec<NodeMeta>,
    term_ids: HashMap<TermNode, TermId>,
    uexprs: Vec<UExprNode>,
    uexpr_meta: Vec<NodeMeta>,
    uexpr_ids: HashMap<UExprNode, UExprId>,
}

/// A frozen, shareable view of an [`Interner`]: the lock-free seed the
/// batch engine hands to each worker thread.
pub type InternerSnapshot = Arc<Interner>;

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Number of distinct interned terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Number of distinct interned expressions.
    pub fn uexpr_count(&self) -> usize {
        self.uexprs.len()
    }

    /// Freezes the current state into a shareable snapshot. Workers
    /// clone the snapshot (`Interner::clone`) and extend privately; all
    /// ids issued before the freeze remain valid in every copy.
    pub fn snapshot(self) -> InternerSnapshot {
        Arc::new(self)
    }

    fn intern_term_node(&mut self, node: TermNode) -> TermId {
        if let Some(&id) = self.term_ids.get(&node) {
            return id;
        }
        let meta = self.term_node_meta(&node);
        let id = TermId(u32::try_from(self.terms.len()).expect("term arena overflow"));
        self.terms.push(node.clone());
        self.term_meta.push(meta);
        self.term_ids.insert(node, id);
        id
    }

    fn intern_uexpr_node(&mut self, node: UExprNode) -> UExprId {
        if let Some(&id) = self.uexpr_ids.get(&node) {
            return id;
        }
        let meta = self.uexpr_node_meta(&node);
        let id = UExprId(u32::try_from(self.uexprs.len()).expect("uexpr arena overflow"));
        self.uexprs.push(node.clone());
        self.uexpr_meta.push(meta);
        self.uexpr_ids.insert(node, id);
        id
    }

    fn term_node_meta(&self, node: &TermNode) -> NodeMeta {
        let empty = || Arc::new(BTreeSet::new());
        match node {
            TermNode::Var(v) => NodeMeta {
                free_vars: Arc::new(BTreeSet::from([v.clone()])),
                has_binder: false,
            },
            TermNode::Unit | TermNode::Const(_) => NodeMeta {
                free_vars: empty(),
                has_binder: false,
            },
            TermNode::Pair(a, b) => self.merge_meta(&[self.term_meta(*a), self.term_meta(*b)]),
            TermNode::Fst(t) | TermNode::Snd(t) => self.term_meta(*t).clone(),
            TermNode::Fn(_, args) => {
                let metas: Vec<&NodeMeta> = args.iter().map(|a| self.term_meta(*a)).collect();
                self.merge_meta(&metas)
            }
            TermNode::Agg(_, v, body) => {
                let inner = self.uexpr_meta(*body);
                let mut fv = (*inner.free_vars).clone();
                fv.remove(v);
                NodeMeta {
                    free_vars: Arc::new(fv),
                    has_binder: true,
                }
            }
        }
    }

    fn uexpr_node_meta(&self, node: &UExprNode) -> NodeMeta {
        let empty = || Arc::new(BTreeSet::new());
        match node {
            UExprNode::Zero | UExprNode::One => NodeMeta {
                free_vars: empty(),
                has_binder: false,
            },
            UExprNode::Add(a, b) | UExprNode::Mul(a, b) => {
                self.merge_meta(&[self.uexpr_meta(*a), self.uexpr_meta(*b)])
            }
            UExprNode::Not(e) | UExprNode::Squash(e) => self.uexpr_meta(*e).clone(),
            UExprNode::Sum(v, body) => {
                let inner = self.uexpr_meta(*body);
                let mut fv = (*inner.free_vars).clone();
                fv.remove(v);
                NodeMeta {
                    free_vars: Arc::new(fv),
                    has_binder: true,
                }
            }
            UExprNode::Eq(a, b) => self.merge_meta(&[self.term_meta(*a), self.term_meta(*b)]),
            UExprNode::Rel(_, t) | UExprNode::Pred(_, t) => self.term_meta(*t).clone(),
        }
    }

    fn merge_meta(&self, parts: &[&NodeMeta]) -> NodeMeta {
        // Reuse a child's set when the others contribute nothing — the
        // common case (e.g. `R(t) × (t = c)` shares `{t}` all the way up).
        let has_binder = parts.iter().any(|m| m.has_binder);
        let nonempty: Vec<&&NodeMeta> = parts.iter().filter(|m| !m.free_vars.is_empty()).collect();
        let free_vars = match nonempty.as_slice() {
            [] => Arc::new(BTreeSet::new()),
            [one] => Arc::clone(&one.free_vars),
            many => {
                let mut fv = (*many[0].free_vars).clone();
                for m in &many[1..] {
                    fv.extend(m.free_vars.iter().cloned());
                }
                Arc::new(fv)
            }
        };
        NodeMeta {
            free_vars,
            has_binder,
        }
    }

    fn term_meta(&self, id: TermId) -> &NodeMeta {
        &self.term_meta[id.0 as usize]
    }

    fn uexpr_meta(&self, id: UExprId) -> &NodeMeta {
        &self.uexpr_meta[id.0 as usize]
    }

    /// Interns a tuple term.
    pub fn intern_term(&mut self, t: &Term) -> TermId {
        let node = match t {
            Term::Var(v) => TermNode::Var(v.clone()),
            Term::Unit => TermNode::Unit,
            Term::Const(v) => TermNode::Const(v.clone()),
            Term::Pair(a, b) => {
                let (a, b) = (self.intern_term(a), self.intern_term(b));
                TermNode::Pair(a, b)
            }
            Term::Fst(x) => {
                let x = self.intern_term(x);
                TermNode::Fst(x)
            }
            Term::Snd(x) => {
                let x = self.intern_term(x);
                TermNode::Snd(x)
            }
            Term::Fn(f, args) => {
                let args = args.iter().map(|a| self.intern_term(a)).collect();
                TermNode::Fn(f.clone(), args)
            }
            Term::Agg(name, v, body) => {
                let body = self.intern(body);
                TermNode::Agg(name.clone(), v.clone(), body)
            }
        };
        self.intern_term_node(node)
    }

    /// Interns an expression.
    pub fn intern(&mut self, e: &UExpr) -> UExprId {
        let node = match e {
            UExpr::Zero => UExprNode::Zero,
            UExpr::One => UExprNode::One,
            UExpr::Add(a, b) => {
                let (a, b) = (self.intern(a), self.intern(b));
                UExprNode::Add(a, b)
            }
            UExpr::Mul(a, b) => {
                let (a, b) = (self.intern(a), self.intern(b));
                UExprNode::Mul(a, b)
            }
            UExpr::Not(x) => {
                let x = self.intern(x);
                UExprNode::Not(x)
            }
            UExpr::Squash(x) => {
                let x = self.intern(x);
                UExprNode::Squash(x)
            }
            UExpr::Sum(v, body) => {
                let body = self.intern(body);
                UExprNode::Sum(v.clone(), body)
            }
            UExpr::Eq(a, b) => {
                let (a, b) = (self.intern_term(a), self.intern_term(b));
                UExprNode::Eq(a, b)
            }
            UExpr::Rel(r, t) => {
                let t = self.intern_term(t);
                UExprNode::Rel(r.clone(), t)
            }
            UExpr::Pred(p, t) => {
                let t = self.intern_term(t);
                UExprNode::Pred(p.clone(), t)
            }
        };
        self.intern_uexpr_node(node)
    }

    /// The interned node behind a term id.
    pub fn term_node(&self, id: TermId) -> &TermNode {
        &self.terms[id.0 as usize]
    }

    /// The interned node behind an expression id.
    pub fn uexpr_node(&self, id: UExprId) -> &UExprNode {
        &self.uexprs[id.0 as usize]
    }

    /// Reconstructs the boxed [`Term`] tree (the round-trip inverse of
    /// [`Interner::intern_term`]).
    pub fn extract_term(&self, id: TermId) -> Term {
        match self.term_node(id) {
            TermNode::Var(v) => Term::Var(v.clone()),
            TermNode::Unit => Term::Unit,
            TermNode::Const(v) => Term::Const(v.clone()),
            TermNode::Pair(a, b) => Term::pair(self.extract_term(*a), self.extract_term(*b)),
            TermNode::Fst(t) => Term::fst(self.extract_term(*t)),
            TermNode::Snd(t) => Term::snd(self.extract_term(*t)),
            TermNode::Fn(f, args) => Term::Fn(
                f.clone(),
                args.iter().map(|a| self.extract_term(*a)).collect(),
            ),
            TermNode::Agg(name, v, body) => {
                Term::Agg(name.clone(), v.clone(), Box::new(self.extract(*body)))
            }
        }
    }

    /// Reconstructs the boxed [`UExpr`] tree (the round-trip inverse of
    /// [`Interner::intern`]).
    pub fn extract(&self, id: UExprId) -> UExpr {
        match self.uexpr_node(id) {
            UExprNode::Zero => UExpr::Zero,
            UExprNode::One => UExpr::One,
            UExprNode::Add(a, b) => UExpr::add(self.extract(*a), self.extract(*b)),
            UExprNode::Mul(a, b) => UExpr::mul(self.extract(*a), self.extract(*b)),
            UExprNode::Not(e) => UExpr::not(self.extract(*e)),
            UExprNode::Squash(e) => UExpr::squash(self.extract(*e)),
            UExprNode::Sum(v, body) => UExpr::Sum(v.clone(), Box::new(self.extract(*body))),
            UExprNode::Eq(a, b) => UExpr::eq(self.extract_term(*a), self.extract_term(*b)),
            UExprNode::Rel(r, t) => UExpr::Rel(r.clone(), self.extract_term(*t)),
            UExprNode::Pred(p, t) => UExpr::Pred(p.clone(), self.extract_term(*t)),
        }
    }

    /// Cached free variables of an interned expression. O(1) per call —
    /// computed once at interning time.
    pub fn free_vars(&self, id: UExprId) -> &BTreeSet<Var> {
        &self.uexpr_meta(id).free_vars
    }

    /// Cached free variables of an interned term.
    pub fn term_free_vars(&self, id: TermId) -> &BTreeSet<Var> {
        &self.term_meta(id).free_vars
    }

    /// Whether the interned expression contains any binder (`Σ` or an
    /// aggregate). Binder-free expressions normalize purely — the
    /// precondition for memoizing their normal forms.
    pub fn has_binder(&self, id: UExprId) -> bool {
        self.uexpr_meta(id).has_binder
    }

    /// Whether the interned term contains an aggregate binder.
    pub fn term_has_binder(&self, id: TermId) -> bool {
        self.term_meta(id).has_binder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::VarGen;
    use relalg::{BaseType, Schema};

    fn leaf_int() -> Schema {
        Schema::leaf(BaseType::Int)
    }

    #[test]
    fn interning_deduplicates_shared_structure() {
        let mut gen = VarGen::new();
        let t = gen.fresh(leaf_int());
        let r = UExpr::rel("R", Term::var(&t));
        let e = UExpr::mul(r.clone(), r.clone());
        let mut i = Interner::new();
        let id = i.intern(&e);
        // `R(t)` is stored once even though it occurs twice.
        let UExprNode::Mul(a, b) = i.uexpr_node(id) else {
            panic!("expected Mul");
        };
        assert_eq!(a, b, "shared subterm must intern to one id");
        assert_eq!(i.intern(&e), id, "re-interning is stable");
    }

    #[test]
    fn equal_ids_iff_equal_trees() {
        let mut gen = VarGen::new();
        let x = gen.fresh(leaf_int());
        let y = gen.fresh(leaf_int());
        let mut i = Interner::new();
        let a = i.intern(&UExpr::rel("R", Term::var(&x)));
        let b = i.intern(&UExpr::rel("R", Term::var(&y)));
        let a2 = i.intern(&UExpr::rel("R", Term::var(&x)));
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn roundtrip_preserves_trees() {
        let mut gen = VarGen::new();
        let v = gen.fresh(Schema::node(leaf_int(), leaf_int()));
        let w = gen.fresh(leaf_int());
        let e = UExpr::sum(
            v.clone(),
            UExpr::mul(
                UExpr::rel("R", Term::var(&v)),
                UExpr::squash(UExpr::eq(
                    Term::fst(Term::var(&v)),
                    Term::agg("SUM", w.clone(), UExpr::rel("S", Term::var(&w))),
                )),
            ),
        );
        let mut i = Interner::new();
        let id = i.intern(&e);
        assert_eq!(i.extract(id), e);
    }

    #[test]
    fn cached_free_vars_match_tree_computation() {
        let mut gen = VarGen::new();
        let free = gen.fresh(leaf_int());
        let bound = gen.fresh(leaf_int());
        let e = UExpr::sum(
            bound.clone(),
            UExpr::mul(
                UExpr::rel("R", Term::var(&bound)),
                UExpr::eq(Term::var(&free), Term::var(&bound)),
            ),
        );
        let mut i = Interner::new();
        let id = i.intern(&e);
        assert_eq!(i.free_vars(id), &e.free_vars());
        assert!(i.has_binder(id));
        let atom = i.intern(&UExpr::rel("R", Term::var(&free)));
        assert!(!i.has_binder(atom));
    }

    #[test]
    fn snapshot_ids_survive_cloning_and_extension() {
        let mut base = Interner::new();
        let mut gen = VarGen::new();
        let t = gen.fresh(leaf_int());
        let e = UExpr::rel("R", Term::var(&t));
        let id = base.intern(&e);
        let snap = base.snapshot();
        let mut worker_a = (*snap).clone();
        let mut worker_b = (*snap).clone();
        assert_eq!(worker_a.intern(&e), id);
        let new = worker_b.intern(&UExpr::pred("b", Term::var(&t)));
        assert_ne!(new, id);
        assert_eq!(worker_b.extract(id), e, "old ids stay valid after growth");
    }
}
