//! The deductive prover for propositional goals.
//!
//! The paper proves squash-type equivalences `‖A‖ = ‖B‖` by the
//! bi-implication `A ↔ B` (univalence gives `(A ↔ B) ⇒ (A = B)` for
//! propositions — Sec. 2), establishing each direction by destructing the
//! hypothesis existentials and *instantiating* the goal existentials with
//! witnesses built from the hypotheses (the Ltac backtracking procedure of
//! Sec. 5.2). This module is that procedure:
//!
//! - [`prove_iff`] — proves `A ↔ B` for normal forms `A`, `B`;
//! - [`provable_from`] — proves `hyps ⊢ goal` with case splitting on
//!   hypothesis disjunctions and witness search for goal existentials;
//! - [`entails_atom`] — discharges a single goal atom from hypotheses via
//!   congruence closure, including the aggregate-congruence extension
//!   needed by the Sec. 5.1.2 aggregation rewrite.

use crate::congruence::Congruence;
use crate::equiv;
use crate::lemmas::Lemma;
use crate::normalize::{atom_subst_raw, Atom, Spnf, SpnfTerm, Trace};
use crate::syntax::{Term, UExpr, Var, VarGen};
use relalg::Schema;

/// Shared prover state: fresh-variable source, proof trace, and a depth
/// budget bounding the mutual recursion between entailment, witness
/// search, and aggregate-body equivalence.
#[derive(Debug)]
pub struct Ctx<'a> {
    /// Fresh variable source.
    pub gen: &'a mut VarGen,
    /// Proof trace accumulating lemma applications.
    pub trace: &'a mut Trace,
    /// Remaining recursion depth; `0` makes nested entailments fail
    /// (soundly — the prover only ever under-approximates provability).
    pub depth: u32,
}

impl<'a> Ctx<'a> {
    /// Creates a context with the default depth budget.
    pub fn new(gen: &'a mut VarGen, trace: &'a mut Trace) -> Ctx<'a> {
        Ctx {
            gen,
            trace,
            depth: 6,
        }
    }
}

/// Proves `A ↔ B` where both sides are (sums of) propositions, by proving
/// each direction with [`provable_from`]. `ambient` atoms are hypotheses
/// available in both directions (used when the goal sits under an outer
/// product, e.g. inside an aggregate body).
pub fn prove_iff(a: &Spnf, b: &Spnf, ambient: &[Atom], ctx: &mut Ctx<'_>) -> bool {
    let forward = a.terms.iter().all(|ta| {
        let mut hyps = ambient.to_vec();
        hyps.extend(ta.atoms.iter().cloned());
        provable_from(&hyps, b, ctx)
    });
    if !forward {
        return false;
    }
    let backward = b.terms.iter().all(|tb| {
        let mut hyps = ambient.to_vec();
        hyps.extend(tb.atoms.iter().cloned());
        provable_from(&hyps, a, ctx)
    });
    if backward {
        ctx.trace.step(Lemma::PropExt, "A ↔ B proves ‖A‖ = ‖B‖");
    }
    backward
}

/// Proves `hyps ⊢ goal` (both read propositionally). Hypothesis squash
/// atoms are destructed — skolemizing single-summand existentials and case
/// splitting on multi-summand ones — then some goal summand is proved by
/// witness search.
pub fn provable_from(hyps: &[Atom], goal: &Spnf, ctx: &mut Ctx<'_>) -> bool {
    if ctx.depth == 0 {
        return false;
    }
    let branches = flatten_hyps(hyps.to_vec(), ctx);
    branches
        .into_iter()
        .all(|branch| branch_proves(&branch, goal, ctx))
}

/// Destructs hypothesis squash atoms into (possibly several) branches of
/// plain atom lists; every branch must subsequently prove the goal.
fn flatten_hyps(atoms: Vec<Atom>, ctx: &mut Ctx<'_>) -> Vec<Vec<Atom>> {
    let mut branches: Vec<Vec<Atom>> = vec![Vec::new()];
    for a in atoms {
        match a {
            Atom::Squash(s) if !s.terms.is_empty() => {
                if s.terms.len() > 1 {
                    ctx.trace
                        .step(Lemma::CaseSplit, format!("case split on ‖{s}‖"));
                }
                let mut next = Vec::new();
                for term in &s.terms {
                    // Skolemize: the (globally unique) bound vars become
                    // free constants of the branch.
                    let sub_branches = flatten_hyps(term.atoms.clone(), ctx);
                    for b in &branches {
                        for sb in &sub_branches {
                            let mut nb = b.clone();
                            nb.extend(sb.iter().cloned());
                            next.push(nb);
                        }
                    }
                }
                branches = next;
            }
            other => {
                for b in &mut branches {
                    b.push(other.clone());
                }
            }
        }
    }
    branches
}

fn branch_proves(hyps: &[Atom], goal: &Spnf, ctx: &mut Ctx<'_>) -> bool {
    if goal.terms.is_empty() {
        // Goal 0 holds only from inconsistent hypotheses.
        return build_cc(hyps).contradictory();
    }
    goal.terms.iter().any(|gt| disjunct_provable(hyps, gt, ctx))
}

fn disjunct_provable(hyps: &[Atom], gt: &SpnfTerm, ctx: &mut Ctx<'_>) -> bool {
    let mut cc = build_cc(hyps);
    if cc.contradictory() {
        ctx.trace
            .step(Lemma::MulZero, "hypotheses are inconsistent");
        return true;
    }
    search(hyps, &mut cc, &gt.vars, gt.atoms.clone(), ctx)
}

/// Backtracking witness search: instantiate goal variables with candidate
/// terms drawn from the hypotheses, pruning on already-ground atoms.
fn search(
    hyps: &[Atom],
    cc: &mut Congruence,
    vars: &[Var],
    atoms: Vec<Atom>,
    ctx: &mut Ctx<'_>,
) -> bool {
    // Check atoms that mention none of the remaining variables; prune
    // immediately if one fails.
    let remaining: Vec<&Var> = vars.iter().collect();
    for a in &atoms {
        let fv = a.free_vars();
        if remaining.iter().all(|v| !fv.contains(v)) && !entails_atom(hyps, cc, a, ctx) {
            return false;
        }
    }
    let Some((v, rest)) = vars.split_first() else {
        return true; // all atoms ground and verified above
    };
    for cand in candidates(hyps, &atoms, v) {
        let next: Vec<Atom> = atoms.iter().map(|a| atom_subst_raw(a, v, &cand)).collect();
        if search(hyps, cc, rest, next, ctx) {
            ctx.trace.step(
                Lemma::ExistsWitness,
                format!("instantiate {} := {cand}", v.name()),
            );
            return true;
        }
    }
    false
}

/// Candidate witness terms for variable `v`: subterms of the hypotheses
/// and of the goal's ground part, filtered by schema compatibility.
fn candidates(hyps: &[Atom], goal_atoms: &[Atom], v: &Var) -> Vec<Term> {
    let mut pool: Vec<Term> = Vec::new();
    let collect_atom = |a: &Atom, pool: &mut Vec<Term>| match a {
        Atom::Rel(_, t) | Atom::Pred(_, t) => pool.extend(t.subterms()),
        Atom::Eq(x, y) => {
            pool.extend(x.subterms());
            pool.extend(y.subterms());
        }
        Atom::Not(_) | Atom::Squash(_) => {}
    };
    for h in hyps {
        collect_atom(h, &mut pool);
    }
    for ga in goal_atoms {
        collect_atom(ga, &mut pool);
    }
    // Keep only terms whose free variables are all hypothesis-level (i.e.
    // exclude anything mentioning a still-unbound goal variable, detected
    // as "not free in any hypothesis").
    let mut hyp_vars = std::collections::BTreeSet::new();
    for h in hyps {
        hyp_vars.extend(h.free_vars());
    }
    pool.retain(|t| {
        let fv = t.free_vars();
        fv.iter().all(|x| hyp_vars.contains(x))
    });
    pool.retain(|t| match t.schema() {
        Some(s) => s == v.schema,
        None => matches!(v.schema, Schema::Leaf(_)),
    });
    pool.sort_by_key(|t| format!("{t}").len());
    pool.dedup();
    pool
}

/// Builds a congruence closure from the equality atoms of `hyps`,
/// registering all hypothesis terms for candidate/representative queries.
pub fn build_cc(hyps: &[Atom]) -> Congruence {
    let mut cc = Congruence::new();
    for h in hyps {
        match h {
            Atom::Eq(a, b) => cc.add_eq(a, b),
            Atom::Rel(_, t) | Atom::Pred(_, t) => {
                cc.add_term(t);
            }
            _ => {}
        }
    }
    cc
}

/// Does one goal atom follow from the hypotheses?
pub fn entails_atom(hyps: &[Atom], cc: &mut Congruence, goal: &Atom, ctx: &mut Ctx<'_>) -> bool {
    if cc.contradictory() {
        return true;
    }
    match goal {
        Atom::Eq(a, b) => eq_entailed(hyps, cc, a, b, ctx),
        Atom::Rel(r, t) => hyps.iter().any(|h| match h {
            Atom::Rel(r2, t2) => r2 == r && cc.equal(t, t2),
            _ => false,
        }),
        Atom::Pred(p, t) => hyps.iter().any(|h| match h {
            Atom::Pred(p2, t2) => p2 == p && cc.equal(t, t2),
            _ => false,
        }),
        Atom::Not(s) => hyps.iter().any(|h| match h {
            Atom::Not(s2) => nested_equiv(s, s2, hyps, ctx),
            _ => false,
        }),
        Atom::Squash(s) => {
            let direct = hyps.iter().any(|h| match h {
                Atom::Squash(s2) => nested_equiv(s, s2, hyps, ctx),
                _ => false,
            });
            if direct {
                return true;
            }
            // Prove the existential outright from the hypotheses
            // (Lemma 5.3 absorption uses this for semijoin introduction).
            if ctx.depth == 0 {
                return false;
            }
            ctx.depth -= 1;
            let ok = provable_from(hyps, s, ctx);
            ctx.depth += 1;
            if ok {
                ctx.trace
                    .step(Lemma::Absorption, format!("hypotheses entail ‖{s}‖"));
            }
            ok
        }
    }
}

fn nested_equiv(a: &Spnf, b: &Spnf, ambient: &[Atom], ctx: &mut Ctx<'_>) -> bool {
    if a == b {
        return true;
    }
    if ctx.depth == 0 {
        return false;
    }
    ctx.depth -= 1;
    let ok = equiv::equiv(a, b, ambient, ctx);
    ctx.depth += 1;
    ok
}

/// Equality entailment: congruence closure, extended with aggregate
/// congruence — `agg(λv. B₁) = agg(λv. B₂)` follows when the bodies are
/// equivalent relations under the current hypotheses (function
/// extensionality plus congruence of `agg`).
pub fn eq_entailed(
    hyps: &[Atom],
    cc: &mut Congruence,
    a: &Term,
    b: &Term,
    ctx: &mut Ctx<'_>,
) -> bool {
    if cc.equal(a, b) {
        return true;
    }
    if ctx.depth == 0 {
        return false;
    }
    // Aggregate congruence: compare any aggregate term in a's class with
    // any in b's class.
    let class_a = class_members(cc, a);
    let class_b = class_members(cc, b);
    for x in &class_a {
        for y in &class_b {
            if let (Term::Agg(n1, v1, body1), Term::Agg(n2, v2, body2)) = (x, y) {
                if n1 != n2 {
                    continue;
                }
                let body2 = body2.subst(v2, &Term::var(v1));
                if agg_bodies_equiv(body1, &body2, hyps, ctx) {
                    ctx.trace.step(
                        Lemma::EqCongruence,
                        format!("aggregate bodies of {n1} are equal relations"),
                    );
                    return true;
                }
            }
        }
    }
    false
}

fn class_members(cc: &mut Congruence, t: &Term) -> Vec<Term> {
    let mut out = vec![t.clone()];
    for k in cc.known_terms() {
        if cc.equal(&k, t) {
            out.push(k);
        }
    }
    out.sort();
    out.dedup();
    out
}

fn agg_bodies_equiv(b1: &UExpr, b2: &UExpr, hyps: &[Atom], ctx: &mut Ctx<'_>) -> bool {
    ctx.depth -= 1;
    let n1 = crate::normalize::normalize(b1, ctx.gen, ctx.trace);
    let n2 = crate::normalize::normalize(b2, ctx.gen, ctx.trace);
    let ok = equiv::equiv(&n1, &n2, hyps, ctx);
    ctx.depth += 1;
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use relalg::BaseType;

    fn leaf_int() -> Schema {
        Schema::leaf(BaseType::Int)
    }

    struct Setup {
        gen: VarGen,
        trace: Trace,
    }

    impl Setup {
        fn new() -> Setup {
            Setup {
                gen: VarGen::new(),
                trace: Trace::new(),
            }
        }
        fn ctx(&mut self) -> Ctx<'_> {
            Ctx::new(&mut self.gen, &mut self.trace)
        }
        fn nf(&mut self, e: &UExpr) -> Spnf {
            let mut tr = Trace::new();
            normalize(e, &mut self.gen, &mut tr)
        }
    }

    #[test]
    fn trivial_iff() {
        let mut s = Setup::new();
        let t = s.gen.fresh(leaf_int());
        let p = UExpr::pred("b", Term::var(&t));
        let n = s.nf(&p);
        let mut ctx = s.ctx();
        assert!(prove_iff(&n, &n.clone(), &[], &mut ctx));
    }

    #[test]
    fn exists_intro_with_witness_from_hypothesis() {
        // R(c) ⊢ ‖Σx. R(x)‖
        let mut s = Setup::new();
        let c = s.gen.fresh(leaf_int());
        let x = s.gen.fresh(leaf_int());
        let hyp = s.nf(&UExpr::rel("R", Term::var(&c)));
        let goal = s.nf(&UExpr::squash(UExpr::sum(
            x.clone(),
            UExpr::rel("R", Term::var(&x)),
        )));
        let mut ctx = s.ctx();
        let hyps = hyp.terms[0].atoms.clone();
        assert!(provable_from(&hyps, &goal, &mut ctx));
    }

    #[test]
    fn exists_needs_matching_relation() {
        // R(c) ⊬ ‖Σx. S(x)‖
        let mut s = Setup::new();
        let c = s.gen.fresh(leaf_int());
        let x = s.gen.fresh(leaf_int());
        let hyp = s.nf(&UExpr::rel("R", Term::var(&c)));
        let goal = s.nf(&UExpr::squash(UExpr::sum(
            x.clone(),
            UExpr::rel("S", Term::var(&x)),
        )));
        let mut ctx = s.ctx();
        let hyps = hyp.terms[0].atoms.clone();
        assert!(!provable_from(&hyps, &goal, &mut ctx));
    }

    #[test]
    fn fig2_self_join_iff() {
        // ∃t1,t2. (t = a t1) × (a t1 = a t2) × R t1 × R t2
        //   ↔ ∃t0. (t = a t0) × R t0            (Fig. 2, deductive proof)
        let mut s = Setup::new();
        let t = s.gen.fresh(leaf_int());
        let t0 = s.gen.fresh(leaf_int());
        let t1 = s.gen.fresh(leaf_int());
        let t2 = s.gen.fresh(leaf_int());
        let a = |v: &Var| Term::func("a", vec![Term::var(v)]);
        let lhs = s.nf(&UExpr::sum(
            t1.clone(),
            UExpr::sum(
                t2.clone(),
                UExpr::product([
                    UExpr::eq(Term::var(&t), a(&t1)),
                    UExpr::eq(a(&t1), a(&t2)),
                    UExpr::rel("R", Term::var(&t1)),
                    UExpr::rel("R", Term::var(&t2)),
                ]),
            ),
        ));
        let rhs = s.nf(&UExpr::sum(
            t0.clone(),
            UExpr::product([
                UExpr::eq(Term::var(&t), a(&t0)),
                UExpr::rel("R", Term::var(&t0)),
            ]),
        ));
        let mut ctx = s.ctx();
        assert!(prove_iff(&lhs, &rhs, &[], &mut ctx));
    }

    #[test]
    fn case_split_on_disjunctive_hypothesis() {
        // ‖R(c) + S(c)‖ ⊢ ‖Σx. R(x) + Σy. S(y)‖
        let mut s = Setup::new();
        let c = s.gen.fresh(leaf_int());
        let x = s.gen.fresh(leaf_int());
        let y = s.gen.fresh(leaf_int());
        let hyp = s.nf(&UExpr::squash(UExpr::add(
            UExpr::rel("R", Term::var(&c)),
            UExpr::rel("S", Term::var(&c)),
        )));
        let goal = s.nf(&UExpr::squash(UExpr::add(
            UExpr::sum(x.clone(), UExpr::rel("R", Term::var(&x))),
            UExpr::sum(y.clone(), UExpr::rel("S", Term::var(&y))),
        )));
        let mut ctx = s.ctx();
        let hyps = hyp.terms[0].atoms.clone();
        assert!(provable_from(&hyps, &goal, &mut ctx));
    }

    #[test]
    fn congruence_used_in_goal_equalities() {
        // (a = b) × R(f(a)) ⊢ ‖Σx. R(x) × (x = f(b))‖
        let mut s = Setup::new();
        let a = s.gen.fresh(leaf_int());
        let b = s.gen.fresh(leaf_int());
        let x = s.gen.fresh(leaf_int());
        let fa = Term::func("f", vec![Term::var(&a)]);
        let fb = Term::func("f", vec![Term::var(&b)]);
        let hypnf = s.nf(&UExpr::mul(
            UExpr::eq(Term::var(&a), Term::var(&b)),
            UExpr::rel("R", fa.clone()),
        ));
        let goal = s.nf(&UExpr::squash(UExpr::sum(
            x.clone(),
            UExpr::mul(
                UExpr::rel("R", Term::var(&x)),
                UExpr::eq(Term::var(&x), fb.clone()),
            ),
        )));
        let mut ctx = s.ctx();
        let hyps = hypnf.terms[0].atoms.clone();
        assert!(provable_from(&hyps, &goal, &mut ctx));
    }

    #[test]
    fn inconsistent_hypotheses_prove_anything() {
        let mut s = Setup::new();
        let x = s.gen.fresh(leaf_int());
        let goal = s.nf(&UExpr::squash(UExpr::sum(
            x.clone(),
            UExpr::rel("Q", Term::var(&x)),
        )));
        let hyps = vec![Atom::Eq(Term::int(1), Term::int(2))];
        let mut ctx = s.ctx();
        assert!(provable_from(&hyps, &goal, &mut ctx));
    }

    #[test]
    fn goal_zero_needs_contradiction() {
        let mut s = Setup::new();
        let c = s.gen.fresh(leaf_int());
        let hyps = vec![Atom::Rel("R".into(), Term::var(&c))];
        let mut ctx = s.ctx();
        assert!(!provable_from(&hyps, &Spnf::zero(), &mut ctx));
    }

    #[test]
    fn aggregate_congruence_under_hypotheses() {
        // Hypotheses: k(t1) = l. Then
        //   SUM(λx. Σt2.(k t1 = k t2) × R t2 × (x = b t2))
        // = SUM(λx. Σt2.(k t1 = k t2) × (k t2 = l) × R t2 × (x = b t2)).
        let mut s = Setup::new();
        let t1 = s.gen.fresh(leaf_int());
        let l = s.gen.fresh(leaf_int());
        let x = s.gen.fresh(leaf_int());
        let t2a = s.gen.fresh(leaf_int());
        let t2b = s.gen.fresh(leaf_int());
        let k = |v: &Var| Term::func("k", vec![Term::var(v)]);
        let bf = |v: &Var| Term::func("b", vec![Term::var(v)]);
        let body1 = UExpr::sum(
            t2a.clone(),
            UExpr::product([
                UExpr::eq(k(&t1), k(&t2a)),
                UExpr::rel("R", Term::var(&t2a)),
                UExpr::eq(Term::var(&x), bf(&t2a)),
            ]),
        );
        let body2 = UExpr::sum(
            t2b.clone(),
            UExpr::product([
                UExpr::eq(k(&t1), k(&t2b)),
                UExpr::eq(k(&t2b), Term::var(&l)),
                UExpr::rel("R", Term::var(&t2b)),
                UExpr::eq(Term::var(&x), bf(&t2b)),
            ]),
        );
        let agg1 = Term::agg("SUM", x.clone(), body1);
        let agg2 = Term::agg("SUM", x.clone(), body2);
        let hyps = vec![Atom::Eq(k(&t1), Term::var(&l))];
        let mut cc = build_cc(&hyps);
        let mut ctx = s.ctx();
        assert!(eq_entailed(&hyps, &mut cc, &agg1, &agg2, &mut ctx));
        // Without the hypothesis the bodies differ.
        let no_hyps: Vec<Atom> = Vec::new();
        let mut cc2 = build_cc(&no_hyps);
        let mut ctx2 = s.ctx();
        assert!(!eq_entailed(&no_hyps, &mut cc2, &agg1, &agg2, &mut ctx2));
    }
}
