//! Congruence closure over tuple terms.
//!
//! The deductive prover (Sec. 5.2) reasons from equality atoms: after
//! destructing the hypotheses of a bi-implication goal, it must decide
//! whether a goal equality follows from the hypothesis equalities by
//! reflexivity, symmetry, transitivity, and congruence (the classic
//! Nelson–Oppen congruence-closure problem the paper cites in Sec. 3.4).
//!
//! Beyond standard congruence, this implementation knows two facts about
//! the tuple model:
//!
//! - **pairing is injective**: `(a, b) = (c, d)` entails `a = c` and
//!   `b = d`;
//! - **η**: any term `t` of product schema equals `(t.1, t.2)`, so
//!   unifying `(a, b)` with an opaque `t` entails `a = t.1`, `b = t.2`;
//! - **distinct constants differ**: unifying `1` with `2` marks the
//!   closure contradictory (hypotheses inconsistent — everything follows).

use crate::syntax::Term;
use std::collections::HashMap;

/// A congruence-closure instance over [`Term`]s.
#[derive(Debug, Default)]
pub struct Congruence {
    terms: Vec<Term>,
    index: HashMap<Term, usize>,
    parent: Vec<usize>,
    contradictory: bool,
}

impl Congruence {
    /// An empty closure.
    pub fn new() -> Congruence {
        Congruence::default()
    }

    /// Whether the asserted equalities are inconsistent (two distinct
    /// constants were unified). In that case [`Congruence::equal`]
    /// returns `true` for everything.
    pub fn contradictory(&self) -> bool {
        self.contradictory
    }

    /// Registers a term (β-reduced) and all of its subterms; returns its
    /// node id.
    pub fn add_term(&mut self, t: &Term) -> usize {
        let t = t.beta_reduce();
        if let Some(&i) = self.index.get(&t) {
            return i;
        }
        // Register children first.
        match &t {
            Term::Pair(a, b) => {
                self.add_term(a);
                self.add_term(b);
            }
            Term::Fst(x) | Term::Snd(x) => {
                self.add_term(x);
            }
            Term::Fn(_, args) => {
                for a in args {
                    self.add_term(a);
                }
            }
            _ => {}
        }
        let i = self.terms.len();
        self.terms.push(t.clone());
        self.parent.push(i);
        self.index.insert(t, i);
        self.rebuild();
        i
    }

    /// Asserts `a = b`.
    pub fn add_eq(&mut self, a: &Term, b: &Term) {
        let i = self.add_term(a);
        let j = self.add_term(b);
        self.union(i, j);
        self.rebuild();
    }

    /// Whether `a = b` follows from the asserted equalities.
    pub fn equal(&mut self, a: &Term, b: &Term) -> bool {
        if self.contradictory {
            return true;
        }
        let i = self.add_term(a);
        let j = self.add_term(b);
        self.find(i) == self.find(j)
    }

    /// All registered terms (used to build instantiation candidates).
    pub fn known_terms(&self) -> Vec<Term> {
        self.terms.clone()
    }

    /// A canonical representative of `t`'s equivalence class.
    pub fn representative(&mut self, t: &Term) -> Term {
        let i = self.add_term(t);
        let r = self.find(i);
        self.terms[r].clone()
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, i: usize, j: usize) {
        let (ri, rj) = (self.find(i), self.find(j));
        if ri == rj {
            return;
        }
        // Contradiction on distinct constants.
        if let (Term::Const(x), Term::Const(y)) = (&self.terms[ri], &self.terms[rj]) {
            if x != y {
                self.contradictory = true;
            }
        }
        self.parent[ri] = rj;
        // Pair injectivity / η-expansion.
        let (ti, tj) = (self.terms[i].clone(), self.terms[j].clone());
        match (&ti, &tj) {
            (Term::Pair(a1, b1), Term::Pair(a2, b2)) => {
                let (a1, b1, a2, b2) = (
                    (**a1).clone(),
                    (**b1).clone(),
                    (**a2).clone(),
                    (**b2).clone(),
                );
                self.add_eq_raw(&a1, &a2);
                self.add_eq_raw(&b1, &b2);
            }
            (Term::Pair(a, b), other) | (other, Term::Pair(a, b)) => {
                let (a, b) = ((**a).clone(), (**b).clone());
                let fst = Term::fst(other.clone()).beta_reduce();
                let snd = Term::snd(other.clone()).beta_reduce();
                self.add_eq_raw(&a, &fst);
                self.add_eq_raw(&b, &snd);
            }
            _ => {}
        }
    }

    /// `add_eq` without the trailing rebuild (used inside propagation).
    fn add_eq_raw(&mut self, a: &Term, b: &Term) {
        let i = self.add_term(a);
        let j = self.add_term(b);
        self.union(i, j);
    }

    /// Congruence propagation to a fixpoint: unify applications with
    /// pairwise-equal children. Quadratic per pass — term sets are small
    /// in every proof the system performs.
    fn rebuild(&mut self) {
        loop {
            let mut changed = false;
            let n = self.terms.len();
            for i in 0..n {
                for j in (i + 1)..n {
                    if self.find(i) == self.find(j) {
                        continue;
                    }
                    if self.congruent(i, j) {
                        self.union(i, j);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    fn congruent(&mut self, i: usize, j: usize) -> bool {
        let (a, b) = (self.terms[i].clone(), self.terms[j].clone());
        match (&a, &b) {
            (Term::Fst(x), Term::Fst(y)) | (Term::Snd(x), Term::Snd(y)) => {
                let (x, y) = ((**x).clone(), (**y).clone());
                self.pairwise_equal(&[x], &[y])
            }
            (Term::Pair(a1, b1), Term::Pair(a2, b2)) => {
                let args1 = [(**a1).clone(), (**b1).clone()];
                let args2 = [(**a2).clone(), (**b2).clone()];
                self.pairwise_equal(&args1, &args2)
            }
            (Term::Fn(f, xs), Term::Fn(g, ys)) if f == g && xs.len() == ys.len() => {
                let xs = xs.clone();
                let ys = ys.clone();
                self.pairwise_equal(&xs, &ys)
            }
            _ => false,
        }
    }

    fn pairwise_equal(&mut self, xs: &[Term], ys: &[Term]) -> bool {
        xs.iter().zip(ys).all(|(x, y)| {
            let i = self.add_term(x);
            let j = self.add_term(y);
            self.find(i) == self.find(j)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::VarGen;
    use relalg::{BaseType, Schema};

    fn vars(n: usize) -> Vec<Term> {
        let mut g = VarGen::new();
        (0..n)
            .map(|_| Term::var(&g.fresh(Schema::leaf(BaseType::Int))))
            .collect()
    }

    #[test]
    fn reflexivity_and_symmetry() {
        let v = vars(2);
        let mut cc = Congruence::new();
        assert!(cc.equal(&v[0], &v[0]));
        assert!(!cc.equal(&v[0], &v[1]));
        cc.add_eq(&v[0], &v[1]);
        assert!(cc.equal(&v[1], &v[0]));
    }

    #[test]
    fn transitivity() {
        let v = vars(3);
        let mut cc = Congruence::new();
        cc.add_eq(&v[0], &v[1]);
        cc.add_eq(&v[1], &v[2]);
        assert!(cc.equal(&v[0], &v[2]));
    }

    #[test]
    fn congruence_over_functions() {
        let v = vars(2);
        let mut cc = Congruence::new();
        let fa = Term::func("f", vec![v[0].clone()]);
        let fb = Term::func("f", vec![v[1].clone()]);
        cc.add_term(&fa);
        cc.add_term(&fb);
        assert!(!cc.equal(&fa, &fb));
        cc.add_eq(&v[0], &v[1]);
        assert!(cc.equal(&fa, &fb));
    }

    #[test]
    fn congruence_discovered_after_union() {
        // Classic: a = b ⊢ f(f(a)) = f(f(b)).
        let v = vars(2);
        let mut cc = Congruence::new();
        let ffa = Term::func("f", vec![Term::func("f", vec![v[0].clone()])]);
        let ffb = Term::func("f", vec![Term::func("f", vec![v[1].clone()])]);
        cc.add_eq(&v[0], &v[1]);
        assert!(cc.equal(&ffa, &ffb));
    }

    #[test]
    fn pair_injectivity() {
        let v = vars(4);
        let mut cc = Congruence::new();
        cc.add_eq(
            &Term::pair(v[0].clone(), v[1].clone()),
            &Term::pair(v[2].clone(), v[3].clone()),
        );
        assert!(cc.equal(&v[0], &v[2]));
        assert!(cc.equal(&v[1], &v[3]));
    }

    #[test]
    fn eta_expansion_through_pairs() {
        // (a, b) = t  ⊢  a = t.1 and b = t.2.
        let mut g = VarGen::new();
        let int = Schema::leaf(BaseType::Int);
        let a = Term::var(&g.fresh(int.clone()));
        let b = Term::var(&g.fresh(int.clone()));
        let t = Term::var(&g.fresh(Schema::node(int.clone(), int)));
        let mut cc = Congruence::new();
        cc.add_eq(&Term::pair(a.clone(), b.clone()), &t);
        assert!(cc.equal(&a, &Term::fst(t.clone())));
        assert!(cc.equal(&b, &Term::snd(t)));
    }

    #[test]
    fn distinct_constants_contradict() {
        let mut cc = Congruence::new();
        cc.add_eq(&Term::int(1), &Term::int(2));
        assert!(cc.contradictory());
        // Everything follows from a contradiction.
        let v = vars(2);
        let mut cc2 = Congruence::new();
        cc2.add_eq(&Term::int(1), &Term::int(2));
        assert!(cc2.equal(&v[0], &v[1]));
    }

    #[test]
    fn same_constants_do_not_contradict() {
        let mut cc = Congruence::new();
        cc.add_eq(&Term::int(1), &Term::int(1));
        assert!(!cc.contradictory());
    }

    #[test]
    fn transitive_constant_contradiction() {
        let v = vars(1);
        let mut cc = Congruence::new();
        cc.add_eq(&v[0], &Term::int(1));
        cc.add_eq(&v[0], &Term::int(2));
        assert!(cc.contradictory());
    }

    #[test]
    fn beta_reduction_on_entry() {
        let v = vars(2);
        let proj = Term::fst(Term::pair(v[0].clone(), v[1].clone()));
        let mut cc = Congruence::new();
        assert!(cc.equal(&proj, &v[0]));
    }

    #[test]
    fn fst_congruence() {
        let mut g = VarGen::new();
        let int = Schema::leaf(BaseType::Int);
        let s = Schema::node(int.clone(), int);
        let t1 = Term::var(&g.fresh(s.clone()));
        let t2 = Term::var(&g.fresh(s));
        let mut cc = Congruence::new();
        cc.add_eq(&t1, &t2);
        assert!(cc.equal(&Term::fst(t1.clone()), &Term::fst(t2.clone())));
        assert!(cc.equal(&Term::snd(t1), &Term::snd(t2)));
    }

    #[test]
    fn representative_is_stable_within_class() {
        let v = vars(3);
        let mut cc = Congruence::new();
        cc.add_eq(&v[0], &v[1]);
        cc.add_eq(&v[1], &v[2]);
        let r0 = cc.representative(&v[0]);
        let r2 = cc.representative(&v[2]);
        assert_eq!(r0, r2);
    }
}
