//! The UniNomial term language.
//!
//! Two mutually recursive sorts, matching the paper's denotations:
//!
//! - [`Term`] — *tuple-valued* terms: variables, pairing, the `.1`/`.2`
//!   projections, scalar constants, uninterpreted functions, and
//!   aggregates (whose argument is a relation, i.e. a `λ tuple. UExpr`).
//! - [`UExpr`] — *type-valued* expressions: the algebra
//!   `(U, 0, 1, +, ×, ·→0, ‖·‖, Σ)` of Definition 3.1 extended with the
//!   base atoms produced by Fig. 7: `⟦R⟧ t`, `⟦b⟧ t`, and `t₁ = t₂`.
//!
//! Binders ([`UExpr::Sum`] and [`Term::Agg`]) use globally unique
//! variables issued by [`VarGen`]; no shadowing ever occurs, which makes
//! capture-avoiding substitution a plain traversal.

pub mod intern;

use relalg::{Schema, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A bound or free tuple variable, carrying its schema.
///
/// Variables are compared by id only; the schema is bookkeeping used by
/// normalization (pair-splitting) and the instantiation search.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var {
    /// Globally unique identifier.
    pub id: u32,
    /// Schema of the tuples this variable ranges over.
    pub schema: Schema,
}

impl Var {
    /// A display name like `t3`.
    pub fn name(&self) -> String {
        format!("t{}", self.id)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.id)
    }
}

/// Issues fresh, globally unique variables.
#[derive(Debug, Default)]
pub struct VarGen {
    next: u32,
}

impl VarGen {
    /// Creates a generator starting at id 0.
    pub fn new() -> VarGen {
        VarGen::default()
    }

    /// Issues a fresh variable of the given schema.
    pub fn fresh(&mut self, schema: Schema) -> Var {
        let id = self.next;
        self.next += 1;
        Var { id, schema }
    }

    /// Makes sure future ids are strictly greater than `id` (used when
    /// ingesting expressions built elsewhere).
    pub fn reserve_above(&mut self, id: u32) {
        if id >= self.next {
            self.next = id + 1;
        }
    }
}

/// Tuple-valued terms.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A tuple variable.
    Var(Var),
    /// The unit tuple (of the empty schema).
    Unit,
    /// Pairing `(t₁, t₂)`.
    Pair(Box<Term>, Box<Term>),
    /// First projection `t.1`.
    Fst(Box<Term>),
    /// Second projection `t.2`.
    Snd(Box<Term>),
    /// A scalar constant (a leaf tuple).
    Const(Value),
    /// An uninterpreted scalar function `f(e₁, …, eₙ)` (Sec. 3.2).
    Fn(String, Vec<Term>),
    /// An aggregate `agg(λ v : Tuple σ. body)` where `body : U` is the
    /// multiplicity of `v` in the aggregated relation (Fig. 7's
    /// `⟦agg⟧ (⟦Γ ⊢ q : leaf τ⟧ g)`).
    Agg(String, Var, Box<UExpr>),
}

impl Term {
    /// A variable occurrence.
    pub fn var(v: &Var) -> Term {
        Term::Var(v.clone())
    }

    /// Pairing.
    pub fn pair(a: Term, b: Term) -> Term {
        Term::Pair(Box::new(a), Box::new(b))
    }

    /// First projection (`.1`).
    pub fn fst(t: Term) -> Term {
        Term::Fst(Box::new(t))
    }

    /// Second projection (`.2`).
    pub fn snd(t: Term) -> Term {
        Term::Snd(Box::new(t))
    }

    /// An integer constant.
    pub fn int(n: i64) -> Term {
        Term::Const(Value::Int(n))
    }

    /// A string constant.
    pub fn string(s: impl Into<String>) -> Term {
        Term::Const(Value::Str(s.into()))
    }

    /// An uninterpreted function application.
    pub fn func(name: impl Into<String>, args: Vec<Term>) -> Term {
        Term::Fn(name.into(), args)
    }

    /// An aggregate term.
    pub fn agg(name: impl Into<String>, var: Var, body: UExpr) -> Term {
        Term::Agg(name.into(), var, Box::new(body))
    }

    /// Free variables of the term (binders inside `Agg` bodies excluded).
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut out);
        out
    }

    fn collect_free(&self, out: &mut BTreeSet<Var>) {
        match self {
            Term::Var(v) => {
                out.insert(v.clone());
            }
            Term::Unit | Term::Const(_) => {}
            Term::Pair(a, b) => {
                a.collect_free(out);
                b.collect_free(out);
            }
            Term::Fst(t) | Term::Snd(t) => t.collect_free(out),
            Term::Fn(_, args) => {
                for a in args {
                    a.collect_free(out);
                }
            }
            Term::Agg(_, v, body) => {
                let mut inner = body.free_vars();
                inner.remove(v);
                out.extend(inner);
            }
        }
    }

    /// Capture-avoiding substitution `self[var := repl]`. Because all
    /// binders are globally unique, no renaming is needed.
    pub fn subst(&self, var: &Var, repl: &Term) -> Term {
        match self {
            Term::Var(v) if v == var => repl.clone(),
            Term::Var(_) | Term::Unit | Term::Const(_) => self.clone(),
            Term::Pair(a, b) => Term::pair(a.subst(var, repl), b.subst(var, repl)),
            Term::Fst(t) => Term::fst(t.subst(var, repl)),
            Term::Snd(t) => Term::snd(t.subst(var, repl)),
            Term::Fn(f, args) => {
                Term::Fn(f.clone(), args.iter().map(|a| a.subst(var, repl)).collect())
            }
            Term::Agg(name, v, body) => {
                debug_assert_ne!(v, var, "binders are globally unique");
                Term::Agg(name.clone(), v.clone(), Box::new(body.subst(var, repl)))
            }
        }
    }

    /// β/η-normalizes the tuple structure: `(a,b).1 → a`, `(a,b).2 → b`,
    /// and `(t.1, t.2) → t`. Idempotent.
    pub fn beta_reduce(&self) -> Term {
        match self {
            Term::Var(_) | Term::Unit | Term::Const(_) => self.clone(),
            Term::Pair(a, b) => {
                let a = a.beta_reduce();
                let b = b.beta_reduce();
                // η: (t.1, t.2) → t
                if let (Term::Fst(x), Term::Snd(y)) = (&a, &b) {
                    if x == y {
                        return (**x).clone();
                    }
                }
                Term::pair(a, b)
            }
            Term::Fst(t) => match t.beta_reduce() {
                Term::Pair(a, _) => (*a).clone(),
                t => Term::fst(t),
            },
            Term::Snd(t) => match t.beta_reduce() {
                Term::Pair(_, b) => (*b).clone(),
                t => Term::snd(t),
            },
            Term::Fn(f, args) => Term::Fn(f.clone(), args.iter().map(Term::beta_reduce).collect()),
            Term::Agg(name, v, body) => {
                Term::Agg(name.clone(), v.clone(), Box::new(body.beta_reduce_terms()))
            }
        }
    }

    /// Best-effort schema of this term. `Fn` results and `Agg` results are
    /// scalars of unknown base type, so `None` is returned for them (and
    /// propagated).
    pub fn schema(&self) -> Option<Schema> {
        match self {
            Term::Var(v) => Some(v.schema.clone()),
            Term::Unit => Some(Schema::Empty),
            Term::Const(v) => v.base_type().map(Schema::Leaf),
            Term::Pair(a, b) => Some(Schema::node(a.schema()?, b.schema()?)),
            Term::Fst(t) => match t.schema()? {
                Schema::Node(l, _) => Some(*l),
                _ => None,
            },
            Term::Snd(t) => match t.schema()? {
                Schema::Node(_, r) => Some(*r),
                _ => None,
            },
            Term::Fn(_, _) | Term::Agg(_, _, _) => None,
        }
    }

    /// All subterms of this term (including itself), used as instantiation
    /// candidates by the deductive prover. `Agg` bodies are not entered.
    pub fn subterms(&self) -> Vec<Term> {
        let mut out = Vec::new();
        self.collect_subterms(&mut out);
        out
    }

    fn collect_subterms(&self, out: &mut Vec<Term>) {
        out.push(self.clone());
        match self {
            Term::Pair(a, b) => {
                a.collect_subterms(out);
                b.collect_subterms(out);
            }
            Term::Fst(t) | Term::Snd(t) => t.collect_subterms(out),
            Term::Fn(_, args) => {
                for a in args {
                    a.collect_subterms(out);
                }
            }
            _ => {}
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{}", v.name()),
            Term::Unit => write!(f, "()"),
            Term::Pair(a, b) => write!(f, "({a}, {b})"),
            Term::Fst(t) => write!(f, "{t}.1"),
            Term::Snd(t) => write!(f, "{t}.2"),
            Term::Const(v) => write!(f, "{v}"),
            Term::Fn(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Term::Agg(name, v, body) => write!(f, "{name}(λ{}. {body})", v.name()),
        }
    }
}

/// Type-valued UniNomial expressions (Definition 3.1 plus base atoms).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UExpr {
    /// The empty type `0`.
    Zero,
    /// The unit type `1`.
    One,
    /// Disjoint union `n₁ + n₂`.
    Add(Box<UExpr>, Box<UExpr>),
    /// Cartesian product `n₁ × n₂`.
    Mul(Box<UExpr>, Box<UExpr>),
    /// Negation `n → 0`.
    Not(Box<UExpr>),
    /// Squash `‖n‖`.
    Squash(Box<UExpr>),
    /// Infinitary sum `Σ_{v : Tuple σ} body` (σ is stored in the binder).
    Sum(Var, Box<UExpr>),
    /// Propositional equality of two tuple terms, `t₁ = t₂`.
    Eq(Term, Term),
    /// `⟦R⟧ t` — the multiplicity of tuple `t` in relation symbol `R`
    /// (a table or a meta-variable ranging over all relations).
    Rel(String, Term),
    /// `⟦b⟧ t` — an uninterpreted predicate meta-variable applied to a
    /// tuple term; always a squash type (Sec. 4.1).
    Pred(String, Term),
}

impl UExpr {
    /// Addition.
    #[allow(clippy::should_implement_trait)] // paper-idiom constructor, not an operator impl
    pub fn add(a: UExpr, b: UExpr) -> UExpr {
        UExpr::Add(Box::new(a), Box::new(b))
    }

    /// Multiplication.
    #[allow(clippy::should_implement_trait)] // paper-idiom constructor, not an operator impl
    pub fn mul(a: UExpr, b: UExpr) -> UExpr {
        UExpr::Mul(Box::new(a), Box::new(b))
    }

    /// Product of many factors (`1` if empty).
    pub fn product(factors: impl IntoIterator<Item = UExpr>) -> UExpr {
        let mut it = factors.into_iter();
        match it.next() {
            None => UExpr::One,
            Some(first) => it.fold(first, UExpr::mul),
        }
    }

    /// Sum of many addends (`0` if empty).
    pub fn sum_of(addends: impl IntoIterator<Item = UExpr>) -> UExpr {
        let mut it = addends.into_iter();
        match it.next() {
            None => UExpr::Zero,
            Some(first) => it.fold(first, UExpr::add),
        }
    }

    /// Negation `· → 0`.
    #[allow(clippy::should_implement_trait)] // paper-idiom constructor, not an operator impl
    pub fn not(e: UExpr) -> UExpr {
        UExpr::Not(Box::new(e))
    }

    /// Squash `‖·‖`.
    pub fn squash(e: UExpr) -> UExpr {
        UExpr::Squash(Box::new(e))
    }

    /// Infinitary sum over a fresh variable.
    pub fn sum(v: Var, body: UExpr) -> UExpr {
        UExpr::Sum(v, Box::new(body))
    }

    /// Tuple equality.
    pub fn eq(a: Term, b: Term) -> UExpr {
        UExpr::Eq(a, b)
    }

    /// Relation atom `⟦R⟧ t`.
    pub fn rel(name: impl Into<String>, t: Term) -> UExpr {
        UExpr::Rel(name.into(), t)
    }

    /// Predicate atom `⟦b⟧ t`.
    pub fn pred(name: impl Into<String>, t: Term) -> UExpr {
        UExpr::Pred(name.into(), t)
    }

    /// Free variables.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut out);
        out
    }

    fn collect_free(&self, out: &mut BTreeSet<Var>) {
        match self {
            UExpr::Zero | UExpr::One => {}
            UExpr::Add(a, b) | UExpr::Mul(a, b) => {
                a.collect_free(out);
                b.collect_free(out);
            }
            UExpr::Not(e) | UExpr::Squash(e) => e.collect_free(out),
            UExpr::Sum(v, body) => {
                let mut inner = body.free_vars();
                inner.remove(v);
                out.extend(inner);
            }
            UExpr::Eq(a, b) => {
                a.collect_free(out);
                b.collect_free(out);
            }
            UExpr::Rel(_, t) | UExpr::Pred(_, t) => t.collect_free(out),
        }
    }

    /// Capture-avoiding substitution `self[var := repl]`.
    pub fn subst(&self, var: &Var, repl: &Term) -> UExpr {
        match self {
            UExpr::Zero | UExpr::One => self.clone(),
            UExpr::Add(a, b) => UExpr::add(a.subst(var, repl), b.subst(var, repl)),
            UExpr::Mul(a, b) => UExpr::mul(a.subst(var, repl), b.subst(var, repl)),
            UExpr::Not(e) => UExpr::not(e.subst(var, repl)),
            UExpr::Squash(e) => UExpr::squash(e.subst(var, repl)),
            UExpr::Sum(v, body) => {
                debug_assert_ne!(v, var, "binders are globally unique");
                UExpr::Sum(v.clone(), Box::new(body.subst(var, repl)))
            }
            UExpr::Eq(a, b) => UExpr::eq(a.subst(var, repl), b.subst(var, repl)),
            UExpr::Rel(r, t) => UExpr::Rel(r.clone(), t.subst(var, repl)),
            UExpr::Pred(p, t) => UExpr::Pred(p.clone(), t.subst(var, repl)),
        }
    }

    /// β/η-normalizes all tuple terms inside the expression.
    pub fn beta_reduce_terms(&self) -> UExpr {
        match self {
            UExpr::Zero | UExpr::One => self.clone(),
            UExpr::Add(a, b) => UExpr::add(a.beta_reduce_terms(), b.beta_reduce_terms()),
            UExpr::Mul(a, b) => UExpr::mul(a.beta_reduce_terms(), b.beta_reduce_terms()),
            UExpr::Not(e) => UExpr::not(e.beta_reduce_terms()),
            UExpr::Squash(e) => UExpr::squash(e.beta_reduce_terms()),
            UExpr::Sum(v, body) => UExpr::Sum(v.clone(), Box::new(body.beta_reduce_terms())),
            UExpr::Eq(a, b) => UExpr::eq(a.beta_reduce(), b.beta_reduce()),
            UExpr::Rel(r, t) => UExpr::Rel(r.clone(), t.beta_reduce()),
            UExpr::Pred(p, t) => UExpr::Pred(p.clone(), t.beta_reduce()),
        }
    }

    /// Renames every bound variable to a fresh one from `gen`, so that an
    /// expression can be safely combined with others (unique-binder
    /// invariant).
    pub fn refresh_binders(&self, gen: &mut VarGen) -> UExpr {
        match self {
            UExpr::Zero | UExpr::One | UExpr::Eq(_, _) | UExpr::Rel(_, _) | UExpr::Pred(_, _) => {
                self.clone()
            }
            UExpr::Add(a, b) => UExpr::add(a.refresh_binders(gen), b.refresh_binders(gen)),
            UExpr::Mul(a, b) => UExpr::mul(a.refresh_binders(gen), b.refresh_binders(gen)),
            UExpr::Not(e) => UExpr::not(e.refresh_binders(gen)),
            UExpr::Squash(e) => UExpr::squash(e.refresh_binders(gen)),
            UExpr::Sum(v, body) => {
                let fresh = gen.fresh(v.schema.clone());
                let renamed = body.subst(v, &Term::var(&fresh));
                UExpr::Sum(fresh, Box::new(renamed.refresh_binders(gen)))
            }
        }
    }

    /// The largest variable id occurring anywhere (bound or free), used to
    /// seed [`VarGen::reserve_above`].
    pub fn max_var_id(&self) -> u32 {
        fn term_max(t: &Term) -> u32 {
            match t {
                Term::Var(v) => v.id,
                Term::Unit | Term::Const(_) => 0,
                Term::Pair(a, b) => term_max(a).max(term_max(b)),
                Term::Fst(t) | Term::Snd(t) => term_max(t),
                Term::Fn(_, args) => args.iter().map(term_max).max().unwrap_or(0),
                Term::Agg(_, v, body) => v.id.max(body.max_var_id()),
            }
        }
        match self {
            UExpr::Zero | UExpr::One => 0,
            UExpr::Add(a, b) | UExpr::Mul(a, b) => a.max_var_id().max(b.max_var_id()),
            UExpr::Not(e) | UExpr::Squash(e) => e.max_var_id(),
            UExpr::Sum(v, body) => v.id.max(body.max_var_id()),
            UExpr::Eq(a, b) => term_max(a).max(term_max(b)),
            UExpr::Rel(_, t) | UExpr::Pred(_, t) => term_max(t),
        }
    }
}

impl fmt::Debug for UExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for UExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UExpr::Zero => write!(f, "0"),
            UExpr::One => write!(f, "1"),
            UExpr::Add(a, b) => write!(f, "({a} + {b})"),
            UExpr::Mul(a, b) => write!(f, "({a} × {b})"),
            UExpr::Not(e) => write!(f, "¬{e}"),
            UExpr::Squash(e) => write!(f, "‖{e}‖"),
            UExpr::Sum(v, body) => write!(f, "Σ{}:{}. {body}", v.name(), v.schema),
            UExpr::Eq(a, b) => write!(f, "({a} = {b})"),
            UExpr::Rel(r, t) => write!(f, "{r}({t})"),
            UExpr::Pred(p, t) => write!(f, "{p}({t})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::BaseType;

    fn leaf_int() -> Schema {
        Schema::leaf(BaseType::Int)
    }

    #[test]
    fn vargen_is_monotone_and_unique() {
        let mut g = VarGen::new();
        let a = g.fresh(leaf_int());
        let b = g.fresh(leaf_int());
        assert_ne!(a.id, b.id);
        g.reserve_above(100);
        let c = g.fresh(leaf_int());
        assert!(c.id > 100);
    }

    #[test]
    fn beta_reduces_projections_of_pairs() {
        let mut g = VarGen::new();
        let v = g.fresh(leaf_int());
        let t = Term::fst(Term::pair(Term::var(&v), Term::int(3)));
        assert_eq!(t.beta_reduce(), Term::var(&v));
        let t = Term::snd(Term::pair(Term::var(&v), Term::int(3)));
        assert_eq!(t.beta_reduce(), Term::int(3));
    }

    #[test]
    fn eta_contracts_pair_of_projections() {
        let mut g = VarGen::new();
        let v = g.fresh(Schema::node(leaf_int(), leaf_int()));
        let t = Term::pair(Term::fst(Term::var(&v)), Term::snd(Term::var(&v)));
        assert_eq!(t.beta_reduce(), Term::var(&v));
    }

    #[test]
    fn beta_reduce_is_idempotent() {
        let mut g = VarGen::new();
        let v = g.fresh(Schema::node(leaf_int(), leaf_int()));
        let t = Term::fst(Term::pair(
            Term::snd(Term::var(&v)),
            Term::fst(Term::var(&v)),
        ));
        let once = t.beta_reduce();
        assert_eq!(once.beta_reduce(), once);
    }

    #[test]
    fn term_schema_inference() {
        let mut g = VarGen::new();
        let v = g.fresh(Schema::node(leaf_int(), Schema::leaf(BaseType::Bool)));
        assert_eq!(Term::fst(Term::var(&v)).schema(), Some(leaf_int()));
        assert_eq!(
            Term::snd(Term::var(&v)).schema(),
            Some(Schema::leaf(BaseType::Bool))
        );
        assert_eq!(Term::Unit.schema(), Some(Schema::Empty));
        assert_eq!(Term::int(1).schema(), Some(leaf_int()));
        assert_eq!(Term::func("f", vec![]).schema(), None);
    }

    #[test]
    fn free_vars_of_expr() {
        let mut g = VarGen::new();
        let v = g.fresh(leaf_int());
        let w = g.fresh(leaf_int());
        let e = UExpr::sum(
            w.clone(),
            UExpr::mul(
                UExpr::rel("R", Term::var(&w)),
                UExpr::eq(Term::var(&v), Term::var(&w)),
            ),
        );
        let fv = e.free_vars();
        assert!(fv.contains(&v));
        assert!(!fv.contains(&w));
    }

    #[test]
    fn subst_avoids_binders_and_hits_occurrences() {
        let mut g = VarGen::new();
        let v = g.fresh(leaf_int());
        let w = g.fresh(leaf_int());
        let e = UExpr::sum(w.clone(), UExpr::eq(Term::var(&v), Term::var(&w)));
        let e2 = e.subst(&v, &Term::int(7));
        assert_eq!(
            e2,
            UExpr::sum(w.clone(), UExpr::eq(Term::int(7), Term::var(&w)))
        );
    }

    #[test]
    fn subst_inside_agg_body() {
        let mut g = VarGen::new();
        let v = g.fresh(leaf_int());
        let w = g.fresh(leaf_int());
        let agg = Term::agg("SUM", w.clone(), UExpr::eq(Term::var(&v), Term::var(&w)));
        let agg2 = agg.subst(&v, &Term::int(5));
        match agg2 {
            Term::Agg(_, _, body) => {
                assert_eq!(*body, UExpr::eq(Term::int(5), Term::var(&w)));
            }
            other => panic!("expected Agg, got {other}"),
        }
    }

    #[test]
    fn refresh_binders_gives_unique_ids() {
        let mut g = VarGen::new();
        let v = g.fresh(leaf_int());
        let body = UExpr::rel("R", Term::var(&v));
        let e = UExpr::sum(v.clone(), body);
        // Combine the same expression twice; binders must not collide.
        let mut g2 = VarGen::new();
        g2.reserve_above(e.max_var_id());
        let e1 = e.refresh_binders(&mut g2);
        let e2 = e.refresh_binders(&mut g2);
        let combined = UExpr::mul(e1.clone(), e2.clone());
        // Collect all binder ids.
        fn binders(e: &UExpr, out: &mut Vec<u32>) {
            match e {
                UExpr::Sum(v, b) => {
                    out.push(v.id);
                    binders(b, out);
                }
                UExpr::Add(a, b) | UExpr::Mul(a, b) => {
                    binders(a, out);
                    binders(b, out);
                }
                UExpr::Not(x) | UExpr::Squash(x) => binders(x, out),
                _ => {}
            }
        }
        let mut ids = Vec::new();
        binders(&combined, &mut ids);
        let distinct: BTreeSet<u32> = ids.iter().copied().collect();
        assert_eq!(ids.len(), distinct.len(), "binder ids must be unique");
    }

    #[test]
    fn display_is_readable() {
        let mut g = VarGen::new();
        let t = g.fresh(leaf_int());
        let e = UExpr::squash(UExpr::sum(
            t.clone(),
            UExpr::mul(
                UExpr::rel("R", Term::var(&t)),
                UExpr::eq(Term::var(&t), Term::int(1)),
            ),
        ));
        let s = e.to_string();
        assert!(s.contains("Σ"), "{s}");
        assert!(s.contains("R(t0)"), "{s}");
        assert!(s.contains("‖"), "{s}");
    }

    #[test]
    fn product_and_sum_of_builders() {
        assert_eq!(UExpr::product([]), UExpr::One);
        assert_eq!(UExpr::sum_of([]), UExpr::Zero);
        let p = UExpr::product([UExpr::One, UExpr::Zero]);
        assert_eq!(p, UExpr::mul(UExpr::One, UExpr::Zero));
    }

    #[test]
    fn max_var_id_sees_all_positions() {
        let mut g = VarGen::new();
        let a = g.fresh(leaf_int());
        let b = g.fresh(leaf_int());
        let c = g.fresh(leaf_int());
        let e = UExpr::mul(
            UExpr::rel("R", Term::var(&a)),
            UExpr::sum(
                b.clone(),
                UExpr::eq(Term::var(&b), Term::agg("SUM", c.clone(), UExpr::One)),
            ),
        );
        assert_eq!(e.max_var_id(), c.id);
    }
}
