//! Relation axioms: integrity constraints as proof hypotheses.
//!
//! The index rewrite rules of Sec. 5.1.4 only hold when `k` is a *key* of
//! `R`. The paper encodes `key(k)(R)` as an equation between two queries
//! (Sec. 4.2):
//!
//! ```text
//! ⟦SELECT * FROM R⟧ = ⟦SELECT Left.* FROM R, R WHERE k(Right.Left) = k(Right.Right)⟧
//! ```
//!
//! i.e. `R t = R t × Σ t₂. R t₂ × (k t = k t₂)`. Two consequences are
//! what proofs actually use, and this module implements them as a
//! *saturation pass* over normal forms:
//!
//! 1. **key-derived equality**: inside a product containing `R x`, `R y`,
//!    and a provable `k x = k y`, the equality `x = y` may be adjoined
//!    (Lemma 5.3: the product entails it), which then triggers
//!    singleton-sum elimination (Lemma 5.2);
//! 2. **multiplicity one**: `R x × R y` collapses to `R x` once `x = y`
//!    is known, because a keyed relation is duplicate-free.

use crate::deduce::build_cc;
use crate::lemmas::Lemma;
use crate::normalize::{simplify_term, Atom, Spnf, Trace};
use crate::syntax::{Term, VarGen};

/// An assumed integrity constraint usable by the prover.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelAxiom {
    /// `key_fn` is a key of relation `rel` (Sec. 4.2).
    Key {
        /// The relation symbol.
        rel: String,
        /// The uninterpreted function computing the key of a tuple.
        key_fn: String,
    },
}

/// Saturates a normal form under the given axioms: adjoins key-derived
/// equalities, re-runs simplification (which may eliminate sum binders),
/// and collapses duplicate keyed-relation atoms. Sound: every step is an
/// instance of Lemma 5.2/5.3 plus the key equation.
pub fn saturate(spnf: &Spnf, axioms: &[RelAxiom], gen: &mut VarGen, trace: &mut Trace) -> Spnf {
    if axioms.is_empty() {
        return spnf.clone();
    }
    let mut out = Spnf::zero();
    'terms: for term in &spnf.terms {
        let mut vars = term.vars.clone();
        let mut atoms = term.atoms.clone();
        // Bounded fixpoint: each round either adds an equality (bounded
        // by pairs of Rel atoms) or stops.
        for _round in 0..16 {
            let mut cc = build_cc(&atoms);
            let mut added = false;
            for RelAxiom::Key { rel, key_fn } in axioms {
                let args: Vec<Term> = atoms
                    .iter()
                    .filter_map(|a| match a {
                        Atom::Rel(r, t) if r == rel => Some(t.clone()),
                        _ => None,
                    })
                    .collect();
                for i in 0..args.len() {
                    for j in (i + 1)..args.len() {
                        let (x, y) = (&args[i], &args[j]);
                        if cc.equal(x, y) {
                            continue;
                        }
                        let kx = Term::func(key_fn.clone(), vec![x.clone()]);
                        let ky = Term::func(key_fn.clone(), vec![y.clone()]);
                        if cc.equal(&kx, &ky) {
                            trace.step(
                                Lemma::Absorption,
                                format!("key({key_fn})({rel}) derives {x} = {y}"),
                            );
                            match crate::normalize::eq_atoms(x, y, gen, trace) {
                                // Refutable equality: the product is 0.
                                None => continue 'terms,
                                Some(eqs) => atoms.extend(eqs),
                            }
                            cc.add_eq(x, y);
                            added = true;
                        }
                    }
                }
            }
            if !added {
                break;
            }
            // Re-simplify: the new equalities may eliminate binders.
            match simplify_term(vars, atoms, gen, trace) {
                Some(t) => {
                    vars = t.vars;
                    atoms = t.atoms;
                }
                None => continue 'terms, // term became 0
            }
        }
        // Multiplicity-one collapse for keyed relations.
        let mut cc = build_cc(&atoms);
        let mut kept: Vec<Atom> = Vec::new();
        for a in atoms {
            if let Atom::Rel(r, t) = &a {
                let keyed = axioms.iter().any(|RelAxiom::Key { rel, .. }| rel == r);
                if keyed {
                    let dup = kept.iter().any(|k| match k {
                        Atom::Rel(r2, t2) => r2 == r && cc.equal(t, t2),
                        _ => false,
                    });
                    if dup {
                        trace.step(
                            Lemma::Absorption,
                            format!("keyed relation {r} is duplicate-free"),
                        );
                        continue;
                    }
                }
            }
            kept.push(a);
        }
        match simplify_term(vars, kept, gen, trace) {
            Some(t) => out.terms.push(t),
            None => continue,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use crate::syntax::{UExpr, Var};
    use relalg::{BaseType, Schema};

    fn leaf_int() -> Schema {
        Schema::leaf(BaseType::Int)
    }

    fn key_axiom() -> Vec<RelAxiom> {
        vec![RelAxiom::Key {
            rel: "R".into(),
            key_fn: "k".into(),
        }]
    }

    #[test]
    fn key_self_join_collapses() {
        // Σt2. R(t) × R(t2) × (k t = k t2)  ⇝  R(t)   given key(k)(R).
        let mut gen = VarGen::new();
        let mut tr = Trace::new();
        let t = gen.fresh(leaf_int());
        let t2 = gen.fresh(leaf_int());
        let k = |v: &Var| Term::func("k", vec![Term::var(v)]);
        let e = UExpr::sum(
            t2.clone(),
            UExpr::product([
                UExpr::rel("R", Term::var(&t)),
                UExpr::rel("R", Term::var(&t2)),
                UExpr::eq(k(&t), k(&t2)),
            ]),
        );
        let nf = normalize(&e, &mut gen, &mut tr);
        let sat = saturate(&nf, &key_axiom(), &mut gen, &mut tr);
        assert_eq!(sat.terms.len(), 1);
        let term = &sat.terms[0];
        assert!(term.vars.is_empty(), "binder should be eliminated: {sat}");
        assert_eq!(term.atoms, vec![Atom::Rel("R".into(), Term::var(&t))]);
    }

    #[test]
    fn no_axiom_no_change() {
        let mut gen = VarGen::new();
        let mut tr = Trace::new();
        let t = gen.fresh(leaf_int());
        let e = UExpr::mul(
            UExpr::rel("R", Term::var(&t)),
            UExpr::rel("R", Term::var(&t)),
        );
        let nf = normalize(&e, &mut gen, &mut tr);
        let sat = saturate(&nf, &[], &mut gen, &mut tr);
        assert_eq!(sat, nf);
        // With the axiom the duplicate collapses.
        let sat2 = saturate(&nf, &key_axiom(), &mut gen, &mut tr);
        assert_eq!(sat2.terms[0].atoms.len(), 1);
    }

    #[test]
    fn unrelated_relations_untouched() {
        let mut gen = VarGen::new();
        let mut tr = Trace::new();
        let t = gen.fresh(leaf_int());
        let e = UExpr::mul(
            UExpr::rel("S", Term::var(&t)),
            UExpr::rel("S", Term::var(&t)),
        );
        let nf = normalize(&e, &mut gen, &mut tr);
        let sat = saturate(&nf, &key_axiom(), &mut gen, &mut tr);
        assert_eq!(sat.terms[0].atoms.len(), 2, "S is not keyed");
    }

    #[test]
    fn key_equality_requires_provable_key_match() {
        // Σt2. R(t) × R(t2) × (a t = a t2) with key k ≠ a: no collapse.
        let mut gen = VarGen::new();
        let mut tr = Trace::new();
        let t = gen.fresh(leaf_int());
        let t2 = gen.fresh(leaf_int());
        let a = |v: &Var| Term::func("a", vec![Term::var(v)]);
        let e = UExpr::sum(
            t2.clone(),
            UExpr::product([
                UExpr::rel("R", Term::var(&t)),
                UExpr::rel("R", Term::var(&t2)),
                UExpr::eq(a(&t), a(&t2)),
            ]),
        );
        let nf = normalize(&e, &mut gen, &mut tr);
        let sat = saturate(&nf, &key_axiom(), &mut gen, &mut tr);
        assert_eq!(sat.terms[0].vars.len(), 1, "binder must remain: {sat}");
    }
}
